"""Machine model: the parameterized superscalar/VLIW node processor.

The paper's processor (Section 3.1) has:

* in-order issue with register interlocking;
* deterministic instruction latencies (Table 1, reproduced below);
* a configurable *issue rate* (1, 2, 4 or 8) with **no** restriction on the
  combination of instructions issued per cycle, except a single branch slot
  (Table 1's "branch: 1 / 1 slot");
* non-excepting (speculative) loads and floating-point instructions, so the
  compiler may hoist them above prior branches;
* a 100% cache hit rate (loads always take the Table-1 latency).

Issue semantics shared by the scheduler and the simulator:

* an instruction may issue at cycle ``t`` when every source register's
  pending write has completed (``ready[r] <= t``) — flow interlock;
* register reads happen at issue, so a write issued in the same cycle but
  later in program order does not disturb earlier readers (WAR is free
  under in-order issue);
* writes complete at ``issue + latency``; a later write to the same
  register must complete strictly after an earlier one (WAW interlock);
* a branch terminates its issue packet: the following instruction (taken
  target or fall-through) issues no earlier than the next cycle.  This
  both implements the single branch slot and the 1-cycle branch latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .ir.instructions import Kind, Op


#: Table 1 of the paper, keyed by structural kind.
PAPER_LATENCIES: dict[Kind, int] = {
    Kind.INT_ALU: 1,
    Kind.INT_MUL: 3,
    Kind.INT_DIV: 10,
    Kind.FP_ALU: 3,
    Kind.FP_CVT: 3,
    Kind.FP_MUL: 3,
    Kind.FP_DIV: 10,
    Kind.LOAD: 2,
    Kind.STORE: 1,
    Kind.BRANCH: 1,
    Kind.JUMP: 1,
    Kind.HALT: 1,
    Kind.NOP: 1,
    # Lev5 vector extension: element-wise vector ops take the Table-1
    # latency of their per-lane scalar operation (fully parallel lanes);
    # vector loads/stores move `lanes` consecutive words at the scalar
    # memory latency; pack/unpack are 1-cycle register-file shuffles.
    Kind.VEC_IALU: 1,
    Kind.VEC_IMUL: 3,
    Kind.VEC_FALU: 3,
    Kind.VEC_FMUL: 3,
    Kind.VEC_FDIV: 10,
    Kind.VEC_LOAD: 2,
    Kind.VEC_STORE: 1,
    Kind.VEC_PACK: 1,
}

#: Register moves are plain ALU transfers and complete in one cycle even in
#: the FP file (they do not go through the 3-cycle FP adder).
_MOVE_LATENCY = 1

#: Default maximum superword width (elements per vector register) the SLP
#: pass may pack, and the size of the machine's vector register lanes.
DEFAULT_VECTOR_LANES = 4


@dataclass(frozen=True)
class MachineConfig:
    """A processor configuration.

    ``issue_width=0`` means unlimited issue (used for the paper's worked
    examples, which assume "a superscalar processor with infinite
    resources").
    """

    issue_width: int = 8
    latencies: dict[Kind, int] = field(default_factory=lambda: dict(PAPER_LATENCIES))
    #: at most this many branches may issue per cycle (paper: 1)
    branch_slots: int = 1
    #: per-kind issue slot limits beyond the global width; empty means the
    #: paper's "no limitation on the combination of instructions" model.
    #: (Used by the slot-restriction ablation benchmark.)
    slot_limits: dict[Kind, int] = field(default_factory=dict)
    #: compiler may hoist non-excepting loads / FP ops above branches
    speculative_loads: bool = True
    speculative_fp: bool = True
    #: vector register width in elements — the widest superword the SLP
    #: pass (Lev5) may form; 0 disables vectorization entirely
    vector_lanes: int = DEFAULT_VECTOR_LANES

    def latency(self, op: Op) -> int:
        if op in (Op.MOV, Op.FMOV):
            return _MOVE_LATENCY
        from .ir.instructions import OP_INFO

        return self.latencies[OP_INFO[op].kind]

    @property
    def unlimited(self) -> bool:
        return self.issue_width == 0

    def with_width(self, width: int) -> "MachineConfig":
        return replace(self, issue_width=width)

    def cache_key(self) -> tuple:
        """Hashable identity of this configuration (the dataclass itself is
        unhashable because of the latency/slot dicts).  Two configurations
        with equal keys produce identical compiled programs and schedules."""
        return (
            self.issue_width,
            self.branch_slots,
            tuple(sorted((k.value, v) for k, v in self.latencies.items())),
            tuple(sorted((k.value, v) for k, v in self.slot_limits.items())),
            self.speculative_loads,
            self.speculative_fp,
            self.vector_lanes,
        )

    def latency_key(self) -> tuple:
        """Like :meth:`cache_key` but ignoring the issue width: the part of
        the configuration the *transformation* stages can observe.  Machines
        differing only in issue width share transformed (unscheduled) code."""
        return self.cache_key()[2:]


def to_description(config: MachineConfig) -> dict:
    """Serialize a configuration as a machine-description dictionary.

    The paper's compiler "utilizes a machine description file to generate
    code for a parameterized superscalar/VLIW node processor"; this is the
    equivalent knob surface (JSON-friendly)."""
    return {
        "issue_width": config.issue_width,
        "branch_slots": config.branch_slots,
        "latencies": {k.name: v for k, v in config.latencies.items()},
        "slot_limits": {k.name: v for k, v in config.slot_limits.items()},
        "speculative_loads": config.speculative_loads,
        "speculative_fp": config.speculative_fp,
        "vector_lanes": config.vector_lanes,
    }


def from_description(desc: dict) -> MachineConfig:
    """Build a configuration from a machine-description dictionary.

    Unspecified latencies default to Table 1; unknown kind names raise."""
    latencies = dict(PAPER_LATENCIES)
    for name, v in desc.get("latencies", {}).items():
        latencies[Kind[name]] = int(v)
    slot_limits = {
        Kind[name]: int(v) for name, v in desc.get("slot_limits", {}).items()
    }
    return MachineConfig(
        issue_width=int(desc.get("issue_width", 8)),
        latencies=latencies,
        branch_slots=int(desc.get("branch_slots", 1)),
        slot_limits=slot_limits,
        speculative_loads=bool(desc.get("speculative_loads", True)),
        speculative_fp=bool(desc.get("speculative_fp", True)),
        vector_lanes=int(desc.get("vector_lanes", DEFAULT_VECTOR_LANES)),
    )


def load_description(path) -> MachineConfig:
    """Load a machine description from a JSON file."""
    import json
    from pathlib import Path

    return from_description(json.loads(Path(path).read_text()))


def issue1() -> MachineConfig:
    """The paper's base configuration (speedup denominator)."""
    return MachineConfig(issue_width=1)


def issue2() -> MachineConfig:
    return MachineConfig(issue_width=2)


def issue4() -> MachineConfig:
    return MachineConfig(issue_width=4)


def issue8() -> MachineConfig:
    return MachineConfig(issue_width=8)


def unlimited() -> MachineConfig:
    """Infinite-resource model used by the paper's worked examples."""
    return MachineConfig(issue_width=0)
