"""Operation combining (paper, Section 2; Nakatani & Ebcioglu).

Eliminates the flow dependence between two instructions that each have a
compile-time constant source::

    I1: r1 = r2 op1 C1
    I2: r3 = r1 op2 C2      =>      I2': r3 = r2 op2 (C1 op3 C2)

The current implementation combines exactly the pairs the paper lists:

    (add i, sub i)   ->  (add i, sub i, int compare/branch, load, store)
    (mul i)          ->  (mul i)
    (add f, sub f)   ->  (add f, sub f, fp compare/branch)
    (mul f, div f)   ->  (mul f, div f)

If evaluating the combined constant overflows 32-bit integer range the
transformation is skipped (paper's footnote 1).  When I1's destination is
also its source (``r1 = r1 + 4``), I2 is *exchanged* with I1 so it can read
the pre-update value (Figure 6); the exchange is only done for adjacent
instructions and never moves a branch over a definition that is live at the
branch target.
"""

from __future__ import annotations

from ..ir.instructions import Instr, Kind, Op
from ..ir.operands import FImm, Imm, Operand, Reg

_INT_BRANCHES = {Op.BLT, Op.BLE, Op.BGT, Op.BGE, Op.BEQ, Op.BNE}
_FP_BRANCHES = {Op.FBLT, Op.FBLE, Op.FBGT, Op.FBGE, Op.FBEQ, Op.FBNE}

#: signed 32-bit range (asymmetric: -2^31 is representable, 2^31 is not)
INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1


def _fits_int32(v: int) -> bool:
    """Whether a combined constant stays a legal immediate (footnote 1)."""
    return INT32_MIN <= v <= INT32_MAX


def _int_additive(ins: Instr) -> tuple[Reg, int] | None:
    """If ``ins`` is ``d = a +/- C`` (int), return (a, signed delta)."""
    if ins.op is Op.ADD:
        a, b = ins.srcs
        if isinstance(a, Reg) and isinstance(b, Imm):
            return a, b.value
        if isinstance(b, Reg) and isinstance(a, Imm):
            return b, a.value
    elif ins.op is Op.SUB:
        a, b = ins.srcs
        if isinstance(a, Reg) and isinstance(b, Imm):
            return a, -b.value
    return None


def _fp_additive(ins: Instr) -> tuple[Reg, float] | None:
    if ins.op is Op.FADD:
        a, b = ins.srcs
        if isinstance(a, Reg) and isinstance(b, FImm):
            return a, b.value
        if isinstance(b, Reg) and isinstance(a, FImm):
            return b, a.value
    elif ins.op is Op.FSUB:
        a, b = ins.srcs
        if isinstance(a, Reg) and isinstance(b, FImm):
            return a, -b.value
    return None


def _int_mul(ins: Instr) -> tuple[Reg, int] | None:
    if ins.op is Op.MUL:
        a, b = ins.srcs
        if isinstance(a, Reg) and isinstance(b, Imm):
            return a, b.value
        if isinstance(b, Reg) and isinstance(a, Imm):
            return b, a.value
    return None


def _fp_mul_div(ins: Instr) -> tuple[Reg, float, bool] | None:
    """(source, constant, is_div) for ``d = a * C`` or ``d = a / C``."""
    if ins.op is Op.FMUL:
        a, b = ins.srcs
        if isinstance(a, Reg) and isinstance(b, FImm):
            return a, b.value, False
        if isinstance(b, Reg) and isinstance(a, FImm):
            return b, a.value, False
    elif ins.op is Op.FDIV:
        a, b = ins.srcs
        if isinstance(a, Reg) and isinstance(b, FImm) and b.value != 0.0:
            return a, b.value, True
    return None


def _rewrite_int_additive_use(i2: Instr, r1: Reg, a: Reg, delta: int) -> bool:
    """Fold ``r1 = a + delta`` into I2's use of r1.  Returns success."""
    op = i2.op
    if op in (Op.ADD, Op.SUB):
        add = _int_additive(i2)
        if add is None or add[0] != r1:
            return False
        total = add[1] + delta
        if not _fits_int32(total):
            return False
        i2.op = Op.ADD
        i2.srcs = (a, Imm(total))
        return True
    if i2.kind in (Kind.LOAD, Kind.STORE):
        base, off = i2.srcs[0], i2.srcs[1]
        rest = i2.srcs[2:]
        if base == r1 and isinstance(off, Imm):
            total = off.value + delta
            if not _fits_int32(total):
                return False
            i2.srcs = (a, Imm(total)) + rest
            return True
        if off == r1 and isinstance(base, Imm):
            total = base.value + delta
            if not _fits_int32(total):
                return False
            i2.srcs = (Imm(total), a) + rest
            return True
        # symbolic base with register offset: MEM(A + r1) cannot absorb an
        # integer into the symbol, but the offset slot can if it is r1 and
        # the base is a symbol or register
        if off == r1:
            # keep base as is, cannot fold constant into a register slot
            return False
        return False
    if i2.op in _INT_BRANCHES:
        x, y = i2.srcs
        if x == r1 and isinstance(y, Imm):
            total = y.value - delta
            if not _fits_int32(total):
                return False
            i2.srcs = (a, Imm(total))
            return True
        if y == r1 and isinstance(x, Imm):
            total = x.value - delta
            if not _fits_int32(total):
                return False
            i2.srcs = (Imm(total), a)
            return True
    return False


def _rewrite_fp_additive_use(i2: Instr, r1: Reg, a: Reg, delta: float) -> bool:
    if i2.op in (Op.FADD, Op.FSUB):
        add = _fp_additive(i2)
        if add is None or add[0] != r1:
            return False
        i2.op = Op.FADD
        i2.srcs = (a, FImm(add[1] + delta))
        return True
    if i2.op in _FP_BRANCHES:
        x, y = i2.srcs
        if x == r1 and isinstance(y, FImm):
            i2.srcs = (a, FImm(y.value - delta))
            return True
        if y == r1 and isinstance(x, FImm):
            i2.srcs = (FImm(x.value - delta), a)
            return True
    return False


def _rewrite_int_mul_use(i2: Instr, r1: Reg, a: Reg, c1: int) -> bool:
    m = _int_mul(i2)
    if m is None or m[0] != r1:
        return False
    total = c1 * m[1]
    if not _fits_int32(total):
        return False
    i2.srcs = (a, Imm(total))
    return True


def _rewrite_fp_muldiv_use(i2: Instr, r1: Reg, a: Reg, c1: float, div1: bool) -> bool:
    md = _fp_mul_div(i2)
    if md is None or md[0] != r1:
        return False
    _, c2, div2 = md
    # (a op1 C1) op2 C2  ==  a * K  with K from the four sign cases
    if not div1 and not div2:
        k = c1 * c2
    elif not div1 and div2:
        k = c1 / c2
    elif div1 and not div2:
        k = c2 / c1
    else:
        k = 1.0 / (c1 * c2)
    if k == 0.0 or k != k or k in (float("inf"), float("-inf")):
        return False
    i2.op = Op.FMUL
    i2.srcs = (a, FImm(k))
    return True


def _try_combine(i1: Instr, i2: Instr) -> bool:
    """Attempt to fold I1's constant into I2 (I2 currently uses I1.dest)."""
    r1 = i1.dest
    assert r1 is not None
    add = _int_additive(i1)
    if add is not None:
        return _rewrite_int_additive_use(i2, r1, add[0], add[1])
    fadd = _fp_additive(i1)
    if fadd is not None:
        return _rewrite_fp_additive_use(i2, r1, fadd[0], fadd[1])
    mul = _int_mul(i1)
    if mul is not None:
        return _rewrite_int_mul_use(i2, r1, mul[0], mul[1])
    fmd = _fp_mul_div(i1)
    if fmd is not None:
        return _rewrite_fp_muldiv_use(i2, r1, fmd[0], fmd[1], fmd[2])
    return False


def combine_operations(
    body: list[Instr], protected: set[Reg] = frozenset()
) -> int:
    """Apply operation combining over a linear body until fixpoint.

    ``protected`` registers are live at side exits; exchanging a branch
    above the definition of one of them is refused.  Returns the number of
    pairs combined.  The body list is mutated in place (the exchange case
    swaps adjacent entries).
    """
    total = 0
    changed = True
    while changed:
        changed = False
        for j, i2 in enumerate(body):
            for r1 in set(i2.reg_uses()):
                # find the reaching definition of r1
                i_def = None
                for i in range(j - 1, -1, -1):
                    if body[i].dest == r1:
                        i_def = i
                        break
                if i_def is None:
                    continue
                i1 = body[i_def]
                src = next(
                    (s for s in i1.srcs if isinstance(s, Reg)), None
                )
                if src is None:
                    continue
                needs_swap = src == r1  # I1 overwrites its own source
                if needs_swap:
                    # only exchange adjacent instructions, and never hoist a
                    # branch over a definition live at its exit target
                    if i_def != j - 1:
                        continue
                    if i2.is_control and r1 in protected:
                        continue
                    if i2.dest is not None and (
                        i2.dest == src or i2.dest == r1
                    ):
                        continue
                    # the value I2 needs is r1 *before* I1's update, which
                    # after the exchange is exactly what r1 holds
                    pass
                else:
                    # r1 must come from a different register; I2 simply
                    # re-reads that register, so it must not be redefined
                    # between I1 and I2
                    redefined = any(
                        body[t].dest == src for t in range(i_def + 1, j)
                    )
                    if redefined:
                        continue
                if _try_combine(i1, i2):
                    if needs_swap:
                        body[i_def], body[j] = body[j], body[i_def]
                    total += 1
                    changed = True
                    break
            if changed:
                break
    return total
