"""Loop unrolling with a preconditioning loop (paper, Section 2).

    "A loop unrolled N times has N-1 copies of the loop body appended to
    the original loop. ... If the iteration count is known on loop entry,
    it is possible to remove many of these control transfers by using a
    preconditioning loop to execute the first Mod N iterations.  All of
    the loop examples used in this paper are of this type."

Given a canonical counted loop (see :class:`repro.analysis.loopvars.CountedLoop`)
with ``limit == iv0 + count * step`` exactly, this pass rewrites::

    preheader:                        preheader + precondition setup:
       ...                               span = limit - iv
    header:                              cnt  = span / step
       body                              rem  = cnt % N
    latch:                               off  = rem * step
       iv += step                        pre_limit = iv + off
       blt (iv limit) header             beq (rem 0) main_guard
    exit:                             pre.header:
                                         <copy of body>
                                         iv += step
                                         blt (iv pre_limit) pre.header
                                      main_guard:
                                         bge (iv limit) exit
                                      header:
                                         <body copy 1 ... iv += step>   (test removed)
                                         ...
                                         <body copy N ... iv += step>
                                         blt (iv limit) header
                                      exit:

The main loop then always executes a multiple of N iterations
(``trip_multiple = N``), which is what licenses removing the intermediate
backedge tests.  The precondition loop and guard are charged to the
simulated cycle count, as they would be on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.loopvars import CountedLoop
from ..ir.block import Block
from ..ir.function import Function
from ..ir.instructions import Instr, NEGATED_BRANCH, Op
from ..ir.loop import Loop, ensure_preheader
from ..ir.operands import Imm, Label, Operand, Reg

#: the paper unrolls "a maximum of 8 times or until a maximum loop body
#: size is reached, whichever limit is reached first"
MAX_UNROLL = 8
MAX_BODY_INSTRS = 256


class UnrollError(RuntimeError):
    pass


def choose_unroll_factor(loop_size: int, max_factor: int = MAX_UNROLL,
                         max_body: int = MAX_BODY_INSTRS) -> int:
    """Largest power-of-two-free factor <= max_factor keeping the unrolled
    body under the size limit (the paper's policy: 8x or body-size cap)."""
    f = max_factor
    while f > 1 and f * loop_size > max_body:
        f -= 1
    return max(f, 1)


def _known_entry_value(func: Function, loop: Loop, operand) -> int | None:
    """Compile-time value of ``operand`` on entry to the loop, if known.

    Immediates are themselves; a register resolves when its reaching
    definition at the loop header — the last definition in the blocks
    dominating the header, outside the loop — is a constant move."""
    from ..ir.loop import dominators

    if isinstance(operand, Imm):
        return operand.value
    if not isinstance(operand, Reg):
        return None
    dom = dominators(func)
    header_doms = dom.get(loop.header, set())
    last: Instr | None = None
    for blk in func.blocks:
        if blk.label not in header_doms or blk.label in loop.blocks:
            continue
        for ins in blk.instrs:
            if ins.dest == operand:
                last = ins
    # definitions inside the loop do not reach the entry as long as an
    # outside definition exists afterwards in execution order; for our
    # structured layouts the dominating chain is that order
    if last is not None and last.op is Op.MOV and isinstance(last.srcs[0], Imm):
        return last.srcs[0].value
    return None


def _limit_position(branch: Instr, iv: Reg) -> int:
    """Index of the limit operand in the backedge branch's sources."""
    a, b = branch.srcs
    if a == iv:
        return 1
    if b == iv:
        return 0
    raise UnrollError(f"backedge branch {branch!r} does not test iv {iv}")


def _copy_blocks(
    func: Function,
    labels: list[str],
    suffix: str,
) -> tuple[list[Block], dict[str, str]]:
    """Create copies of ``labels`` (in layout order) with fresh labels and
    internally remapped branch targets.  Blocks are created detached (not
    yet inserted into the function layout)."""
    mapping = {lab: func.new_label(f"{lab}.{suffix}") for lab in labels}
    bm = func.block_map()
    out: list[Block] = []
    for lab in labels:
        nb = Block(mapping[lab])
        for ins in bm[lab].instrs:
            c = ins.copy()
            if c.target is not None and c.target.name in mapping:
                c.target = Label(mapping[c.target.name])
            nb.append(c)
        out.append(nb)
    return out, mapping


def unroll_counted(
    func: Function,
    loop: Loop,
    counted: CountedLoop,
    factor: int,
) -> CountedLoop:
    """Unroll ``loop`` ``factor`` times with preconditioning.

    Returns updated counted-loop metadata (new backedge branch identity,
    ``trip_multiple = factor``).  Requires the loop blocks to be laid out
    contiguously, header first, latch last — the shape the frontend emits.
    """
    if factor <= 1:
        return counted
    if len(loop.latches) != 1:
        raise UnrollError("unroll requires a single latch")
    latch_label = loop.latches[0]

    # loop blocks in layout order; validate contiguity
    layout = [b.label for b in func.blocks]
    in_loop = [lab for lab in layout if lab in loop.blocks]
    lo = layout.index(in_loop[0])
    if layout[lo:lo + len(in_loop)] != in_loop:
        raise UnrollError(f"loop {loop.header} blocks not contiguous in layout")
    if in_loop[0] != loop.header or in_loop[-1] != latch_label:
        raise UnrollError("loop layout must be header ... latch")

    bm = func.block_map()
    latch = bm[latch_label]
    branch = counted.branch
    if latch.terminator is not branch:
        raise UnrollError("counted.branch is not the latch terminator")
    if not latch.falls_through:
        raise UnrollError("latch must fall through to the loop exit")
    exit_label = func.fallthrough_succ(latch)
    if exit_label is None:
        raise UnrollError("loop has no layout exit")

    iv, step, limit = counted.iv, counted.step, counted.limit
    if step <= 0:
        raise UnrollError("preconditioning requires a positive immediate step")
    lim_pos = _limit_position(branch, iv)

    ph = ensure_preheader(func, loop)

    # When the entry value of the IV and the limit are compile-time
    # constants, preconditioning is resolved statically: no span/div/rem
    # arithmetic, a precondition loop only when ``count % factor != 0``,
    # and no remainder or zero-trip guards ("iteration count known on loop
    # entry" — the paper's loops are all of this type).
    iv0 = _known_entry_value(func, loop, iv)
    lim0 = _known_entry_value(func, loop, limit)
    static_count = None
    if iv0 is not None and lim0 is not None:
        span0 = lim0 - iv0
        if span0 <= 0:
            return counted  # do-while: executes exactly once, nothing to unroll
        # do-while trip count rounds up: the last iteration may overshoot
        # an inexact span (only possible with a non-unit step)
        static_count = (span0 + step - 1) // step
        if static_count < 2:
            return counted  # nothing to unroll
        if static_count < factor:
            factor = static_count

    pre_blocks: list[Block] = []
    guard_blocks: list[Block] = []
    if static_count is not None:
        rem_iters = static_count % factor
        if rem_iters:
            pre_blocks, _ = _copy_blocks(func, in_loop, "pre")
            pre_branch = pre_blocks[-1].terminator
            assert pre_branch is not None and pre_branch.is_branch
            srcs = list(pre_branch.srcs)
            srcs[lim_pos] = Imm(iv0 + rem_iters * step)
            pre_branch.srcs = tuple(srcs)
            pre_branch.prob = 0.3
        # count >= factor is guaranteed, so no zero-trip guard is needed
    else:
        # ---- dynamic precondition setup block -----------------------------
        # A dedicated block keeps this correct whether the preheader reaches
        # the header by fall-through or by an explicit jump.
        setup = func.add_block(
            func.new_label(f"{loop.header}.setup"), index=func.block_index(loop.header)
        )
        ph_term = ph.terminator
        if ph_term is not None and ph_term.op is Op.JMP and ph_term.target.name == loop.header:
            ph_term.target = Label(setup.label)

        main_guard_label = func.new_label(f"{loop.header}.guard")
        span = func.new_int_reg()
        cnt = func.new_int_reg()
        rem = func.new_int_reg()
        off = func.new_int_reg()
        pre_limit = func.new_int_reg()
        setup.append(Instr(Op.SUB, span, (limit, iv)))
        dividend = span
        if step != 1:
            # the trip count is ceil(span/step) — the last iteration runs
            # even when it overshoots the limit — but DIV truncates, so a
            # non-unit step with an inexact span would undercount and leave
            # the main loop a non-multiple of ``factor`` (its intermediate
            # backedge tests are gone: a miscompile).  Biasing the dividend
            # by step-1 makes the truncating DIV round up for the positive
            # spans the loop contract guarantees.
            dividend = func.new_int_reg()
            setup.append(Instr(Op.ADD, dividend, (span, Imm(step - 1))))
        setup.extend([
            Instr(Op.DIV, cnt, (dividend, Imm(step))),
            Instr(Op.REM, rem, (cnt, Imm(factor))),
            Instr(Op.MUL, off, (rem, Imm(step))),
            Instr(Op.ADD, pre_limit, (iv, off)),
            Instr(Op.BEQ, srcs=(rem, Imm(0)), target=Label(main_guard_label), prob=0.5),
        ])

        pre_blocks, _ = _copy_blocks(func, in_loop, "pre")
        pre_branch = pre_blocks[-1].terminator
        assert pre_branch is not None and pre_branch.is_branch
        srcs = list(pre_branch.srcs)
        srcs[lim_pos] = pre_limit
        pre_branch.srcs = tuple(srcs)
        pre_branch.prob = 0.3  # runs at most factor-1 times

        guard = Block(main_guard_label)
        guard.append(
            Instr(
                NEGATED_BRANCH[branch.op],
                srcs=branch.srcs,
                target=Label(exit_label),
                prob=0.1,
            )
        )
        guard_blocks = [guard]

    # insert precondition blocks (+ guard) immediately before the header
    insert_at = func.block_index(loop.header)
    for i, nb in enumerate(pre_blocks + guard_blocks):
        func.blocks.insert(insert_at + i, nb)

    # ---- 4. main loop: factor copies, intermediate tests removed ---------
    # copy 0 is the original body; its backedge test is removed
    new_branch = branch
    new_increment = counted.increment
    latch.instrs.remove(branch)
    tail_at = func.block_index(latch_label) + 1
    inc_index = None
    for k, ins in enumerate(bm[latch_label].instrs):
        if ins is counted.increment:
            inc_index = k
    for c in range(1, factor):
        copies, cmap = _copy_blocks(func, in_loop, f"u{c}")
        for nb in copies:
            for ins in nb.instrs:
                ins.tag = c
        # original body already lost its branch, so copies have none either;
        # the final copy gets the backedge test back
        if c == factor - 1:
            nb = branch.copy()
            nb.target = Label(loop.header)
            copies[-1].append(nb)
            new_branch = nb
            if inc_index is not None:
                new_increment = copies[-1].instrs[inc_index]
        for nb in copies:
            func.blocks.insert(tail_at, nb)
            tail_at += 1

    return counted.clone_for(
        branch=new_branch, increment=new_increment, trip_multiple=factor
    )
