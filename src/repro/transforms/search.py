"""Search variable expansion (paper, Section 2).

A search variable holds a running maximum or minimum, updated through a
compare-and-branch idiom.  Within an unrolled superblock the chain of
tests/updates defines a critical path; this pass gives each unrolled copy
its own temporary search variable and combines them at loop exits::

    fble (x1 V) SKIP1          fble (x1 t1) SKIP1
    V = x1                     t1 = x1
    fble (x2 V) SKIP2    =>    fble (x2 t2) SKIP2
    V = x2                     t2 = x2
    ...                        (exits: V = combine(t1, t2, ...))

Each temporary sees only every k-th element, so the tests become
independent; the combined result is unchanged (max/min is insensitive to
partitioning).  Runs *before* register renaming, on original names.

The exit combine is itself a compare-and-update chain, emitted as a block
ladder on the natural exit path and in side-exit stubs::

    entry:   V = t1
    rung2:   fble (t2 V) rung3     # keep V if t2 does not beat it
             V = t2
    rung3:   ...
    end:     (jmp <continuation> | fall through)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.loopvars import SearchInfo, find_search_variables
from ..ir.block import Block
from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import Label, Reg
from ..schedule.superblock import SuperblockLoop
from .compensation import ensure_halt_terminated, insert_rejoin_reinit


def _mov(reg: Reg, src) -> Instr:
    return Instr(Op.FMOV if reg.is_fp else Op.MOV, reg, (src,))


@dataclass
class _Expanded:
    info: SearchInfo
    temps: list[Reg]
    #: branch opcode and V-operand position of the guard (taken = keep V)
    keep_op: Op
    v_first: bool


def _keep_branch(e: _Expanded, cand: Reg, target: str) -> Instr:
    srcs = (e.info.reg, cand) if e.v_first else (cand, e.info.reg)
    return Instr(e.keep_op, srcs=srcs, target=Label(target), prob=0.5)


def _build_combine_blocks(
    func: Function, expanded: list[_Expanded], hint: str
) -> list[Block]:
    """Detached block chain computing ``V = combine(temps)`` for every
    expanded variable.  First block is the entry; last block falls through
    (the caller appends a jump if needed).  Consecutive blocks rely on
    layout fall-through, so they must be inserted contiguously."""
    blocks = [Block(func.new_label(f"{hint}.cmb"))]
    for e in expanded:
        blocks[-1].append(_mov(e.info.reg, e.temps[0]))
        for t in e.temps[1:]:
            nxt = Block(func.new_label(f"{hint}.cmb"))
            blocks[-1].append(_keep_branch(e, t, nxt.label))
            blocks[-1].append(_mov(e.info.reg, t))
            blocks.append(nxt)
    return blocks


def expand_search_variables(sb: SuperblockLoop) -> int:
    """Apply search variable expansion; returns the number of variables
    expanded."""
    func = sb.func
    body = sb.body.instrs
    infos = find_search_variables(body)
    # require that V is read only by the guarding compare branches
    filtered: list[SearchInfo] = []
    for info in infos:
        cmp_positions = {b for b, _ in info.pairs}
        if all(
            info.reg not in set(ins.reg_uses()) or i in cmp_positions
            for i, ins in enumerate(body)
        ):
            filtered.append(info)
    if not filtered:
        return 0

    init_code: list[Instr] = []
    expanded: list[_Expanded] = []
    for info in filtered:
        k = len(info.pairs)
        temps = [func.new_reg(info.reg.cls) for _ in range(k)]
        guard = body[info.pairs[0][0]]
        v_first = isinstance(guard.srcs[0], Reg) and guard.srcs[0] == info.reg
        e = _Expanded(info, temps, guard.op, v_first)
        for t in temps:
            init_code.append(_mov(t, info.reg))
        for t, (bpos, upos) in zip(temps, info.pairs):
            body[bpos].replace_uses({info.reg: t})
            body[upos].dest = t
        expanded.append(e)

    sb.preheader.extend([i.copy() for i in init_code])

    # ---- natural-exit combine -------------------------------------------
    assert sb.exit_block is not None
    exit_blk = sb.exit_block
    trailing_jmp = None
    if exit_blk.instrs and exit_blk.instrs[-1].op is Op.JMP:
        trailing_jmp = exit_blk.instrs.pop()
    chain = _build_combine_blocks(func, expanded, exit_blk.label)
    # first chain block's content merges into the exit block itself
    exit_blk.extend(chain[0].instrs)
    insert_at = func.block_index(exit_blk.label) + 1
    for blk in chain[1:]:
        func.blocks.insert(insert_at, blk)
        insert_at += 1
    if trailing_jmp is not None:
        (chain[-1] if len(chain) > 1 else exit_blk).append(trailing_jmp)

    # ---- side exits: V = combine(temps) in a stub ladder ------------------
    for pos in sb.side_exit_positions():
        br = body[pos]
        if br.target is None:
            continue
        old_target = br.target.name
        ensure_halt_terminated(func)
        chain = _build_combine_blocks(func, expanded, f"{old_target}.sx")
        chain[-1].append(Instr(Op.JMP, target=Label(old_target)))
        for blk in chain:
            func.blocks.append(blk)
            sb.offtrace.add(blk.label)
        br.target = Label(chain[0].label)

    # ---- rejoins: re-split temps from V ------------------------------------
    insert_rejoin_reinit(
        func, sb.header, sb.body, lambda: [i.copy() for i in init_code]
    )
    return len(expanded)
