"""repro.transforms — the paper's eight ILP-increasing transformations."""

from .unroll import MAX_BODY_INSTRS, MAX_UNROLL, UnrollError, choose_unroll_factor, unroll_counted
from .rename import rename_superblock
from .accumulate import expand_accumulators
from .induction import InductionChain, expand_inductions, find_induction_chains
from .search import expand_search_variables
from .combine import combine_operations
from .strength import reduce_strength
from .treeheight import find_trees, reduce_tree_height
from .compensation import add_side_exit_stub, ensure_halt_terminated, insert_rejoin_reinit

__all__ = [
    "MAX_BODY_INSTRS", "MAX_UNROLL", "UnrollError", "choose_unroll_factor", "unroll_counted",
    "rename_superblock",
    "expand_accumulators",
    "InductionChain", "expand_inductions", "find_induction_chains",
    "expand_search_variables",
    "combine_operations",
    "reduce_strength",
    "find_trees", "reduce_tree_height",
    "add_side_exit_stub", "ensure_halt_terminated", "insert_rejoin_reinit",
]
