"""Register renaming (paper, Section 2).

    "Register renaming assigns unique registers to different definitions of
    the same register.  A common use of register renaming is to rename
    registers within individual loop bodies of an unrolled loop."

Operates on a superblock loop body.  Every definition gets a fresh virtual
register, except:

* the *last* definition of a register that is live out of the body (around
  the backedge or into the natural exit) keeps the original name, so
  loop-carried values flow without extra copies — exactly the shape of the
  paper's Figure 1(d), where the unrolled induction updates become
  ``r12i = r11i + 4; r13i = r12i + 4; r11i = r13i + 4``;
* pure *accumulator chains* (registers whose every definition is a
  self-update and whose every use is inside those updates) are left alone —
  renaming cannot break a true flow recurrence, and Figure 3(c) shows
  IMPACT leaving the accumulator unrenamed for accumulator expansion to
  handle;
* at each side exit, compensation moves re-materialize the original
  registers that are live at the exit target (see
  :mod:`repro.transforms.compensation`).
"""

from __future__ import annotations

from ..analysis.liveness import liveness
from ..analysis.loopvars import find_accumulators
from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import Reg
from ..schedule.superblock import SuperblockLoop
from .compensation import add_side_exit_stub


def _accumulator_chain_regs(body: list[Instr]) -> set[Reg]:
    """Registers forming pure accumulation recurrences (any multiplicity)."""
    out: set[Reg] = set()
    # find_accumulators requires >1 update; for renaming we also keep
    # single-update accumulators stable (renaming them is pure churn)
    from ..analysis.loopvars import _ACC_OPS_ADD, _ACC_OPS_MUL, _is_self_update

    regs = {ins.dest for ins in body if ins.dest is not None}
    for reg in regs:
        ok = False
        for ops in (_ACC_OPS_ADD, _ACC_OPS_MUL):
            if all(
                _is_self_update(ins, reg, ops)
                for ins in body
                if ins.dest == reg or reg in set(ins.reg_uses())
            ):
                ok = True
                break
        if ok:
            out.add(reg)
    return out


def rename_superblock(sb: SuperblockLoop, live_out_exit: set[Reg] | None = None) -> int:
    """Rename definitions in the superblock body.  Returns the number of
    fresh registers introduced."""
    func = sb.func
    body = sb.body.instrs
    lv = liveness(func, live_out_exit or set())

    # registers that must hold their value under the original name when the
    # body is left over the backedge or the natural exit
    canonical_out: set[Reg] = set(lv.live_in.get(sb.header, set()))
    if sb.exit_block is not None:
        canonical_out |= lv.live_in.get(sb.exit_block.label, set())
    else:
        canonical_out |= lv.live_out.get(sb.header, set())

    skip = _accumulator_chain_regs(body)

    # positions of the last definition of each register
    last_def: dict[Reg, int] = {}
    for i, ins in enumerate(body):
        if ins.dest is not None:
            last_def[ins.dest] = i

    cur: dict[Reg, Reg] = {}
    fresh = 0
    for i, ins in enumerate(body):
        # rename uses through the current map
        mapping = {r: cur[r] for r in ins.reg_uses() if r in cur and cur[r] != r}
        ins.replace_uses(mapping)

        if ins.is_control and ins.target is not None and i < len(body) - 1:
            # side exit: restore original names for live registers
            target_live = lv.live_in.get(ins.target.name, set())
            comp = [
                Instr(Op.MOV if r.is_int else Op.FMOV, r, (cur[r],))
                for r in sorted(target_live, key=lambda r: (r.cls.value, r.id))
                if cur.get(r, r) != r
            ]
            if comp:
                add_side_exit_stub(func, ins, comp, sb.offtrace, hint="rn")

        d = ins.dest
        if d is None or d in skip:
            continue
        if i == last_def[d] and d in canonical_out:
            ins.dest = d
            cur[d] = d
        else:
            nd = func.new_reg(d.cls)
            ins.dest = nd
            cur[d] = nd
            fresh += 1
    return fresh
