"""Strength reduction of integer multiply/divide/remainder by constants
(paper, Section 2).

    "In many existing compilers, integer multiply by a compile-time
    constant is replaced by a sequence of left shifts and adds. ... many of
    the instructions generated during strength reduction are independent
    and can be executed concurrently on a superscalar or VLIW processor.
    ... In addition, superscalar and VLIW processors may benefit from
    reduction of integer divide and integer remainder by a compile-time
    constant."

Policies (latency-driven, per the paper's applicability rule):

* ``mul r, C`` with C a sum of at most two powers of two (or 2^k - 1):
  shifts issue in parallel, total depth 2 < the 3-cycle multiply;
* ``div r, 2^k``: the 4-instruction round-toward-zero sequence
  (sign-mask, bias, add, arithmetic shift), depth 4 < the 10-cycle divide;
* ``rem r, 2^k``: divide sequence plus ``r - (q << k)``, depth 6 < 10.

Negative or zero constants are left alone.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import Imm, Operand, Reg

#: shift count that smears the sign bit across the whole register:
#: ``x >> SIGN_SMEAR_SHIFT`` (arithmetic) is all-ones for negative x and
#: zero otherwise.  The datapath is 64-bit (Op.SHRL masks with 2^64 - 1)
#: even though immediates are 32-bit, so the smear shifts by 63, not 31.
SIGN_SMEAR_SHIFT = 63


def _const_operand(ins: Instr) -> tuple[Reg, int] | None:
    a, b = ins.srcs
    if isinstance(a, Reg) and isinstance(b, Imm):
        return a, b.value
    if isinstance(b, Reg) and isinstance(a, Imm) and ins.op is Op.MUL:
        return b, a.value
    return None


def _mul_decomposition(c: int) -> list[tuple[str, int]] | None:
    """Plan for multiplying by ``c``: list of (kind, shift) where kind is
    'add' or 'sub' of ``r << shift``.  None if not profitable."""
    if c <= 0:
        return None
    bits = [k for k in range(c.bit_length()) if (c >> k) & 1]
    if len(bits) == 1:
        return [("add", bits[0])]
    if len(bits) == 2:
        return [("add", bits[0]), ("add", bits[1])]
    # 2^k - 1 pattern: (r << k) - r
    k = c.bit_length()
    if c == (1 << k) - 1:
        return [("add", k), ("sub", 0)]
    return None


def _emit_mul(func: Function, ins: Instr, src: Reg, c: int) -> list[Instr] | None:
    plan = _mul_decomposition(c)
    if plan is None:
        return None
    dest = ins.dest
    assert dest is not None
    if len(plan) == 1:
        kind, sh = plan[0]
        if sh == 0:
            return [Instr(Op.MOV, dest, (src,))]
        return [Instr(Op.SHL, dest, (src, Imm(sh)))]
    (k1, s1), (k2, s2) = plan
    assert k1 == "add"
    t1 = func.new_int_reg()

    def shifted(sh: int, d: Reg) -> Instr:
        if sh == 0:
            return Instr(Op.MOV, d, (src,))
        return Instr(Op.SHL, d, (src, Imm(sh)))

    if k2 == "add":
        t2 = func.new_int_reg()
        return [
            shifted(s1, t1),
            shifted(s2, t2),
            Instr(Op.ADD, dest, (t1, t2)),
        ]
    # (r << s1) - r
    return [shifted(s1, t1), Instr(Op.SUB, dest, (t1, src))]


def _emit_div(func: Function, dest: Reg, src: Reg, k: int) -> list[Instr]:
    """Round-toward-zero signed division by 2^k."""
    sign = func.new_int_reg()
    bias = func.new_int_reg()
    tmp = func.new_int_reg()
    return [
        Instr(Op.SHRA, sign, (src, Imm(SIGN_SMEAR_SHIFT))),
        Instr(Op.AND, bias, (sign, Imm((1 << k) - 1))),
        Instr(Op.ADD, tmp, (src, bias)),
        Instr(Op.SHRA, dest, (tmp, Imm(k))),
    ]


def _emit_rem(func: Function, dest: Reg, src: Reg, k: int) -> list[Instr]:
    q = func.new_int_reg()
    shifted = func.new_int_reg()
    out = _emit_div(func, q, src, k)
    out.append(Instr(Op.SHL, shifted, (q, Imm(k))))
    out.append(Instr(Op.SUB, dest, (src, shifted)))
    return out


def reduce_strength(func: Function, body: list[Instr]) -> int:
    """Apply strength reduction in place over a linear body.

    Returns the number of instructions reduced.  ``body`` is mutated (one
    instruction may expand to several).
    """
    count = 0
    i = 0
    while i < len(body):
        ins = body[i]
        repl: list[Instr] | None = None
        if ins.op is Op.MUL:
            co = _const_operand(ins)
            if co is not None:
                repl = _emit_mul(func, ins, co[0], co[1])
        elif ins.op in (Op.DIV, Op.REM):
            co = _const_operand(ins)
            if co is not None:
                src, c = co
                if c > 0 and c & (c - 1) == 0:
                    k = c.bit_length() - 1
                    assert ins.dest is not None
                    if k == 0:
                        repl = (
                            [Instr(Op.MOV, ins.dest, (src,))]
                            if ins.op is Op.DIV
                            else [Instr(Op.MOV, ins.dest, (Imm(0),))]
                        )
                    elif ins.op is Op.DIV:
                        repl = _emit_div(func, ins.dest, src, k)
                    else:
                        repl = _emit_rem(func, ins.dest, src, k)
        if repl is not None:
            body[i:i + 1] = repl
            i += len(repl)
            count += 1
        else:
            i += 1
    return count
