"""Side-exit compensation and rejoin re-initialization for superblock
transformations.

Renaming and the expansion transformations rewrite only the superblock.
Off-trace code (duplicated tails, unlikely arms) still uses the original
register names, so:

* when a **side exit** is taken, the original registers must be
  re-materialized from the transformed state — a *stub block* with the
  compensation assignments is spliced onto the exit edge;
* when off-trace code **rejoins** the loop header, the superblock's
  expanded state (temporary accumulators / induction registers) must be
  re-established — re-initialization code is inserted just before each
  branch back to the header.

Stubs execute only on the rarely-taken off-trace paths, mirroring the
bookkeeping code real superblock compilers emit.
"""

from __future__ import annotations

from ..ir.block import Block
from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import Label


def ensure_halt_terminated(func: Function) -> None:
    """Make falling off the current last block explicit, so new blocks can
    be appended without becoming reachable by fall-through."""
    if func.blocks and func.blocks[-1].falls_through:
        func.blocks[-1].append(Instr(Op.HALT))


def add_side_exit_stub(
    func: Function,
    branch: Instr,
    instrs: list[Instr],
    offtrace: set[str] | None = None,
    hint: str = "fix",
) -> Block:
    """Splice ``instrs`` onto the exit edge of ``branch`` via a stub block.

    The stub is appended at the end of the function and ends with a jump to
    the branch's original target, so multiple transformations stack stubs
    in last-applied-runs-first order.
    """
    assert branch.target is not None
    old_target = branch.target.name
    ensure_halt_terminated(func)
    stub = func.add_block(func.new_label(f"{old_target}.{hint}"))
    stub.extend(instrs)
    stub.append(Instr(Op.JMP, target=Label(old_target)))
    branch.target = Label(stub.label)
    if offtrace is not None:
        offtrace.add(stub.label)
    return stub


def rejoin_branches(func: Function, header: str, body: Block) -> list[tuple[Block, Instr]]:
    """All control instructions outside ``body`` that target ``header`` —
    the off-trace rejoin edges."""
    out: list[tuple[Block, Instr]] = []
    for blk in func.blocks:
        if blk is body:
            continue
        for ins in blk.instrs:
            if ins.is_control and ins.target is not None and ins.target.name == header:
                out.append((blk, ins))
    return out


def insert_rejoin_reinit(
    func: Function, header: str, body: Block, make_instrs
) -> int:
    """Insert re-initialization code before every rejoin branch.

    ``make_instrs()`` is called once per rejoin edge and must return fresh
    instruction objects.  Returns the number of edges patched.
    """
    edges = rejoin_branches(func, header, body)
    for blk, br in edges:
        idx = blk.instrs.index(br)
        for k, ins in enumerate(make_instrs()):
            blk.insert(idx + k, ins)
    return len(edges)
