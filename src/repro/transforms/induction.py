"""Induction variable expansion (paper, Figure 4 / Figure 5).

After unrolling and renaming, an induction variable appears in the
superblock as a *chain* of single-def registers stepped by a loop-invariant
amount (Figure 5(c))::

    r22i = r21i + r7i
    r23i = r22i + r7i
    r21i = r23i + r7i      # canonical: closes the loop-carried cycle

The chain is still flow dependent.  This pass makes the definitions
independent (Figure 5(d)): the chained adds are deleted, each register
becomes a self-stepping temporary incremented by ``z = k*step`` at the end
of the body, and the preheader pre-computes the staggered start values::

    preheader:  r22i = r21i + r7i ; r23i = r22i + r7i ; r71i = r7i * 3
    body:       ... uses unchanged ...
                r21i += r71i ; r22i += r71i ; r23i += r71i
                blt (...) L1

Off-trace rejoin edges re-establish the staggered registers from the
canonical value; side exits need no compensation of their own because each
chain register now *always* holds the value the original code would have
given it at every point in the body.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.liveness import liveness
from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import Imm, Operand, Reg
from ..schedule.superblock import SuperblockLoop
from .compensation import insert_rejoin_reinit


@dataclass
class InductionChain:
    """A renamed induction chain ``regs[p+1] = regs[p] + step``, closing
    with ``regs[0] = regs[k-1] + step`` (positions in ``def_positions``)."""

    regs: list[Reg]          # [canonical, v1, ..., v_{k-1}]
    step: Operand            # Imm or loop-invariant Reg
    def_positions: list[int]  # positions of the k chained adds, increasing

    @property
    def k(self) -> int:
        return len(self.def_positions)


def _add_operands(ins: Instr) -> tuple[Reg, Operand] | None:
    """For ``d = a + b`` return (reg_source, other) when exactly one source
    is a register of d's class; None otherwise."""
    if ins.op is not Op.ADD:
        return None
    a, b = ins.srcs
    if isinstance(a, Reg) and not isinstance(b, Reg):
        return a, b
    if isinstance(b, Reg) and not isinstance(a, Reg):
        return b, a
    if isinstance(a, Reg) and isinstance(b, Reg):
        # register step: disambiguate below using def counts
        return None
    return None


def find_induction_chains(body: list[Instr]) -> list[InductionChain]:
    """Detect renamed induction chains in a superblock body."""
    defs: dict[Reg, list[int]] = {}
    for i, ins in enumerate(body):
        if ins.dest is not None:
            defs.setdefault(ins.dest, []).append(i)
    single_def = {r: ps[0] for r, ps in defs.items() if len(ps) == 1}
    defined = set(defs)

    def invariant(op: Operand) -> bool:
        return isinstance(op, Imm) or (isinstance(op, Reg) and op not in defined)

    def step_of(ins: Instr, prev: Reg) -> Operand | None:
        """If ``ins`` is ``d = prev + s`` with s loop-invariant, return s."""
        if ins.op is not Op.ADD:
            return None
        a, b = ins.srcs
        if a == prev and invariant(b):
            return b
        if b == prev and invariant(a):
            return a
        return None

    chains: list[InductionChain] = []
    used: set[Reg] = set()
    # canonical register = one whose single def closes a cycle
    for c, pk in sorted(single_def.items(), key=lambda kv: kv[1]):
        if c in used or c.is_fp:
            continue
        # walk backward from the canonical def
        chain_positions = [pk]
        chain_regs = [c]
        ins = body[pk]
        step: Operand | None = None
        cur = ins
        ok = True
        while True:
            prev_candidates = [
                s for s in cur.srcs if isinstance(s, Reg) and s != cur.dest
            ]
            matched = False
            for prev in prev_candidates:
                s = step_of(cur, prev)
                if s is None:
                    continue
                if step is None:
                    step = s
                elif step != s:
                    continue
                if prev == c:
                    matched = True
                    chain_regs.append(prev)
                    break  # cycle closed at the canonical register
                if prev not in single_def or prev in used:
                    continue
                p = single_def[prev]
                if p >= chain_positions[-1]:
                    continue
                chain_positions.append(p)
                chain_regs.append(prev)
                cur = body[p]
                matched = True
                break
            if not matched:
                ok = False
                break
            if chain_regs[-1] == c and len(chain_regs) > 1:
                break
        if not ok or len(chain_positions) < 2:
            continue
        chain_positions.reverse()
        # regs in forward order: canonical first, then v1..v_{k-1}
        chain_regs = chain_regs[::-1][:-1]  # drop duplicate trailing canonical
        assert chain_regs[0] == c
        assert step is not None
        chains.append(InductionChain(chain_regs, step, chain_positions))
        used.update(chain_regs)
    return chains


def expand_inductions(sb: SuperblockLoop) -> int:
    """Apply induction variable expansion to every chain found.

    Returns the number of chains expanded.
    """
    func = sb.func
    body = sb.body.instrs
    chains = find_induction_chains(body)
    if not chains:
        return 0

    init_code: list[Instr] = []  # preheader + rejoin re-init (same code)
    tail_incs: list[Instr] = []
    delete: set[int] = set()

    for ch in chains:
        k = ch.k
        # z = k * step
        if isinstance(ch.step, Imm):
            z: Operand = Imm(k * ch.step.value)
        else:
            z = func.new_int_reg()
            init_code.append(Instr(Op.MUL, z, (ch.step, Imm(k))))
        # staggered starts: v_p = v_{p-1} + step
        for p in range(1, k):
            init_code.append(Instr(Op.ADD, ch.regs[p], (ch.regs[p - 1], ch.step)))
        # end-of-body independent increments
        for r in ch.regs:
            tail_incs.append(Instr(Op.ADD, r, (r, z)))
        delete.update(ch.def_positions)

    # rewrite the body: drop the chained adds, add the tail increments just
    # before the backedge branch
    new_body = [ins for i, ins in enumerate(body) if i not in delete]
    back = new_body.pop()  # the backedge branch
    new_body.extend(tail_incs)
    new_body.append(back)
    sb.body.instrs = new_body

    # preheader initialization
    sb.preheader.extend([ins.copy() for ins in init_code])

    # off-trace rejoins must re-establish the staggered registers (z for a
    # register step is recomputed too — it is loop-invariant, so this is
    # redundant but harmless on the rare path)
    insert_rejoin_reinit(
        func, sb.header, sb.body, lambda: [ins.copy() for ins in init_code]
    )
    return len(chains)
