"""Tree height reduction (paper, Section 2; Baer & Bovet on intermediate
code).

Arithmetic expression chains computed serially limit ILP.  This pass finds
maximal expression trees over associative/commutative operator classes
(+/- and */÷ in both int and fp domains, with the restrictions below),
collects their leaves, and re-emits a balanced computation:

* additive class: leaves carry signs; positives are combined pairwise,
  the negative sum is subtracted (a tree with no positive leaf is left
  alone);
* multiplicative fp class: each divisor is paired with a numerator so
  divisions run in parallel (Figure 7's ``F/G`` term), then all terms are
  combined pairwise;
* integer division/remainder are never reassociated (not associative).

Pairing is by *earliest ready time*: the two available terms with the
smallest completion estimates combine first, which reproduces Figure 7's
13-cycle schedule exactly.  (The paper's own implementation assumed
unit latencies — it notes this "limits its effectiveness"; pass
``unit_latency=True`` to reproduce that behaviour for the ablation.)

Internal nodes must be single-use and not observable elsewhere (not live
at side exits, the backedge, or the natural exit): ``protected`` carries
that set.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import FImm, Imm, Operand, Reg
from ..machine import MachineConfig

#: operator classes: op -> (class id, inverts_second_operand)
_ADDITIVE = {
    Op.FADD: ("f+", False),
    Op.FSUB: ("f+", True),
    Op.ADD: ("i+", False),
    Op.SUB: ("i+", True),
}
_MULTIPLICATIVE = {
    Op.FMUL: ("f*", False),
    Op.FDIV: ("f*", True),
    Op.MUL: ("i*", False),
}

_CLASS_OPS: dict[str, tuple[Op, Op | None]] = {
    # class -> (combine op, inverse op or None)
    "f+": (Op.FADD, Op.FSUB),
    "i+": (Op.ADD, Op.SUB),
    "f*": (Op.FMUL, Op.FDIV),
    "i*": (Op.MUL, None),
}


@dataclass
class _Tree:
    root_pos: int
    cls: str
    #: (operand, inverted) leaves in source order
    leaves: list[tuple[Operand, bool]]
    #: positions of all internal instructions (including the root)
    internal: list[int]


def _op_class(op: Op) -> tuple[str, bool] | None:
    if op in _ADDITIVE:
        return _ADDITIVE[op]
    if op in _MULTIPLICATIVE:
        return _MULTIPLICATIVE[op]
    return None


def _flow_asap(body: list[Instr], machine: MachineConfig) -> list[int]:
    """Cheap ASAP issue estimate using register flow dependences only."""
    ready: dict[Reg, int] = {}
    times: list[int] = []
    for ins in body:
        t = 0
        for r in ins.reg_uses():
            t = max(t, ready.get(r, 0))
        times.append(t)
        if ins.dest is not None:
            ready[ins.dest] = t + machine.latency(ins.op)
    return times


def find_trees(
    body: list[Instr], protected: set[Reg]
) -> list[_Tree]:
    """Maximal reassociable expression trees in the body."""
    use_count: dict[Reg, int] = {}
    defs: dict[Reg, list[int]] = {}
    for i, ins in enumerate(body):
        for r in ins.reg_uses():
            use_count[r] = use_count.get(r, 0) + 1
        if ins.dest is not None:
            defs.setdefault(ins.dest, []).append(i)

    def internal_ok(reg: Reg, pos: int) -> bool:
        """May the def of ``reg`` at ``pos`` be absorbed as a tree node?"""
        return (
            use_count.get(reg, 0) == 1
            and reg not in protected
            and len(defs.get(reg, ())) == 1
        )

    consumed: set[int] = set()
    trees: list[_Tree] = []
    # scan bottom-up so roots are found before their subtrees
    for i in range(len(body) - 1, -1, -1):
        if i in consumed:
            continue
        ins = body[i]
        oc = _op_class(ins.op)
        if oc is None:
            continue
        cls, _ = oc
        # i is a root if its dest is not itself absorbed into a larger tree
        # of the same class — bottom-up scanning with `consumed` handles it
        leaves: list[tuple[Operand, bool]] = []
        internal: list[int] = []

        def gather(pos: int, inverted: bool) -> None:
            node = body[pos]
            internal.append(pos)
            node_cls, _ = _op_class(node.op)
            a, b = node.srcs
            for operand, inv2 in ((a, False), (b, _op_class(node.op)[1])):
                inv = inverted ^ inv2
                sub = None
                if isinstance(operand, Reg) and operand in defs:
                    dps = defs[operand]
                    if len(dps) == 1 and dps[0] < pos and internal_ok(operand, dps[0]):
                        cand = body[dps[0]]
                        coc = _op_class(cand.op)
                        if coc is not None and coc[0] == cls:
                            # reassociating under an inverted edge is only
                            # valid for the additive classes and fp division
                            # chains; handled by sign propagation
                            sub = dps[0]
                if sub is not None:
                    gather(sub, inv)
                else:
                    leaves.append((operand, inv))

        gather(i, False)
        if len(internal) < 2 or len(leaves) < 3:
            continue
        # self-referential trees (accumulators: dest used as leaf) are
        # recurrences, not expressions — skip them
        if any(
            isinstance(op_, Reg) and op_ == ins.dest for op_, _ in leaves
        ):
            continue
        if cls in ("f*", "i*") and not any(not inv for _, inv in leaves):
            continue
        if cls in ("f+", "i+") and not any(not inv for _, inv in leaves):
            continue
        trees.append(
            _Tree(i, cls, leaves, sorted(internal))
        )
        consumed.update(internal)
    return trees


def _balance(
    func: Function,
    tree: _Tree,
    leaf_ready: dict[int, int],
    machine: MachineConfig,
    dest: Reg,
    unit_latency: bool,
) -> list[Instr]:
    """Emit the balanced computation for one tree."""
    combine_op, inverse_op = _CLASS_OPS[tree.cls]
    lat = 1 if unit_latency else machine.latency(combine_op)
    inv_lat = 1 if unit_latency else (
        machine.latency(inverse_op) if inverse_op else lat
    )
    out: list[Instr] = []

    def fresh() -> Reg:
        return func.new_reg(dest.cls)

    # (ready_time, seq, operand) heaps for plain and inverted terms
    seq = 0
    plain: list[tuple[int, int, Operand]] = []
    inverted: list[tuple[int, int, Operand]] = []
    for idx, (operand, inv) in enumerate(tree.leaves):
        t = leaf_ready.get(idx, 0)
        (inverted if inv else plain).append((t, seq, operand))
        seq += 1
    heapq.heapify(plain)
    heapq.heapify(inverted)

    if tree.cls == "f*":
        # pair each divisor with a numerator: term = n / d
        # pair each divisor with the earliest-ready numerator: the division
        # has the longest latency, so starting it as early as possible
        # minimizes the tallest pole of the final combine (Figure 7 pairs
        # G with F this way and reaches 13 cycles)
        while inverted:
            td, _, d = heapq.heappop(inverted)
            tn, _, n = heapq.heappop(plain)
            r = fresh()
            out.append(Instr(Op.FDIV, r, (n, d)))
            heapq.heappush(plain, (max(tn, td) + inv_lat, seq, r))
            seq += 1
    else:
        # additive classes: balance the negative terms separately, then
        # subtract once; multiplicative int has no inverse leaves
        if inverted:
            while len(inverted) > 1:
                t1, _, a = heapq.heappop(inverted)
                t2, _, b = heapq.heappop(inverted)
                r = fresh()
                out.append(Instr(combine_op, r, (a, b)))
                heapq.heappush(inverted, (max(t1, t2) + lat, seq, r))
                seq += 1

    # balanced combine of the plain terms
    while len(plain) > 1:
        t1, _, a = heapq.heappop(plain)
        t2, _, b = heapq.heappop(plain)
        r = fresh()
        out.append(Instr(combine_op, r, (a, b)))
        heapq.heappush(plain, (max(t1, t2) + lat, seq, r))
        seq += 1

    t_pos, _, result = plain[0]
    if inverted:
        t_neg, _, neg = inverted[0]
        assert inverse_op is not None
        out.append(Instr(inverse_op, dest, (result, neg)))
    else:
        # retarget the final combine to the tree's destination
        if out:
            out[-1].dest = dest
        else:  # single leaf — degenerate, should not happen (>=3 leaves)
            mv = Op.FMOV if dest.is_fp else Op.MOV
            out.append(Instr(mv, dest, (result,)))
    return out


def reduce_tree_height(
    func: Function,
    body: list[Instr],
    machine: MachineConfig,
    protected: set[Reg] = frozenset(),
    unit_latency: bool = False,
) -> int:
    """Apply tree height reduction in place.  Returns trees rebalanced."""
    trees = find_trees(body, protected)
    if not trees:
        return 0
    asap = _flow_asap(body, machine)
    reg_def: dict[Reg, list[int]] = {}
    for i, ins in enumerate(body):
        if ins.dest is not None:
            reg_def.setdefault(ins.dest, []).append(i)

    # Splice by instruction identity: rewriting one tree must not disturb
    # the recorded shape of the others (trees can interleave in position).
    replacements: dict[int, list[Instr]] = {}   # root instr id -> new code
    deleted: set[int] = set()                   # ids of absorbed internals
    count = 0
    for tree in trees:
        root = body[tree.root_pos]
        dest = root.dest
        assert dest is not None
        leaf_ready: dict[int, int] = {}
        for idx, (operand, _) in enumerate(tree.leaves):
            if isinstance(operand, Reg):
                dps = [p for p in reg_def.get(operand, ()) if p < tree.root_pos]
                if dps:
                    p = dps[-1]
                    leaf_ready[idx] = asap[p] + machine.latency(body[p].op)
        new_instrs = _balance(func, tree, leaf_ready, machine, dest, unit_latency)
        replacements[id(root)] = new_instrs
        deleted.update(id(body[p]) for p in tree.internal if p != tree.root_pos)
        count += 1

    rebuilt: list[Instr] = []
    for ins in body:
        if id(ins) in replacements:
            rebuilt.extend(replacements[id(ins)])
        elif id(ins) not in deleted:
            rebuilt.append(ins)
    body[:] = rebuilt
    return count
