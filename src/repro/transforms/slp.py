"""Superword-level parallelism over the unrolled superblock (Lev5).

After unrolling, renaming, and the expansion transformations, the
superblock body contains ``unroll_factor`` isomorphic copies of the
original loop body operating on adjacent memory.  This pass merges groups
of ``machine.vector_lanes`` isomorphic, independent scalar statements
into the vector instructions of :mod:`repro.ir.instructions` (Larsen &
Amarasinghe's SLP, seeded from adjacent memory references):

* **seeds** are runs of same-opcode stores whose symbolic addresses
  (:class:`repro.analysis.memdep.AddressAnalysis`, resolved through the
  preheader prologue chain) share origin terms and step by one word, plus
  accumulator-update groups (see below);
* packs **grow up the def-use chain**: an operand column whose producers
  are isomorphic single-use instructions is packed recursively — adjacent
  loads become a vector load; anything else is *gathered* into a vector
  with a ``vpack``;
* a whole connected component is accepted or rejected atomically by a
  **cost model**: the summed Table-1 latencies of the vector sequence
  (including gathers) must beat the summed latencies of the scalar
  instructions it deletes.  The model may decline; it never regresses.

The component is inserted at the *first* member position, i.e. later
members move up.  Safety therefore requires: all members in one
branch-free chunk, every external register operand defined before the
insertion point, packed dests used only inside the component, and no
may-alias memory access crossed by a moving load or store (byte-range
overlap via the size-aware :func:`repro.analysis.memdep.may_alias`).

Reductions get two shapes.  The *exact* variant packs the independent
single-update accumulators produced by accumulator expansion into one
vector accumulator (``vpackf`` in the preheader, one element-wise add in
the body, per-lane ``vextf`` into the original temporaries at the natural
exit) — each lane replays exactly one scalar chain, so results stay
bit-identical.  The *reassociating* variant packs a serial self-update
chain (accumulate declined or disabled) the same way but must re-sum the
lanes at the exit, changing fp association; such components are counted
separately (``PipelineReport.slp_reassoc``) so the differential oracle
knows to compare within tolerance.  Both run only in loops without side
exits or off-trace blocks (no compensation code is emitted).
"""

from __future__ import annotations

from bisect import bisect_left

from ..analysis.liveness import liveness
from ..analysis.memdep import AddressAnalysis, may_alias
from ..ir.instructions import Instr, Op, VECTOR_OP_FOR, make
from ..ir.operands import FImm, Imm, Reg, RegClass
from ..machine import MachineConfig
from ..pipeline import prologue_regions, protected_registers
from ..schedule.superblock import SuperblockLoop

#: element-wise ops the pass packs (scalar ops with a vector counterpart)
_PACKABLE_ALU = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV,
})
_LOADS = frozenset({Op.LD, Op.LDF})
_STORES = frozenset({Op.ST, Op.STF})
#: self-update opcodes eligible for reduction packing
_REDUCE_OPS = frozenset({Op.ADD, Op.FADD})

#: bound on pack-merging rounds per superblock (each round commits at most
#: one component, then re-analyzes the mutated body)
_MAX_ROUNDS = 64


class _Fail(Exception):
    """Candidate pack violates a safety or shape condition."""


class _Env:
    """Per-round analysis state over one superblock body."""

    def __init__(self, sb: SuperblockLoop, machine: MachineConfig,
                 live_out_exit: set[Reg]):
        self.sb = sb
        self.func = sb.func
        self.machine = machine
        self.lanes = machine.vector_lanes
        self.body = sb.body.instrs
        self.protected = protected_registers(sb, live_out_exit)
        # reduction candidates must be observable *after* the loop — a dead
        # leftover self-increment is live around the backedge (and hence
        # protected) but never live into the natural exit
        lv = liveness(sb.func, live_out_exit)
        self.exit_live: set[Reg] = (
            lv.live_in.get(sb.exit_block.label, set())
            if sb.exit_block is not None else set()
        )
        self.aa = AddressAnalysis(
            self.body, prologue_regions(sb.func, sb) or None
        )
        self.chunk_of: list[int] = []
        c = 0
        for ins in self.body:
            self.chunk_of.append(c)
            if ins.is_control:
                c += 1
        self.def_pos: dict[Reg, list[int]] = {}
        self.use_pos: dict[Reg, set[int]] = {}
        for i, ins in enumerate(self.body):
            for r in ins.reg_uses():
                self.use_pos.setdefault(r, set()).add(i)
            if ins.dest is not None:
                self.def_pos.setdefault(ins.dest, []).append(i)
        self._exprs: dict[int, object] = {}

    def expr(self, pos: int):
        e = self._exprs.get(pos)
        if e is None:
            e = self._exprs[pos] = self.aa.address_expr(pos)
        return e

    def reaching_def(self, reg: Reg, at: int) -> int:
        """Position of the definition of ``reg`` reaching position ``at``
        within the body (-1 = live into the body)."""
        ds = self.def_pos.get(reg)
        if not ds:
            return -1
        i = bisect_left(ds, at)
        return ds[i - 1] if i else -1

    def adjacent_run(self, positions: list[int]) -> bool:
        """Do the memory ops at ``positions`` (in lane order) access
        consecutive words — equal origin terms, constants stepping by 4?"""
        e0 = self.expr(positions[0])
        for j, p in enumerate(positions):
            e = self.expr(p)
            if e.terms != e0.terms or e.const != e0.const + 4 * j:
                return False
        return True


class _Pack:
    """One group of isomorphic members destined to become one vector op."""

    __slots__ = ("op", "members", "columns", "vreg")

    def __init__(self, op: Op, members: list[int]):
        self.op = op
        self.members = members
        #: per source index: ("pack", _Pack) | ("gather", [operand, ...]);
        #: memory packs carry no columns (address taken from member 0)
        self.columns: list[tuple] = []
        self.vreg: Reg | None = None


def _elem_fp(operand) -> bool:
    if isinstance(operand, Reg):
        return operand.cls is RegClass.FP
    return isinstance(operand, FImm)


def _vreg_class(fp: bool) -> RegClass:
    return RegClass.VFP if fp else RegClass.VINT


class _Builder:
    """Grows one connected component of packs from a seed, validates it
    as a unit, and (if the cost model accepts) rewrites the body."""

    def __init__(self, env: _Env):
        self.env = env
        self.packs: list[_Pack] = []   # producers precede consumers
        self.member_of: dict[int, _Pack | None] = {}
        #: every gather column created, with its consumer positions —
        #: close() checks each gathered register is defined before the
        #: component's insertion point
        self.gathers: list[tuple[list, list[int]]] = []

    # -- construction ----------------------------------------------------

    def _claim(self, positions: list[int], pack: _Pack | None) -> None:
        if len(set(positions)) != len(positions):
            raise _Fail
        for p in positions:
            if p in self.member_of:
                raise _Fail
        chunks = {self.env.chunk_of[p] for p in positions}
        if len(chunks) != 1:
            raise _Fail
        for p in positions:
            self.member_of[p] = pack

    def _check_dests(self, positions: list[int], consumers: list[int]) -> None:
        """Each member's dest must be single-def, unobservable outside the
        component, and consumed only by its lane's consumer."""
        env = self.env
        for p, cpos in zip(positions, consumers):
            d = env.body[p].dest
            if d is None or d in env.protected:
                raise _Fail
            if env.def_pos.get(d) != [p]:
                raise _Fail
            if env.use_pos.get(d, set()) != {cpos}:
                raise _Fail

    def build_ops(self, positions: list[int], consumers: list[int]) -> _Pack:
        """Pack the isomorphic producers at ``positions`` (lane order),
        recursing into their operand columns."""
        env = self.env
        ops = {env.body[p].op for p in positions}
        if len(ops) != 1:
            raise _Fail
        op = ops.pop()
        self._check_dests(positions, consumers)
        pack = _Pack(op, list(positions))
        if op in _LOADS:
            if not env.adjacent_run(positions):
                raise _Fail
            self._claim(positions, pack)
            self.packs.append(pack)
            return pack
        if op not in _PACKABLE_ALU:
            raise _Fail
        self._claim(positions, pack)
        for m in range(len(env.body[positions[0]].srcs)):
            column = [env.body[p].srcs[m] for p in positions]
            pack.columns.append(self._resolve_column(column, positions))
        self.packs.append(pack)
        return pack

    def _resolve_column(self, column: list, consumers: list[int]) -> tuple:
        """Turn one operand column into a producer pack or a gather."""
        env = self.env
        if all(isinstance(o, Reg) for o in column):
            if any(o.is_vector for o in column):
                raise _Fail
            qs = [env.reaching_def(o, c) for o, c in zip(column, consumers)]
            if all(q >= 0 for q in qs):
                mark = (len(self.packs), dict(self.member_of),
                        len(self.gathers))
                try:
                    return ("pack", self.build_ops(qs, consumers))
                except _Fail:
                    del self.packs[mark[0]:]
                    self.member_of = mark[1]
                    del self.gathers[mark[2]:]
        if not all(isinstance(o, (Reg, Imm, FImm)) for o in column):
            raise _Fail
        self.gathers.append((column, list(consumers)))
        return ("gather", column)

    def build_store_root(self, positions: list[int]) -> None:
        """Seed the component from an adjacent run of scalar stores."""
        env = self.env
        op = env.body[positions[0]].op
        pack = _Pack(op, list(positions))
        self._claim(positions, pack)
        if not env.adjacent_run(positions):
            raise _Fail
        column = [env.body[p].srcs[2] for p in positions]
        pack.columns.append(self._resolve_column(column, positions))
        self.packs.append(pack)

    def mark_deleted(self, positions: list[int]) -> None:
        """Claim non-pack members (reduction updates) for deletion."""
        self._claim(positions, None)

    # -- component validation --------------------------------------------

    def close(self) -> None:
        """Validate the closed component for insertion at its first member
        position."""
        env = self.env
        positions = sorted(self.member_of)
        p_min = positions[0]
        if len({env.chunk_of[p] for p in positions}) != 1:
            raise _Fail
        # external register operands must be defined before the insertion
        # point: a def inside [p_min, member) would be crossed by the move
        for pack in self.packs:
            if pack.op in _LOADS or pack.op in _STORES:
                p0 = pack.members[0]
                for s in env.body[p0].srcs[:2]:
                    if isinstance(s, Reg) and env.reaching_def(s, p0) >= p_min:
                        raise _Fail
        for column, consumers in self.gathers:
            for opnd, cpos in zip(column, consumers):
                if (isinstance(opnd, Reg)
                        and env.reaching_def(opnd, cpos) >= p_min):
                    raise _Fail
        # memory safety for the upward moves
        packed_stores = [
            (p, env.expr(p)) for pack in self.packs if pack.op in _STORES
            for p in pack.members
        ]
        crossed = [
            q for q in range(p_min, positions[-1] + 1)
            if q not in self.member_of and env.body[q].is_mem
        ]
        for pack in self.packs:
            if pack.op in _LOADS:
                for p in pack.members:
                    e = env.expr(p)
                    for q in crossed:
                        if (q < p and env.body[q].is_store and may_alias(
                                env.expr(q), e, env.body[q].mem_words, 1)):
                            raise _Fail
                    for q, eq in packed_stores:
                        if q < p and may_alias(eq, e):
                            raise _Fail
            elif pack.op in _STORES:
                for p in pack.members:
                    e = env.expr(p)
                    for q in crossed:
                        if q < p and may_alias(env.expr(q), e,
                                               env.body[q].mem_words, 1):
                            raise _Fail

    # -- emission ---------------------------------------------------------

    def _gather(self, column: list, out: list[Instr]) -> Reg:
        fp = any(_elem_fp(o) for o in column)
        vreg = self.env.func.new_reg(_vreg_class(fp))
        out.append(make(Op.VPACKF if fp else Op.VPACK, vreg,
                        tuple(column), lanes=len(column)))
        return vreg

    def _column_value(self, col: tuple, out: list[Instr]) -> Reg:
        if col[0] == "pack":
            assert col[1].vreg is not None
            return col[1].vreg
        return self._gather(col[1], out)

    def emit(self) -> list[Instr]:
        """The vector sequence replacing the packed members, in dependence
        order (``self.packs`` lists producers before consumers)."""
        env = self.env
        out: list[Instr] = []
        for pack in self.packs:
            k = len(pack.members)
            first = env.body[pack.members[0]]
            vop = VECTOR_OP_FOR[pack.op]
            if pack.op in _LOADS:
                pack.vreg = env.func.new_reg(
                    _vreg_class(pack.op is Op.LDF))
                out.append(make(vop, pack.vreg, first.srcs[:2], lanes=k))
            elif pack.op in _STORES:
                vval = self._column_value(pack.columns[0], out)
                out.append(make(vop, None, first.srcs[:2] + (vval,), lanes=k))
            else:
                srcs = tuple(
                    self._column_value(col, out) for col in pack.columns
                )
                pack.vreg = env.func.new_reg(
                    _vreg_class(first.dest.cls is RegClass.FP))
                out.append(make(vop, pack.vreg, srcs, lanes=k))
        return out

    def net_savings(self, emitted: list[Instr],
                    extra: list[Instr] = ()) -> int:
        """Summed scalar latency deleted minus summed vector latency added
        (body instructions only — preheader/exit code runs once per loop
        entry, not per iteration, and is not counted against the pack)."""
        env = self.env
        scalar = sum(env.machine.latency(env.body[p].op)
                     for p in self.member_of)
        vector = sum(env.machine.latency(i.op) for i in emitted)
        vector += sum(env.machine.latency(i.op) for i in extra)
        return scalar - vector

    def apply(self, emitted: list[Instr]) -> None:
        body = self.env.body
        p_min = min(self.member_of)
        self.env.sb.body.instrs = (
            body[:p_min] + emitted
            + [ins for q, ins in enumerate(body) if q >= p_min
               and q not in self.member_of]
        )


# ---------------------------------------------------------------------------
# seeds
# ---------------------------------------------------------------------------


def _store_seeds(env: _Env) -> list[list[int]]:
    """Runs of ``lanes`` same-opcode scalar stores to consecutive words,
    grouped by (opcode, chunk, address origin terms), in body order."""
    groups: dict[tuple, list[tuple[int, int]]] = {}
    for p, ins in enumerate(env.body):
        if ins.op in _STORES:
            e = env.expr(p)
            key = (ins.op, env.chunk_of[p], e.terms)
            groups.setdefault(key, []).append((e.const, p))
    seeds = []
    for lst in groups.values():
        lst.sort()
        i = 0
        while i + env.lanes <= len(lst):
            window = lst[i:i + env.lanes]
            if all(window[j][0] == window[0][0] + 4 * j
                   for j in range(env.lanes)):
                seeds.append([p for _, p in window])
                i += env.lanes
            else:
                i += 1
    return seeds


def _self_update(ins: Instr) -> Reg | None:
    """For ``d = d op t`` return d, else None (``d op d`` is excluded —
    the other operand must be distinct from the accumulator)."""
    d = ins.dest
    if d is None or ins.op not in _REDUCE_OPS:
        return None
    a, b = ins.srcs
    if (a == d) == (b == d):
        return None
    return d


def _other_operand(ins: Instr):
    a, b = ins.srcs
    return b if a == ins.dest else a


def _reduction_seeds(env: _Env) -> list[tuple[str, list[int]]]:
    """Accumulator-update groups: ``("exact", updates)`` packs ``lanes``
    independent single-update accumulators (one lane each, bit-identical);
    ``("reassoc", updates)`` packs one serial self-update chain whose
    length is a multiple of ``lanes`` (changes fp association)."""
    seeds: list[tuple[str, list[int]]] = []
    singles: list[int] = []
    seen_chain: set[Reg] = set()
    for p, ins in enumerate(env.body):
        d = _self_update(ins)
        if d is None or d in seen_chain or d not in env.exit_live:
            continue
        defs = env.def_pos.get(d, [])
        if env.use_pos.get(d, set()) != set(defs):
            continue
        if defs == [p]:
            singles.append(p)
        elif defs[0] == p and len(defs) % env.lanes == 0:
            # a serial chain: every def must be a self-update of d with the
            # same opcode, all in one chunk
            if all(_self_update(env.body[q]) == d
                   and env.body[q].op is ins.op
                   and env.chunk_of[q] == env.chunk_of[p] for q in defs):
                seen_chain.add(d)
                seeds.append(("reassoc", list(defs)))
    i = 0
    while i + env.lanes <= len(singles):
        window = singles[i:i + env.lanes]
        first = env.body[window[0]]
        if all(env.body[q].op is first.op
               and env.chunk_of[q] == env.chunk_of[window[0]]
               for q in window):
            seeds.insert(0, ("exact", window))
            i += env.lanes
        else:
            i += 1
    return seeds


# ---------------------------------------------------------------------------
# component drivers
# ---------------------------------------------------------------------------


def _try_store_component(env: _Env, seed: list[int]) -> bool:
    b = _Builder(env)
    try:
        b.build_store_root(seed)
        b.close()
    except _Fail:
        return False
    emitted = b.emit()
    if b.net_savings(emitted) <= 0:
        return False
    b.apply(emitted)
    return True


def _try_reduction_component(env: _Env, kind: str,
                             updates: list[int]) -> bool:
    sb = env.sb
    if sb.offtrace or sb.side_exit_positions() or sb.exit_block is None:
        return False
    body = env.body
    first = body[updates[0]]
    accs = [_self_update(body[p]) for p in updates]
    fp = first.op is Op.FADD
    lanes = env.lanes
    groups = [updates[i:i + lanes] for i in range(0, len(updates), lanes)]

    b = _Builder(env)
    try:
        b.mark_deleted(updates)
        columns = [
            b._resolve_column([_other_operand(body[p]) for p in grp], grp)
            for grp in groups
        ]
        b.close()
    except _Fail:
        return False

    vacc = env.func.new_reg(_vreg_class(fp))
    vadd = Op.VFADD if fp else Op.VADD
    emitted = b.emit()
    for col in columns:
        vt = b._column_value(col, emitted)
        emitted.append(make(vadd, vacc, (vacc, vt), lanes=lanes))
    if b.net_savings(emitted) <= 0:
        return False

    ident = FImm(0.0) if fp else Imm(0)
    vpack = Op.VPACKF if fp else Op.VPACK
    vext = Op.VEXTF if fp else Op.VEXT
    if kind == "exact":
        init = tuple(accs)
        exit_code = [
            make(vext, accs[j], (vacc, Imm(j)), lanes=lanes)
            for j in range(lanes)
        ]
    else:
        # one serial chain on accs[0]: lane 0 starts from the carried
        # value, the rest from the additive identity; the exit re-sums
        acc = accs[0]
        init = (acc,) + (ident,) * (lanes - 1)
        temps = [env.func.new_reg(acc.cls) for _ in range(lanes)]
        exit_code = [
            make(vext, temps[j], (vacc, Imm(j)), lanes=lanes)
            for j in range(lanes)
        ]
        exit_code.append(Instr(first.op, acc, (temps[0], temps[1])))
        for t in temps[2:]:
            exit_code.append(Instr(first.op, acc, (acc, t)))

    b.apply(emitted)
    sb.preheader.extend([make(vpack, vacc, init, lanes=lanes)])
    for kk, ins in enumerate(exit_code):
        sb.exit_block.insert(kk, ins)
    return True


def vectorize_superblock(
    sb: SuperblockLoop,
    machine: MachineConfig,
    live_out_exit: set[Reg],
) -> tuple[int, int]:
    """Pack-merge the superblock body into vector instructions.

    Returns ``(components, reassociated)``: accepted connected components
    and how many of them reassociated an fp reduction.  A machine with
    ``vector_lanes < 2`` disables the pass entirely.
    """
    if machine.vector_lanes < 2:
        return 0, 0
    components = 0
    reassoc = 0
    for _ in range(_MAX_ROUNDS):
        env = _Env(sb, machine, live_out_exit)
        committed = False
        for seed in _store_seeds(env):
            if _try_store_component(env, seed):
                committed = True
                break
        if not committed:
            for kind, updates in _reduction_seeds(env):
                if _try_reduction_component(env, kind, updates):
                    committed = True
                    if kind == "reassoc":
                        reassoc += 1
                    break
        if not committed:
            break
        components += 1
    return components, reassoc
