"""Accumulator variable expansion (paper, Figure 2 / Figure 3).

Implements the Figure 2 algorithm on a superblock body: a register whose
every definition is an increment/decrement (or multiplicative update) and
which is referenced only by those updates is split into k temporary
accumulators, one per update; the temporaries are summed back into the
original register at every loop exit.

This transformation reassociates the reduction, which is exactly the
paper's intent (it changes floating-point rounding; the workloads tolerate
that, as the benchmark suite's checkers do).
"""

from __future__ import annotations

from ..analysis.loopvars import AccumulatorInfo, find_accumulators
from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import FImm, Imm, Reg
from ..schedule.superblock import SuperblockLoop
from .compensation import add_side_exit_stub, insert_rejoin_reinit


def _identity_const(reg: Reg, kind: str):
    if reg.is_fp:
        return FImm(0.0 if kind == "add" else 1.0)
    return Imm(0 if kind == "add" else 1)


def _mov(reg: Reg, src) -> Instr:
    return Instr(Op.FMOV if reg.is_fp else Op.MOV, reg, (src,))


def _combine_op(reg: Reg, kind: str) -> Op:
    if kind == "add":
        return Op.FADD if reg.is_fp else Op.ADD
    return Op.FMUL if reg.is_fp else Op.MUL


def _combine_chain(dest: Reg, temps: list[Reg], kind: str) -> list[Instr]:
    """dest = temps[0] op temps[1] op ... as a serial chain."""
    op = _combine_op(dest, kind)
    out = [Instr(op, dest, (temps[0], temps[1]))]
    for t in temps[2:]:
        out.append(Instr(op, dest, (dest, t)))
    return out


def expand_accumulators(sb: SuperblockLoop) -> int:
    """Apply accumulator expansion to every candidate; returns the count."""
    func = sb.func
    body = sb.body.instrs
    accs = find_accumulators(body)
    if not accs:
        return 0

    init_code: list[Instr] = []       # preheader + rejoin re-init
    exit_code: list[Instr] = []       # natural-exit combine
    all_temps: dict[Reg, tuple[list[Reg], str]] = {}

    for acc in accs:
        k = len(acc.updates)
        temps = [func.new_reg(acc.reg.cls) for _ in range(k)]
        all_temps[acc.reg] = (temps, acc.kind)
        # step 3 of Figure 2: first temp takes V's value, the rest identity
        init_code.append(_mov(temps[0], acc.reg))
        ident = _identity_const(acc.reg, acc.kind)
        for t in temps[1:]:
            init_code.append(_mov(t, ident))
        # step 4: each update uses its own temporary
        for t, pos in zip(temps, acc.updates):
            ins = body[pos]
            ins.replace_uses({acc.reg: t})
            ins.dest = t
        # step 5: summation at loop exits
        exit_code.extend(_combine_chain(acc.reg, temps, acc.kind))

    sb.preheader.extend([i.copy() for i in init_code])
    assert sb.exit_block is not None
    for kk, ins in enumerate(exit_code):
        sb.exit_block.insert(kk, ins.copy())

    # side exits leave mid-body: the original accumulator must be
    # re-materialized as the sum of the temporaries
    for pos in sb.side_exit_positions():
        br = body[pos]
        comp: list[Instr] = []
        for reg, (temps, kind) in all_temps.items():
            comp.extend(_combine_chain(reg, temps, kind))
        add_side_exit_stub(func, br, comp, sb.offtrace, hint="acc")

    # off-trace rejoins: re-split the accumulator into the temporaries
    insert_rejoin_reinit(
        func, sb.header, sb.body, lambda: [i.copy() for i in init_code]
    )
    return len(accs)
