"""repro.schedule — superblock formation and list scheduling."""

from .listsched import Schedule, list_schedule
from .pipelining import PipelineBounds, compute_bounds
from .superblock import (
    FormationError,
    SuperblockLoop,
    find_inner_superblock_loop,
    form_superblock,
    merge_trace,
    select_trace,
    tail_duplicate,
)

__all__ = [
    "Schedule", "list_schedule",
    "PipelineBounds", "compute_bounds",
    "FormationError", "SuperblockLoop", "find_inner_superblock_loop",
    "form_superblock", "merge_trace", "select_trace", "tail_duplicate",
]
