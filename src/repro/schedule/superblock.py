"""Superblock formation for inner loops.

Superblock scheduling (Hwu et al., the paper's code generation strategy)
schedules a *superblock*: a single-entry, multiple-exit straight-line code
region formed from the most likely execution trace.  For an inner loop we:

1. select the likely trace from the loop header to the latch, following
   branch probabilities (``Instr.prob``);
2. perform **tail duplication**: every trace block with a side entrance
   (an in-edge that is not the trace edge from its trace predecessor) is
   duplicated, together with all following trace blocks, and the side
   entrances are retargeted into the duplicate chain — so the trace becomes
   single-entry;
3. merge the trace blocks into one block.  Conditional branches between
   consecutive trace blocks are flipped so the trace falls through and
   off-trace targets become *side exits*.

The result is a :class:`SuperblockLoop`: the loop body is one superblock
whose side exits lead to rarely-executed off-trace blocks, each of which
finishes the current iteration and jumps back to the header.

This runs *after* loop unrolling (the trace then covers all unrolled
iterations) and *before* register renaming and the expansion
transformations, which operate on the superblock's instruction list and
patch side exits with compensation code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loopvars import CountedLoop
from ..ir.block import Block
from ..ir.function import Function
from ..ir.instructions import Instr, NEGATED_BRANCH, Op
from ..ir.loop import Loop, ensure_preheader, find_loops
from ..ir.operands import Label, Reg


class FormationError(RuntimeError):
    pass


@dataclass
class SuperblockLoop:
    """An inner loop whose body is a single superblock."""

    func: Function
    body: Block        # the superblock; its label is the loop header
    preheader: Block
    counted: CountedLoop | None
    #: labels of the off-trace blocks (duplicated tails, unlikely arms)
    offtrace: set[str] = field(default_factory=set)
    #: natural-exit block, reached only by falling out of the loop; the
    #: expansion transformations place their exit fix-up code here
    exit_block: Block | None = None

    @property
    def header(self) -> str:
        return self.body.label

    def side_exit_positions(self) -> list[int]:
        """Positions of side-exit branches within the body (all control
        instructions except the final backedge branch)."""
        return [
            i for i, ins in enumerate(self.body.instrs[:-1]) if ins.is_control
        ]

    @property
    def backedge(self) -> Instr:
        term = self.body.instrs[-1]
        if not term.is_branch or term.target is None or term.target.name != self.body.label:
            raise FormationError(
                f"superblock {self.body.label} does not end with its backedge"
            )
        return term


def _likely_successor(func: Function, blk: Block, loop: Loop) -> str:
    """Pick the more likely successor of ``blk`` that stays in the loop."""
    term = blk.terminator
    ft = func.fallthrough_succ(blk)
    if term is not None and term.op is Op.JMP:
        tgt = term.target.name
        if tgt not in loop.blocks:
            raise FormationError(f"trace dead-ends at {blk.label}")
        return tgt
    if term is None or not term.is_branch:
        if ft is None or ft not in loop.blocks:
            raise FormationError(f"trace dead-ends at {blk.label}")
        return ft
    tgt = term.target.name
    p = term.prob if term.prob is not None else 0.5
    cands: list[tuple[float, str]] = []
    if tgt in loop.blocks:
        cands.append((p, tgt))
    if ft is not None and ft in loop.blocks:
        cands.append((1.0 - p, ft))
    if not cands:
        raise FormationError(f"no in-loop successor from {blk.label}")
    # prefer the higher-probability edge; break ties toward fall-through
    cands.sort(key=lambda c: c[0], reverse=True)
    if len(cands) == 2 and cands[0][0] == cands[1][0] and ft is not None:
        return ft
    return cands[0][1]


def select_trace(func: Function, loop: Loop) -> list[str]:
    """Greedy likely path from header to latch (inclusive)."""
    if len(loop.latches) != 1:
        raise FormationError(f"loop {loop.header} has {len(loop.latches)} latches")
    latch = loop.latches[0]
    trace = [loop.header]
    seen = {loop.header}
    cur = loop.header
    bm = func.block_map()
    while cur != latch:
        nxt = _likely_successor(func, bm[cur], loop)
        if nxt in seen:
            raise FormationError(f"trace revisits {nxt}")
        trace.append(nxt)
        seen.add(nxt)
        cur = nxt
        if len(trace) > len(loop.blocks):
            raise FormationError("trace exceeds loop size")
    return trace


def tail_duplicate(func: Function, loop: Loop, trace: list[str]) -> set[str]:
    """Remove side entrances into the trace by duplicating trace suffixes.

    Side entrances are *edges*, not just predecessors: a skip branch inside
    ``trace[i-1]`` that jumps over its own tail to ``trace[i]`` (a triangle
    ``IF``) is a side entrance even though the block is the trace
    predecessor.  The only legitimate entrance into ``trace[i]`` is the
    *final* control transfer of ``trace[i-1]`` (fall-through, trailing
    jump, or terminator branch).

    Returns the labels of newly created duplicate blocks.
    """
    bm = func.block_map()
    tset = set(trace)

    # normalize: every non-trace loop block transfers control explicitly,
    # so fall-through side entrances become retargetable jumps
    for lab in loop.blocks:
        if lab not in tset:
            blk = bm[lab]
            if blk.falls_through:
                func.ensure_fallthrough_jump(blk)

    def entrance_branches(i: int) -> list[Instr]:
        """Side-entrance branch instructions into trace[i]."""
        target = trace[i]
        legit_pred = trace[i - 1]
        out: list[Instr] = []
        for blk in func.blocks:
            for pos, ins in enumerate(blk.instrs):
                if ins.target is None or ins.target.name != target:
                    continue
                is_final = pos == len(blk.instrs) - 1
                if blk.label == legit_pred and is_final:
                    continue  # the trace edge itself
                if blk.label not in loop.blocks:
                    continue  # entries from outside the loop target the
                    # header only (i >= 1 excludes it)
                out.append(ins)
            # fall-through side entrance from a block other than the trace
            # predecessor would be a layout accident; normalization above
            # prevents it for loop blocks
            if (
                blk.label in loop.blocks
                and blk.label != legit_pred
                and func.fallthrough_succ(blk) == target
            ):
                raise FormationError(
                    f"fall-through side entrance {blk.label} -> {target}"
                )
        return out

    i0 = None
    for i in range(1, len(trace)):
        if entrance_branches(i):
            i0 = i
            break
    if i0 is None:
        return set()

    dup_label: dict[str, str] = {}
    new_labels: set[str] = set()
    for lab in trace[i0:]:
        dup_label[lab] = func.new_label(f"{lab}.dup")

    # collect the entrance branches BEFORE creating duplicates (duplicates
    # contain copies of these branches, which must keep their own targets
    # remapped separately)
    entrances = {i: entrance_branches(i) for i in range(i0, len(trace))}

    # create duplicates in order, appended at the end of the function
    for k, lab in enumerate(trace[i0:], start=i0):
        src = bm[lab]
        dup = func.add_block(dup_label[lab])
        new_labels.add(dup.label)
        for ins in src.instrs:
            dup.append(ins.copy())
        # the duplicate of a block that fell through in the trace must jump
        # explicitly (duplicates live at the end of the function)
        ft = func.fallthrough_succ(src)
        if src.falls_through and ft is not None:
            dup.append(Instr(Op.JMP, target=Label(ft)))
        # retarget intra-dup edges: any target that names a duplicated trace
        # block (other than a backedge to the header) moves into the chain
        for ins in dup.instrs:
            if (
                ins.target is not None
                and ins.target.name in dup_label
                and ins.target.name != trace[0]
            ):
                ins.target = Label(dup_label[ins.target.name])

    # retarget the recorded side entrances into the duplicate chain
    for i, branches in entrances.items():
        for ins in branches:
            ins.target = Label(dup_label[trace[i]])
    return new_labels


def merge_trace(func: Function, loop: Loop, trace: list[str]) -> Block:
    """Concatenate the (now single-entry) trace into one superblock.

    Fall-throughs are made explicit first, so merging is purely textual:
    each trace block then ends with either ``jmp X`` or
    ``<cond-branch T>; jmp F``.  A conditional branch *into* the trace is
    flipped so the trace continues by fall-through and the off-trace arm
    becomes a side exit.
    """
    bm = func.block_map()
    for lab in trace:
        func.ensure_fallthrough_jump(bm[lab])
    head = bm[trace[0]]
    for nxt_label in trace[1:]:
        nxt = bm[nxt_label]
        term = head.instrs[-1] if head.instrs else None
        if term is None or term.op is not Op.JMP:
            raise FormationError(f"{head.label} lacks explicit terminator")
        cond = head.instrs[-2] if len(head.instrs) >= 2 else None
        if term.target.name == nxt_label:
            head.instrs.pop()  # continue by concatenation
        elif cond is not None and cond.is_branch and cond.target.name == nxt_label:
            # flip: branch goes off-trace (side exit), trace continues
            cond.op = NEGATED_BRANCH[cond.op]
            if cond.prob is not None:
                cond.prob = 1.0 - cond.prob
            cond.target, term.target = term.target, cond.target
            head.instrs.pop()
        else:
            raise FormationError(
                f"{head.label} does not transfer to trace successor {nxt_label}"
            )
        head.extend(nxt.instrs)
        nxt.instrs = []
        func.remove_block(nxt_label)
    return head


def form_superblock(
    func: Function,
    loop: Loop,
    counted: CountedLoop | None = None,
) -> SuperblockLoop:
    """Convert an inner loop into superblock form (trace + duplication +
    merge) and return its descriptor."""
    preheader = ensure_preheader(func, loop)
    trace = select_trace(func, loop)
    dups = tail_duplicate(func, loop, trace)
    offtrace = (loop.blocks - set(trace)) | dups
    body = merge_trace(func, loop, trace)

    # The merged body ends with [backedge-branch, jmp exit].  Off-trace
    # blocks still sitting between the body and the exit are moved to the
    # end of the function (they all end with explicit control), after which
    # the trailing jump is redundant and is dropped.
    term = body.instrs[-1] if body.instrs else None
    if term is None or term.op is not Op.JMP:
        raise FormationError(f"superblock {body.label} lacks explicit exit jump")
    exit_label = term.target.name
    back = body.instrs[-2] if len(body.instrs) >= 2 else None
    if back is None or not back.is_branch or back.target.name != body.label:
        raise FormationError(f"superblock {body.label} missing backedge branch")

    if offtrace:
        from ..transforms.compensation import ensure_halt_terminated

        ensure_halt_terminated(func)
        moved = [b for b in func.blocks if b.label in offtrace]
        for b in moved:
            func.blocks.remove(b)
        func.blocks.extend(moved)

    # dedicated natural-exit block for transformation fix-up code: reached
    # only when the loop actually ran and exited over the backedge test
    body.instrs.pop()  # drop 'jmp exit'
    exit_block = func.add_block(
        func.new_label(f"{body.label}.post"), index=func.block_index(body.label) + 1
    )
    if func.fallthrough_succ(exit_block) != exit_label:
        exit_block.append(Instr(Op.JMP, target=Label(exit_label)))

    return SuperblockLoop(func, body, preheader, counted, offtrace, exit_block)


def find_inner_superblock_loop(
    func: Function, counted: CountedLoop | None = None, header: str | None = None
) -> SuperblockLoop:
    """Locate the innermost loop (optionally by header label) and form its
    superblock."""
    loops = [l for l in find_loops(func) if l.is_innermost]
    if header is not None:
        loops = [l for l in loops if l.header == header]
    if len(loops) != 1:
        raise FormationError(
            f"expected exactly one innermost loop, found {[l.header for l in loops]}"
        )
    return form_superblock(func, loops[0], counted)
