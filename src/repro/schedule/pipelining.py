"""Software-pipelining bounds: the study the paper deferred.

    "Software pipelining is an effective scheduling method to overlap the
    execution of loop iterations ... These methods also benefit from
    dependence elimination but the effect of the transformations on these
    methods is not evaluated in this study."  (paper, Section 1.1)

This module evaluates it.  For a superblock loop body we compute the
classical modulo-scheduling lower bounds on the initiation interval (II):

* **ResMII** — resource bound: instructions per iteration divided by the
  issue width, and branches per iteration against the single branch slot;
* **RecMII** — recurrence bound: the maximum over dependence cycles of
  (total latency / total iteration distance), over a graph containing the
  intra-iteration dependences plus the cross-iteration (loop-carried)
  register and memory dependences.

``MII = max(ResMII, RecMII)`` is what an ideal modulo scheduler could
reach; comparing it with the initiation interval our acyclic superblock
schedule actually achieves quantifies (a) how much headroom software
pipelining would add, and (b) how the paper's transformations shrink
RecMII — accumulator expansion literally divides a reduction's recurrence
latency by the unroll factor.

RecMII is computed exactly by binary search on integer II with a
positive-cycle test (Bellman-Ford style relaxation on edge weights
``latency - II * distance``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..analysis.depgraph import build_depgraph
from ..analysis.memdep import AddressAnalysis
from ..ir.instructions import Instr, Kind
from ..ir.operands import Reg
from ..machine import MachineConfig


@dataclass
class PipelineBounds:
    """Modulo-scheduling bounds for one loop body (one unrolled pass)."""

    res_mii: int
    rec_mii: int
    n_instrs: int
    #: iterations represented by the body (the unroll factor)
    iterations: int

    @property
    def mii(self) -> int:
        return max(self.res_mii, self.rec_mii, 1)

    @property
    def mii_per_iteration(self) -> float:
        return self.mii / self.iterations


@dataclass
class _Edge:
    src: int
    dst: int
    latency: int
    distance: int  # iterations crossed (0 = same pass)


def _cross_register_edges(body: list[Instr], machine: MachineConfig) -> list[_Edge]:
    """Loop-carried register flow: the last definition of a register feeds
    next pass's uses that appear before any definition (upward-exposed)."""
    first_def: dict[Reg, int] = {}
    last_def: dict[Reg, int] = {}
    for i, ins in enumerate(body):
        d = ins.dest
        if d is not None:
            first_def.setdefault(d, i)
            last_def[d] = i
    edges: list[_Edge] = []
    for j, ins in enumerate(body):
        for r in ins.reg_uses():
            if r in last_def and j <= first_def.get(r, -1):
                i = last_def[r]
                edges.append(_Edge(i, j, machine.latency(body[i].op), 1))
    return edges


def _cross_memory_edges(
    body: list[Instr],
    machine: MachineConfig,
    prologue: list[Instr] | None,
) -> list[_Edge]:
    """Loop-carried memory dependences with their iteration distances.

    An address in a counted loop advances by a constant per pass (the
    symbolic ``('pass', '#imm')`` term of the resolved expression).  Two
    accesses at ``base + c1 + p*adv`` and ``base + c2 + p*adv`` collide
    across ``d = (c1 - c2) / adv`` passes; unresolvable pairs are assumed
    to collide at distance 1 (conservative for RecMII).
    """
    mem = [i for i, ins in enumerate(body) if ins.is_mem]
    if not mem:
        return []
    aa = AddressAnalysis(body, prologue)
    exprs = {i: aa.address_expr(i) for i in mem}

    def pass_advance(terms) -> tuple[int | None, tuple]:
        adv = 0
        rest = []
        for k, c in terms:
            if isinstance(k, tuple) and k and k[0] == "pass":
                if k[1] == "#imm":
                    adv = c
                else:
                    return None, ()  # register-stride advance: unknown
            else:
                rest.append((k, c))
        return adv, tuple(rest)

    edges: list[_Edge] = []
    for a in mem:
        for b in mem:
            if a == b:
                continue
            ia, ib = body[a], body[b]
            if not (ia.is_store or ib.is_store):
                continue
            ea, eb = exprs[a], exprs[b]
            adv_a, rest_a = pass_advance(ea.terms)
            adv_b, rest_b = pass_advance(eb.terms)
            lat = machine.latency(ia.op)
            if adv_a is None or adv_b is None or rest_a != rest_b or adv_a != adv_b:
                # unknown relation: conservative distance-1 collision
                edges.append(_Edge(a, b, lat, 1))
                continue
            if adv_a == 0:
                if ea.const == eb.const:
                    edges.append(_Edge(a, b, lat, 1))
                continue
            # a's access at pass p hits b's at pass p+d: d = (c_a - c_b)/adv
            delta = ea.const - eb.const
            if delta % adv_a == 0:
                d = delta // adv_a
                if d >= 1:
                    edges.append(_Edge(a, b, lat, d))
    return edges


def _has_positive_cycle(n: int, edges: list[_Edge], ii: int) -> bool:
    """Is there a cycle with total (latency - ii*distance) > 0?"""
    dist = [0.0] * n
    # Bellman-Ford with n rounds; a further improving round implies a
    # positive cycle under 'longest path' relaxation
    for round_ in range(n + 1):
        changed = False
        for e in edges:
            w = e.latency - ii * e.distance
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                changed = True
        if not changed:
            return False
    return True


def compute_bounds(
    body: list[Instr],
    machine: MachineConfig,
    iterations: int = 1,
    prologue: list[Instr] | None = None,
    doall: bool = False,
) -> PipelineBounds:
    """Modulo-scheduling lower bounds for one superblock body.

    ``iterations`` is the unroll factor the body represents; ``doall``
    suppresses cross-iteration memory dependences (the KAP classification,
    exactly as the scheduler uses it).
    """
    n = len(body)
    width = machine.issue_width if machine.issue_width > 0 else 1 << 30
    n_branch = sum(1 for ins in body if ins.kind is Kind.BRANCH)
    res_mii = max(
        math.ceil(n / width),
        math.ceil(n_branch / machine.branch_slots),
        1,
    )

    g = build_depgraph(body, machine, prologue=prologue, doall=doall)
    edges = [
        _Edge(i, j, w, 0)
        for i in range(n)
        for j, w in g.succs[i]
    ]
    edges.extend(_cross_register_edges(body, machine))
    if not doall:
        edges.extend(_cross_memory_edges(body, machine, prologue))

    # binary search the smallest integer II with no positive cycle
    lo, hi = 1, max((e.latency for e in edges), default=1) * max(n, 1)
    cyclic = [e for e in edges if e.distance >= 1]
    if not cyclic:
        rec_mii = 1
    else:
        while lo < hi:
            mid = (lo + hi) // 2
            if _has_positive_cycle(n, edges, mid):
                lo = mid + 1
            else:
                hi = mid
        rec_mii = lo
    return PipelineBounds(res_mii, rec_mii, n, iterations)
