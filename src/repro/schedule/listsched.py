"""Latency-weighted list scheduling of a linear region (superblock/block).

Implements the issue model shared with the simulator: up to ``issue_width``
instructions per cycle, in the order chosen here; a branch terminates its
packet; optional per-kind slot limits (ablation).  Priority is dependence
height (critical path to the end of the region), ties broken by original
program order so results are deterministic and match the paper's listings.

Within a cycle, ready non-branch instructions are placed before a ready
branch: the branch closes the packet, and issuing it last never delays it
(it still issues in the same cycle) while letting the packet fill.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush

from ..analysis.depgraph import DepGraph, build_depgraph
from ..ir.instructions import Instr
from ..ir.operands import Reg
from ..machine import MachineConfig


@dataclass
class Schedule:
    """Result of scheduling one region."""

    #: instructions in their new issue order
    order: list[Instr]
    #: issue cycle of each instruction in ``order``
    issue: list[int]
    machine: MachineConfig

    @property
    def makespan(self) -> int:
        """Completion time of the region: max over instructions of
        issue + latency.  This is the per-body cycle count the paper's
        worked examples report ("N cycles / k iterations")."""
        return max(
            (t + self.machine.latency(ins.op) for ins, t in zip(self.order, self.issue)),
            default=0,
        )

    @property
    def last_issue(self) -> int:
        return self.issue[-1] if self.issue else 0

    def issue_time_of(self, ins: Instr) -> int:
        for k, other in enumerate(self.order):
            if other is ins:
                return self.issue[k]
        raise KeyError(ins)

    def pairs(self) -> list[tuple[Instr, int]]:
        return list(zip(self.order, self.issue))


def list_schedule(
    instrs: list[Instr],
    machine: MachineConfig,
    exit_live: dict[int, set[Reg]] | None = None,
    depgraph: DepGraph | None = None,
    prologue: list[Instr] | None = None,
    doall: bool = False,
) -> Schedule:
    """Schedule ``instrs``; returns the new order with issue times.

    The ready set is kept in priority-queue form rather than re-scanned
    per placement: ``avail_nb`` / ``avail_br`` hold issuable nodes
    (all predecessors placed, earliest issue cycle reached) keyed by the
    selection priority ``(-height, original index)``, and ``future``
    holds nodes whose predecessors are placed but whose operands are
    still in flight, keyed by earliest issue cycle.  Popping a heap
    yields exactly the candidate a full scan would have chosen, so the
    schedules are identical to the reference rescanning algorithm
    (asserted instruction-for-instruction by the golden tests) while
    placement drops from O(n) per instruction to O(log n).

    Nodes skipped by a per-kind slot limit are deferred to the side and
    re-pushed once the packet closes — slots only free at a cycle
    boundary, so they cannot become issuable earlier.
    """
    n = len(instrs)
    if n == 0:
        return Schedule([], [], machine)
    g = depgraph or build_depgraph(
        instrs, machine, exit_live, prologue=prologue, doall=doall
    )
    width = machine.issue_width if machine.issue_width > 0 else 1 << 30
    slot_limits = machine.slot_limits
    heights = g.heights()
    succs = g.succs

    is_ctrl = [ins.is_control for ins in instrs]
    kinds = [ins.kind for ins in instrs] if slot_limits else None
    unplaced_preds = [len({i for i, _ in g.preds[j]}) for j in range(n)]
    #: earliest cycle each node may issue given already-placed predecessors
    #: (final by the time the node enters a heap: all preds are placed)
    earliest = [0] * n

    avail_nb: list[tuple[int, int]] = []  # (-height, j); issuable, not control
    avail_br: list[tuple[int, int]] = []  # (-height, j); issuable branches
    future: list[tuple[int, int, int]] = []  # (earliest, -height, j)
    for j in range(n):
        if unplaced_preds[j] == 0:
            (avail_br if is_ctrl[j] else avail_nb).append((-heights[j], j))
    heapify(avail_nb)
    heapify(avail_br)

    order: list[Instr] = []
    issue: list[int] = []
    cycle = 0
    remaining = n

    def place(j: int, t: int) -> None:
        nonlocal remaining
        order.append(instrs[j])
        issue.append(t)
        remaining -= 1
        seen: set[int] = set()
        for k, w in succs[j]:
            if earliest[k] < t + w:
                earliest[k] = t + w
            if k not in seen:
                seen.add(k)
                unplaced_preds[k] -= 1
                if unplaced_preds[k] == 0:
                    e = earliest[k]
                    if e <= cycle:
                        heappush(
                            avail_br if is_ctrl[k] else avail_nb,
                            (-heights[k], k),
                        )
                    else:
                        heappush(future, (e, -heights[k], k))

    while remaining:
        while future and future[0][0] <= cycle:
            _, nh, j = heappop(future)
            heappush(avail_br if is_ctrl[j] else avail_nb, (nh, j))
        issued = 0
        slot_used: dict = {}
        deferred: list[tuple[list, tuple[int, int]]] = []

        def pop_issuable(heap: list) -> int | None:
            while heap:
                entry = heappop(heap)
                if slot_limits:
                    kind = kinds[entry[1]]
                    lim = slot_limits.get(kind)
                    if lim is not None and slot_used.get(kind, 0) >= lim:
                        deferred.append((heap, entry))
                        continue
                    if lim is not None:
                        slot_used[kind] = slot_used.get(kind, 0) + 1
                return entry[1]
            return None

        # Non-branches first; a 0-weight edge (anti dependence, ordering)
        # can make a node ready *within* this same cycle — e.g. the
        # paper's Figure 1, where the induction increment issues in the
        # same cycle as the store that reads the old value — so `place`
        # feeds the avail heaps the inner loop is still draining.
        while issued < width:
            j = pop_issuable(avail_nb)
            if j is None:
                break
            place(j, cycle)
            issued += 1
        # then at most one branch, which closes the packet
        if issued < width:
            j = pop_issuable(avail_br)
            if j is not None:
                place(j, cycle)
                issued += 1
        for heap, entry in deferred:
            heappush(heap, entry)
        if issued == 0:
            if avail_nb or avail_br:
                # issuable work exists but was slot-blocked: idle one cycle
                cycle += 1
            else:
                assert future, "deadlock: no ready instructions"
                cycle = max(future[0][0], cycle + 1)
        else:
            cycle += 1

    return Schedule(order, issue, machine)
