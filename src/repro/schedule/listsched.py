"""Latency-weighted list scheduling of a linear region (superblock/block).

Implements the issue model shared with the simulator: up to ``issue_width``
instructions per cycle, in the order chosen here; a branch terminates its
packet; optional per-kind slot limits (ablation).  Priority is dependence
height (critical path to the end of the region), ties broken by original
program order so results are deterministic and match the paper's listings.

Within a cycle, ready non-branch instructions are placed before a ready
branch: the branch closes the packet, and issuing it last never delays it
(it still issues in the same cycle) while letting the packet fill.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.depgraph import DepGraph, build_depgraph
from ..ir.instructions import Instr
from ..ir.operands import Reg
from ..machine import MachineConfig


@dataclass
class Schedule:
    """Result of scheduling one region."""

    #: instructions in their new issue order
    order: list[Instr]
    #: issue cycle of each instruction in ``order``
    issue: list[int]
    machine: MachineConfig

    @property
    def makespan(self) -> int:
        """Completion time of the region: max over instructions of
        issue + latency.  This is the per-body cycle count the paper's
        worked examples report ("N cycles / k iterations")."""
        return max(
            (t + self.machine.latency(ins.op) for ins, t in zip(self.order, self.issue)),
            default=0,
        )

    @property
    def last_issue(self) -> int:
        return self.issue[-1] if self.issue else 0

    def issue_time_of(self, ins: Instr) -> int:
        for k, other in enumerate(self.order):
            if other is ins:
                return self.issue[k]
        raise KeyError(ins)

    def pairs(self) -> list[tuple[Instr, int]]:
        return list(zip(self.order, self.issue))


def list_schedule(
    instrs: list[Instr],
    machine: MachineConfig,
    exit_live: dict[int, set[Reg]] | None = None,
    depgraph: DepGraph | None = None,
    prologue: list[Instr] | None = None,
    doall: bool = False,
) -> Schedule:
    """Schedule ``instrs``; returns the new order with issue times."""
    n = len(instrs)
    if n == 0:
        return Schedule([], [], machine)
    g = depgraph or build_depgraph(
        instrs, machine, exit_live, prologue=prologue, doall=doall
    )
    width = machine.issue_width if machine.issue_width > 0 else 1 << 30
    slot_limits = machine.slot_limits
    heights = g.heights()

    distinct_preds = [set(i for i, _ in g.preds[j]) for j in range(n)]
    unplaced_preds = [len(distinct_preds[j]) for j in range(n)]
    #: earliest cycle each node may issue given already-placed predecessors
    earliest = [0] * n
    ready: set[int] = {j for j in range(n) if unplaced_preds[j] == 0}

    order: list[Instr] = []
    issue: list[int] = []
    cycle = 0
    remaining = n

    def place(j: int, t: int) -> None:
        nonlocal remaining
        order.append(instrs[j])
        issue.append(t)
        remaining -= 1
        seen: set[int] = set()
        for k, w in g.succs[j]:
            if earliest[k] < t + w:
                earliest[k] = t + w
            if k not in seen:
                seen.add(k)
                unplaced_preds[k] -= 1
                if unplaced_preds[k] == 0:
                    ready.add(k)

    while remaining:
        issued = 0
        slot_used: dict = {}

        def slots_ok(j: int) -> bool:
            if not slot_limits:
                return True
            lim = slot_limits.get(instrs[j].kind)
            return lim is None or slot_used.get(instrs[j].kind, 0) < lim

        def consume_slot(j: int) -> None:
            if slot_limits:
                k = instrs[j].kind
                if k in slot_limits:
                    slot_used[k] = slot_used.get(k, 0) + 1

        # Non-branches first, re-scanning after each placement: a 0-weight
        # edge (anti dependence, ordering) can make a node ready *within*
        # this same cycle — e.g. the paper's Figure 1, where the induction
        # increment issues in the same cycle as the store that reads the
        # old value.
        while issued < width:
            best = None
            for j in ready:
                if earliest[j] > cycle or instrs[j].is_control or not slots_ok(j):
                    continue
                if best is None or (-heights[j], j) < (-heights[best], best):
                    best = j
            if best is None:
                break
            consume_slot(best)
            ready.discard(best)
            place(best, cycle)
            issued += 1
        # then at most one branch, which closes the packet
        if issued < width:
            best = None
            for j in ready:
                if earliest[j] > cycle or not instrs[j].is_control or not slots_ok(j):
                    continue
                if best is None or (-heights[j], j) < (-heights[best], best):
                    best = j
            if best is not None:
                consume_slot(best)
                ready.discard(best)
                place(best, cycle)
                issued += 1
        if issued == 0:
            nxt = min((earliest[j] for j in ready), default=None)
            assert nxt is not None, "deadlock: no ready instructions"
            cycle = max(nxt, cycle + 1)
        else:
            cycle += 1

    return Schedule(order, issue, machine)
