"""Compilation pipeline: transformation levels and scheduling.

The paper evaluates five cumulative levels (Section 3.2); we add a sixth
(Lev5, superword-level parallelism) on top:

=======  ==========================================================
Conv     classical optimizations only (applied by the frontend/opt)
Lev1     + loop unrolling (preconditioned, max 8x / body-size cap)
Lev2     + register renaming
Lev3     + operation combining, strength reduction, tree height red.
Lev4     + accumulator, induction, and search variable expansion
Lev5     + SLP vectorization of the unrolled superblock body
=======  ==========================================================

``apply_ilp_transforms`` rewrites one inner loop; ``schedule_function``
then list-schedules every block under the machine model.  Both are thin
entry points over the unified pass manager (:mod:`repro.passes`): the
level gates, the pass order within a level (search expansion precedes
renaming because it matches original names; the other expansions run on
renamed code; the arithmetic transformations run last so they see the
expanded dependence structure), and the bounded cleanup fixpoint are all
declared in :mod:`repro.passes.registry`.
"""

from __future__ import annotations

import enum

from .analysis.liveness import liveness
from .analysis.loopvars import CountedLoop
from .ir.function import Function
from .ir.loop import find_loops
from .ir.operands import Reg
from .machine import MachineConfig
from .schedule.listsched import Schedule
from .schedule.superblock import SuperblockLoop


class Level(enum.IntEnum):
    """Cumulative transformation levels: the paper's five (Conv..Lev4)
    plus Lev5, superword-level parallelism (SLP vectorization) over the
    unrolled superblock.  Everything that enumerates "the levels" —
    sweeps, oracle grids, CLI choices, tables — derives from this enum,
    so adding a level here is the single point of extension."""

    CONV = 0
    LEV1 = 1
    LEV2 = 2
    LEV3 = 3
    LEV4 = 4
    LEV5 = 5

    @property
    def label(self) -> str:
        return "Conv" if self == 0 else f"Lev{int(self)}"


ALL_LEVELS = list(Level)


def _find_loop(func: Function, header: str):
    for l in find_loops(func):
        if l.header == header:
            return l
    raise ValueError(f"loop {header!r} not found in {func.name}")


def protected_registers(sb: SuperblockLoop, live_out_exit: set[Reg]) -> set[Reg]:
    """Registers observable outside the superblock body: live at any side
    exit target, around the backedge, or at the natural exit.  The
    arithmetic transformations must not absorb definitions of these."""
    lv = liveness(sb.func, live_out_exit)
    prot: set[Reg] = set(lv.live_in.get(sb.header, set()))
    if sb.exit_block is not None:
        prot |= lv.live_in.get(sb.exit_block.label, set())
    for pos in sb.side_exit_positions():
        ins = sb.body.instrs[pos]
        if ins.target is not None:
            prot |= lv.live_in.get(ins.target.name, set())
    return prot


def apply_ilp_transforms(
    func: Function,
    counted: CountedLoop,
    level: Level,
    machine: MachineConfig,
    live_out_exit: set[Reg] | None = None,
    unroll_factor: int | None = None,
    thr_unit_latency: bool = False,
    check: bool = False,
    options=None,
    report=None,
):
    """Transform the inner loop described by ``counted`` at ``level``.

    Runs the registered ``ilp`` and ``cleanup`` phases of the pass
    manager.  Returns ``(superblock, report)`` — the superblock
    descriptor plus the unified
    :class:`~repro.passes.stats.PipelineReport` of what fired (pass an
    existing ``report`` to extend it across stages).  The function is
    verified after transformation; with ``check=True`` the full invariant
    verifier (:func:`repro.ir.verify.verify_pipeline`) additionally runs
    *between every pass*, so the first pass to break an invariant is
    named in the failure.  ``options`` takes a
    :class:`~repro.passes.manager.PassOptions` for pass disabling and
    ``--print-after`` IR dumps.
    """
    from .passes import PassManager, PipelineContext, PipelineReport

    ctx = PipelineContext(
        func=func,
        report=report if report is not None else PipelineReport(),
        level=level,
        machine=machine,
        live_out_exit=live_out_exit or set(),
        counted=counted,
        unroll_factor=unroll_factor,
        thr_unit_latency=thr_unit_latency,
    )
    mgr = PassManager(options, check=check)
    mgr.run_phase("ilp", ctx)
    mgr.run_phase("cleanup", ctx)
    return ctx.sb, ctx.report


def prologue_regions(func: Function, sb: SuperblockLoop):
    """The dominating chain into the superblock header as analysis regions.

    Blocks that dominate the header and precede it in layout, grouped into
    ``("straight", instrs)`` runs and ``("loop", instrs)`` regions for
    intervening loops (precondition loops) that do not contain the header.
    This lets memory disambiguation resolve address relationships
    established before a precondition loop, with the precondition's
    unknown pass count kept symbolic (see
    :class:`repro.analysis.memdep.AddressAnalysis`).
    """
    from .ir.loop import dominators

    dom = dominators(func)
    header_doms = dom.get(sb.header, set())
    loops = find_loops(func)
    regions: list[tuple] = []  # (kind, key, instrs)
    for blk in func.blocks:
        if blk.label == sb.header:
            break
        if blk.label not in header_doms:
            continue
        containing = [
            l for l in loops
            if blk.label in l.blocks and sb.header not in l.blocks
        ]
        if containing:
            inner = max(containing, key=lambda l: l.depth)
            key = ("loop", inner.header)
        else:
            key = ("straight", None)
        if regions and regions[-1][0] == key[0] and regions[-1][1] == key[1]:
            regions[-1][2].extend(blk.instrs)
        else:
            regions.append((key[0], key[1], list(blk.instrs)))
    return [(kind, instrs) for kind, _, instrs in regions]


def schedule_function(
    func: Function,
    machine: MachineConfig,
    live_out_exit: set[Reg] | None = None,
    sb: SuperblockLoop | None = None,
    doall: bool = False,
    check: bool = False,
    options=None,
    report=None,
    scheduler: str = "list",
    solver_budget: int | None = None,
    solver_store=None,
) -> dict[str, Schedule]:
    """Schedule every block of ``func`` in place.

    Runs the registered ``schedule`` phase of the pass manager, which
    dispatches on ``scheduler``: ``"list"`` (greedy heuristic, the
    default) or ``"optimal"`` (exact solver-backed, with
    ``solver_budget`` deterministic search nodes and optional
    ``solver_store`` result caching).  Side-exit speculation limits come
    from the live-in sets of branch targets.  For the superblock body
    (``sb``), memory disambiguation sees the preheader and, for DOALL
    loops, the cross-iteration independence assertion.  Returns the
    per-block schedules (keyed by label).  With ``check=True`` the
    invariant verifier runs on the scheduled function — a scheduler that
    reorders a use above its flow-dependent definition is caught here.
    """
    from .passes import PassManager, PipelineContext, PipelineReport

    ctx = PipelineContext(
        func=func,
        report=report if report is not None else PipelineReport(),
        machine=machine,
        live_out_exit=live_out_exit or set(),
        sb=sb,
        doall=doall,
        scheduler=scheduler,
        solver_budget=solver_budget,
        solver_store=solver_store,
    )
    PassManager(options, check=check).run_phase("schedule", ctx)
    return ctx.schedules
