"""Compilation pipeline: transformation levels and scheduling.

The paper evaluates five cumulative levels (Section 3.2):

=======  ==========================================================
Conv     classical optimizations only (applied by the frontend/opt)
Lev1     + loop unrolling (preconditioned, max 8x / body-size cap)
Lev2     + register renaming
Lev3     + operation combining, strength reduction, tree height red.
Lev4     + accumulator, induction, and search variable expansion
=======  ==========================================================

``apply_ilp_transforms`` rewrites one inner loop; ``schedule_function``
then list-schedules every block under the machine model.  The pass order
within a level follows the dependences between the transformations:
search expansion precedes renaming (it matches original names), the
other expansions run on renamed code, and the arithmetic transformations
run last so they see the expanded dependence structure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .analysis.liveness import liveness
from .analysis.loopvars import CountedLoop
from .ir.function import Function
from .ir.loop import find_loops
from .ir.operands import Reg
from .ir.verify import verify_function, verify_pipeline
from .machine import MachineConfig
from .schedule.listsched import Schedule, list_schedule
from .schedule.superblock import SuperblockLoop, form_superblock
from .transforms.accumulate import expand_accumulators
from .transforms.combine import combine_operations
from .transforms.induction import expand_inductions
from .transforms.rename import rename_superblock
from .transforms.search import expand_search_variables
from .transforms.strength import reduce_strength
from .transforms.treeheight import reduce_tree_height
from .transforms.unroll import choose_unroll_factor, unroll_counted


class Level(enum.IntEnum):
    """Cumulative transformation levels of the paper."""

    CONV = 0
    LEV1 = 1
    LEV2 = 2
    LEV3 = 3
    LEV4 = 4

    @property
    def label(self) -> str:
        return {0: "Conv", 1: "Lev1", 2: "Lev2", 3: "Lev3", 4: "Lev4"}[int(self)]


ALL_LEVELS = list(Level)


@dataclass
class TransformReport:
    """What fired while transforming one loop (for tests/diagnostics)."""

    unroll_factor: int = 1
    renamed: int = 0
    inductions: int = 0
    accumulators: int = 0
    searches: int = 0
    combined: int = 0
    reduced: int = 0
    trees: int = 0


def _find_loop(func: Function, header: str):
    for l in find_loops(func):
        if l.header == header:
            return l
    raise ValueError(f"loop {header!r} not found in {func.name}")


def protected_registers(sb: SuperblockLoop, live_out_exit: set[Reg]) -> set[Reg]:
    """Registers observable outside the superblock body: live at any side
    exit target, around the backedge, or at the natural exit.  The
    arithmetic transformations must not absorb definitions of these."""
    lv = liveness(sb.func, live_out_exit)
    prot: set[Reg] = set(lv.live_in.get(sb.header, set()))
    if sb.exit_block is not None:
        prot |= lv.live_in.get(sb.exit_block.label, set())
    for pos in sb.side_exit_positions():
        ins = sb.body.instrs[pos]
        if ins.target is not None:
            prot |= lv.live_in.get(ins.target.name, set())
    return prot


def apply_ilp_transforms(
    func: Function,
    counted: CountedLoop,
    level: Level,
    machine: MachineConfig,
    live_out_exit: set[Reg] | None = None,
    unroll_factor: int | None = None,
    thr_unit_latency: bool = False,
    check: bool = False,
) -> tuple[SuperblockLoop, TransformReport]:
    """Transform the inner loop described by ``counted`` at ``level``.

    Returns the superblock descriptor and a report of what fired.  The
    function is verified after transformation; with ``check=True`` the
    full invariant verifier (:func:`repro.ir.verify.verify_pipeline`)
    additionally runs *between every pass*, so the first pass to break an
    invariant is named in the failure.
    """
    live_out_exit = live_out_exit or set()
    report = TransformReport()

    def _checkpoint(stage: str) -> None:
        if check:
            verify_pipeline(func, set(func.pinned_regs), stage=stage)

    _checkpoint("input")
    if level >= Level.LEV1:
        loop = _find_loop(func, counted.header)
        size = sum(len(func.get_block(lab).instrs) for lab in loop.blocks)
        factor = unroll_factor if unroll_factor is not None else choose_unroll_factor(size)
        counted = unroll_counted(func, loop, counted, factor)
        report.unroll_factor = factor
        _checkpoint("unroll")

    loop = _find_loop(func, counted.header)
    sb = form_superblock(func, loop, counted)
    _checkpoint("superblock formation")

    # Profitability: the expansion transformations pay compensation code on
    # every side exit taken (and re-initialization on every rejoin).  With
    # profile information a production compiler applies them only when the
    # off-trace paths are cold; we use the branch probabilities the same
    # way.  Loops without side exits (33 of the 40) are unaffected.
    exit_probs = [
        sb.body.instrs[q].prob if sb.body.instrs[q].prob is not None else 0.5
        for q in sb.side_exit_positions()
    ]
    expansions_profitable = all(p <= 0.25 for p in exit_probs)

    if level >= Level.LEV4 and expansions_profitable:
        report.searches = expand_search_variables(sb)
        _checkpoint("search expansion")
    if level >= Level.LEV2:
        report.renamed = rename_superblock(sb, live_out_exit)
        _checkpoint("renaming")
    if level >= Level.LEV4 and expansions_profitable:
        report.inductions = expand_inductions(sb)
        _checkpoint("induction expansion")
        report.accumulators = expand_accumulators(sb)
        _checkpoint("accumulator expansion")
    if level >= Level.LEV3:
        prot = protected_registers(sb, live_out_exit)
        report.combined = combine_operations(sb.body.instrs, prot)
        _checkpoint("combining")
        report.reduced = reduce_strength(func, sb.body.instrs)
        _checkpoint("strength reduction")
        report.trees = reduce_tree_height(
            func, sb.body.instrs, machine, prot, unit_latency=thr_unit_latency
        )
        _checkpoint("tree height reduction")

    # post-transform cleanup: fold the preconditioning arithmetic when the
    # trip count is a compile-time constant (span/div/rem chains become
    # constants, the remainder guard resolves, and an unnecessary
    # precondition loop disappears entirely), then clear dead code.  These
    # passes never move code across branches, so the superblock is safe.
    from .ir.function import remove_unreachable
    from .opt.constprop import fold_constant_branches, propagate_constants
    from .opt.copyprop import propagate_copies_local
    from .opt.dce import eliminate_dead_code
    from .opt.redundant_mem import eliminate_redundant_memory

    for it in range(4):
        prologues = {sb.body.label: prologue_regions(func, sb)}
        n = propagate_constants(func)
        n += propagate_copies_local(func)
        # classical redundant-memory elimination re-applied to the unrolled
        # superblock: a store forwarded to the next iteration's load turns
        # a memory recurrence into a register recurrence
        n += eliminate_redundant_memory(func, prologues)
        n += fold_constant_branches(func)
        n += remove_unreachable(func)
        n += eliminate_dead_code(func, live_out_exit)
        _checkpoint(f"cleanup iteration {it}")
        if n == 0:
            break

    func.reindex_regs()
    verify_function(func)
    _checkpoint("ILP transform output")
    return sb, report


def prologue_regions(func: Function, sb: SuperblockLoop):
    """The dominating chain into the superblock header as analysis regions.

    Blocks that dominate the header and precede it in layout, grouped into
    ``("straight", instrs)`` runs and ``("loop", instrs)`` regions for
    intervening loops (precondition loops) that do not contain the header.
    This lets memory disambiguation resolve address relationships
    established before a precondition loop, with the precondition's
    unknown pass count kept symbolic (see
    :class:`repro.analysis.memdep.AddressAnalysis`).
    """
    from .ir.loop import dominators

    dom = dominators(func)
    header_doms = dom.get(sb.header, set())
    loops = find_loops(func)
    regions: list[tuple] = []  # (kind, key, instrs)
    for blk in func.blocks:
        if blk.label == sb.header:
            break
        if blk.label not in header_doms:
            continue
        containing = [
            l for l in loops
            if blk.label in l.blocks and sb.header not in l.blocks
        ]
        if containing:
            inner = max(containing, key=lambda l: l.depth)
            key = ("loop", inner.header)
        else:
            key = ("straight", None)
        if regions and regions[-1][0] == key[0] and regions[-1][1] == key[1]:
            regions[-1][2].extend(blk.instrs)
        else:
            regions.append((key[0], key[1], list(blk.instrs)))
    return [(kind, instrs) for kind, _, instrs in regions]


def schedule_function(
    func: Function,
    machine: MachineConfig,
    live_out_exit: set[Reg] | None = None,
    sb: SuperblockLoop | None = None,
    doall: bool = False,
    check: bool = False,
) -> dict[str, Schedule]:
    """List-schedule every block of ``func`` in place.

    Side-exit speculation limits come from the live-in sets of branch
    targets.  For the superblock body (``sb``), memory disambiguation sees
    the preheader and, for DOALL loops, the cross-iteration independence
    assertion.  Returns the per-block schedules (keyed by label).  With
    ``check=True`` the invariant verifier runs on the scheduled function —
    a scheduler that reorders a use above its flow-dependent definition is
    caught here.
    """
    lv = liveness(func, live_out_exit or set())
    regions = prologue_regions(func, sb) if sb is not None else None
    schedules: dict[str, Schedule] = {}
    for blk in func.blocks:
        if not blk.instrs:
            continue
        exit_live: dict[int, set[Reg]] = {}
        for i, ins in enumerate(blk.instrs):
            if ins.is_control and ins.target is not None:
                exit_live[i] = lv.live_in.get(ins.target.name, set())
        is_body = sb is not None and blk is sb.body
        sched = list_schedule(
            blk.instrs,
            machine,
            exit_live,
            prologue=regions if is_body else None,
            doall=doall and is_body,
        )
        blk.instrs = sched.order
        schedules[blk.label] = sched
    if check:
        verify_pipeline(func, set(func.pinned_regs), stage="list scheduling")
    return schedules
