"""Simulation error types.

Defined in their own module so both simulator engines (the tuple
interpreter in :mod:`repro.sim.simulator` and the closure-compiled engine
in :mod:`repro.sim.blockgen`) can raise the same exception without a
circular import.  :class:`~repro.sim.memory.SimMemoryError` lives with the
memory model; this module holds the execution-side error.
"""

from __future__ import annotations


class SimulationError(RuntimeError):
    pass
