"""Width-batched timing replay: the timing half of the fast engine.

The in-order model's dynamic control trace depends only on *values*,
never on the issue width: branch outcomes are value-determined, and the
dependence graph keeps branches in order, so the sequence of (block,
taken-exit) segments recorded by :mod:`repro.sim.blockgen` is identical
for every width of one (workload, level) cell.  What differs per width
is only the *timing* — issue packing, flow/WAW interlocks, and the
branch-per-cycle rule — plus which speculated instructions sit above
each block's exit in that width's schedule.

So each cell executes once and replays N times.  A replay walks the
segment trace through a tiny timing state machine that mirrors the
interpreter's packet loop exactly:

* state between segments is ``(instructions already issued into the
  open packet, in-flight writes as (register, cycles-until-ready))``;
* a segment transition issues the target schedule's instruction prefix
  for that segment (everything up to and including its exit in *that
  width's* block order), mirroring the interpreter's check order:
  packet-full first, then flow/WAW readiness with the idle-packet
  fast-forward, branches closing their packet;
* transitions are memoized per (segment, entry state): steady-state
  loop iterations hit the memo instead of re-walking instructions;
* when the (segment, state) pair recurs — a periodic steady state —
  the replay matches the whole repeating segment pattern against the
  remaining trace with one vectorized NumPy comparison and skips every
  full period at once (cycle and last-issue advance by exact multiples).

Dropping in-flight writes that completed at or before the segment
boundary is exact *because every latency is at least 1*: a completed
write imposes no flow constraint, and its WAW bound ``ready - lat + 1``
cannot exceed the current cycle.  Machines with a sub-1 latency or with
per-kind slot limits fall back to the full simulator
(:class:`ReplayUnsupported`).

Instruction counts come from the same trace: ``bincount(segments) ·
segment_length`` with per-width segment lengths (a width that speculated
more above an exit issues more instructions — exactly as the full
simulator counts them).
"""

from __future__ import annotations

import numpy as np

from .blockgen import FALL, ExecPlan
from .errors import SimulationError
from .executor import CompiledProgram

#: categories that close an issue packet (branch/jump/halt)
from .executor import C_BRANCH, C_HALT, C_JUMP

_CTRL = (C_BRANCH, C_JUMP, C_HALT)


class ReplayUnsupported(Exception):
    """This machine's timing cannot be replayed; run the full simulator."""


class ReplayUnmapped(Exception):
    """A segment exit has no position in the target schedule (the target
    program is not a reschedule of the traced one)."""


class ReplaySpec:
    """One target program's view of a plan's segments.

    ``rows[s]`` is the tuple of timing rows the target machine issues
    for segment ``s``: the target block's scheduled order up to and
    including the exit instruction (located by identity — width clones
    share instruction objects), or the whole block for a fall-through.
    Each row is pre-slimmed to what the packet loop needs —
    ``(reg_source_keys, dest_key, latency, closes_packet)`` with
    registers packed to single ints (``bank << 24 | id``) so the
    in-flight dict is int-keyed — no tuple allocation per lookup.
    ``seg_len[s]`` is the per-width instruction count.
    """

    def __init__(self, plan: ExecPlan, prog: CompiledProgram):
        machine = prog.machine
        if machine.slot_limits:
            raise ReplayUnsupported("per-kind slot limits")
        if min(machine.latencies.values()) < 1:
            raise ReplayUnsupported("latency below 1 cycle")
        ep = plan.prog
        if prog is not ep and prog.labels != ep.labels:
            raise ReplayUnmapped("block structure differs")
        self.plan = plan
        self.prog = prog
        self.width = machine.issue_width if machine.issue_width > 0 else 1 << 30
        rows: list[tuple] = []
        lens: list[int] = []
        pos_maps: dict[int, dict[int, int]] = {}
        slim_cache: dict[int, list[tuple]] = {}

        def slim(b: int) -> list[tuple]:
            out = slim_cache.get(b)
            if out is None:
                out = slim_cache[b] = []
                for cat, fn, srcs, rsrcs, db, di, lat, meta in prog.flat[b]:
                    rk = tuple(
                        (rsrcs[x] << 24) | rsrcs[x + 1]
                        for x in range(0, len(rsrcs), 2)
                    )
                    dk = (db << 24) | di if db >= 0 else -1
                    out.append((rk, dk, lat, cat in _CTRL))
            return out

        for s, b in enumerate(plan.seg_block):
            row = prog.flat[b]
            exit_ci = plan.seg_exit[s]
            if exit_ci is FALL:
                rows.append(tuple(slim(b)))
                lens.append(len(row))
            else:
                pm = pos_maps.get(b)
                if pm is None:
                    pm = pos_maps[b] = {
                        id(r[7][2]): p for p, r in enumerate(row)
                    }
                p = pm.get(id(exit_ci.instr))
                if p is None:
                    raise ReplayUnmapped(
                        f"exit {exit_ci.instr!r} not in target block "
                        f"{prog.labels[b]}"
                    )
                rows.append(tuple(slim(b)[: p + 1]))
                lens.append(p + 1)
        self.rows = rows
        self.seg_len = np.array(lens, dtype=np.int64)


def replay_spec(plan: ExecPlan, prog: CompiledProgram) -> ReplaySpec:
    """Memoized :class:`ReplaySpec` (cached on the target program; the
    cache entry keeps the plan alive so its id cannot be recycled)."""
    cache = getattr(prog, "_replay_specs", None)
    if cache is None:
        cache = prog._replay_specs = {}
    hit = cache.get(id(plan))
    if hit is not None:
        return hit[1]
    spec = ReplaySpec(plan, prog)
    cache[id(plan)] = (plan, spec)
    return spec


def _transition(rows: tuple, state: tuple, width: int):
    """Issue one segment's instructions from ``state``; returns
    ``(cycle_delta, last_issue_delta, exit_state)``.

    Mirrors the interpreter's packet loop: packet-full check first, then
    operand/WAW readiness (fast-forwarding an idle packet to the stall
    end, closing a non-empty one), control instructions closing their
    packet.  Cycles are relative to segment entry; ``last_issue_delta``
    is -1 when nothing issued (empty fall-through blocks).
    """
    issued, inflight = state
    ready = dict(inflight)
    get = ready.get
    cycle = 0
    dli = -1
    for rk, dk, lat, closes in rows:
        while True:
            if issued >= width:
                issued = 0
                cycle += 1
                continue
            need = cycle
            for k in rk:
                t = get(k, 0)
                if t > need:
                    need = t
            if dk >= 0:
                t = get(dk, 0) - lat + 1
                if t > need:
                    need = t
            if need > cycle:
                if issued == 0:
                    cycle = need
                else:
                    issued = 0
                    cycle += 1
                    continue
            break
        issued += 1
        dli = cycle
        if dk >= 0:
            ready[dk] = cycle + lat
        if closes:
            # a branch (taken or not), jump, or halt closes the packet
            issued = 0
            cycle += 1
    pruned = [(k, v - cycle) for k, v in ready.items() if v > cycle]
    pruned.sort()
    return cycle, dli, (issued, tuple(pruned))


def replay(
    segs: list[int] | np.ndarray,
    spec: ReplaySpec,
    max_cycles: int = 200_000_000,
) -> tuple[int, int]:
    """Replay a segment trace under ``spec``'s machine; returns
    ``(cycles, instructions)`` — identical to full simulation."""
    arr = np.asarray(segs, dtype=np.int64)
    n = int(arr.size)
    n_instr = 0
    if n:
        counts = np.bincount(arr, minlength=len(spec.seg_len))
        n_instr = int(counts @ spec.seg_len)

    rows = spec.rows
    width = spec.width
    name = spec.prog.func.name
    labels = spec.prog.labels
    seg_block = spec.plan.seg_block
    memo: dict = {}
    seen: dict = {}
    sl = arr.tolist()
    state = (0, ())
    cycle = 0
    last_issue = -1
    i = 0
    while i < n:
        s = sl[i]
        key = (s, state)
        hit = memo.get(key)
        if hit is None:
            hit = memo[key] = _transition(rows[s], state, width)
        dc, dli, nstate = hit
        prev = seen.get(key)
        if prev is None:
            seen.setdefault(key, (i, cycle))
            if len(seen) > 65536:
                seen.clear()
        else:
            # periodic steady state: the trace from the first occurrence
            # repeats — match whole periods against the remaining trace in
            # one vectorized comparison and skip them all
            j, cj = prev
            p = i - j
            dcyc = cycle - cj
            if p > 0 and dcyc > 0:
                m = (n - i) // p
                if m > 0:
                    tile = arr[i : i + m * p].reshape(m, p)
                    bad = np.flatnonzero(~(tile == arr[j:i]).all(axis=1))
                    if bad.size:
                        m = int(bad[0])
                if m > 0:
                    # each period issues (dcyc > 0 implies a control exit),
                    # so last_issue advances by exactly dcyc per period
                    cycle += m * dcyc
                    last_issue += m * dcyc
                    i += m * p
                    seen.clear()
                    if cycle > max_cycles:
                        raise SimulationError(
                            f"exceeded {max_cycles} cycles in {name} "
                            f"(at block {labels[seg_block[s]]})"
                        )
                    continue
            seen[key] = (i, cycle)
        if dli >= 0:
            last_issue = cycle + dli
        cycle += dc
        state = nstate
        i += 1
        if cycle > max_cycles:
            raise SimulationError(
                f"exceeded {max_cycles} cycles in {name} "
                f"(at block {labels[seg_block[s]]})"
            )
    return last_issue + 1, n_instr
