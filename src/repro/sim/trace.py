"""Execution traces and ASCII pipeline diagrams.

Pass ``trace=[]`` to :func:`repro.sim.simulate` to collect ``(cycle,
instruction)`` issue events, then render them:

* :func:`render_packets` — one line per cycle showing the issue packet
  (what actually went down the pipe together);
* :func:`render_pipeline` — a Gantt-style diagram, instructions down the
  side, cycles across, ``I``/``=`` marking issue and execution latency.

Useful for seeing interlock stalls, branch-packet boundaries, and the
overlap the transformations create.
"""

from __future__ import annotations

from collections import defaultdict

from ..ir.instructions import Instr
from ..ir.printer import format_instr
from ..machine import MachineConfig


def render_packets(
    trace: list[tuple[int, Instr]],
    start: int = 0,
    limit: int = 30,
) -> str:
    """Issue packets per cycle (skipping empty stall cycles, which are
    annotated)."""
    by_cycle: dict[int, list[Instr]] = defaultdict(list)
    for cycle, ins in trace:
        by_cycle[cycle].append(ins)
    cycles = sorted(c for c in by_cycle if c >= start)[:limit]
    out = []
    prev = None
    for c in cycles:
        if prev is not None and c > prev + 1:
            out.append(f"          ... {c - prev - 1} stall cycle(s) ...")
        packet = " | ".join(format_instr(i) for i in by_cycle[c])
        out.append(f"cycle {c:>4}: {packet}")
        prev = c
    return "\n".join(out)


def render_pipeline(
    trace: list[tuple[int, Instr]],
    machine: MachineConfig,
    start: int = 0,
    n_instrs: int = 24,
    width: int = 64,
) -> str:
    """Gantt diagram: 'I' at the issue cycle, '=' through completion."""
    events = [(c, i) for c, i in trace if c >= start][:n_instrs]
    if not events:
        return "(empty trace)"
    c0 = events[0][0]
    rows = []
    label_w = max(len(format_instr(i)) for _, i in events) + 2
    header = " " * label_w + "".join(
        str((c0 + k) % 10) for k in range(width)
    )
    rows.append(header)
    for c, ins in events:
        lat = machine.latency(ins.op)
        line = [" "] * width
        off = c - c0
        if off < width:
            line[off] = "I"
            for k in range(1, lat):
                if off + k < width:
                    line[off + k] = "="
        rows.append(f"{format_instr(ins):<{label_w}}" + "".join(line))
    return "\n".join(rows)
