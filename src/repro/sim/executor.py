"""Compilation of IR instructions into a fast internal form for simulation.

The simulator executes millions of dynamic instructions, so each IR
instruction is pre-lowered once into a :class:`CompiledInstr` with:

* resolved source fetch descriptors (register bank + id, or literal value,
  with symbols resolved against the memory's symbol table);
* a destination slot;
* the machine latency;
* a small semantic function.

Integer semantics are paper-era FORTRAN/C: division and remainder truncate
toward zero; shifts are arithmetic (``shra``) or 64-bit logical (``shrl``).
Floating point is IEEE double.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass

from ..ir.block import Block
from ..ir.function import Function
from ..ir.instructions import Instr, Kind, Op
from ..ir.operands import FImm, Imm, Reg, RegClass, Sym
from ..machine import MachineConfig

#: Simulator-engine version: bumped whenever the execution/timing core
#: changes in a way that could alter observable results or their cost
#: profile.  The content-addressed store's CODE_VERSION salt
#: (:mod:`repro.service.keys`) is derived from this, so artifacts
#: produced by an older engine can never be served as current.
ENGINE_VERSION = "sim-3-vector"

# source/dest bank tags.  The vector banks index past the CONST tag so
# ``banks[(bank)]`` tuples can be built as (ivals, fvals, None, vivals,
# vfvals) with CONST operands never indexing a bank.
INT_BANK = 0
FP_BANK = 1
CONST = 2
VINT_BANK = 3
VFP_BANK = 4

_BANK_OF_CLASS = {
    RegClass.INT: INT_BANK,
    RegClass.FP: FP_BANK,
    RegClass.VINT: VINT_BANK,
    RegClass.VFP: VFP_BANK,
}

_MASK64 = (1 << 64) - 1


def _idiv(a: int, b: int) -> int:
    """Truncating integer division (toward zero)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _irem(a: int, b: int) -> int:
    return a - b * _idiv(a, b)


#: Scalar semantics shared with the reference evaluator
#: (:mod:`repro.check.refeval`): the differential oracle tests the
#: *compiler transformations*, so both executors must agree on what each
#: opcode computes — any divergence between them is then a transformation
#: or simulator-machinery bug, never an arithmetic-definition mismatch.
_ALU2 = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.DIV: _idiv,
    Op.REM: _irem,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << b,
    Op.SHRA: lambda a, b: a >> b,
    Op.SHRL: lambda a, b: (a & _MASK64) >> b,
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FDIV: lambda a, b: a / b,
}

#: public aliases for the shared semantic tables
ALU_SEMANTICS = _ALU2

_CMP = {
    Op.BLT: lambda a, b: a < b,
    Op.BLE: lambda a, b: a <= b,
    Op.BGT: lambda a, b: a > b,
    Op.BGE: lambda a, b: a >= b,
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.FBLT: lambda a, b: a < b,
    Op.FBLE: lambda a, b: a <= b,
    Op.FBGT: lambda a, b: a > b,
    Op.FBGE: lambda a, b: a >= b,
    Op.FBEQ: lambda a, b: a == b,
    Op.FBNE: lambda a, b: a != b,
}

CMP_SEMANTICS = _CMP


def _vmap(f):
    """Lift a scalar binary semantic to element-wise over lane tuples."""
    return lambda a, b: tuple(map(f, a, b))


#: Element-wise vector semantics: per-lane application of the shared
#: scalar definitions, so scalar and vector lanes can never disagree.
_VEC2 = {
    Op.VADD: _vmap(_ALU2[Op.ADD]),
    Op.VSUB: _vmap(_ALU2[Op.SUB]),
    Op.VMUL: _vmap(_ALU2[Op.MUL]),
    Op.VFADD: _vmap(_ALU2[Op.FADD]),
    Op.VFSUB: _vmap(_ALU2[Op.FSUB]),
    Op.VFMUL: _vmap(_ALU2[Op.FMUL]),
    Op.VFDIV: _vmap(_ALU2[Op.FDIV]),
}

VEC_SEMANTICS = _VEC2


def _vext(v, i):
    return v[i]


# instruction categories for the simulator's dispatch
C_ALU = 0
C_LOAD = 1
C_STORE = 2
C_BRANCH = 3
C_JUMP = 4
C_NOP = 5
C_HALT = 6
# arity-specialized ALU categories used only by the pre-flattened form
# (CompiledInstr.cat keeps the generic C_ALU)
C_ALU2 = 7
C_ALU1 = 8
# vector categories: variadic pack (gather lanes into a tuple), and
# multi-word memory ops (``fn`` carries the lane count)
C_ALUN = 9
C_VLOAD = 10
C_VSTORE = 11


@dataclass(eq=False)
class CompiledInstr:
    """One instruction pre-lowered for the cycle loop."""

    __slots__ = ("cat", "fn", "srcs", "dest", "lat", "kind", "target", "instr")

    cat: int
    fn: object  # semantic callable, or None
    srcs: tuple  # ((bank, key_or_value), ...)
    dest: tuple | None  # (bank, id)
    lat: int
    kind: Kind
    target: str | None
    instr: Instr  # original, for tracing / errors


def _fetch_desc(operand, symbols: dict[str, int]):
    if isinstance(operand, Reg):
        return (_BANK_OF_CLASS[operand.cls], operand.id)
    if isinstance(operand, Imm):
        return (CONST, operand.value)
    if isinstance(operand, FImm):
        return (CONST, operand.value)
    if isinstance(operand, Sym):
        try:
            return (CONST, symbols[operand.name])
        except KeyError:
            raise KeyError(f"unresolved symbol {operand.name!r}") from None
    raise TypeError(f"bad operand {operand!r}")


def compile_instr(ins: Instr, machine: MachineConfig, symbols: dict[str, int]) -> CompiledInstr:
    op = ins.op
    kind = ins.kind
    lat = machine.latency(op)
    srcs = tuple(_fetch_desc(s, symbols) for s in ins.srcs)
    dest = None
    if ins.dest is not None:
        dest = (_BANK_OF_CLASS[ins.dest.cls], ins.dest.id)

    if op in _ALU2:
        return CompiledInstr(C_ALU, _ALU2[op], srcs, dest, lat, kind, None, ins)
    if op in _VEC2:
        return CompiledInstr(C_ALU, _VEC2[op], srcs, dest, lat, kind, None, ins)
    if op in (Op.VEXT, Op.VEXTF):
        return CompiledInstr(C_ALU, _vext, srcs, dest, lat, kind, None, ins)
    if op in (Op.VPACK, Op.VPACKF):
        return CompiledInstr(C_ALUN, None, srcs, dest, lat, kind, None, ins)
    if op in (Op.MOV, Op.FMOV):
        return CompiledInstr(C_ALU, lambda a: a, srcs, dest, lat, kind, None, ins)
    if op is Op.ITOF:
        return CompiledInstr(C_ALU, float, srcs, dest, lat, kind, None, ins)
    if op is Op.FTOI:
        return CompiledInstr(C_ALU, lambda a: math.trunc(a), srcs, dest, lat, kind, None, ins)
    if kind is Kind.VEC_LOAD:
        return CompiledInstr(C_VLOAD, ins.lanes, srcs, dest, lat, kind, None, ins)
    if kind is Kind.VEC_STORE:
        return CompiledInstr(C_VSTORE, ins.lanes, srcs, None, lat, kind, None, ins)
    if kind is Kind.LOAD:
        return CompiledInstr(C_LOAD, None, srcs, dest, lat, kind, None, ins)
    if kind is Kind.STORE:
        return CompiledInstr(C_STORE, None, srcs, None, lat, kind, None, ins)
    if kind is Kind.BRANCH:
        assert ins.target is not None
        return CompiledInstr(C_BRANCH, _CMP[op], srcs, None, lat, kind, ins.target.name, ins)
    if op is Op.JMP:
        assert ins.target is not None
        return CompiledInstr(C_JUMP, None, (), None, lat, kind, ins.target.name, ins)
    if op is Op.HALT:
        return CompiledInstr(C_HALT, None, (), None, lat, kind, None, ins)
    if op is Op.NOP:
        return CompiledInstr(C_NOP, None, (), None, lat, kind, None, ins)
    raise AssertionError(f"unhandled opcode {op}")


@dataclass(eq=False)
class CompiledBlock:
    label: str
    code: list[CompiledInstr]
    #: index of the next block in layout order (fall-through), or None
    next_index: int | None


class CompiledProgram:
    """A function lowered for simulation against a given machine + symtab.

    Besides the structured :class:`CompiledBlock` view, every instruction is
    pre-flattened into a plain tuple so the interpreter's inner loop pays a
    single ``UNPACK_SEQUENCE`` instead of repeated attribute chasing::

        (cat, fn, srcs, rsrcs, dest_bank, dest_id, lat, (kind, target, instr))

    ``cat`` is arity-specialized (``C_ALU2``/``C_ALU1`` instead of the
    generic ``C_ALU``) so the hot ALU path calls ``fn(a, b)`` directly with
    no argument list built.  ``srcs`` is the fetch descriptor *flattened* to
    ``(bank0, key0, bank1, key1, ...)`` — one unpack fetches every operand.
    ``rsrcs`` keeps only the register sources, likewise flattened, for the
    readiness/interlock check (constants are skipped entirely; at most 3
    register sources exist outside variadic packs, so the check is unrolled
    with a generic tail for wider packs).  ``dest_bank`` is -1 when there
    is no destination.  The cold fields ride in a nested tuple the hot
    path never unpacks: the slot-limit kind, the branch target resolved to
    a *block index* (-1 if none), and the original instruction
    (tracing/errors).  ``n_iregs`` / ``n_fregs`` / ``n_viregs`` /
    ``n_vfregs`` bound the register ids referenced, so the simulator can
    use flat list register banks instead of dicts (registers are densely
    reindexed by ``Function.reindex_regs``).
    """

    def __init__(self, func: Function, machine: MachineConfig, symbols: dict[str, int]):
        self.func = func
        self.machine = machine
        self.blocks: list[CompiledBlock] = []
        self.index: dict[str, int] = {}
        for i, blk in enumerate(func.blocks):
            self.index[blk.label] = i
        for i, blk in enumerate(func.blocks):
            code = [compile_instr(ins, machine, symbols) for ins in blk.instrs]
            nxt = i + 1 if i + 1 < len(func.blocks) else None
            self.blocks.append(CompiledBlock(blk.label, code, nxt))
        # resolve branch targets to block indices up front
        self.target_index: dict[str, int] = dict(self.index)

        self.labels: list[str] = [b.label for b in self.blocks]
        self.next_index: list[int | None] = [b.next_index for b in self.blocks]
        nregs = [0, 0, 0, 0, 0]  # indexed by bank tag (CONST slot unused)
        self.flat: list[list[tuple]] = []
        for b in self.blocks:
            row = []
            for ci in b.code:
                reg_srcs = [s for s in ci.srcs if s[0] != CONST]
                # variadic packs read one register per lane; everything
                # else reads at most 3 (the readiness check fast path)
                assert len(reg_srcs) <= 3 or ci.cat == C_ALUN, ci.instr
                rsrcs = tuple(x for s in reg_srcs for x in s)
                for bank, key in reg_srcs:
                    if key + 1 > nregs[bank]:
                        nregs[bank] = key + 1
                if ci.dest is None:
                    db = di = -1
                else:
                    db, di = ci.dest
                    if di + 1 > nregs[db]:
                        nregs[db] = di + 1
                tgt = self.index[ci.target] if ci.target is not None else -1
                cat = ci.cat
                if cat == C_ALU:
                    cat = C_ALU2 if len(ci.srcs) == 2 else C_ALU1
                    assert len(ci.srcs) in (1, 2), ci.instr
                srcs = tuple(x for s in ci.srcs for x in s)
                row.append((cat, ci.fn, srcs, rsrcs, db, di,
                            ci.lat, (ci.kind, tgt, ci.instr)))
            self.flat.append(row)
        self.n_iregs = nregs[INT_BANK]
        self.n_fregs = nregs[FP_BANK]
        self.n_viregs = nregs[VINT_BANK]
        self.n_vfregs = nregs[VFP_BANK]


#: per-function memo of CompiledPrograms, keyed by machine + symbol table +
#: an instruction-identity fingerprint (weak on the function, so programs
#: die with their function)
_PROGRAM_CACHE: "weakref.WeakKeyDictionary[Function, dict]" = weakref.WeakKeyDictionary()
_PROGRAM_CACHE_LIMIT = 8


def compiled_program(
    func: Function, machine: MachineConfig, symbols: dict[str, int]
) -> CompiledProgram:
    """Memoized :class:`CompiledProgram` construction.

    Repeated simulation of the same function on the same machine (figure
    refreshes, ablations, repeated ``run_compiled_kernel`` calls) reuses the
    lowered program instead of recompiling every instruction.  The cache key
    fingerprints the instruction objects in layout order, so in-place
    reordering, insertion, or deletion after a prior simulation is detected
    and recompiled (the cached program keeps the fingerprinted instructions
    alive, so ids cannot be recycled while an entry lives).
    """
    key = (
        machine.cache_key(),
        tuple(sorted(symbols.items())),
        tuple(b.label for b in func.blocks),
        tuple(map(id, func.iter_instrs())),
    )
    per_func = _PROGRAM_CACHE.get(func)
    if per_func is None:
        per_func = {}
        _PROGRAM_CACHE[func] = per_func
    prog = per_func.get(key)
    if prog is None:
        if len(per_func) >= _PROGRAM_CACHE_LIMIT:
            per_func.clear()
        prog = CompiledProgram(func, machine, symbols)
        per_func[key] = prog
    return prog
