"""Execution-driven, cycle-accurate simulation.

Implements the paper's processor model (see :mod:`repro.machine`): in-order
issue of up to ``issue_width`` instructions per cycle, register interlocks
with deterministic latencies, one branch per cycle (a branch terminates its
issue packet), 100% cache hits.

The simulator is *execution driven*: it computes real values, follows real
branch outcomes, and mutates simulated memory, so transformation
correctness is checked at the same time performance is measured.

The interpreter executes millions of dynamic instructions per sweep, so the
hot loop works on the pre-flattened form built by
:class:`repro.sim.executor.CompiledProgram`: plain instruction tuples
(no attribute chasing) and flat list-indexed register banks (registers are
densely reindexed by ``Function.reindex_regs``; a list index replaces two
dict probes per operand).  Reads of never-written registers surface as
:class:`SimulationError` rather than silently producing zeros.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from ..machine import MachineConfig
from .errors import SimulationError
from .executor import (
    C_ALU,
    C_ALU1,
    C_ALU2,
    C_ALUN,
    C_BRANCH,
    C_HALT,
    C_JUMP,
    C_LOAD,
    C_NOP,
    C_STORE,
    C_VLOAD,
    C_VSTORE,
    CONST,
    CompiledProgram,
    FP_BANK,
    INT_BANK,
    compiled_program,
)
from .memory import Memory, SimMemoryError

#: engine used by ``simulate(engine="auto")``.  "compiled" is the
#: closure-compiled execute-then-replay engine (bit-identical results,
#: see DESIGN.md §13); "interp" is the tuple interpreter below.
DEFAULT_ENGINE = "compiled"


@dataclass
class RunResult:
    """Outcome of simulating one function to completion."""

    cycles: int
    instructions: int
    iregs: dict[int, int]
    fregs: dict[int, float]
    memory: Memory
    block_visits: dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def simulate(
    func: Function,
    machine: MachineConfig,
    memory: Memory | None = None,
    iregs: dict[int, int] | None = None,
    fregs: dict[int, float] | None = None,
    max_cycles: int = 200_000_000,
    collect_block_visits: bool = False,
    trace: list | None = None,
    engine: str = "auto",
) -> RunResult:
    """Run ``func`` to completion on the given machine configuration.

    ``iregs`` / ``fregs`` provide live-in register values; ``memory``
    supplies bound arrays and the symbol table.  Execution starts at the
    entry block and ends when control falls off the end of the last block.
    Program lowering is memoized per (function, machine, symbol table).

    ``engine`` selects the simulator core: ``"compiled"`` executes
    closure-compiled blocks once and replays the trace for timing
    (results are bit-identical to the interpreter); ``"interp"`` forces
    the tuple interpreter; ``"auto"`` (default) uses
    :data:`DEFAULT_ENGINE` but falls back to the interpreter when a
    per-instruction issue ``trace`` or ``collect_block_visits`` is
    requested, or when the program/machine is outside the compiled
    engine's scope (slot-limit ablations, sub-unit latencies).
    """
    memory = memory if memory is not None else Memory()
    prog = compiled_program(func, machine, memory.symbols)
    if engine == "auto":
        engine = DEFAULT_ENGINE
    if engine == "compiled" and trace is None and not collect_block_visits:
        from .blockgen import EngineUnsupported
        from .replay import ReplayUnsupported

        try:
            return run_traced(prog, memory, iregs or {}, fregs or {},
                              max_cycles)
        except (EngineUnsupported, ReplayUnsupported):
            pass  # outside the compiled engine's scope: interpret
    return run_compiled(
        prog, memory, iregs or {}, fregs or {}, max_cycles,
        collect_block_visits, trace,
    )


def run_traced(
    prog: CompiledProgram,
    memory: Memory,
    iregs: dict[int, int],
    fregs: dict[int, float],
    max_cycles: int = 200_000_000,
) -> RunResult:
    """The compiled engine: execute blocks once, replay the trace for
    timing.  Raises ``EngineUnsupported``/``ReplayUnsupported`` (before
    touching ``memory``) when the program or machine is out of scope."""
    from .blockgen import exec_plan, execute_plan
    from .replay import replay, replay_spec

    plan = exec_plan(prog)
    spec = replay_spec(plan, prog)  # validate machine before executing
    segs, ivals, fvals = execute_plan(plan, memory, iregs, fregs, max_cycles)
    cycles, n_instr = replay(segs, spec, max_cycles)
    return RunResult(cycles, n_instr, _bank_dict(ivals), _bank_dict(fvals),
                     memory, {})


def _bank_dict(vals: list) -> dict:
    """Registers that hold a value (live-in or written) as an id->value map."""
    return {i: v for i, v in enumerate(vals) if v is not None}


def run_compiled(
    prog: CompiledProgram,
    memory: Memory,
    iregs: dict[int, int],
    fregs: dict[int, float],
    max_cycles: int = 200_000_000,
    collect_block_visits: bool = False,
    trace: list | None = None,
) -> RunResult:
    machine = prog.machine
    width = machine.issue_width if machine.issue_width > 0 else 1 << 30
    slot_limits = machine.slot_limits

    mem = memory._words  # hot-path access
    ni, nf = prog.n_iregs, prog.n_fregs
    if iregs:
        ni = max(ni, max(iregs) + 1)
    if fregs:
        nf = max(nf, max(fregs) + 1)
    ivals: list = [None] * ni
    fvals: list = [None] * nf
    for r, v in iregs.items():
        ivals[r] = v
    for r, v in fregs.items():
        fvals[r] = v
    # vector banks have no live-ins: vectors exist only between a pack (or
    # vector load) and its extracts/stores inside the compiled function
    vivals: list = [None] * prog.n_viregs
    vfvals: list = [None] * prog.n_vfregs
    iready = [0] * ni
    fready = [0] * nf
    viready = [0] * prog.n_viregs
    vfready = [0] * prog.n_vfregs
    # indexed by bank tag; the CONST slot is never dereferenced
    banks_vals = (ivals, fvals, None, vivals, vfvals)
    banks_ready = (iready, fready, None, viready, vfready)

    codes = prog.flat
    nexts = prog.next_index
    labels = prog.labels
    visits: dict[str, int] = {}

    cycle = 0
    n_instr = 0
    last_issue = -1
    bi = 0
    ii = 0

    # Skip leading empty blocks.
    while bi < len(codes) and not codes[bi]:
        if collect_block_visits:
            visits[labels[bi]] = visits.get(labels[bi], 0) + 1
        nxt = nexts[bi]
        if nxt is None:
            return RunResult(0, 0, _bank_dict(ivals), _bank_dict(fvals),
                             memory, visits)
        bi = nxt

    if collect_block_visits:
        visits[labels[bi]] = 1

    code = codes[bi]
    ncode = len(code)
    # hot-loop locals (module-global loads are slower inside the loop)
    ALU2, ALU1, LOAD, STORE, BRANCH = C_ALU2, C_ALU1, C_LOAD, C_STORE, C_BRANCH
    JUMP, HALT = C_JUMP, C_HALT
    ALUN, VLOAD, VSTORE = C_ALUN, C_VLOAD, C_VSTORE
    KONST = CONST
    running = True
    while running:
        if cycle > max_cycles:
            raise SimulationError(
                f"exceeded {max_cycles} cycles in {prog.func.name} "
                f"(at block {labels[bi]})"
            )
        issued = 0
        slot_used: dict | None = None
        # issue packet for this cycle
        while True:
            if ii >= ncode:
                # fall through to next block (costs no cycles by itself)
                nxt = nexts[bi]
                if nxt is None:
                    running = False
                    break
                bi = nxt
                code = codes[bi]
                ncode = len(code)
                ii = 0
                if collect_block_visits:
                    lab = labels[bi]
                    visits[lab] = visits.get(lab, 0) + 1
                continue
            if issued >= width:
                break
            cat, fn, srcs, rsrcs, db, di, lat, meta = code[ii]

            # operand readiness (flow interlock); at most 3 register
            # sources outside variadic packs, so the loop is unrolled over
            # the flattened pairs with a generic tail for wider packs
            need = cycle
            lr = len(rsrcs)
            if lr:
                t = banks_ready[rsrcs[0]][rsrcs[1]]
                if t > need:
                    need = t
                if lr > 2:
                    t = banks_ready[rsrcs[2]][rsrcs[3]]
                    if t > need:
                        need = t
                    if lr > 4:
                        t = banks_ready[rsrcs[4]][rsrcs[5]]
                        if t > need:
                            need = t
                        if lr > 6:
                            for j in range(6, lr, 2):
                                t = banks_ready[rsrcs[j]][rsrcs[j + 1]]
                                if t > need:
                                    need = t
            # WAW interlock: later write must complete strictly later
            if db >= 0:
                t = banks_ready[db][di] - lat + 1
                if t > need:
                    need = t
            if need > cycle:
                if issued == 0:
                    # nothing issued yet: fast-forward to the stall end
                    cycle = need
                else:
                    break  # end this packet; retry next cycle
            if slot_limits:
                kind = meta[0]
                lim = slot_limits.get(kind)
                if lim is not None:
                    if slot_used is None:
                        slot_used = {}
                    used = slot_used.get(kind, 0)
                    if used >= lim:
                        break
                    slot_used[kind] = used + 1

            # ---- issue: execute semantics -------------------------------
            if cat == ALU2:
                b0, k0, b1, k1 = srcs
                a = k0 if b0 == KONST else banks_vals[b0][k0]
                b = k1 if b1 == KONST else banks_vals[b1][k1]
                try:
                    res = fn(a, b)
                except ZeroDivisionError:
                    raise SimulationError(f"division by zero: {meta[2]!r}") from None
                except TypeError:
                    if a is None or b is None:
                        raise SimulationError(
                            f"read of uninitialized register: {meta[2]!r}"
                        ) from None
                    raise
                banks_vals[db][di] = res
                banks_ready[db][di] = cycle + lat
            elif cat == LOAD:
                b0, k0, b1, k1 = srcs
                addr = -1
                try:
                    addr = (k0 if b0 == KONST else ivals[k0]) + (
                        k1 if b1 == KONST else ivals[k1]
                    )
                    banks_vals[db][di] = mem[addr >> 2]
                except KeyError:
                    raise SimMemoryError(
                        f"load from uninitialized address {addr:#x}: {meta[2]!r}"
                    ) from None
                except TypeError:
                    raise SimulationError(
                        f"read of uninitialized register: {meta[2]!r}"
                    ) from None
                banks_ready[db][di] = cycle + lat
            elif cat == STORE:
                b0, k0, b1, k1, bv, kv = srcs
                v = kv if bv == KONST else banks_vals[bv][kv]
                try:
                    addr = (k0 if b0 == KONST else ivals[k0]) + (
                        k1 if b1 == KONST else ivals[k1]
                    )
                except TypeError:
                    raise SimulationError(
                        f"read of uninitialized register: {meta[2]!r}"
                    ) from None
                if v is None:
                    raise SimulationError(
                        f"store of uninitialized register: {meta[2]!r}"
                    )
                mem[addr >> 2] = v
            elif cat == BRANCH:
                b0, k0, b1, k1 = srcs
                v0 = k0 if b0 == KONST else banks_vals[b0][k0]
                v1 = k1 if b1 == KONST else banks_vals[b1][k1]
                if v0 is None or v1 is None:
                    raise SimulationError(
                        f"read of uninitialized register: {meta[2]!r}"
                    )
                n_instr += 1
                issued += 1
                last_issue = cycle
                if trace is not None:
                    trace.append((cycle, meta[2]))
                if fn(v0, v1):
                    bi = meta[1]
                    code = codes[bi]
                    ncode = len(code)
                    ii = 0
                    if collect_block_visits:
                        lab = labels[bi]
                        visits[lab] = visits.get(lab, 0) + 1
                else:
                    ii += 1
                break  # branch terminates the issue packet
            elif cat == ALU1:
                b0, k0 = srcs
                a = k0 if b0 == KONST else banks_vals[b0][k0]
                try:
                    res = fn(a)
                except TypeError:
                    if a is None:
                        raise SimulationError(
                            f"read of uninitialized register: {meta[2]!r}"
                        ) from None
                    raise
                banks_vals[db][di] = res
                banks_ready[db][di] = cycle + lat
            elif cat == VLOAD:
                # fn holds the lane count; lanes occupy consecutive words
                b0, k0, b1, k1 = srcs
                addr = -1
                try:
                    addr = (k0 if b0 == KONST else ivals[k0]) + (
                        k1 if b1 == KONST else ivals[k1]
                    )
                    w = addr >> 2
                    banks_vals[db][di] = tuple(mem[w + j] for j in range(fn))
                except KeyError:
                    raise SimMemoryError(
                        f"load from uninitialized address {addr:#x}: {meta[2]!r}"
                    ) from None
                except TypeError:
                    raise SimulationError(
                        f"read of uninitialized register: {meta[2]!r}"
                    ) from None
                banks_ready[db][di] = cycle + lat
            elif cat == VSTORE:
                b0, k0, b1, k1, bv, kv = srcs
                v = banks_vals[bv][kv]
                try:
                    addr = (k0 if b0 == KONST else ivals[k0]) + (
                        k1 if b1 == KONST else ivals[k1]
                    )
                except TypeError:
                    raise SimulationError(
                        f"read of uninitialized register: {meta[2]!r}"
                    ) from None
                if v is None:
                    raise SimulationError(
                        f"store of uninitialized register: {meta[2]!r}"
                    )
                w = addr >> 2
                for j in range(fn):
                    mem[w + j] = v[j]
            elif cat == ALUN:
                # variadic pack: gather one lane per source into a tuple
                vals = []
                for j in range(0, len(srcs), 2):
                    bb = srcs[j]
                    kk = srcs[j + 1]
                    v = kk if bb == KONST else banks_vals[bb][kk]
                    if v is None:
                        raise SimulationError(
                            f"read of uninitialized register: {meta[2]!r}"
                        )
                    vals.append(v)
                banks_vals[db][di] = tuple(vals)
                banks_ready[db][di] = cycle + lat
            elif cat == HALT:
                n_instr += 1
                issued += 1
                last_issue = cycle
                if trace is not None:
                    trace.append((cycle, meta[2]))
                running = False
                break
            elif cat == JUMP:
                n_instr += 1
                issued += 1
                last_issue = cycle
                if trace is not None:
                    trace.append((cycle, meta[2]))
                bi = meta[1]
                code = codes[bi]
                ncode = len(code)
                ii = 0
                if collect_block_visits:
                    lab = labels[bi]
                    visits[lab] = visits.get(lab, 0) + 1
                break
            # C_NOP: just consumes an issue slot

            n_instr += 1
            issued += 1
            last_issue = cycle
            if trace is not None:
                trace.append((cycle, meta[2]))
            ii += 1

        cycle += 1

    # The paper's timing convention (its worked examples) counts a loop body
    # as ending one cycle after the final issue, so total cycles is
    # last_issue + 1.  In-flight completion beyond that is not charged.
    return RunResult(last_issue + 1, n_instr, _bank_dict(ivals),
                     _bank_dict(fvals), memory, visits)
