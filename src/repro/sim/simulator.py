"""Execution-driven, cycle-accurate simulation.

Implements the paper's processor model (see :mod:`repro.machine`): in-order
issue of up to ``issue_width`` instructions per cycle, register interlocks
with deterministic latencies, one branch per cycle (a branch terminates its
issue packet), 100% cache hits.

The simulator is *execution driven*: it computes real values, follows real
branch outcomes, and mutates simulated memory, so transformation
correctness is checked at the same time performance is measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from ..machine import MachineConfig
from .executor import (
    C_ALU,
    C_BRANCH,
    C_HALT,
    C_JUMP,
    C_LOAD,
    C_NOP,
    C_STORE,
    CONST,
    CompiledProgram,
    FP_BANK,
    INT_BANK,
)
from .memory import Memory, SimMemoryError


class SimulationError(RuntimeError):
    pass


@dataclass
class RunResult:
    """Outcome of simulating one function to completion."""

    cycles: int
    instructions: int
    iregs: dict[int, int]
    fregs: dict[int, float]
    memory: Memory
    block_visits: dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def simulate(
    func: Function,
    machine: MachineConfig,
    memory: Memory | None = None,
    iregs: dict[int, int] | None = None,
    fregs: dict[int, float] | None = None,
    max_cycles: int = 200_000_000,
    collect_block_visits: bool = False,
    trace: list | None = None,
) -> RunResult:
    """Run ``func`` to completion on the given machine configuration.

    ``iregs`` / ``fregs`` provide live-in register values; ``memory``
    supplies bound arrays and the symbol table.  Execution starts at the
    entry block and ends when control falls off the end of the last block.
    """
    memory = memory if memory is not None else Memory()
    prog = CompiledProgram(func, machine, memory.symbols)
    return run_compiled(
        prog, memory, iregs or {}, fregs or {}, max_cycles,
        collect_block_visits, trace,
    )


def run_compiled(
    prog: CompiledProgram,
    memory: Memory,
    iregs: dict[int, int],
    fregs: dict[int, float],
    max_cycles: int = 200_000_000,
    collect_block_visits: bool = False,
    trace: list | None = None,
) -> RunResult:
    machine = prog.machine
    width = machine.issue_width if machine.issue_width > 0 else 1 << 30
    slot_limits = machine.slot_limits

    mem = memory._words  # hot-path access
    ivals: dict[int, int] = dict(iregs)
    fvals: dict[int, float] = dict(fregs)
    iready: dict[int, int] = {}
    fready: dict[int, int] = {}
    banks_vals = (ivals, fvals)
    banks_ready = (iready, fready)

    blocks = prog.blocks
    tindex = prog.target_index
    visits: dict[str, int] = {}

    cycle = 0
    n_instr = 0
    last_issue = -1
    bi = 0
    ii = 0
    nblocks = len(blocks)

    # Skip leading empty blocks.
    while bi < nblocks and not blocks[bi].code:
        if collect_block_visits:
            visits[blocks[bi].label] = visits.get(blocks[bi].label, 0) + 1
        nxt = blocks[bi].next_index
        if nxt is None:
            return RunResult(0, 0, ivals, fvals, memory, visits)
        bi = nxt

    if collect_block_visits:
        visits[blocks[bi].label] = 1

    running = True
    while running:
        if cycle > max_cycles:
            raise SimulationError(
                f"exceeded {max_cycles} cycles in {prog.func.name} "
                f"(at block {blocks[bi].label})"
            )
        issued = 0
        slot_used: dict = {}
        # issue packet for this cycle
        while True:
            code = blocks[bi].code
            if ii >= len(code):
                # fall through to next block (costs no cycles by itself)
                nxt = blocks[bi].next_index
                if nxt is None:
                    running = False
                    break
                bi = nxt
                ii = 0
                if collect_block_visits:
                    lab = blocks[bi].label
                    visits[lab] = visits.get(lab, 0) + 1
                continue
            if issued >= width:
                break
            ci = code[ii]
            cat = ci.cat

            # operand readiness (flow interlock)
            need = cycle
            for bank, key in ci.srcs:
                if bank == CONST:
                    continue
                t = banks_ready[bank].get(key, 0)
                if t > need:
                    need = t
            # WAW interlock: later write must complete strictly later
            d = ci.dest
            if d is not None:
                prev = banks_ready[d[0]].get(d[1], 0)
                t = prev - ci.lat + 1
                if t > need:
                    need = t
            if need > cycle:
                if issued == 0:
                    # nothing issued yet: fast-forward to the stall end
                    cycle = need
                else:
                    break  # end this packet; retry next cycle
            if slot_limits:
                k = ci.kind
                lim = slot_limits.get(k)
                if lim is not None:
                    used = slot_used.get(k, 0)
                    if used >= lim:
                        break
                    slot_used[k] = used + 1

            # ---- issue: execute semantics -------------------------------
            if cat == C_ALU:
                vals = [
                    key if bank == CONST else banks_vals[bank][key]
                    for bank, key in ci.srcs
                ]
                try:
                    res = ci.fn(*vals)
                except ZeroDivisionError:
                    raise SimulationError(f"division by zero: {ci.instr!r}") from None
                banks_vals[d[0]][d[1]] = res
                banks_ready[d[0]][d[1]] = cycle + ci.lat
            elif cat == C_LOAD:
                b0, k0 = ci.srcs[0]
                b1, k1 = ci.srcs[1]
                addr = (k0 if b0 == CONST else ivals[k0]) + (
                    k1 if b1 == CONST else ivals[k1]
                )
                try:
                    banks_vals[d[0]][d[1]] = mem[addr >> 2]
                except KeyError:
                    raise SimMemoryError(
                        f"load from uninitialized address {addr:#x}: {ci.instr!r}"
                    ) from None
                banks_ready[d[0]][d[1]] = cycle + ci.lat
            elif cat == C_STORE:
                b0, k0 = ci.srcs[0]
                b1, k1 = ci.srcs[1]
                bv, kv = ci.srcs[2]
                addr = (k0 if b0 == CONST else ivals[k0]) + (
                    k1 if b1 == CONST else ivals[k1]
                )
                mem[addr >> 2] = kv if bv == CONST else banks_vals[bv][kv]
            elif cat == C_BRANCH:
                vals = [
                    key if bank == CONST else banks_vals[bank][key]
                    for bank, key in ci.srcs
                ]
                n_instr += 1
                issued += 1
                last_issue = cycle
                if trace is not None:
                    trace.append((cycle, ci.instr))
                if ci.fn(*vals):
                    bi = tindex[ci.target]
                    ii = 0
                    if collect_block_visits:
                        lab = blocks[bi].label
                        visits[lab] = visits.get(lab, 0) + 1
                else:
                    ii += 1
                break  # branch terminates the issue packet
            elif cat == C_HALT:
                n_instr += 1
                issued += 1
                last_issue = cycle
                if trace is not None:
                    trace.append((cycle, ci.instr))
                running = False
                break
            elif cat == C_JUMP:
                n_instr += 1
                issued += 1
                last_issue = cycle
                if trace is not None:
                    trace.append((cycle, ci.instr))
                bi = tindex[ci.target]
                ii = 0
                if collect_block_visits:
                    lab = blocks[bi].label
                    visits[lab] = visits.get(lab, 0) + 1
                break
            # C_NOP: just consumes an issue slot

            n_instr += 1
            issued += 1
            last_issue = cycle
            if trace is not None:
                trace.append((cycle, ci.instr))
            ii += 1

        cycle += 1

    # The paper's timing convention (its worked examples) counts a loop body
    # as ending one cycle after the final issue, so total cycles is
    # last_issue + 1.  In-flight completion beyond that is not charged.
    return RunResult(last_issue + 1, n_instr, ivals, fvals, memory, visits)
