"""Simulated memory and symbol table.

The modeled machine is word-addressed for our purposes: every array element
(integer or floating point) occupies one 4-byte word, matching the paper's
figures where array strides are 4 bytes (``r1i = r1i + 4``).  The paper
assumes a 100% cache hit rate, so loads always take the Table-1 latency and
memory is a flat store.

Arrays are bound FORTRAN-style: column-major, 1-based subscripts by
convention of the frontend (the lowering handles index arithmetic; memory
itself is flat).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: bytes per element / addressing granularity
WORD = 4


class SimMemoryError(RuntimeError):
    pass


class Memory:
    """Flat word-granular memory with array binding helpers."""

    def __init__(self) -> None:
        self._words: dict[int, float | int] = {}
        self._next_base = 0x1000  # leave low addresses unused
        self._arrays: dict[str, tuple[int, int]] = {}  # name -> (base, n_words)
        self.symbols: dict[str, int] = {}

    # -- raw access ---------------------------------------------------------

    def load(self, addr: int) -> float | int:
        if addr % WORD:
            raise SimMemoryError(f"unaligned load at {addr:#x}")
        try:
            return self._words[addr // WORD]
        except KeyError:
            raise SimMemoryError(f"load from uninitialized address {addr:#x}") from None

    def store(self, addr: int, value: float | int) -> None:
        if addr % WORD:
            raise SimMemoryError(f"unaligned store at {addr:#x}")
        self._words[addr // WORD] = value

    # -- array binding --------------------------------------------------------

    def bind_array(self, name: str, data: np.ndarray) -> int:
        """Copy ``data`` into memory (column-major order) and create a symbol
        for its base address.  Returns the base address."""
        flat = np.asarray(data).flatten(order="F")
        n = flat.size
        base = self._next_base
        self._next_base += (n + 8) * WORD  # pad between arrays
        w = base // WORD
        # tolist() converts to native int/float in one pass (the simulator
        # computes in exact Python semantics, never numpy scalars)
        self._words.update(zip(range(w, w + n), flat.tolist()))
        self._arrays[name] = (base, n)
        self.symbols[name] = base
        return base

    def read_array(self, name: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Read an array back out of memory (column-major)."""
        base, n = self._arrays[name]
        want = int(np.prod(shape))
        if want > n:
            raise SimMemoryError(f"array {name} has {n} words, asked for {want}")
        w = base // WORD
        words = self._words
        flat = np.array([words[w + i] for i in range(want)], dtype=dtype)
        return flat.reshape(shape, order="F")

    def array_base(self, name: str) -> int:
        return self._arrays[name][0]

    def __len__(self) -> int:
        return len(self._words)
