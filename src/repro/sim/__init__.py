"""repro.sim — execution-driven cycle-accurate simulation."""

from .memory import Memory, SimMemoryError, WORD
from .executor import CompiledInstr, CompiledProgram, compile_instr, compiled_program
from .simulator import RunResult, SimulationError, run_compiled, simulate
from .trace import render_packets, render_pipeline

__all__ = [
    "Memory", "SimMemoryError", "WORD",
    "CompiledInstr", "CompiledProgram", "compile_instr", "compiled_program",
    "RunResult", "SimulationError", "run_compiled", "simulate",
    "render_packets", "render_pipeline",
]
