"""repro.sim — execution-driven cycle-accurate simulation."""

from .memory import Memory, SimMemoryError, WORD
from .executor import (
    ENGINE_VERSION, CompiledInstr, CompiledProgram, compile_instr,
    compiled_program,
)
from .simulator import (
    DEFAULT_ENGINE, RunResult, SimulationError, run_compiled, run_traced,
    simulate,
)
from .blockgen import EngineUnsupported, ExecPlan, exec_plan, execute_plan
from .replay import (
    ReplaySpec, ReplayUnmapped, ReplayUnsupported, replay, replay_spec,
)
from .trace import render_packets, render_pipeline

__all__ = [
    "Memory", "SimMemoryError", "WORD",
    "ENGINE_VERSION", "CompiledInstr", "CompiledProgram", "compile_instr",
    "compiled_program",
    "DEFAULT_ENGINE", "RunResult", "SimulationError", "run_compiled",
    "run_traced", "simulate",
    "EngineUnsupported", "ExecPlan", "exec_plan", "execute_plan",
    "ReplaySpec", "ReplayUnmapped", "ReplayUnsupported", "replay",
    "replay_spec",
    "render_packets", "render_pipeline",
]
