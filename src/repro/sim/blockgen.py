"""Closure-compiled block execution: the value half of the fast engine.

The tuple interpreter in :mod:`repro.sim.simulator` pays a dispatch,
an operand-descriptor unpack, and a readiness check per dynamic
instruction.  For *execution* (computing values, following branches,
mutating memory) none of the timing work is needed, so this module
compiles every basic block into a specialized straight-line Python
function over the flat register banks::

    def _b3(iv, fv, vi, vf, mem):
        fv[2] = mem[(iv[5] + 4096) >> 2]
        fv[3] = fv[2] * fv[1]
        iv[5] = iv[5] + 4
        if iv[5] < iv[6]:
            return 7        # segment id: block 3 exited via this branch
        return 8            # segment id: block 3 fell through

Each function returns a *segment id* identifying how the block exited:
either a specific taken control instruction or the fall-through.  Running
the program is then just chaining block calls and recording segment ids —
the resulting segment sequence is the :class:`ExecPlan`'s compact dynamic
trace, which the timing side (:mod:`repro.sim.replay`) replays per issue
width.

Error semantics are preserved exactly (the interpreter's contract is that
reads of never-written registers raise :class:`SimulationError`, never a
codegen artifact like ``NameError``):

* never-written registers hold ``None``; arithmetic on ``None`` raises
  ``TypeError`` naturally, which the driver maps back — via a
  line-number-to-instruction table — to the interpreter's exact
  ``SimulationError``/``SimMemoryError`` message;
* ``==``/``!=`` comparisons and stores would *silently accept* ``None``,
  so the generator emits explicit guards for equality branches and store
  values (calling ``_ur``/``_us``, which raise the interpreter's
  messages directly);
* division by zero and loads from unbound addresses translate the same
  way (``ZeroDivisionError``/``KeyError`` at a known line).

Programs the generator cannot express raise :class:`EngineUnsupported`
and the caller falls back to the interpreter.
"""

from __future__ import annotations

import math
from bisect import bisect_right

from ..ir.instructions import Op
from .errors import SimulationError
from .executor import (
    C_ALUN,
    C_BRANCH,
    C_HALT,
    C_JUMP,
    C_LOAD,
    C_NOP,
    C_STORE,
    C_VLOAD,
    C_VSTORE,
    CONST,
    CompiledInstr,
    CompiledProgram,
    FP_BANK,
    INT_BANK,
    VEC_SEMANTICS,
    VFP_BANK,
    VINT_BANK,
    _MASK64,
    _idiv,
    _irem,
)
from .memory import SimMemoryError


class EngineUnsupported(Exception):
    """This program cannot be closure-compiled; use the interpreter."""


#: sentinel exit for "fell through the end of the block"
FALL = None

_INFIX = {
    Op.ADD: "+", Op.SUB: "-", Op.MUL: "*",
    Op.AND: "&", Op.OR: "|", Op.XOR: "^",
    Op.SHL: "<<", Op.SHRA: ">>",
    Op.FADD: "+", Op.FSUB: "-", Op.FMUL: "*", Op.FDIV: "/",
}
_HELPER = {Op.DIV: "_idiv", Op.REM: "_irem", Op.SHRL: "_shrl"}
_CMP_INFIX = {
    Op.BLT: "<", Op.BLE: "<=", Op.BGT: ">", Op.BGE: ">=",
    Op.BEQ: "==", Op.BNE: "!=",
    Op.FBLT: "<", Op.FBLE: "<=", Op.FBGT: ">", Op.FBGE: ">=",
    Op.FBEQ: "==", Op.FBNE: "!=",
}
#: comparisons that silently accept None (``==``/``!=`` never raise), so
#: the generated code needs an explicit uninitialized-read guard
_EQNE = {Op.BEQ, Op.BNE, Op.FBEQ, Op.FBNE}

#: element-wise vector ops call shared per-lane helpers so both engines
#: use the identical semantic functions (see executor.VEC_SEMANTICS)
_VHELPER = {
    Op.VADD: "_vadd", Op.VSUB: "_vsub", Op.VMUL: "_vmul",
    Op.VFADD: "_vfadd", Op.VFSUB: "_vfsub", Op.VFMUL: "_vfmul",
    Op.VFDIV: "_vfdiv",
}


def _shrl(a, b):
    return (a & _MASK64) >> b


_BANK_VAR = {INT_BANK: "iv", FP_BANK: "fv", VINT_BANK: "vi", VFP_BANK: "vf"}


def _expr(desc) -> str:
    """Fetch expression for one operand descriptor (bank, key)."""
    bank, key = desc
    if bank != CONST:
        return f"{_BANK_VAR[bank]}[{key}]"
    if isinstance(key, float) and not math.isfinite(key):
        raise EngineUnsupported(f"non-finite constant {key!r}")
    return f"({key!r})"


def _dest(ci: CompiledInstr) -> str:
    bank, idx = ci.dest
    return f"{_BANK_VAR[bank]}[{idx}]"


def _addr_expr(s0, s1) -> str:
    """Word-index expression for a load/store address (base + offset)."""
    if s0[0] == CONST and s1[0] == CONST:
        return repr((s0[1] + s1[1]) >> 2)  # fold; Python >> floors like runtime
    return f"({_expr(s0)} + {_expr(s1)}) >> 2"


class ExecPlan:
    """A program compiled to per-block closures plus its segment table.

    A *segment* is one way one block's execution can end: ``(block,
    exit)`` where ``exit`` is a specific control instruction (taken
    branch / jump / halt) or :data:`FALL`.  The block functions return
    segment ids; the driver chains them and records the id sequence —
    that sequence plus end-state values is the complete observable
    behavior of the run, independent of issue width.
    """

    def __init__(self, prog: CompiledProgram):
        self.prog = prog
        self.seg_block: list[int] = []      # segment -> block index
        self.seg_exit: list = []            # segment -> CompiledInstr | FALL
        self.seg_next: list[int | None] = []  # segment -> next block | None
        self.instrs: list[CompiledInstr] = []  # global instr index -> ci
        self._line_starts: list[int] = []   # parallel: first lineno of instr
        self._line_gi: list[int] = []
        self.filename = f"<simblocks:{prog.func.name}:{id(prog)}>"
        self._build()

    # -- codegen ------------------------------------------------------------

    def _new_seg(self, block: int, exit_ci, next_block: int | None) -> int:
        self.seg_block.append(block)
        self.seg_exit.append(exit_ci)
        self.seg_next.append(next_block)
        return len(self.seg_block) - 1

    def _build(self) -> None:
        prog = self.prog
        lines: list[str] = []
        emit = lines.append
        for b, blk in enumerate(prog.blocks):
            emit(f"def _b{b}(iv, fv, vi, vf, mem):")
            for ci in blk.code:
                gi = len(self.instrs)
                self.instrs.append(ci)
                stmts = self._gen(ci, b, gi)
                if stmts:
                    self._line_starts.append(len(lines) + 1)
                    self._line_gi.append(gi)
                    for s in stmts:
                        emit("    " + s)
            fall = self._new_seg(b, FALL, blk.next_index)
            emit(f"    return {fall}")
        code = compile("\n".join(lines), self.filename, "exec")
        g = {
            "_idiv": _idiv, "_irem": _irem, "_shrl": _shrl,
            "_flt": float, "_trunc": math.trunc,
            "_ur": self._raise_uninit_read, "_us": self._raise_uninit_store,
        }
        for vop, name in _VHELPER.items():
            g[name] = VEC_SEMANTICS[vop]
        exec(code, g)
        self.block_fns = [g[f"_b{b}"] for b in range(len(prog.blocks))]
        self.source = "\n".join(lines)

    def _gen(self, ci: CompiledInstr, b: int, gi: int) -> list[str]:
        op = ci.instr.op
        cat = ci.cat
        if cat == C_NOP:
            return []
        if cat == C_HALT:
            return [f"return {self._new_seg(b, ci, None)}"]
        if cat == C_JUMP:
            tgt = self.prog.index[ci.target]
            return [f"return {self._new_seg(b, ci, tgt)}"]
        if cat == C_BRANCH:
            tgt = self.prog.index[ci.target]
            seg = self._new_seg(b, ci, tgt)
            a, bx = _expr(ci.srcs[0]), _expr(ci.srcs[1])
            out = []
            if op in _EQNE:
                checks = [f"{_expr(s)} is None" for s in ci.srcs if s[0] != CONST]
                if checks:
                    out.append(f"if {' or '.join(checks)}: _ur({gi})")
            out.append(f"if {a} {_CMP_INFIX[op]} {bx}:")
            out.append(f"    return {seg}")
            return out
        if cat == C_LOAD:
            return [f"{_dest(ci)} = mem[{_addr_expr(ci.srcs[0], ci.srcs[1])}]"]
        if cat == C_STORE:
            s0, s1, sv = ci.srcs
            addr = _addr_expr(s0, s1)
            if sv[0] == CONST:
                return [f"mem[{addr}] = {_expr(sv)}"]
            # interpreter order: fetch value, compute address (TypeError ->
            # uninitialized *read*), THEN reject a None value as an
            # uninitialized *store* — keep the address first here so the
            # read error wins when both apply
            return [
                f"_a = {addr}",
                f"_v = {_expr(sv)}",
                f"if _v is None: _us({gi})",
                "mem[_a] = _v",
            ]
        if cat == C_VLOAD:
            # fn holds the lane count; lanes occupy consecutive words
            lanes = ci.fn
            words = ", ".join(
                f"mem[_w + {j}]" if j else "mem[_w]" for j in range(lanes)
            )
            return [
                f"_w = {_addr_expr(ci.srcs[0], ci.srcs[1])}",
                f"{_dest(ci)} = ({words})",
            ]
        if cat == C_VSTORE:
            s0, s1, sv = ci.srcs
            # same commit order as the scalar store: address first (read
            # error wins), then the uninitialized-value guard, then writes
            out = [
                f"_a = {_addr_expr(s0, s1)}",
                f"_v = {_expr(sv)}",
                f"if _v is None: _us({gi})",
            ]
            out.extend(
                f"mem[_a + {j}] = _v[{j}]" if j else "mem[_a] = _v[0]"
                for j in range(ci.fn)
            )
            return out
        if cat == C_ALUN:
            # variadic pack: tuple literal; tuple display accepts None
            # silently, so guard every register lane explicitly
            out = []
            checks = [f"{_expr(s)} is None" for s in ci.srcs if s[0] != CONST]
            if checks:
                out.append(f"if {' or '.join(checks)}: _ur({gi})")
            out.append(
                f"{_dest(ci)} = ({', '.join(_expr(s) for s in ci.srcs)},)"
            )
            return out
        # ALU (generic C_ALU: two- or one-operand)
        if op in _VHELPER:
            a, bx = _expr(ci.srcs[0]), _expr(ci.srcs[1])
            return [f"{_dest(ci)} = {_VHELPER[op]}({a}, {bx})"]
        if op in (Op.VEXT, Op.VEXTF):
            return [f"{_dest(ci)} = {_expr(ci.srcs[0])}[{_expr(ci.srcs[1])}]"]
        if op in _INFIX:
            a, bx = _expr(ci.srcs[0]), _expr(ci.srcs[1])
            return [f"{_dest(ci)} = {a} {_INFIX[op]} {bx}"]
        if op in _HELPER:
            a, bx = _expr(ci.srcs[0]), _expr(ci.srcs[1])
            return [f"{_dest(ci)} = {_HELPER[op]}({a}, {bx})"]
        if op in (Op.MOV, Op.FMOV):
            return [f"{_dest(ci)} = {_expr(ci.srcs[0])}"]
        if op is Op.ITOF:
            return [f"{_dest(ci)} = _flt({_expr(ci.srcs[0])})"]
        if op is Op.FTOI:
            return [f"{_dest(ci)} = _trunc({_expr(ci.srcs[0])})"]
        raise EngineUnsupported(f"cannot compile {ci.instr!r}")

    # -- interpreter-identical error raising --------------------------------

    def _raise_uninit_read(self, gi: int):
        raise SimulationError(
            f"read of uninitialized register: {self.instrs[gi].instr!r}"
        )

    def _raise_uninit_store(self, gi: int):
        raise SimulationError(
            f"store of uninitialized register: {self.instrs[gi].instr!r}"
        )

    def translate_error(self, exc: BaseException, iv: list, fv: list,
                        vi: list = (), vf: list = ()):
        """Re-raise ``exc`` (raised inside generated code) exactly as the
        interpreter would have.

        The traceback's deepest frame in the generated module names the
        failing line; the line table maps it to the instruction.  The
        instruction had not committed its destination, so its source
        operands are intact in the banks and can be re-read to build the
        interpreter's message (e.g. the faulting load address).
        """
        lineno = None
        tb = exc.__traceback__
        while tb is not None:
            if tb.tb_frame.f_code.co_filename == self.filename:
                lineno = tb.tb_lineno
            tb = tb.tb_next
        if lineno is None:
            raise exc
        k = bisect_right(self._line_starts, lineno) - 1
        if k < 0:
            raise exc
        ci = self.instrs[self._line_gi[k]]
        banks = (iv, fv, None, vi, vf)
        vals = [k2 if b2 == CONST else banks[b2][k2] for b2, k2 in ci.srcs]
        ins = ci.instr
        if isinstance(exc, KeyError) and ci.cat in (C_LOAD, C_VLOAD):
            addr = vals[0] + vals[1]
            raise SimMemoryError(
                f"load from uninitialized address {addr:#x}: {ins!r}"
            ) from None
        if isinstance(exc, ZeroDivisionError):
            raise SimulationError(f"division by zero: {ins!r}") from None
        if isinstance(exc, TypeError) and any(v is None for v in vals):
            raise SimulationError(
                f"read of uninitialized register: {ins!r}"
            ) from None
        raise exc


def exec_plan(prog: CompiledProgram) -> ExecPlan:
    """Memoized :class:`ExecPlan` for a compiled program (raises
    :class:`EngineUnsupported`, also memoized, when codegen cannot
    express the program)."""
    plan = getattr(prog, "_exec_plan", None)
    if plan is not None:
        return plan
    why = getattr(prog, "_exec_plan_unsupported", None)
    if why is not None:
        raise EngineUnsupported(why)
    try:
        plan = ExecPlan(prog)
    except EngineUnsupported as e:
        prog._exec_plan_unsupported = str(e)
        raise
    prog._exec_plan = plan
    return plan


def execute_plan(
    plan: ExecPlan,
    memory,
    iregs: dict[int, int],
    fregs: dict[int, float],
    max_cycles: int = 200_000_000,
) -> tuple[list[int], list, list]:
    """Run the program valuewise; returns (segment trace, ivals, fvals).

    Mutates ``memory`` exactly as the interpreter would.  The segment
    count is bounded via ``max_cycles``: every control-exit segment costs
    at least one cycle on any machine, and fall-through chains between
    control exits are bounded by the block count, so a run that exceeds
    ``(max_cycles + 2) * (n_blocks + 1)`` segments cannot be within the
    cycle budget on any width and raises the interpreter's runaway error.
    """
    prog = plan.prog
    ni, nf = prog.n_iregs, prog.n_fregs
    if iregs:
        ni = max(ni, max(iregs) + 1)
    if fregs:
        nf = max(nf, max(fregs) + 1)
    iv: list = [None] * ni
    fv: list = [None] * nf
    for r, v in iregs.items():
        iv[r] = v
    for r, v in fregs.items():
        fv[r] = v

    # vector banks have no live-ins (vectors exist only between a pack or
    # vector load and their extracts/stores)
    vi: list = [None] * prog.n_viregs
    vf: list = [None] * prog.n_vfregs

    mem = memory._words
    fns = plan.block_fns
    seg_next = plan.seg_next
    segs: list[int] = []
    append = segs.append
    limit = (max_cycles + 2) * (len(fns) + 1)
    bi: int | None = 0 if fns else None
    try:
        while bi is not None:
            s = fns[bi](iv, fv, vi, vf, mem)
            append(s)
            bi = seg_next[s]
            if len(segs) > limit:
                raise SimulationError(
                    f"exceeded {max_cycles} cycles in {prog.func.name} "
                    f"(at block {prog.labels[plan.seg_block[s]]})"
                )
    except (SimulationError, SimMemoryError):
        raise
    except (TypeError, KeyError, ZeroDivisionError) as e:
        plan.translate_error(e, iv, fv, vi, vf)
        raise
    return segs, iv, fv
