"""Dependence DAG construction for scheduling a linear code region.

Nodes are positions in the instruction sequence (a superblock body or a
basic block).  Edges carry minimum issue-time separations consistent with
the machine model (see :mod:`repro.machine`):

* register flow:    def -> use,  weight = latency(def)
* register anti:    use -> def,  weight = 0   (reads happen at issue)
* register output:  def -> def,  weight = max(lat1 - lat2 + 1, 0)
  (a later write must complete strictly after an earlier one)
* memory flow/output: store -> {load,store}, weight 1, unless the
  addresses provably differ (symbolic disambiguation)
* memory anti:      load -> store, weight 0
* control:
  - branch -> branch, weight 1 (branches stay ordered; a branch ends its
    issue packet);
  - instr -> next-following branch, weight 0 (superblock scheduling does
    not move instructions *downward* past a branch — that is the
    bookkeeping trace scheduling needed and superblocks avoid);
  - branch -> later instr, weight 1, **unless** the instruction may be
    speculated above the branch: it cannot trap, is not a store or
    branch, the machine's speculation model covers it (non-excepting
    loads / FP), and its destination is not live at the branch target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.instructions import Instr, Kind
from ..ir.operands import Reg
from ..machine import MachineConfig
from .memdep import AddressAnalysis, may_alias


@dataclass
class DepGraph:
    instrs: list[Instr]
    #: succs[i] -> list of (j, weight)
    succs: list[list[tuple[int, int]]]
    preds: list[list[tuple[int, int]]]
    latency: list[int]

    def n(self) -> int:
        return len(self.instrs)

    def add_edge(self, i: int, j: int, w: int) -> None:
        assert i < j, f"dependence edge must go forward: {i} -> {j}"
        self.succs[i].append((j, w))
        self.preds[j].append((i, w))

    def heights(self) -> list[int]:
        """Critical-path priority: longest weighted path from each node to
        any sink, plus the node's own latency at the sink end."""
        n = self.n()
        h = [0] * n
        for i in range(n - 1, -1, -1):
            best = self.latency[i]
            for j, w in self.succs[i]:
                cand = w + h[j]
                if cand > best:
                    best = cand
            h[i] = best
        return h

    def transitive_ok(self, order: list[int]) -> bool:
        """Check a proposed order respects all edges (used by tests)."""
        pos = {node: k for k, node in enumerate(order)}
        return all(
            pos[i] < pos[j]
            for i in range(self.n())
            for j, _ in self.succs[i]
        )


def speculable(
    ins: Instr,
    machine: MachineConfig,
    target_live: set[Reg] | None,
) -> bool:
    """May ``ins`` be hoisted above a branch whose target's live-in set is
    ``target_live`` (None = unknown, be conservative)?"""
    if ins.is_store or ins.is_control or ins.may_trap:
        return False
    if ins.is_load and not machine.speculative_loads:
        return False
    k = ins.kind
    if k in (Kind.FP_ALU, Kind.FP_MUL, Kind.FP_DIV, Kind.FP_CVT,
             Kind.VEC_FALU, Kind.VEC_FMUL, Kind.VEC_FDIV) and not machine.speculative_fp:
        return False
    if ins.dest is not None:
        if target_live is None:
            return False
        if ins.dest in target_live:
            return False
    return True


def build_depgraph(
    instrs: list[Instr],
    machine: MachineConfig,
    exit_live: dict[int, set[Reg]] | None = None,
    addr_analysis: AddressAnalysis | None = None,
    prologue: list[Instr] | None = None,
    doall: bool = False,
) -> DepGraph:
    """Build the dependence DAG for one linear region.

    ``exit_live`` maps the *position* of each side-exit branch to the set of
    registers live at its target.  Unlisted branches are treated
    conservatively (nothing with a destination may be hoisted above them),
    except the final instruction, above which hoisting is meaningless.

    ``prologue`` (the loop preheader) sharpens memory disambiguation; see
    :class:`repro.analysis.memdep.AddressAnalysis`.  ``doall`` asserts the
    region is the body of a DOALL loop (KAP's classification, Table 2 of
    the paper): memory accesses from *different unrolled iterations*
    (``Instr.tag``) are then independent by definition.
    """
    n = len(instrs)
    g = DepGraph(
        instrs,
        [[] for _ in range(n)],
        [[] for _ in range(n)],
        [machine.latency(ins.op) for ins in instrs],
    )
    exit_live = exit_live or {}

    # --- register dependences -------------------------------------------
    last_def: dict[Reg, int] = {}
    uses_since_def: dict[Reg, list[int]] = {}
    for j, ins in enumerate(instrs):
        for r in ins.reg_uses():
            i = last_def.get(r)
            if i is not None:
                g.add_edge(i, j, g.latency[i])  # flow
            uses_since_def.setdefault(r, []).append(j)
        d = ins.dest
        if d is not None:
            for i in uses_since_def.get(d, ()):  # anti
                if i != j:
                    g.add_edge(i, j, 0)
            i = last_def.get(d)
            if i is not None:  # output
                g.add_edge(i, j, max(g.latency[i] - g.latency[j] + 1, 0))
            last_def[d] = j
            uses_since_def[d] = []

    # --- memory dependences -----------------------------------------------
    mem_positions = [i for i, ins in enumerate(instrs) if ins.is_mem]
    if mem_positions:
        aa = addr_analysis or AddressAnalysis(instrs, prologue)
        exprs = {i: aa.address_expr(i) for i in mem_positions}
        for a_idx in range(len(mem_positions)):
            i = mem_positions[a_idx]
            ins_i = instrs[i]
            for b_idx in range(a_idx + 1, len(mem_positions)):
                j = mem_positions[b_idx]
                ins_j = instrs[j]
                if not (ins_i.is_store or ins_j.is_store):
                    continue  # load-load: independent
                if (doall and ins_i.tag != ins_j.tag
                        and not (ins_i.is_vector or ins_j.is_vector)):
                    # different iterations of a DOALL loop; a vector access
                    # spans several iterations, so its tag proves nothing
                    continue
                if not may_alias(exprs[i], exprs[j],
                                 ins_i.mem_words, ins_j.mem_words):
                    continue
                if ins_i.is_store:
                    g.add_edge(i, j, 1)  # flow or output
                else:
                    g.add_edge(i, j, 0)  # anti

    # --- control dependences -------------------------------------------------
    branch_positions = [i for i, ins in enumerate(instrs) if ins.is_control]
    # branches stay ordered; a branch ends its packet
    for a, b in zip(branch_positions, branch_positions[1:]):
        g.add_edge(a, b, 1)
    # no downward motion past a branch
    bp = 0
    for i in range(n):
        while bp < len(branch_positions) and branch_positions[bp] <= i:
            bp += 1
        if bp < len(branch_positions) and not instrs[i].is_control:
            g.add_edge(i, branch_positions[bp], 0)
    # upward motion (speculation) above a branch only when safe
    for b in branch_positions:
        tl = exit_live.get(b)
        for j in range(b + 1, n):
            ins_j = instrs[j]
            if ins_j.is_control:
                continue  # branch-branch edges already added
            if not speculable(ins_j, machine, tl):
                g.add_edge(b, j, 1)

    return g
