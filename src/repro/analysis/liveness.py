"""Backward liveness analysis over the CFG.

Used by register renaming (which values are live around the loop), by the
superblock scheduler (what a side exit's target reads limits speculation),
by the expansion transformations (exit fix-up code), and by register-usage
measurement.

Because simulated functions end by falling off the last block, registers
that hold *results* read by the harness after the run would look dead.
Callers pass ``live_out_exit``: the registers considered live at function
exit (the workload's output scalars).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.operands import Reg


@dataclass
class Liveness:
    live_in: dict[str, set[Reg]] = field(default_factory=dict)
    live_out: dict[str, set[Reg]] = field(default_factory=dict)
    #: per-block gen (upward-exposed uses) and kill (defs)
    gen: dict[str, set[Reg]] = field(default_factory=dict)
    kill: dict[str, set[Reg]] = field(default_factory=dict)


def block_gen_kill(instrs) -> tuple[set[Reg], set[Reg]]:
    gen: set[Reg] = set()
    kill: set[Reg] = set()
    for ins in instrs:
        for r in ins.reg_uses():
            if r not in kill:
                gen.add(r)
        for r in ins.reg_defs():
            kill.add(r)
    return gen, kill


def liveness(func: Function, live_out_exit: set[Reg] | None = None) -> Liveness:
    """Iterative backward may-liveness to fixpoint."""
    lv = Liveness()
    live_out_exit = live_out_exit or set()
    labels = [b.label for b in func.blocks]
    bm = func.block_map()
    succs = {lab: [s for s in func.successors(bm[lab]) if s in bm] for lab in labels}
    terminal = {lab for lab in labels if not succs[lab]}

    for lab in labels:
        g, k = block_gen_kill(bm[lab].instrs)
        lv.gen[lab] = g
        lv.kill[lab] = k
        lv.live_in[lab] = set(g)
        lv.live_out[lab] = set(live_out_exit) if lab in terminal else set()

    changed = True
    while changed:
        changed = False
        for lab in reversed(labels):
            out = set(live_out_exit) if lab in terminal else set()
            for s in succs[lab]:
                out |= lv.live_in[s]
            if out != lv.live_out[lab]:
                lv.live_out[lab] = out
                changed = True
            new_in = lv.gen[lab] | (out - lv.kill[lab])
            if new_in != lv.live_in[lab]:
                lv.live_in[lab] = new_in
                changed = True
    return lv


def live_at_instr_positions(instrs, live_out: set[Reg]) -> list[set[Reg]]:
    """Live set *before* each instruction of a linear sequence, given the
    live-out set at its end.  Index i is the set live entering instrs[i];
    an extra final entry holds live_out itself."""
    n = len(instrs)
    live = [set() for _ in range(n + 1)]
    live[n] = set(live_out)
    cur = set(live_out)
    for i in range(n - 1, -1, -1):
        ins = instrs[i]
        for r in ins.reg_defs():
            cur.discard(r)
        for r in ins.reg_uses():
            cur.add(r)
        live[i] = set(cur)
    return live
