"""Loop variable classification and counted-loop metadata.

* :class:`CountedLoop` — the canonical counted-loop shape the frontend
  emits and that preconditioned unrolling relies on: a basic induction
  register stepped by a constant in the latch, tested against a
  loop-invariant limit by the backedge branch, with
  ``limit == iv0 + count * step`` exactly (the frontend constructs limits
  that way, and strength reduction preserves the relation).

* accumulator / induction / search variable detection over a superblock
  body, implementing the recognition conditions of the paper's Figure 2
  and Figure 4 algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..ir.instructions import Instr, Op
from ..ir.operands import Imm, Operand, Reg


@dataclass
class CountedLoop:
    """Metadata for a canonically-shaped counted inner loop.

    Shape (after lowering, maintained by every pass)::

        header:  ...body...
        latch:   iv = iv + step          # step: positive immediate
                 blt (iv, limit) header  # or ble/bgt/bge with same meaning

    ``branch`` is the backedge branch instruction (identity is stable
    across passes that do not delete it; passes that rewrite it update this
    record).  ``trip_multiple`` records a compile-time guarantee that the
    trip count is a multiple of that value (preconditioning sets it to the
    unroll factor for the main loop).
    """

    header: str
    iv: Reg
    step: int
    limit: Operand
    branch: Instr
    increment: Instr
    trip_multiple: int = 1

    def clone_for(self, branch: Instr, increment: Instr, **kw) -> "CountedLoop":
        return replace(self, branch=branch, increment=increment, **kw)


# ---------------------------------------------------------------------------
# expansion-candidate recognition over a linear superblock body
# ---------------------------------------------------------------------------

#: opcodes that count as "increment/decrement" for accumulator detection:
#: additive updates (the paper's algorithm covers sums; products accumulate
#: through fmul similarly and IMPACT treats both as accumulation ops)
_ACC_OPS_ADD = {Op.ADD, Op.SUB, Op.FADD, Op.FSUB}
_ACC_OPS_MUL = {Op.MUL, Op.FMUL}


@dataclass
class AccumulatorInfo:
    reg: Reg
    #: positions of the accumulation instructions in the body
    updates: list[int]
    #: "add" (sum accumulators, identity 0) or "mul" (product, identity 1)
    kind: str


def _is_self_update(ins: Instr, reg: Reg, ops: set[Op]) -> bool:
    """``reg = reg op other`` (or, for commutative ops, ``other op reg``)."""
    if ins.dest != reg or ins.op not in ops:
        return False
    a, b = ins.srcs
    if a == reg:
        return True
    return bool(ins.info.commutative and b == reg)


def find_accumulators(
    body: list[Instr],
    forbidden: set[Reg] = frozenset(),
) -> list[AccumulatorInfo]:
    """Accumulator variables per the paper's Figure 2 conditions:

    1. every instruction modifying V is an increment/decrement (additive
       self-update; a multiplicative variant is recognized as kind "mul");
    2. V is referenced *only* by those updates;
    3. there is more than one update (otherwise expansion buys nothing).

    ``forbidden`` lists registers that escape the body through side exits
    or off-trace uses — those cannot be expanded safely.
    """
    out: list[AccumulatorInfo] = []
    regs = {ins.dest for ins in body if ins.dest is not None}
    for reg in sorted(regs, key=lambda r: (r.cls.value, r.id)):
        if reg in forbidden:
            continue
        updates: list[int] = []
        kind: str | None = None
        ok = True
        for i, ins in enumerate(body):
            defines = ins.dest == reg
            uses = reg in set(ins.reg_uses())
            if not (defines or uses):
                continue
            if _is_self_update(ins, reg, _ACC_OPS_ADD) and kind in (None, "add"):
                # subtraction only as V = V - x (V on the left)
                if ins.op in (Op.SUB, Op.FSUB) and ins.srcs[0] != reg:
                    ok = False
                    break
                kind = "add"
                updates.append(i)
            elif _is_self_update(ins, reg, _ACC_OPS_MUL) and kind in (None, "mul"):
                kind = "mul"
                updates.append(i)
            else:
                ok = False
                break
        if ok and kind is not None and len(updates) > 1:
            out.append(AccumulatorInfo(reg, updates, kind))
    return out


@dataclass
class InductionInfo:
    reg: Reg
    #: positions of the increment instructions in the body
    updates: list[int]
    #: the loop-invariant immediate step of each increment
    step: int


def find_inductions(
    body: list[Instr],
    forbidden: set[Reg] = frozenset(),
) -> list[InductionInfo]:
    """Induction variables per the paper's Figure 4 conditions:

    1. every instruction modifying V is an increment/decrement;
    2. the step is the same immediate for all increments and loop
       invariant (we require a compile-time immediate);
    3. more than one increment exists.

    Unlike accumulators, V may be (and normally is) used by other
    instructions — address arithmetic, the backedge test, etc.
    """
    out: list[InductionInfo] = []
    regs = {ins.dest for ins in body if ins.dest is not None}
    for reg in sorted(regs, key=lambda r: (r.cls.value, r.id)):
        if reg in forbidden or reg.is_fp:
            continue
        updates: list[int] = []
        step: int | None = None
        ok = True
        for i, ins in enumerate(body):
            if ins.dest != reg:
                continue
            s = _additive_step(ins, reg)
            if s is None:
                ok = False
                break
            if step is None:
                step = s
            elif step != s:
                ok = False
                break
            updates.append(i)
        if ok and step is not None and len(updates) > 1:
            out.append(InductionInfo(reg, updates, step))
    return out


def _additive_step(ins: Instr, reg: Reg) -> int | None:
    """If ``ins`` is ``reg = reg +/- imm``, return the signed step."""
    if ins.dest != reg:
        return None
    if ins.op is Op.ADD:
        a, b = ins.srcs
        if a == reg and isinstance(b, Imm):
            return b.value
        if b == reg and isinstance(a, Imm):
            return a.value
    elif ins.op is Op.SUB:
        a, b = ins.srcs
        if a == reg and isinstance(b, Imm):
            return -b.value
    return None


@dataclass
class SearchInfo:
    """A search (max/min) recurrence in branch-and-update idiom::

        <branch> (V  x) SKIPLABEL      # or (x V); condition keeps V
        V = x                          # update, guarded by the branch

    ``pairs`` lists (branch_pos, update_pos) for each occurrence.
    """

    reg: Reg
    pairs: list[tuple[int, int]]


_SEARCH_BRANCHES = {Op.BLE, Op.BLT, Op.BGE, Op.BGT, Op.FBLE, Op.FBLT, Op.FBGE, Op.FBGT}


def find_search_variables(
    body: list[Instr],
    forbidden: set[Reg] = frozenset(),
) -> list[SearchInfo]:
    """Detect max/min search recurrences.

    The idiom the frontend emits for ``if (x > V) V = x`` in a superblock is
    a side-exit branch that *skips* the update::

        fble (x V) <offtrace>   # taken means "keep current V"
        V = x                   # fmov, executed on the likely path
    or the trace may contain only the branch with the update off-trace; only
    the in-trace form is expandable (the off-trace form leaves V escaping
    through the exit, which ``forbidden`` rules out).
    """
    out: dict[Reg, list[tuple[int, int]]] = {}
    for i, ins in enumerate(body[:-1]):
        if ins.op not in _SEARCH_BRANCHES:
            continue
        upd = body[i + 1]
        if upd.op not in (Op.MOV, Op.FMOV) or upd.dest is None:
            continue
        v = upd.dest
        if v in forbidden:
            continue
        x = upd.srcs[0]
        cmp_ops = set(ins.srcs)
        if not (v in cmp_ops and x in cmp_ops and v != x):
            continue
        out.setdefault(v, []).append((i, i + 1))
    result = []
    for v, pairs in sorted(out.items(), key=lambda kv: (kv[0].cls.value, kv[0].id)):
        # every write of v in the body must be one of the guarded updates
        update_positions = {p for _, p in pairs}
        writes = [i for i, ins in enumerate(body) if ins.dest == v]
        if all(w in update_positions for w in writes) and len(pairs) > 1:
            result.append(SearchInfo(v, pairs))
    return result
