"""repro.analysis — dataflow, liveness, dependence, and loop-variable
analyses used by the optimizer, transformations, and scheduler."""

from .defuse import DefUse, func_def_counts, reaching_def_before, regs_defined, regs_used
from .liveness import Liveness, block_gen_kill, live_at_instr_positions, liveness
from .memdep import AddressAnalysis, AddrExpr, may_alias, memory_independent
from .depgraph import DepGraph, build_depgraph, speculable
from .loopvars import (
    AccumulatorInfo,
    CountedLoop,
    InductionInfo,
    SearchInfo,
    find_accumulators,
    find_inductions,
    find_search_variables,
)

__all__ = [
    "DefUse", "func_def_counts", "reaching_def_before", "regs_defined", "regs_used",
    "Liveness", "block_gen_kill", "live_at_instr_positions", "liveness",
    "AddressAnalysis", "AddrExpr", "may_alias", "memory_independent",
    "DepGraph", "build_depgraph", "speculable",
    "AccumulatorInfo", "CountedLoop", "InductionInfo", "SearchInfo",
    "find_accumulators", "find_inductions", "find_search_variables",
]
