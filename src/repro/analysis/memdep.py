"""Symbolic memory disambiguation within a linear code region.

Every memory access address is ``base + offset`` where each part is a
register, symbol, or immediate.  To decide whether two accesses may touch
the same word, addresses are normalized to linear expressions

    addr  =  const  +  sum_k coeff_k * origin_k

where an *origin* is a value the analysis cannot see through: a register
live into the region, or the result of a load / divide / other opaque
instruction, identified by its defining position (or -1 for live-in).
Symbols are origins too (distinct array bases never alias — FORTRAN rule).

Two accesses provably do not alias when their expressions share the same
origin terms and differ by a non-zero constant, or when they use distinct
symbols as bases (arrays are padded apart by the memory binder).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import Instr, Op
from ..ir.operands import Imm, Operand, Reg, Sym


@dataclass(frozen=True)
class AddrExpr:
    """Linear address expression: const + sum(coeff * origin)."""

    const: int
    #: mapping origin -> coefficient; origin is ('reg', reg, def_pos) or
    #: ('sym', name)
    terms: tuple[tuple[object, int], ...]

    def plus(self, other: "AddrExpr") -> "AddrExpr":
        d = dict(self.terms)
        for k, c in other.terms:
            d[k] = d.get(k, 0) + c
            if d[k] == 0:
                del d[k]
        return AddrExpr(self.const + other.const, _norm(d))

    def negated(self) -> "AddrExpr":
        return AddrExpr(-self.const, _norm({k: -c for k, c in self.terms}))

    def scaled(self, m: int) -> "AddrExpr":
        if m == 0:
            return AddrExpr(0, ())
        return AddrExpr(self.const * m, _norm({k: c * m for k, c in self.terms}))

    @property
    def base_syms(self) -> frozenset:
        return frozenset(k[1] for k, _ in self.terms if k[0] == "sym")


def _norm(d: dict) -> tuple:
    return tuple(sorted(d.items(), key=lambda kv: repr(kv[0])))


class AddressAnalysis:
    """Resolves operand values at each position of a linear sequence.

    With a ``prologue`` (the loop preheader), registers live into the body
    are additionally resolved *through* the prologue when the body only
    advances them by uniform self-increments.  The per-pass advance is kept
    symbolic — a ``('pass', step)`` term — so two registers initialized
    ``r13 = r2 + K`` in the preheader and stepped identically in the body
    compare to a constant difference, while registers with different steps
    stay incomparable (conservative).  This mirrors the subscript-level
    independence information the paper's toolchain had from KAP.
    """

    def __init__(self, instrs: list[Instr], prologue=None,
                 space: str = "B", region_kind: str = "straight"):
        """``prologue`` may be a flat instruction list (one straight
        preheader region) or a list of ``(kind, instrs)`` regions, where
        kind is ``"straight"`` (executes linearly once per loop entry) or
        ``"loop"`` (an intervening loop, e.g. a precondition loop, whose
        pass count is unknown — registers it advances uniformly get a
        shared symbolic multiplier so lockstep pairs still cancel)."""
        self.instrs = instrs
        self.space = space
        self.region_kind = region_kind
        # last def position of each reg before index i, computed on demand
        self._def_before: list[dict[Reg, int]] = []
        cur: dict[Reg, int] = {}
        for i, ins in enumerate(instrs):
            self._def_before.append(dict(cur))
            if ins.dest is not None:
                cur[ins.dest] = i
        self._all_defs = cur
        self._memo: dict[tuple, AddrExpr] = {}
        self._prologue: "AddressAnalysis | None" = None
        if prologue:
            if isinstance(prologue[0], Instr):
                regions = [("straight", list(prologue))]
            else:
                regions = list(prologue)
            last_kind, last_instrs = regions[-1]
            self._prologue = AddressAnalysis(
                last_instrs, regions[:-1] or None,
                space=space + "<", region_kind=last_kind,
            )
        self._advance_memo: dict[Reg, tuple | None] = {}

    def operand_expr(self, operand: Operand, at: int, depth: int = 0) -> AddrExpr:
        """Linear expression for the value of ``operand`` just before
        position ``at``."""
        if isinstance(operand, Imm):
            return AddrExpr(operand.value, ())
        if isinstance(operand, Sym):
            return AddrExpr(0, ((("sym", operand.name), 1),))
        assert isinstance(operand, Reg)
        defs = self._def_before[at] if at < len(self._def_before) else self._all_defs
        dpos = defs.get(operand, -1)
        return self._reg_expr(operand, dpos, depth)

    def _reg_expr(self, reg: Reg, dpos: int, depth: int) -> AddrExpr:
        key = (reg, dpos)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        expr = self._compute_reg_expr(reg, dpos, depth)
        self._memo[key] = expr
        return expr

    def _opaque(self, reg: Reg, dpos: int) -> AddrExpr:
        return AddrExpr(0, ((("reg", self.space, reg, dpos), 1),))

    def _advance(self, reg: Reg) -> tuple | None:
        """The register's per-pass advance as normalized symbolic terms, or
        None if any body definition is not a uniform self-increment."""
        if reg in self._advance_memo:
            return self._advance_memo[reg]
        terms: dict = {}
        result: tuple | None = ()
        for ins in self.instrs:
            if ins.dest != reg:
                continue
            step = None
            sign = 1
            if ins.op is Op.ADD:
                a, b = ins.srcs
                if a == reg and b != reg:
                    step = b
                elif b == reg and a != reg:
                    step = a
            elif ins.op is Op.SUB:
                a, b = ins.srcs
                if a == reg and b != reg:
                    step, sign = b, -1
            if step is None or (isinstance(step, Reg) and step in self._all_defs):
                result = None
                break
            if isinstance(step, Imm):
                key = ("pass", "#imm")
                terms[key] = terms.get(key, 0) + sign * step.value
            elif isinstance(step, Reg):
                key = ("pass", self.space, step)
                terms[key] = terms.get(key, 0) + sign
            else:  # Sym step: loop-invariant constant
                key = ("pass", "sym", step.name)
                terms[key] = terms.get(key, 0) + sign
        if result is None:
            self._advance_memo[reg] = None
            return None
        result = _norm({k: c for k, c in terms.items() if c != 0})
        self._advance_memo[reg] = result
        return result

    def entry_value(self, reg: Reg, depth: int = 0) -> AddrExpr:
        """Value of ``reg`` on entry to this region."""
        if self._prologue is not None and depth <= 64:
            return self._prologue.exit_value(reg, depth + 1)
        return AddrExpr(0, ((("reg", self.space, reg, -1), 1),))

    def exit_value(self, reg: Reg, depth: int = 0) -> AddrExpr:
        """Value of ``reg`` after this region has executed (used by the
        next region / the loop body when resolving its live-ins)."""
        if depth > 64:
            return self._opaque(reg, -2)
        if self.region_kind == "loop":
            if reg not in self._all_defs:
                return self.entry_value(reg, depth)
            adv = self._advance(reg)
            if adv is None:
                return self._opaque(reg, self._all_defs[reg])
            # entry + (unknown pass count) * advance; the multiplier symbol
            # is shared per region, so equal advances cancel in deltas
            scaled = tuple(
                ((("rpass", self.space, key), coeff) for key, coeff in adv)
            )
            return self.entry_value(reg, depth).plus(AddrExpr(0, scaled))
        return self.operand_expr(reg, len(self.instrs), depth)

    def _compute_reg_expr(self, reg: Reg, dpos: int, depth: int) -> AddrExpr:
        if dpos < 0 and self._prologue is not None and depth <= 64:
            adv = self._advance(reg)
            if adv is not None:
                base = self._prologue.exit_value(reg, depth + 1)
                return base.plus(AddrExpr(0, adv))
        if dpos < 0 or depth > 64:
            return self._opaque(reg, dpos)
        ins = self.instrs[dpos]
        op = ins.op
        if op is Op.MOV:
            return self.operand_expr(ins.srcs[0], dpos, depth + 1)
        if op in (Op.ADD, Op.SUB):
            a = self.operand_expr(ins.srcs[0], dpos, depth + 1)
            b = self.operand_expr(ins.srcs[1], dpos, depth + 1)
            return a.plus(b.negated() if op is Op.SUB else b)
        if op is Op.MUL:
            a, b = ins.srcs
            if isinstance(b, Imm):
                return self.operand_expr(a, dpos, depth + 1).scaled(b.value)
            if isinstance(a, Imm):
                return self.operand_expr(b, dpos, depth + 1).scaled(a.value)
            return self._opaque(reg, dpos)
        if op is Op.SHL:
            a, b = ins.srcs
            if isinstance(b, Imm) and 0 <= b.value < 32:
                return self.operand_expr(a, dpos, depth + 1).scaled(1 << b.value)
            return self._opaque(reg, dpos)
        return self._opaque(reg, dpos)

    def address_expr(self, idx: int) -> AddrExpr:
        """Address expression of the memory instruction at ``idx``."""
        ins = self.instrs[idx]
        assert ins.is_mem
        base, off = ins.srcs[0], ins.srcs[1]
        return self.operand_expr(base, idx).plus(self.operand_expr(off, idx))


def may_alias(a: AddrExpr, b: AddrExpr, size_a: int = 1, size_b: int = 1) -> bool:
    """Conservative alias test between two address expressions.

    ``size_a`` / ``size_b`` are access footprints in words (vector memory
    ops touch ``lanes`` consecutive words from their base address).
    """
    # distinct array bases never alias
    sa, sb = a.base_syms, b.base_syms
    if len(sa) == 1 and len(sb) == 1 and sa != sb:
        return False
    if a.terms == b.terms:
        if size_a == 1 and size_b == 1:
            return a.const == b.const
        # byte-range overlap: [const, const + 4*size) half-open intervals
        return a.const < b.const + 4 * size_b and b.const < a.const + 4 * size_a
    return True


def memory_independent(analysis: AddressAnalysis, i: int, j: int) -> bool:
    """True when memory instructions at positions i and j provably do not
    access the same word."""
    return not may_alias(
        analysis.address_expr(i), analysis.address_expr(j),
        analysis.instrs[i].mem_words, analysis.instrs[j].mem_words,
    )
