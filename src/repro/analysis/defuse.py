"""Def-use helpers over linear instruction sequences and whole functions."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..ir.function import Function
from ..ir.instructions import Instr
from ..ir.operands import Reg


@dataclass
class DefUse:
    """Def and use sites of every register in a linear sequence.

    Positions are indices into the sequence the object was built from.
    """

    defs: dict[Reg, list[int]] = field(default_factory=lambda: defaultdict(list))
    uses: dict[Reg, list[int]] = field(default_factory=lambda: defaultdict(list))

    @classmethod
    def of(cls, instrs: list[Instr]) -> "DefUse":
        du = cls()
        for i, ins in enumerate(instrs):
            for r in ins.reg_uses():
                du.uses[r].append(i)
            for r in ins.reg_defs():
                du.defs[r].append(i)
        return du

    def defined(self) -> set[Reg]:
        return set(self.defs)

    def used(self) -> set[Reg]:
        return set(self.uses)

    def single_def(self, reg: Reg) -> int | None:
        d = self.defs.get(reg, [])
        return d[0] if len(d) == 1 else None


def regs_defined(instrs) -> set[Reg]:
    out: set[Reg] = set()
    for ins in instrs:
        out.update(ins.reg_defs())
    return out


def regs_used(instrs) -> set[Reg]:
    out: set[Reg] = set()
    for ins in instrs:
        out.update(ins.reg_uses())
    return out


def func_def_counts(func: Function) -> dict[Reg, int]:
    counts: dict[Reg, int] = defaultdict(int)
    for ins in func.iter_instrs():
        for r in ins.reg_defs():
            counts[r] += 1
    return dict(counts)


def reaching_def_before(instrs: list[Instr], idx: int, reg: Reg) -> int | None:
    """Index of the nearest def of ``reg`` strictly before position ``idx``
    in a linear sequence, or None (value is live-in to the sequence)."""
    for j in range(idx - 1, -1, -1):
        if instrs[j].dest == reg:
            return j
    return None
