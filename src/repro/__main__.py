"""Entry point: ``python -m repro <command>`` (see repro.cli)."""

from .cli import main

raise SystemExit(main())
