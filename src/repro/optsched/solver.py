"""Exact cycle-assignment scheduling: the constraint-solver core.

A scheduling instance (:class:`SchedProblem`) is a set of integer
variables ``t_i`` — the issue cycle of each instruction — constrained by

* **dependence separations** ``t_j - t_i >= w`` for every edge
  ``(i, j, w)``.  For acyclic block scheduling the edges come straight
  from the dependence DAG (:mod:`repro.analysis.depgraph`); for modulo
  scheduling at initiation interval II the caller folds the iteration
  distance in (``w = latency - II * distance``), which makes the
  constraint graph cyclic but free of positive cycles whenever
  ``II >= RecMII``;
* **per-cycle resources**: at most ``width`` instructions per bucket, at
  most ``branch_slots`` control instructions per bucket, and optional
  per-kind slot limits.  The bucket of cycle ``t`` is ``t`` itself for
  acyclic problems and ``t mod period`` for modulo problems, where every
  steady-state kernel cycle carries the overlapped iterations.

The engine is a branch-and-bound DFS over the cycle variables with
interval propagation (a CDCL-style trail records every domain tightening
so backtracking is exact):

* windows ``[lo_i, hi_i]`` start from longest-path closure and are
  re-tightened through the dependence edges after every assignment;
* variables are assigned in deterministic (earliest window, tightest
  window, lowest index) order; values ascend, skipping full buckets;
* the search budget is a **deterministic node count** — never wall
  clock — so a given (problem, budget) pair always returns the same
  answer, on any machine, which is what lets results be shared through
  the content-addressed store (see :mod:`repro.optsched.cache`).

Anytime behavior is delegated to :class:`Incumbent`: the caller seeds it
with the heuristic schedule, and a candidate replaces the incumbent only
on a *strictly* smaller cost — equal-cost candidates keep the earlier
discovery — so repeated runs under any budget agree bit for bit.

If the ``z3`` SMT solver happens to be installed (it is not a
dependency), :func:`z3_available` reports it and
:func:`minimize_makespan` transparently uses it for the optimality
search; the pure-Python engine is the reference path and the only one
exercised in CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_UNLIMITED = 1 << 30


class BudgetExhausted(Exception):
    """The deterministic node budget ran out before the search closed."""


@dataclass(frozen=True)
class SchedProblem:
    """One exact scheduling instance (see module docstring).

    ``kind`` holds the machine-kind name of each instruction ("" when no
    slot limit applies to it), ``edges`` the separation constraints
    ``t_j - t_i >= w``, and ``period`` selects modulo resource buckets
    (``None`` = acyclic).  The instance is immutable and fully describes
    the solver's inputs, so its canonical form is a valid cache key.
    """

    latency: tuple[int, ...]
    is_branch: tuple[bool, ...]
    kind: tuple[str, ...]
    edges: tuple[tuple[int, int, int], ...]
    width: int               # issue slots per bucket (0 = unlimited)
    branch_slots: int = 1
    slot_limits: tuple[tuple[str, int], ...] = ()
    period: int | None = None

    @property
    def n(self) -> int:
        return len(self.latency)

    @property
    def effective_width(self) -> int:
        return self.width if self.width > 0 else _UNLIMITED

    def canonical(self) -> dict:
        """JSON-stable identity of the instance (cache keying)."""
        return {
            "latency": list(self.latency),
            "is_branch": [int(b) for b in self.is_branch],
            "kind": list(self.kind),
            "edges": sorted(list(e) for e in self.edges),
            "width": self.width,
            "branch_slots": self.branch_slots,
            "slot_limits": sorted(list(s) for s in self.slot_limits),
            "period": self.period,
        }


@dataclass
class Incumbent:
    """Anytime best-so-far with a stable (cost, discovery-order) tie-break.

    ``offer`` accepts a candidate only when its cost is *strictly* lower
    than the current incumbent's: an equal-cost candidate discovered
    later never displaces an earlier one.  Every timeout path returns
    whatever the incumbent holds, so two runs of the same search — or a
    cold run and a store-cached replay — can never disagree about the
    fallback schedule.
    """

    cost: int
    assignment: tuple[int, ...] | None = None
    #: offer() calls seen; the accepted one is recorded in ``discovered``
    offers: int = 0
    discovered: int = 0

    def offer(self, cost: int, assignment: tuple[int, ...]) -> bool:
        self.offers += 1
        if cost < self.cost:
            self.cost = cost
            self.assignment = assignment
            self.discovered = self.offers
            return True
        return False


@dataclass(frozen=True)
class SolveOutcome:
    """Result of an optimality search.

    ``assignment`` is ``None`` when the incumbent (the caller's
    heuristic seed) was never beaten — either because it is provably
    optimal or because the budget ran out first; ``status`` says which.
    """

    assignment: tuple[int, ...] | None
    cost: int
    optimal: bool
    proved_lb: int
    nodes: int
    status: str  # "optimal" | "timeout-incumbent" | "too-large"


class _Budget:
    """Mutable deterministic node counter shared across one search."""

    __slots__ = ("limit", "used")

    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def charge(self, k: int = 1) -> None:
        self.used += k
        if self.used > self.limit:
            raise BudgetExhausted


def _adjacency(n: int, edges) -> tuple[list, list]:
    succs: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    preds: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for i, j, w in edges:
        succs[i].append((j, w))
        preds[j].append((i, w))
    return succs, preds


def _closure(n, succs, preds, lo, hi, rounds) -> bool:
    """Longest-path window tightening to fixpoint (Bellman-Ford style).

    Returns False when some window empties — or fails to converge in
    ``rounds`` passes, which for a cyclic (modulo) instance means a
    positive cycle, i.e. infeasibility at this II.
    """
    for _ in range(rounds):
        changed = False
        for i in range(n):
            li = lo[i]
            for j, w in succs[i]:
                if li + w > lo[j]:
                    lo[j] = li + w
                    changed = True
        for i in range(n - 1, -1, -1):
            hi_i = hi[i]
            for j, w in succs[i]:
                if hi[j] - w < hi_i:
                    hi_i = hi[j] - w
            hi[i] = hi_i
        for i in range(n):
            if lo[i] > hi[i]:
                return False
        if not changed:
            return True
    return False


def asap_times(problem: SchedProblem) -> list[int]:
    """Earliest start of each variable by longest-path closure from 0."""
    n = problem.n
    succs, preds = _adjacency(n, problem.edges)
    lo = [0] * n
    hi = [_UNLIMITED] * n
    _closure(n, succs, preds, lo, hi, n + 2)
    return lo


def heights(problem: SchedProblem) -> list[int]:
    """Critical-path height of each variable: longest weighted path to
    any sink plus the sink's latency (acyclic problems only)."""
    n = problem.n
    succs, _ = _adjacency(n, problem.edges)
    h = list(problem.latency)
    for i in range(n - 1, -1, -1):
        for j, w in succs[i]:
            if w + h[j] > h[i]:
                h[i] = w + h[j]
    return h


def lower_bound(problem: SchedProblem) -> int:
    """Provable lower bound on the acyclic makespan.

    The maximum of the critical path (longest dependence path including
    the final latency), the issue-width bound ``ceil(n / width)``, the
    branch-slot bound, and each per-kind slot-limit bound.
    """
    n = problem.n
    if n == 0:
        return 0
    est = asap_times(problem)
    hs = heights(problem)
    cp = max(e + h for e, h in zip(est, hs))
    width = problem.effective_width
    bounds = [cp, math.ceil(n / width)]
    n_branch = sum(1 for b in problem.is_branch if b)
    if n_branch:
        bounds.append(math.ceil(n_branch / max(problem.branch_slots, 1)))
    for kind, lim in problem.slot_limits:
        count = sum(1 for k in problem.kind if k == kind)
        if count and lim > 0:
            bounds.append(math.ceil(count / lim))
    return max(bounds)


# ---------------------------------------------------------------------------
# the DFS decision engine
# ---------------------------------------------------------------------------


def solve_decision(
    problem: SchedProblem,
    lo0: list[int],
    hi0: list[int],
    budget: _Budget,
) -> tuple[int, ...] | None:
    """Find an assignment within the windows, or prove none exists.

    Deterministic: variable order, value order, and propagation are all
    fixed functions of the instance.  Raises :class:`BudgetExhausted`
    when the node budget runs out before the search closes.
    """
    n = problem.n
    if n == 0:
        return ()
    succs, preds = _adjacency(n, problem.edges)
    lo = list(lo0)
    hi = list(hi0)
    if not _closure(n, succs, preds, lo, hi, n + 2):
        return None

    period = problem.period
    width = problem.effective_width
    br_cap = max(problem.branch_slots, 1)
    limits = dict(problem.slot_limits)
    kinds = problem.kind
    is_br = problem.is_branch

    used: dict[int, int] = {}
    used_br: dict[int, int] = {}
    used_kind: dict[tuple[str, int], int] = {}

    def bucket(t: int) -> int:
        return t % period if period else t

    def fits(i: int, t: int) -> bool:
        b = bucket(t)
        if used.get(b, 0) >= width:
            return False
        if is_br[i] and used_br.get(b, 0) >= br_cap:
            return False
        k = kinds[i]
        lim = limits.get(k)
        if lim is not None and used_kind.get((k, b), 0) >= lim:
            return False
        return True

    def occupy(i: int, t: int, delta: int) -> None:
        b = bucket(t)
        used[b] = used.get(b, 0) + delta
        if is_br[i]:
            used_br[b] = used_br.get(b, 0) + delta
        k = kinds[i]
        if k in limits:
            key = (k, b)
            used_kind[key] = used_kind.get(key, 0) + delta

    def propagate(root: int, trail: list) -> bool:
        stack = [root]
        while stack:
            u = stack.pop()
            for j, w in succs[u]:
                nl = lo[u] + w
                if nl > lo[j]:
                    trail.append((0, j, lo[j]))
                    lo[j] = nl
                    if nl > hi[j]:
                        return False
                    stack.append(j)
            for p, w in preds[u]:
                nh = hi[u] - w
                if nh < hi[p]:
                    trail.append((1, p, hi[p]))
                    hi[p] = nh
                    if lo[p] > nh:
                        return False
                    stack.append(p)
        return True

    def undo(trail: list) -> None:
        for which, idx, old in reversed(trail):
            if which == 0:
                lo[idx] = old
            else:
                hi[idx] = old

    assigned: list[int | None] = [None] * n

    branch_idxs = [i for i in range(n) if is_br[i]]
    kind_idxs = {
        k: [i for i in range(n) if kinds[i] == k] for k in limits
    }

    def interval_ok(idxs, used_map, cap, horizon) -> bool:
        """Hall-style interval cut: in every prefix [0..c] (and suffix),
        the unassigned variables confined there must fit the free
        capacity.  Acyclic only — modulo buckets wrap around."""
        must_by = [0] * (horizon + 1)
        from_c = [0] * (horizon + 1)
        pending = 0
        for i in idxs:
            if assigned[i] is None:
                must_by[hi[i]] += 1
                from_c[lo[i]] += 1
                pending += 1
        if not pending:
            return True
        run = need = 0
        for c in range(horizon + 1):
            run += cap - used_map.get(c, 0)
            need += must_by[c]
            if need > run:
                return False
        run = need = 0
        for c in range(horizon, -1, -1):
            run += cap - used_map.get(c, 0)
            need += from_c[c]
            if need > run:
                return False
        return True

    def cuts() -> bool:
        if period:
            return True
        horizon = 0
        for i in range(n):
            if assigned[i] is None and hi[i] > horizon:
                horizon = hi[i]
        if width < _UNLIMITED and not interval_ok(
            range(n), used, width, horizon
        ):
            return False
        if branch_idxs and not interval_ok(
            branch_idxs, used_br, br_cap, horizon
        ):
            return False
        for k, lim in limits.items():
            kused = {b: v for (kk, b), v in used_kind.items() if kk == k}
            if not interval_ok(kind_idxs[k], kused, lim, horizon):
                return False
        return True

    def pick() -> int | None:
        best = None
        best_key = None
        for i in range(n):
            if assigned[i] is not None:
                continue
            key = (lo[i], hi[i] - lo[i], i)
            if best_key is None or key < best_key:
                best_key = key
                best = i
        return best

    def dfs(remaining: int) -> bool:
        if remaining == 0:
            return True
        i = pick()
        t = lo[i]
        while t <= hi[i]:
            budget.charge()
            if not fits(i, t):
                t += 1
                continue
            trail: list = [(0, i, lo[i]), (1, i, hi[i])]
            lo[i] = hi[i] = t
            assigned[i] = t
            occupy(i, t, +1)
            if propagate(i, trail) and cuts() and dfs(remaining - 1):
                return True
            occupy(i, t, -1)
            assigned[i] = None
            undo(trail)
            t += 1
        return False

    if cuts() and dfs(n):
        return tuple(assigned)  # type: ignore[arg-type]
    return None


# ---------------------------------------------------------------------------
# optimality search (acyclic makespan minimization)
# ---------------------------------------------------------------------------


#: default deterministic node budget for one block's optimality search
DEFAULT_BUDGET = 50_000

#: instances larger than this skip the exact search outright
MAX_EXACT_N = 512


def z3_available() -> bool:
    """Is the optional z3 SMT adapter importable?  (Never a dependency.)"""
    try:
        import z3  # noqa: F401

        return True
    except ImportError:
        return False


def _minimize_with_z3(problem: SchedProblem, lb: int, ub: int):
    """Optimality search via the z3 SMT solver (optional adapter).

    Returns ``(assignment, cost)`` with cost in ``[lb, ub]``, or ``None``
    when z3 cannot be used.  Only reached when :func:`z3_available`.
    """
    import z3

    n = problem.n
    opt = z3.Optimize()
    ts = [z3.Int(f"t{i}") for i in range(n)]
    mk = z3.Int("makespan")
    for i in range(n):
        opt.add(ts[i] >= 0)
        opt.add(ts[i] + problem.latency[i] <= mk)
    for i, j, w in problem.edges:
        opt.add(ts[j] - ts[i] >= w)
    width = problem.effective_width
    for c in range(ub):
        in_c = [z3.If(ts[i] == c, 1, 0) for i in range(n)]
        if width < _UNLIMITED:
            opt.add(z3.Sum(in_c) <= width)
        br = [z3.If(ts[i] == c, 1, 0)
              for i in range(n) if problem.is_branch[i]]
        if br:
            opt.add(z3.Sum(br) <= max(problem.branch_slots, 1))
        for kind, lim in problem.slot_limits:
            ks = [z3.If(ts[i] == c, 1, 0)
                  for i in range(n) if problem.kind[i] == kind]
            if ks:
                opt.add(z3.Sum(ks) <= lim)
    opt.add(mk >= lb)
    opt.add(mk <= ub)
    opt.minimize(mk)
    if opt.check() != z3.sat:
        return None
    model = opt.model()
    assignment = tuple(model[t].as_long() for t in ts)
    return assignment, model[mk].as_long()


def minimize_makespan(
    problem: SchedProblem,
    ub_cost: int,
    ub_assignment: tuple[int, ...] | None = None,
    budget: int = DEFAULT_BUDGET,
    use_z3: bool | None = None,
) -> SolveOutcome:
    """Minimize the acyclic makespan below a heuristic upper bound.

    ``ub_cost``/``ub_assignment`` seed the incumbent (the heuristic
    schedule).  The search ascends the decision ladder from the provable
    lower bound: the first feasible length is optimal because every
    shorter length was proven infeasible.  On budget exhaustion the
    incumbent is returned unchanged (``status="timeout-incumbent"``).
    """
    n = problem.n
    if n > MAX_EXACT_N:
        return SolveOutcome(ub_assignment, ub_cost, False,
                            0, 0, "too-large")
    lb = lower_bound(problem)
    incumbent = Incumbent(ub_cost, ub_assignment)
    if ub_cost <= lb:
        # the heuristic already sits on a provable lower bound
        return SolveOutcome(incumbent.assignment, incumbent.cost, True,
                            lb, 0, "optimal")

    if use_z3 is None:
        use_z3 = z3_available()
    if use_z3 and z3_available():
        found = _minimize_with_z3(problem, lb, ub_cost)
        if found is not None:
            assignment, cost = found
            incumbent.offer(cost, assignment)
            return SolveOutcome(incumbent.assignment, incumbent.cost, True,
                                lb, 0, "optimal")

    est = asap_times(problem)
    hs = heights(problem)
    b = _Budget(budget)
    proved = lb  # optimal >= proved: every target below it was closed
    for target in range(lb, ub_cost):
        proved = target
        lo = list(est)
        hi = [target - h for h in hs]
        try:
            sol = solve_decision(problem, lo, hi, b)
        except BudgetExhausted:
            return SolveOutcome(incumbent.assignment, incumbent.cost, False,
                                proved, b.used, "timeout-incumbent")
        if sol is not None:
            # infeasible below `target`, feasible at it: provably optimal
            incumbent.offer(target, sol)
            return SolveOutcome(incumbent.assignment, incumbent.cost, True,
                                proved, b.used, "optimal")
    # every length below the heuristic's is infeasible: it was optimal
    return SolveOutcome(incumbent.assignment, incumbent.cost, True,
                        ub_cost, b.used, "optimal")


def verify_assignment(problem: SchedProblem, assignment) -> None:
    """Assert an assignment satisfies every constraint of the instance.

    Cheap (linear) and run on every solver result that replaces a
    heuristic schedule — a solver bug must fail loudly, never ship a
    subtly illegal schedule.
    """
    n = problem.n
    assert len(assignment) == n, "assignment arity mismatch"
    for i, j, w in problem.edges:
        assert assignment[j] - assignment[i] >= w, (
            f"dependence violated: t[{j}]={assignment[j]} - "
            f"t[{i}]={assignment[i]} < {w}"
        )
    period = problem.period
    width = problem.effective_width
    used: dict[int, int] = {}
    used_br: dict[int, int] = {}
    used_kind: dict[tuple[str, int], int] = {}
    limits = dict(problem.slot_limits)
    for i, t in enumerate(assignment):
        assert t >= 0, f"negative issue time t[{i}]={t}"
        b = t % period if period else t
        used[b] = used.get(b, 0) + 1
        assert used[b] <= width, f"issue width exceeded in bucket {b}"
        if problem.is_branch[i]:
            used_br[b] = used_br.get(b, 0) + 1
            assert used_br[b] <= max(problem.branch_slots, 1), (
                f"branch slots exceeded in bucket {b}"
            )
        k = problem.kind[i]
        if k in limits:
            key = (k, b)
            used_kind[key] = used_kind.get(key, 0) + 1
            assert used_kind[key] <= limits[k], (
                f"slot limit for {k} exceeded in bucket {b}"
            )
