"""Provably optimal acyclic block scheduling (the ``optimal`` backend).

Wraps the solver core around one linear region: build the dependence DAG
exactly as list scheduling does, seed the solver's incumbent with the
heuristic schedule, and search below it.  Three outcomes:

* ``optimal`` — the search closed: either the heuristic already sat on a
  provable lower bound (no search needed), or every shorter length was
  proven infeasible, or a strictly shorter schedule was found (and that
  length proven minimal);
* ``timeout-incumbent`` — the deterministic node budget ran out; the
  incumbent (heuristic or best-found) is returned with
  ``optimal=False``.  The tie-break in
  :class:`~repro.optsched.solver.Incumbent` makes this path bit-stable
  across runs;
* ``too-large`` — the region exceeds the exact-search size cap.

Emission order is the part that makes the result a drop-in
:class:`~repro.schedule.listsched.Schedule`: within a cycle,
instructions are emitted in original program order with the control
instruction last.  Every 0-weight edge of the DAG points forward in
original order (``depgraph.add_edge`` asserts it) and a branch never has
a 0-weight edge to a later instruction, so this order satisfies every
same-cycle ordering constraint and reproduces the simulator's
branch-terminates-packet semantics.  Because the emitted order admits
the solver's issue times as a legal packing, the simulator's greedy
in-order issue can only do better: dynamic cycles <= solver makespan.

When the solver does not strictly beat the heuristic, the heuristic
:class:`Schedule` object is returned *unchanged* — byte-identical
instruction order — so flipping ``--scheduler`` perturbs nothing unless
there is real headroom.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..analysis.depgraph import DepGraph, build_depgraph
from ..ir.instructions import Instr
from ..ir.operands import Reg
from ..machine import MachineConfig
from ..schedule.listsched import Schedule, list_schedule
from .solver import (
    DEFAULT_BUDGET,
    SchedProblem,
    minimize_makespan,
    verify_assignment,
)


@dataclass
class OptResult:
    """One region's exact-scheduling outcome (schedule + proof record)."""

    schedule: Schedule
    #: "optimal" | "timeout-incumbent" | "too-large"
    status: str
    optimal: bool
    proved_lb: int
    heuristic_makespan: int
    optimal_makespan: int
    nodes: int
    seconds: float
    cached: bool = False

    @property
    def improved(self) -> bool:
        return self.optimal_makespan < self.heuristic_makespan

    def as_payload(self) -> dict:
        """JSON record for reports and the solver cache (no schedule)."""
        return {
            "status": self.status,
            "optimal": self.optimal,
            "proved_lb": self.proved_lb,
            "heuristic_makespan": self.heuristic_makespan,
            "optimal_makespan": self.optimal_makespan,
            "nodes": self.nodes,
            "seconds": self.seconds,
            "cached": self.cached,
        }


def problem_from_depgraph(
    g: DepGraph,
    machine: MachineConfig,
    period: int | None = None,
    extra_edges: tuple[tuple[int, int, int], ...] = (),
) -> SchedProblem:
    """Translate a dependence DAG (plus optional cross-iteration edges)
    into a solver instance under ``machine``'s resource model."""
    n = g.n()
    limited = {k.name for k, _ in machine.slot_limits.items()}
    edges = tuple(
        (i, j, w) for i in range(n) for j, w in g.succs[i]
    ) + tuple(extra_edges)
    return SchedProblem(
        latency=tuple(g.latency),
        is_branch=tuple(ins.is_control for ins in g.instrs),
        kind=tuple(
            ins.kind.name if ins.kind.name in limited else ""
            for ins in g.instrs
        ),
        edges=edges,
        width=machine.issue_width,
        branch_slots=machine.branch_slots,
        slot_limits=tuple(sorted(
            (k.name, v) for k, v in machine.slot_limits.items()
        )),
        period=period,
    )


def emit_order(
    instrs: list[Instr],
    assignment,
    machine: MachineConfig,
) -> Schedule:
    """Materialize a cycle assignment as a :class:`Schedule`.

    Sort key (cycle, is-control, original index): program order within a
    cycle preserves every 0-weight (same-cycle) dependence, and the
    control instruction closes its packet.
    """
    keyed = sorted(
        range(len(instrs)),
        key=lambda i: (assignment[i], instrs[i].is_control, i),
    )
    return Schedule(
        [instrs[i] for i in keyed],
        [assignment[i] for i in keyed],
        machine,
    )


def optimal_block_schedule(
    instrs: list[Instr],
    machine: MachineConfig,
    exit_live: dict[int, set[Reg]] | None = None,
    depgraph: DepGraph | None = None,
    prologue: list[Instr] | None = None,
    doall: bool = False,
    budget: int = DEFAULT_BUDGET,
    store=None,
) -> OptResult:
    """Exactly schedule one region, heuristic fallback under timeout.

    Same signature surface as
    :func:`~repro.schedule.listsched.list_schedule` plus the solver
    budget and an optional :class:`~repro.service.store.ArtifactStore`
    for fleet-wide solver-result caching (see
    :mod:`repro.optsched.cache`).
    """
    t0 = time.perf_counter()
    n = len(instrs)
    g = depgraph or build_depgraph(
        instrs, machine, exit_live, prologue=prologue, doall=doall
    )
    heuristic = list_schedule(instrs, machine, exit_live, depgraph=g)
    if n <= 1:
        # nothing to order: the heuristic is trivially optimal
        return OptResult(heuristic, "optimal", True, heuristic.makespan,
                         heuristic.makespan, heuristic.makespan, 0,
                         time.perf_counter() - t0)

    problem = problem_from_depgraph(g, machine)
    pos = {id(ins): k for k, ins in enumerate(instrs)}
    ub_assignment = [0] * n
    for ins, t in zip(heuristic.order, heuristic.issue):
        ub_assignment[pos[id(ins)]] = t
    ub_cost = heuristic.makespan

    if store is not None:
        from .cache import cached_minimize

        outcome, cached = cached_minimize(
            store, problem, ub_cost, tuple(ub_assignment), budget
        )
    else:
        outcome = minimize_makespan(
            problem, ub_cost, tuple(ub_assignment), budget=budget
        )
        cached = False

    if outcome.assignment is not None and outcome.cost < ub_cost:
        verify_assignment(problem, outcome.assignment)
        schedule = emit_order(instrs, outcome.assignment, machine)
        assert schedule.makespan == outcome.cost
    else:
        # not improved (or timed out): keep the heuristic order verbatim
        schedule = heuristic
    return OptResult(
        schedule, outcome.status, outcome.optimal, outcome.proved_lb,
        ub_cost, schedule.makespan, outcome.nodes,
        time.perf_counter() - t0, cached=cached,
    )
