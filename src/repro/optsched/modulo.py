"""Exact modulo scheduling: the smallest initiation interval, by search.

:mod:`repro.schedule.pipelining` computes the classical *bounds*
``MII = max(ResMII, RecMII)``; this module finds the smallest II an
actual modulo schedule achieves, by incremental search upward from MII
(the ISSUE's "Optimal Software Pipelining using an SMT-Solver" shape,
on the pure-Python solver):

* the constraint graph at candidate II is the body's dependence DAG plus
  the cross-iteration register and memory edges of
  :mod:`repro.schedule.pipelining`, each edge weighted
  ``latency - II * distance``;
* resources are counted in modulo-II buckets (every steady-state kernel
  cycle executes one bucket's worth of overlapped iterations);
* variables get ASAP-anchored windows of two stages
  (``[asap_i, asap_i + 2*II - 1]``) — enough slack for the corpus — so a
  success at II is an exact achievability witness, while a failure only
  rules the window out.  The proof status is therefore honest:
  ``optimal`` exactly when the achieved II equals the MII lower bound.

The acyclic schedule is always a valid fallback: its issue times form a
modulo schedule at ``II = makespan`` (distinct cycles occupy distinct
buckets, and every cross-iteration edge is slack at that II), so the
search is anytime — budget exhaustion returns that incumbent with
``status="timeout-incumbent"``.

The kernel/prologue/epilogue view (:meth:`ModuloSchedule.kernel_rows`,
:meth:`ModuloSchedule.stage_of`) is derived from the assignment in the
same ``(iteration-stage, modulo slot)`` terms the software-pipelining
literature uses, compatible with the
:class:`~repro.schedule.pipelining.PipelineBounds` representation the
benchmarks already report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.depgraph import build_depgraph
from ..ir.instructions import Instr
from ..machine import MachineConfig
from ..schedule.listsched import list_schedule
from ..schedule.pipelining import (
    PipelineBounds,
    _cross_memory_edges,
    _cross_register_edges,
    compute_bounds,
)
from .blocksched import problem_from_depgraph
from .solver import BudgetExhausted, _Budget, solve_decision, verify_assignment

#: default deterministic node budget for one loop's II search
DEFAULT_MODULO_BUDGET = 100_000


@dataclass
class ModuloSchedule:
    """An achieved modulo schedule for one loop body."""

    ii: int
    #: issue time of each body instruction (flat, before modulo folding)
    times: tuple[int, ...]
    bounds: PipelineBounds
    #: "optimal" (ii == MII, proved) | "upper-bound" (achieved, not
    #: proved minimal) | "timeout-incumbent" (acyclic fallback)
    status: str
    optimal: bool
    nodes: int
    seconds: float
    cached: bool = False
    #: acyclic makespan of the body (the fallback II / search upper bound)
    acyclic_makespan: int = 0

    @property
    def stages(self) -> int:
        """Kernel depth: overlapped iterations in steady state."""
        if not self.times:
            return 1
        return max(t // self.ii for t in self.times) + 1

    def stage_of(self, i: int) -> int:
        return self.times[i] // self.ii

    @property
    def ii_per_iteration(self) -> float:
        return self.ii / self.bounds.iterations

    def kernel_rows(self) -> list[list[tuple[int, int]]]:
        """The steady-state kernel: for each of the II cycles, the
        ``(body index, stage)`` pairs issuing there.  Stage ``s`` means
        the instruction belongs to the iteration started ``s`` kernel
        passes earlier; the prologue fills stages ``1..stages-1`` in,
        and the epilogue drains them."""
        rows: list[list[tuple[int, int]]] = [[] for _ in range(self.ii)]
        for i, t in enumerate(self.times):
            rows[t % self.ii].append((i, t // self.ii))
        for row in rows:
            row.sort(key=lambda p: (p[1], p[0]))
        return rows

    @property
    def prologue_cycles(self) -> int:
        """Fill cycles before the kernel reaches steady state."""
        return (self.stages - 1) * self.ii

    @property
    def epilogue_cycles(self) -> int:
        """Drain cycles after the last kernel pass."""
        return (self.stages - 1) * self.ii

    def as_payload(self) -> dict:
        return {
            "ii": self.ii,
            "times": list(self.times),
            "status": self.status,
            "optimal": self.optimal,
            "nodes": self.nodes,
            "seconds": self.seconds,
            "cached": self.cached,
            "acyclic_makespan": self.acyclic_makespan,
        }


@dataclass
class _Instance:
    """The II-independent half of a modulo instance."""

    body: list[Instr]
    machine: MachineConfig
    bounds: PipelineBounds
    depgraph: object
    #: (src, dst, latency, distance >= 1) cross-iteration edges
    cross: list[tuple[int, int, int, int]] = field(default_factory=list)


def _build_instance(
    body: list[Instr],
    machine: MachineConfig,
    iterations: int,
    prologue: list[Instr] | None,
    doall: bool,
) -> _Instance:
    bounds = compute_bounds(body, machine, iterations=iterations,
                            prologue=prologue, doall=doall)
    g = build_depgraph(body, machine, prologue=prologue, doall=doall)
    cross = [
        (e.src, e.dst, e.latency, e.distance)
        for e in _cross_register_edges(body, machine)
    ]
    if not doall:
        cross.extend(
            (e.src, e.dst, e.latency, e.distance)
            for e in _cross_memory_edges(body, machine, prologue)
        )
    return _Instance(body, machine, bounds, g, cross)


def _problem_at_ii(inst: _Instance, ii: int):
    """Solver instance for candidate II: modulo buckets, folded edges."""
    extra = tuple(
        (src, dst, lat - ii * dist)
        for src, dst, lat, dist in inst.cross
        if src != dst  # self-recurrences constrain II, not the windows
    )
    return problem_from_depgraph(
        inst.depgraph, inst.machine, period=ii, extra_edges=extra
    )


def _feasible_at_ii(inst: _Instance, ii: int, budget: _Budget):
    """An assignment achieving II within two-stage ASAP windows, or None."""
    problem = _problem_at_ii(inst, ii)
    n = problem.n
    from .solver import asap_times

    lo = asap_times(problem)
    hi = [lo_i + 2 * ii - 1 for lo_i in lo]
    sol = solve_decision(problem, lo, hi, budget)
    if sol is not None:
        verify_assignment(problem, sol)
        # self-recurrences fold to t_i - t_i >= lat - ii*dist: pure II test
        for src, dst, lat, dist in inst.cross:
            if src == dst:
                assert lat - ii * dist <= 0, (src, ii)
    return sol


def modulo_schedule(
    body: list[Instr],
    machine: MachineConfig,
    iterations: int = 1,
    prologue: list[Instr] | None = None,
    doall: bool = False,
    budget: int = DEFAULT_MODULO_BUDGET,
    store=None,
) -> ModuloSchedule:
    """Exact-search modulo schedule of one superblock body.

    Mirrors :func:`repro.schedule.pipelining.compute_bounds`'s signature;
    ``store`` caches the whole search result keyed by (body dependence
    structure, machine, budget) so each (loop, machine, II) instance is
    solved once fleet-wide.
    """
    t0 = time.perf_counter()
    inst = _build_instance(body, machine, iterations, prologue, doall)
    acyclic = list_schedule(body, machine, depgraph=inst.depgraph)
    ub = max(acyclic.makespan, 1)
    mii = inst.bounds.mii

    if store is not None:
        from .cache import cached_modulo

        payload, cached = cached_modulo(store, inst, ub, mii, budget)
        return ModuloSchedule(
            payload["ii"], tuple(payload["times"]), inst.bounds,
            payload["status"], payload["optimal"], payload["nodes"],
            time.perf_counter() - t0, cached=cached,
            acyclic_makespan=ub,
        )

    result = search_ii(inst, ub, mii, budget)
    return ModuloSchedule(
        result["ii"], tuple(result["times"]), inst.bounds,
        result["status"], result["optimal"], result["nodes"],
        time.perf_counter() - t0, acyclic_makespan=ub,
    )


def search_ii(inst: _Instance, ub: int, mii: int, budget: int) -> dict:
    """Incremental II search from MII up to the acyclic fallback.

    The budget is sliced per candidate II (an eighth of the total each)
    so one hard infeasibility proof near MII cannot consume the whole
    search: an exhausted probe moves *up* one II instead of aborting,
    which degrades the answer from "optimal" to "upper-bound" rather
    than all the way to the acyclic fallback.  Only when every remaining
    candidate is exhausted does the search fall back
    (``timeout-incumbent``).  Returns a JSON-stable payload (cached
    verbatim by :mod:`repro.optsched.cache`): achieved ii, flat issue
    times, proof status, and the deterministic node count spent.
    """
    acyclic = list_schedule(inst.body, inst.machine, depgraph=inst.depgraph)
    pos = {id(ins): k for k, ins in enumerate(inst.body)}
    fallback = [0] * len(inst.body)
    for ins, t in zip(acyclic.order, acyclic.issue):
        fallback[pos[id(ins)]] = t

    slice_limit = max(budget // 8, 1)
    used = 0
    truncated = False
    for ii in range(mii, ub):
        if used >= budget:
            truncated = True
            break
        probe = _Budget(min(slice_limit, budget - used))
        try:
            sol = _feasible_at_ii(inst, ii, probe)
        except BudgetExhausted:
            used += probe.used
            truncated = True
            continue  # not proven infeasible: the next II may still close
        used += probe.used
        if sol is not None:
            # ii == mii is a proof regardless of earlier truncation (MII
            # is a true lower bound); otherwise minimality is unproven
            return {
                "ii": ii, "times": list(sol),
                "status": "optimal" if ii == mii else "upper-bound",
                "optimal": ii == mii,
                "nodes": used,
            }
    # the acyclic schedule itself: already a modulo schedule at II = ub
    if ub == mii:
        status, optimal = "optimal", True
    elif truncated:
        status, optimal = "timeout-incumbent", False
    else:
        status, optimal = "upper-bound", False
    return {
        "ii": ub, "times": fallback,
        "status": status, "optimal": optimal,
        "nodes": used,
    }
