"""Content-addressed caching of solver results.

Exact scheduling is the expensive step of the ``optimal`` backend, and
its inputs are tiny and fully canonical: the
:meth:`~repro.optsched.solver.SchedProblem.canonical` form plus the
deterministic node budget *is* the computation's identity.  Keys are
SHA-256 over that identity together with :data:`SOLVER_VERSION` and the
repo-wide :data:`~repro.service.keys.CODE_VERSION` salt, so

* two blocks with the same dependence structure under the same machine
  share one solver call, across loops, processes, and nodes (the store
  is the same content-addressed
  :class:`~repro.service.store.ArtifactStore` the compilation service
  shards fleet-wide — each (loop, machine, II) instance is solved once);
* any change to solver behavior (version bump) or to compiled-output
  semantics (salt bump) orphans every stored result at once.

Because the solver is deterministic under its node budget, a cache hit
is byte-equivalent to recomputing — the store's contract.  Budgets are
part of the key: a result computed under a small budget must not answer
a large-budget query.
"""

from __future__ import annotations

import hashlib

from ..service.keys import CODE_VERSION, canonical_json
from .solver import SchedProblem, SolveOutcome, minimize_makespan

#: bump when solver behavior changes (search order, propagation, bounds)
SOLVER_VERSION = 1


def problem_key(problem: SchedProblem, budget: int, mode: str = "min",
                extra: dict | None = None) -> str:
    """Content address of one solver computation."""
    payload = {
        "salt": CODE_VERSION,
        "solver": SOLVER_VERSION,
        "mode": mode,
        "budget": int(budget),
        "problem": problem.canonical(),
    }
    if extra:
        payload["extra"] = extra
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def cached_minimize(
    store,
    problem: SchedProblem,
    ub_cost: int,
    ub_assignment: tuple[int, ...],
    budget: int,
) -> tuple[SolveOutcome, bool]:
    """Makespan minimization through the store; returns (outcome, hit).

    The heuristic upper bound is part of the key: the incumbent under
    timeout *is* the heuristic seed, so results under different seeds
    are different computations.
    """
    key = problem_key(problem, budget, "min", {"ub": int(ub_cost)})
    payload = store.get(key)
    if payload is not None:
        return (
            SolveOutcome(
                None if payload["assignment"] is None
                else tuple(payload["assignment"]),
                payload["cost"], payload["optimal"], payload["proved_lb"],
                payload["nodes"], payload["status"],
            ),
            True,
        )
    outcome = minimize_makespan(problem, ub_cost, ub_assignment,
                                budget=budget)
    store.put(key, {
        "assignment": None if outcome.assignment is None
        else list(outcome.assignment),
        "cost": outcome.cost,
        "optimal": outcome.optimal,
        "proved_lb": outcome.proved_lb,
        "nodes": outcome.nodes,
        "status": outcome.status,
    })
    return outcome, False


def cached_modulo(store, inst, ub: int, mii: int,
                  budget: int) -> tuple[dict, bool]:
    """II search through the store; returns (payload, hit).

    Keyed by the II-independent instance (intra-iteration problem +
    cross-iteration edges) plus the search's bounds and budget.
    """
    from .modulo import _problem_at_ii, search_ii

    base = _problem_at_ii(inst, max(mii, 1))
    key = problem_key(base, budget, "modulo", {
        "cross": sorted(list(c) for c in inst.cross),
        "ub": int(ub),
        "mii": int(mii),
    })
    payload = store.get(key)
    if payload is not None:
        return payload, True
    payload = search_ii(inst, ub, mii, budget)
    store.put(key, payload)
    return payload, False
