"""repro.optsched — provably optimal scheduling (the ``optimal`` backend).

A swappable alternative to heuristic list scheduling, selected with
``--scheduler optimal`` through the pass manager:

* :mod:`.solver` — the pure-Python branch-and-bound cycle-assignment
  engine (deterministic node budgets, stable anytime incumbents, an
  optional auto-detected z3 adapter);
* :mod:`.blocksched` — exact acyclic block scheduling with critical-path
  + resource lower-bound proofs and heuristic fallback under timeout;
* :mod:`.modulo` — exact modulo scheduling by incremental II search from
  ``max(ResMII, RecMII)``;
* :mod:`.cache` — content-addressed caching of solver results through
  the service's artifact store.
"""

from .blocksched import OptResult, optimal_block_schedule
from .modulo import DEFAULT_MODULO_BUDGET, ModuloSchedule, modulo_schedule
from .solver import (
    DEFAULT_BUDGET,
    Incumbent,
    SchedProblem,
    SolveOutcome,
    lower_bound,
    minimize_makespan,
    solve_decision,
    verify_assignment,
    z3_available,
)

__all__ = [
    "OptResult", "optimal_block_schedule",
    "DEFAULT_MODULO_BUDGET", "ModuloSchedule", "modulo_schedule",
    "DEFAULT_BUDGET", "Incumbent", "SchedProblem", "SolveOutcome",
    "lower_bound", "minimize_makespan", "solve_decision",
    "verify_assignment", "z3_available",
]
