"""The registered pass pipeline: declarative form of the paper's levels.

Four phases reproduce the pre-refactor drivers pass-for-pass:

``conv``
    The classical ("Conv") optimizations, iterated to fixpoint (bounded
    at 10 rounds) exactly as the quoted Section 3.2 baseline demands.
    Every transformation level starts from its output.
``ilp``
    The level-gated ILP transformation sequence over the inner loop.
    Ordering follows the dependences between the transformations:
    search expansion precedes renaming (it matches original names), the
    other expansions run on renamed code, and the arithmetic
    transformations run last so they see the expanded dependence
    structure (see DESIGN.md §10).
``cleanup``
    Post-transform folding of the preconditioning arithmetic plus dead
    code removal, iterated to fixpoint (bounded at 4 rounds).  The
    prologue regions feeding memory disambiguation are recomputed at
    every round start, before any pass of the round mutates the code.
``schedule``
    List scheduling of every block under the machine model.

Pass names are the stable identifiers used by ``--disable-pass``,
``--print-after``, the ``passes`` CLI listing, and the leave-one-out
ablation experiment.  Structural passes (superblock formation, the
scheduler itself) are ``required`` and exempt from all of those.
"""

from __future__ import annotations

from ..analysis.liveness import liveness
from ..ir.function import remove_unreachable
from ..ir.loop import find_loops
from ..ir.verify import verify_function
from ..opt.constprop import fold_constant_branches, propagate_constants
from ..opt.copyprop import (
    coalesce_moves,
    propagate_copies_global,
    propagate_copies_local,
)
from ..opt.cse import eliminate_common_subexpressions
from ..opt.dce import eliminate_dead_code
from ..opt.ivsr import strength_reduce_ivs
from ..opt.licm import hoist_loop_invariants
from ..opt.redundant_mem import eliminate_redundant_memory
from ..pipeline import (
    Level,
    _find_loop,
    prologue_regions,
    protected_registers,
)
from ..schedule.listsched import list_schedule
from ..schedule.superblock import form_superblock
from ..transforms.accumulate import expand_accumulators
from ..transforms.combine import combine_operations
from ..transforms.induction import expand_inductions
from ..transforms.rename import rename_superblock
from ..transforms.search import expand_search_variables
from ..transforms.slp import vectorize_superblock
from ..transforms.strength import reduce_strength
from ..transforms.treeheight import reduce_tree_height
from ..transforms.unroll import choose_unroll_factor, unroll_counted
from .manager import Pass, Phase, PipelineContext

# ---------------------------------------------------------------------------
# conv phase
# ---------------------------------------------------------------------------


def _conv_round_start(ctx: PipelineContext) -> None:
    # the loop-test increments must survive CSE; IV elimination may
    # retarget a loop test between rounds, so recompute every round
    ctx.conv_protected = {
        id(c.increment) for c in (ctx.counted_map or {}).values()
    }


def _conv_finalize(ctx: PipelineContext, mgr) -> None:
    remove_unreachable(ctx.func)
    ctx.func.reindex_regs()
    if ctx.verify_final:
        verify_function(ctx.func)


CONV_PASSES = (
    Pass("constprop", "conv", lambda ctx: propagate_constants(ctx.func),
         doc="constant propagation and folding"),
    # coalescing must precede copy propagation: a multi-update reduction
    # lowers as `t = s + x; s = t` chains that copy propagation would
    # rewire through the temps, hiding the self-update shape from
    # accumulator expansion
    Pass("coalesce", "conv", lambda ctx: coalesce_moves(ctx.func),
         doc="move coalescing (keeps reduction self-update shapes)"),
    Pass("copyprop-local", "conv",
         lambda ctx: propagate_copies_local(ctx.func),
         doc="block-local copy propagation"),
    Pass("copyprop-global", "conv",
         lambda ctx: propagate_copies_global(ctx.func),
         doc="global copy propagation"),
    Pass("cse", "conv",
         lambda ctx: eliminate_common_subexpressions(
             ctx.func, ctx.conv_protected),
         doc="common subexpression elimination"),
    Pass("redundant-mem", "conv",
         lambda ctx: eliminate_redundant_memory(ctx.func),
         doc="redundant load/store elimination"),
    Pass("licm", "conv",
         lambda ctx: hoist_loop_invariants(ctx.func, ctx.live_out_exit),
         doc="loop-invariant code motion"),
    Pass("ivsr", "conv",
         lambda ctx: strength_reduce_ivs(
             ctx.func, ctx.counted_map, ctx.live_out_exit),
         doc="induction-variable strength reduction and elimination"),
    Pass("dce", "conv",
         lambda ctx: eliminate_dead_code(ctx.func, ctx.live_out_exit),
         doc="dead code elimination"),
)


# ---------------------------------------------------------------------------
# ilp phase
# ---------------------------------------------------------------------------


def _run_unroll(ctx: PipelineContext) -> int:
    loop = _find_loop(ctx.func, ctx.counted.header)
    size = sum(len(ctx.func.get_block(lab).instrs) for lab in loop.blocks)
    factor = (ctx.unroll_factor if ctx.unroll_factor is not None
              else choose_unroll_factor(size))
    ctx.counted = unroll_counted(ctx.func, loop, ctx.counted, factor)
    ctx.report.unroll_factor = factor
    return factor


def _run_superblock(ctx: PipelineContext) -> int:
    loop = _find_loop(ctx.func, ctx.counted.header)
    ctx.sb = form_superblock(ctx.func, loop, ctx.counted)
    # Profitability: the expansion transformations pay compensation code
    # on every side exit taken (and re-initialization on every rejoin).
    # With profile information a production compiler applies them only
    # when the off-trace paths are cold; we use the branch probabilities
    # the same way.  Loops without side exits (33 of the 40) are
    # unaffected.
    exit_probs = [
        ctx.sb.body.instrs[q].prob
        if ctx.sb.body.instrs[q].prob is not None else 0.5
        for q in ctx.sb.side_exit_positions()
    ]
    ctx.expansions_profitable = all(p <= 0.25 for p in exit_probs)
    return 1


def _expansions_profitable(ctx: PipelineContext) -> bool:
    return ctx.expansions_profitable


def _run_combine(ctx: PipelineContext) -> int:
    # computed once, before combining mutates the body; treeheight reuses it
    ctx.protected = protected_registers(ctx.sb, ctx.live_out_exit)
    return combine_operations(ctx.sb.body.instrs, ctx.protected)


def _run_slp(ctx: PipelineContext) -> int:
    components, reassociated = vectorize_superblock(
        ctx.sb, ctx.machine, ctx.live_out_exit
    )
    ctx.report.slp_reassoc += reassociated
    return components


def _run_treeheight(ctx: PipelineContext) -> int:
    prot = (ctx.protected if ctx.protected is not None
            else protected_registers(ctx.sb, ctx.live_out_exit))
    return reduce_tree_height(
        ctx.func, ctx.sb.body.instrs, ctx.machine, prot,
        unit_latency=ctx.thr_unit_latency,
    )


ILP_PASSES = (
    Pass("unroll", "ilp", _run_unroll, min_level=Level.LEV1,
         doc="preconditioned loop unrolling (max 8x / body-size cap)"),
    Pass("superblock", "ilp", _run_superblock, required=True,
         stage="superblock formation",
         doc="superblock formation over the inner loop (structural)"),
    Pass("search", "ilp",
         lambda ctx: expand_search_variables(ctx.sb),
         min_level=Level.LEV4, profitable=_expansions_profitable,
         stage="search expansion",
         doc="search variable expansion (matches pre-rename names)"),
    Pass("rename", "ilp",
         lambda ctx: rename_superblock(ctx.sb, ctx.live_out_exit),
         min_level=Level.LEV2, stage="renaming",
         doc="register renaming across unrolled iterations"),
    Pass("induction", "ilp",
         lambda ctx: expand_inductions(ctx.sb),
         min_level=Level.LEV4, profitable=_expansions_profitable,
         stage="induction expansion",
         doc="induction variable expansion"),
    Pass("accumulate", "ilp",
         lambda ctx: expand_accumulators(ctx.sb),
         min_level=Level.LEV4, profitable=_expansions_profitable,
         stage="accumulator expansion",
         doc="accumulator expansion (reassociates fp reductions)"),
    Pass("combine", "ilp", _run_combine, min_level=Level.LEV3,
         stage="combining",
         doc="operation combining of dependent immediate arithmetic"),
    Pass("strength", "ilp",
         lambda ctx: reduce_strength(ctx.func, ctx.sb.body.instrs),
         min_level=Level.LEV3, stage="strength reduction",
         doc="strength reduction of expensive scalar operations"),
    Pass("treeheight", "ilp", _run_treeheight, min_level=Level.LEV3,
         stage="tree height reduction",
         doc="tree height reduction (reassociates fp expressions)"),
    # last: packs the (unrolled, renamed, expanded) scalar statements the
    # earlier transformations exposed; the cost model may decline
    Pass("slp", "ilp", _run_slp, min_level=Level.LEV5,
         stage="slp vectorization",
         doc="superword-level parallelism (packs isomorphic unrolled "
             "statements into vector instructions)"),
)


# ---------------------------------------------------------------------------
# cleanup phase
# ---------------------------------------------------------------------------


def _cleanup_round_start(ctx: PipelineContext) -> None:
    # snapshot the dominating prologue chain before any pass of the round
    # mutates it; memory disambiguation resolves address relationships
    # established ahead of precondition loops from these regions
    ctx.prologues = {ctx.sb.body.label: prologue_regions(ctx.func, ctx.sb)}


def _cleanup_finalize(ctx: PipelineContext, mgr) -> None:
    ctx.func.reindex_regs()
    verify_function(ctx.func)
    mgr._checkpoint(ctx, "ILP transform output")


CLEANUP_PASSES = (
    Pass("cleanup-constprop", "cleanup",
         lambda ctx: propagate_constants(ctx.func),
         doc="fold the preconditioning span/div/rem arithmetic"),
    Pass("cleanup-copyprop", "cleanup",
         lambda ctx: propagate_copies_local(ctx.func),
         doc="block-local copy propagation after folding"),
    # classical redundant-memory elimination re-applied to the unrolled
    # superblock: a store forwarded to the next iteration's load turns a
    # memory recurrence into a register recurrence
    Pass("cleanup-redundant-mem", "cleanup",
         lambda ctx: eliminate_redundant_memory(ctx.func, ctx.prologues),
         doc="cross-iteration store-to-load forwarding in the superblock"),
    Pass("cleanup-branch-fold", "cleanup",
         lambda ctx: fold_constant_branches(ctx.func),
         doc="resolve the remainder guard once the trip count is constant"),
    Pass("cleanup-unreachable", "cleanup",
         lambda ctx: remove_unreachable(ctx.func),
         doc="drop unreachable precondition loops"),
    Pass("cleanup-dce", "cleanup",
         lambda ctx: eliminate_dead_code(ctx.func, ctx.live_out_exit),
         doc="dead code elimination after folding"),
)


# ---------------------------------------------------------------------------
# schedule phase
# ---------------------------------------------------------------------------


def _schedule_inputs(ctx: PipelineContext):
    """Per-block scheduling inputs shared by both backends.

    Side-exit speculation limits come from the live-in sets of branch
    targets.  For the superblock body, memory disambiguation sees the
    preheader and, for DOALL loops, the cross-iteration independence
    assertion.  Yields ``(block, exit_live, prologue, doall)``.
    """
    func, sb = ctx.func, ctx.sb
    lv = liveness(func, ctx.live_out_exit)
    regions = prologue_regions(func, sb) if sb is not None else None
    for blk in func.blocks:
        if not blk.instrs:
            continue
        exit_live = {}
        for i, ins in enumerate(blk.instrs):
            if ins.is_control and ins.target is not None:
                exit_live[i] = lv.live_in.get(ins.target.name, set())
        is_body = sb is not None and blk is sb.body
        yield (
            blk,
            exit_live,
            regions if is_body else None,
            ctx.doall and is_body,
        )


def _run_listsched(ctx: PipelineContext) -> int:
    """List-schedule every block of the function in place."""
    schedules = {}
    scheduled = 0
    for blk, exit_live, prologue, doall in _schedule_inputs(ctx):
        sched = list_schedule(
            blk.instrs, ctx.machine, exit_live,
            prologue=prologue, doall=doall,
        )
        blk.instrs = sched.order
        schedules[blk.label] = sched
        scheduled += len(sched.order)
    ctx.schedules = schedules
    return scheduled


def _run_optsched(ctx: PipelineContext) -> int:
    """Exactly schedule every block (``--scheduler optimal``).

    Same per-block inputs as the heuristic backend; each block's proof
    record lands in ``ctx.report.optsched`` keyed by block label.  Blocks
    the solver cannot improve (or cannot close under budget) keep the
    heuristic order verbatim.
    """
    from ..optsched import DEFAULT_BUDGET, optimal_block_schedule

    budget = ctx.solver_budget if ctx.solver_budget else DEFAULT_BUDGET
    schedules = {}
    scheduled = 0
    for blk, exit_live, prologue, doall in _schedule_inputs(ctx):
        res = optimal_block_schedule(
            blk.instrs, ctx.machine, exit_live,
            prologue=prologue, doall=doall,
            budget=budget, store=ctx.solver_store,
        )
        blk.instrs = res.schedule.order
        schedules[blk.label] = res.schedule
        ctx.report.optsched[blk.label] = res.as_payload()
        scheduled += len(res.schedule.order)
    ctx.schedules = schedules
    return scheduled


def _scheduler_is(which: str):
    return lambda ctx: (ctx.scheduler or "list") == which


SCHEDULE_PASSES = (
    Pass("listsched", "schedule", _run_listsched, required=True,
         stage="list scheduling", profitable=_scheduler_is("list"),
         doc="greedy cycle-by-cycle list scheduling under the machine model"),
    Pass("optsched", "schedule", _run_optsched, required=True,
         stage="optimal scheduling", profitable=_scheduler_is("optimal"),
         doc="exact branch-and-bound scheduling with proof of optimality"),
)


# ---------------------------------------------------------------------------
# the default pipeline
# ---------------------------------------------------------------------------

DEFAULT_PHASES: dict[str, Phase] = {
    "conv": Phase(
        "conv", CONV_PASSES, max_rounds=10, fixpoint=True,
        checkpoint="none", on_round_start=_conv_round_start,
        finalize=_conv_finalize,
    ),
    "ilp": Phase(
        "ilp", ILP_PASSES, max_rounds=1, checkpoint="pass",
        entry_stage="input",
    ),
    "cleanup": Phase(
        "cleanup", CLEANUP_PASSES, max_rounds=4, fixpoint=True,
        checkpoint="round", round_stage="cleanup iteration {round}",
        on_round_start=_cleanup_round_start, finalize=_cleanup_finalize,
    ),
    "schedule": Phase("schedule", SCHEDULE_PASSES, checkpoint="pass"),
}

#: phase execution order of a full compilation
PHASE_ORDER = ("conv", "ilp", "cleanup", "schedule")


def all_passes() -> list[Pass]:
    """Every registered pass, in pipeline order."""
    return [p for name in PHASE_ORDER for p in DEFAULT_PHASES[name].passes]


def get_pass(name: str) -> Pass:
    for p in all_passes():
        if p.name == name:
            return p
    raise KeyError(name)


def ablatable_passes(level: Level | None = None) -> list[Pass]:
    """Passes eligible for leave-one-out ablation: non-structural, and
    (when ``level`` is given) actually enabled at that level."""
    out = []
    for p in all_passes():
        if p.required:
            continue
        if (level is not None and p.min_level is not None
                and level < p.min_level):
            continue
        out.append(p)
    return out
