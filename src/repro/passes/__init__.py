"""repro.passes — the unified pass manager.

One declarative pipeline replaces the three hand-rolled driver loops
(classical fixpoint, level-gated ILP sequence + cleanup loop, scheduling):

* :class:`~repro.passes.manager.Pass` — descriptor: name, phase, level
  gate, profitability predicate, run callable returning a rewrite count;
* :class:`~repro.passes.manager.Phase` /
  :class:`~repro.passes.manager.PassManager` — ordering, fixpoint
  iteration, gating, ``--disable-pass`` skipping, ``--print-after`` IR
  dumps, and between-pass invariant-verifier checkpointing;
* :class:`~repro.passes.stats.PassStats` /
  :class:`~repro.passes.stats.PipelineReport` — per-execution
  observability (rewrites, wall time, instruction-count delta, fixpoint
  round) unified across all phases;
* :mod:`repro.passes.registry` — the registered default pipeline, which
  reproduces the pre-refactor drivers bit-identically.

``registry`` is imported lazily by :class:`PassManager` (it depends on
the transformation modules); import it directly for pass listings.
"""

from .manager import Pass, PassManager, PassOptions, Phase, PipelineContext
from .stats import PassStats, PipelineReport

__all__ = [
    "Pass", "PassManager", "PassOptions", "Phase", "PipelineContext",
    "PassStats", "PipelineReport",
]
