"""The pass manager: declarative pipeline ordering, fixpoints, gating.

The compiler's five cumulative levels (Conv, Lev1..Lev4) used to be
hardwired as three ad-hoc driver loops (the Conv fixpoint, the
level-gated ILP transform sequence plus its cleanup loop, and the
scheduling step).  This module replaces them with data:

* a :class:`Pass` names one transformation — its phase, its level gate,
  an optional profitability predicate, and a run callable that mutates
  the shared :class:`PipelineContext` and returns a rewrite count;
* a :class:`Phase` groups passes into an ordered (optionally fixpoint)
  unit with round hooks and a finalizer;
* the :class:`PassManager` executes phases: it owns ordering, fixpoint
  iteration, level gating, ``--disable-pass`` skipping, per-pass
  :class:`~repro.passes.stats.PassStats` recording, ``--print-after``
  IR dumps, and the between-pass invariant-verifier checkpointing that
  the drivers previously hand-threaded.

The default pipeline (phases ``conv`` → ``ilp`` → ``cleanup`` →
``schedule``) is declared in :mod:`repro.passes.registry`; its ordering
and fixpoint semantics reproduce the pre-refactor drivers exactly, so
compiled output is bit-identical (asserted by the golden oracle-set
test and the differential oracle).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..ir.printer import format_function
from ..ir.verify import verify_pipeline
from .stats import PassStats, PipelineReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.loopvars import CountedLoop
    from ..ir.function import Function
    from ..ir.operands import Reg
    from ..machine import MachineConfig
    from ..schedule.listsched import Schedule
    from ..schedule.superblock import SuperblockLoop


@dataclass
class PipelineContext:
    """Mutable state shared by the passes of one kernel's compilation.

    Structural passes communicate through it: ``unroll`` rewrites
    ``counted``, ``superblock`` publishes ``sb`` and the profitability
    verdict, ``combine`` caches the protected-register set that
    ``treeheight`` reuses, and the cleanup round hook refreshes
    ``prologues`` for memory disambiguation.
    """

    func: "Function"
    report: PipelineReport = field(default_factory=PipelineReport)
    #: transformation level; None while running level-independent phases
    level: object = None
    machine: "MachineConfig | None" = None
    live_out_exit: set = field(default_factory=set)
    #: inner-loop metadata map (Conv phase: IV elimination updates it)
    counted_map: dict | None = None
    #: the single inner loop the ILP phase transforms
    counted: "CountedLoop | None" = None
    sb: "SuperblockLoop | None" = None
    #: explicit unroll-factor override (None = size heuristic)
    unroll_factor: int | None = None
    thr_unit_latency: bool = False
    doall: bool = False
    #: run ``verify_function`` in the Conv finalizer (run_conv's flag)
    verify_final: bool = True
    schedules: "dict[str, Schedule] | None" = None
    #: schedule backend: "list" (heuristic) or "optimal" (exact solver)
    scheduler: str = "list"
    #: deterministic node budget for the exact solver (None = default)
    solver_budget: int | None = None
    #: ArtifactStore for fleet-wide solver-result caching (None = off)
    solver_store: object | None = None
    # -- scratch published by structural passes -------------------------
    expansions_profitable: bool = True
    protected: "set[Reg] | None" = None
    conv_protected: set = field(default_factory=set)
    prologues: dict | None = None


@dataclass(frozen=True)
class Pass:
    """Descriptor of one registered transformation."""

    name: str
    phase: str
    run: Callable[[PipelineContext], int]
    doc: str = ""
    #: minimum transformation level; None = runs at every level
    min_level: int | None = None
    #: extra predicate (e.g. cold side exits for the expansions)
    profitable: Callable[[PipelineContext], bool] | None = None
    #: structural passes the pipeline cannot function without; they are
    #: exempt from --disable-pass and leave-one-out ablation
    required: bool = False
    #: stage label for invariant-verifier provenance (defaults to name)
    stage: str | None = None

    @property
    def stage_label(self) -> str:
        return self.stage if self.stage is not None else self.name

    @property
    def gate_label(self) -> str:
        if self.min_level is None:
            return "always"
        return f"Lev{int(self.min_level)}+"


@dataclass(frozen=True)
class Phase:
    """An ordered group of passes, optionally iterated to fixpoint."""

    name: str
    passes: tuple[Pass, ...]
    #: upper bound on fixpoint rounds (1 = straight-line sequence)
    max_rounds: int = 1
    #: stop early once a full round reports zero rewrites
    fixpoint: bool = False
    #: where --check runs the invariant verifier: after every pass
    #: ("pass"), once per fixpoint round ("round"), or never ("none")
    checkpoint: str = "pass"
    #: verifier stage label checked on phase entry (ILP's "input")
    entry_stage: str | None = None
    #: per-round verifier stage label; "{round}" is substituted
    round_stage: str = "{phase} round {round}"
    #: invoked before each round (recompute per-round analysis state)
    on_round_start: Callable[[PipelineContext], None] | None = None
    #: invoked once after the last round (cleanup, reindex, final verify)
    finalize: Callable[[PipelineContext, "PassManager"], None] | None = None


@dataclass(frozen=True)
class PassOptions:
    """User-facing pipeline controls (CLI ``--disable-pass`` & friends)."""

    disable: tuple[str, ...] = ()
    print_after: tuple[str, ...] = ()
    print_changed: bool = False

    @property
    def key(self) -> tuple[str, ...]:
        """Result-relevant identity (printing does not change output)."""
        return tuple(sorted(set(self.disable)))


class PassManager:
    """Executes registered phases over a :class:`PipelineContext`."""

    def __init__(
        self,
        options: PassOptions | None = None,
        check: bool = False,
        phases: dict[str, Phase] | None = None,
        stream=None,
    ):
        if phases is None:
            from .registry import DEFAULT_PHASES

            phases = DEFAULT_PHASES
        self.phases = phases
        self.options = options or PassOptions()
        self.check = check
        self.stream = stream if stream is not None else sys.stdout
        self._validate()

    def _validate(self) -> None:
        by_name = {p.name: p for ph in self.phases.values() for p in ph.passes}
        for name in (*self.options.disable, *self.options.print_after):
            if name not in by_name:
                known = ", ".join(sorted(by_name))
                raise ValueError(f"unknown pass {name!r} (known: {known})")
        for name in self.options.disable:
            if by_name[name].required:
                raise ValueError(
                    f"pass {name!r} is structural and cannot be disabled"
                )

    # ------------------------------------------------------------------

    def _checkpoint(self, ctx: PipelineContext, stage: str) -> None:
        if self.check:
            verify_pipeline(ctx.func, set(ctx.func.pinned_regs), stage=stage)

    def _print_after(self, ctx: PipelineContext, p: Pass, rewrites: int) -> None:
        wanted = p.name in self.options.print_after or (
            self.options.print_changed and rewrites > 0
        )
        if not wanted:
            return
        print(f"; IR after {p.name} [{p.phase}] ({rewrites} rewrites)",
              file=self.stream)
        print(format_function(ctx.func), file=self.stream)

    def _should_run(self, p: Pass, ctx: PipelineContext) -> bool:
        if not p.required and p.name in self.options.disable:
            return False
        if p.min_level is not None and (
            ctx.level is None or ctx.level < p.min_level
        ):
            return False
        if p.profitable is not None and not p.profitable(ctx):
            return False
        return True

    def run_phase(
        self, name: str, ctx: PipelineContext, max_rounds: int | None = None
    ) -> int:
        """Run one phase to completion; returns the total rewrite count."""
        phase = self.phases[name]
        rounds_cap = max_rounds if max_rounds is not None else phase.max_rounds
        ctx.report.disabled = self.options.key
        if phase.entry_stage is not None:
            self._checkpoint(ctx, phase.entry_stage)

        total = 0
        rounds_run = 0
        for rnd in range(rounds_cap):
            if phase.on_round_start is not None:
                phase.on_round_start(ctx)
            changed = 0
            for p in phase.passes:
                if not self._should_run(p, ctx):
                    continue
                before = ctx.func.n_instrs()
                t0 = time.perf_counter()
                n = p.run(ctx)
                dt = time.perf_counter() - t0
                ctx.report.stats.append(PassStats(
                    p.name, phase.name, rnd, n, dt, before, ctx.func.n_instrs()
                ))
                changed += n
                if phase.checkpoint == "pass":
                    self._checkpoint(ctx, p.stage_label)
                self._print_after(ctx, p, n)
            total += changed
            rounds_run = rnd + 1
            if phase.checkpoint == "round":
                self._checkpoint(
                    ctx, phase.round_stage.format(phase=phase.name, round=rnd)
                )
            if phase.fixpoint and changed == 0:
                break
        ctx.report.phase_rounds[phase.name] = rounds_run
        if phase.finalize is not None:
            phase.finalize(ctx, self)
        return total
