"""Per-pass execution statistics and the unified pipeline report.

Every pass execution the :class:`~repro.passes.manager.PassManager`
performs is recorded as one :class:`PassStats` row — which pass, in which
phase and fixpoint round, how many rewrites it made, how long it took,
and how the IR instruction count moved.  The rows accumulate into a
single :class:`PipelineReport` that travels with the kernel through every
compilation stage (classical optimization, ILP transformation, cleanup,
scheduling), replacing the per-stage report types the drivers used to
hand-thread.

The report exposes the historical per-transformation counters
(``renamed``, ``accumulators``, ``derived_ivs``, ...) as properties
computed from the stats rows, so consumers read one object no matter
which phase produced the number.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PassStats:
    """One pass execution: what ran, what it did, what it cost."""

    name: str          #: registered pass name
    phase: str         #: phase the pass ran under (conv/ilp/cleanup/schedule)
    round: int         #: 0-based fixpoint round within the phase
    rewrites: int      #: rewrites the pass reported (0 = no change)
    seconds: float     #: wall-clock cost of this execution
    instrs_before: int
    instrs_after: int

    @property
    def instr_delta(self) -> int:
        """Net IR growth (positive) or shrinkage (negative) of the pass."""
        return self.instrs_after - self.instrs_before


@dataclass
class PipelineReport:
    """Unified record of everything the pipeline did to one kernel.

    Replaces the historical ``ConvReport``/``TransformReport`` pair: all
    phases append to the same stats list, and the old field names are
    derived properties (``report.renamed``, ``report.derived_ivs``, ...).
    """

    stats: list[PassStats] = field(default_factory=list)
    #: preconditioned unroll factor chosen by the ``unroll`` pass (1 = none)
    unroll_factor: int = 1
    #: passes the run was asked to skip (``--disable-pass``)
    disabled: tuple[str, ...] = ()
    #: fixpoint rounds each phase actually ran
    phase_rounds: dict[str, int] = field(default_factory=dict)
    #: SLP components that reassociated an fp reduction (serial-chain
    #: packing); nonzero means results are tolerance-, not bit-, exact
    slp_reassoc: int = 0
    #: per-block exact-scheduling proof records (``--scheduler optimal``):
    #: block label -> :meth:`repro.optsched.OptResult.as_payload` dict
    optsched: dict = field(default_factory=dict)

    # -- generic accessors ----------------------------------------------

    def rewrites(self, *names: str) -> int:
        """Total rewrites reported by the named pass(es), all rounds."""
        return sum(s.rewrites for s in self.stats if s.name in names)

    def seconds(self, *names: str) -> float:
        """Total wall-clock seconds spent in the named pass(es)."""
        return sum(s.seconds for s in self.stats if s.name in names)

    def pass_seconds(self, phases: tuple[str, ...] | None = None) -> dict[str, float]:
        """Wall-clock seconds aggregated per pass name.

        ``phases`` restricts the aggregation (e.g. only ``("schedule",)``
        for the widths of a sweep task that reuse shared transformed
        code).
        """
        out: dict[str, float] = {}
        for s in self.stats:
            if phases is not None and s.phase not in phases:
                continue
            out[s.name] = out.get(s.name, 0.0) + s.seconds
        return out

    def phase_stats(self, phase: str) -> list[PassStats]:
        return [s for s in self.stats if s.phase == phase]

    def fork(self) -> "PipelineReport":
        """Independent continuation of this report.

        Shares the (immutable) recorded rows but appends to a fresh list,
        so several downstream stages (one schedule per issue width) can
        each extend their own copy of a shared transform history.
        """
        return PipelineReport(
            stats=list(self.stats),
            unroll_factor=self.unroll_factor,
            disabled=self.disabled,
            phase_rounds=dict(self.phase_rounds),
            slp_reassoc=self.slp_reassoc,
            optsched=dict(self.optsched),
        )

    # -- classical (Conv) counters --------------------------------------

    @property
    def rounds(self) -> int:
        """Fixpoint rounds of the classical (Conv) phase."""
        return self.phase_rounds.get("conv", 0)

    @property
    def constants(self) -> int:
        return self.rewrites("constprop")

    @property
    def copies(self) -> int:
        return self.rewrites("coalesce", "copyprop-local", "copyprop-global")

    @property
    def cse(self) -> int:
        return self.rewrites("cse")

    @property
    def dead(self) -> int:
        return self.rewrites("dce")

    @property
    def hoisted(self) -> int:
        return self.rewrites("licm")

    @property
    def derived_ivs(self) -> int:
        return self.rewrites("ivsr")

    @property
    def redundant_mem(self) -> int:
        return self.rewrites("redundant-mem")

    # -- ILP transformation counters ------------------------------------

    @property
    def renamed(self) -> int:
        return self.rewrites("rename")

    @property
    def inductions(self) -> int:
        return self.rewrites("induction")

    @property
    def accumulators(self) -> int:
        return self.rewrites("accumulate")

    @property
    def searches(self) -> int:
        return self.rewrites("search")

    @property
    def combined(self) -> int:
        return self.rewrites("combine")

    @property
    def reduced(self) -> int:
        return self.rewrites("strength")

    @property
    def trees(self) -> int:
        return self.rewrites("treeheight")

    @property
    def slp(self) -> int:
        """SLP components vectorized (accepted by the cost model)."""
        return self.rewrites("slp")
