"""Command-line interface.

    python -m repro list                         # the 40 workloads
    python -m repro show dotprod                 # FORTRAN-style source + metadata
    python -m repro passes                       # the registered pass pipeline
    python -m repro compile dotprod --level 4    # IR at each pipeline stage
    python -m repro run dotprod --level 4 --width 8 [--all-levels]
    python -m repro sweep [--force] [--jobs N]   # full grid -> results/
    python -m repro sweep --workloads add,sum --jobs 2   # subset smoke run
    python -m repro sweep --store DIR            # persistent artifact store
    python -m repro ablate [--jobs N]            # leave-one-out pass ablation
    python -m repro serve --port 8734 --store DIR --jobs 2  # HTTP service
    python -m repro cluster --nodes 3 --store DIR # multi-node scale-out
    python -m repro submit run dotprod --level 4 --width 8  # client SDK
    python -m repro mii dotprod [--exact]        # software-pipelining bounds
    python -m repro run dotprod --scheduler optimal  # exact solver backend
    python -m repro headroom                     # heuristic-vs-optimal report
    python -m repro check                        # differential oracle, all 40
    python -m repro check --fuzz 50              # + seeded random loop nests
    python -m repro chaos --plan kill --jobs 2   # fault-injection suite
    python -m repro sweep --workloads add --jobs 2 --fault-plan plan.json

``--check`` on compile/run/sweep runs the IR invariant verifier between
every compiler pass (def-before-use on all paths, operand classes and
arity, branch-target validity, coloring consistency).  ``--disable-pass
NAME`` skips a registered pass (repeatable; structural passes refuse),
``--print-after NAME`` dumps the IR after it runs, and
``--print-changed`` dumps after every pass that rewrote something.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .experiments.sweep import run_config
from .frontend.lower import lower_kernel
from .frontend.pretty import kernel_str
from .harness import compile_kernel, run_compiled_kernel
from .ir import format_block, format_function
from .machine import MachineConfig
from .opt.driver import run_conv
from .passes import PassOptions
from .pipeline import Level
from .regalloc import measure_register_usage
from .schedule.pipelining import compute_bounds
from .workloads import all_workloads, check_run, get_workload


def _solver_store(args):
    """ArtifactStore from --solver-store (None = no solver caching)."""
    path = getattr(args, "solver_store", None)
    if not path:
        return None
    from pathlib import Path

    from .service.store import ArtifactStore

    return ArtifactStore(Path(path))


def _pass_options(args) -> PassOptions | None:
    """PassOptions from the pipeline-control flags (None = defaults)."""
    disable = tuple(getattr(args, "disable_pass", None) or ())
    print_after = tuple(getattr(args, "print_after", None) or ())
    print_changed = bool(getattr(args, "print_changed", False))
    if not disable and not print_after and not print_changed:
        return None
    return PassOptions(disable=disable, print_after=print_after,
                       print_changed=print_changed)


def cmd_list(args) -> int:
    print(f"{'name':<14}{'suite':<9}{'size':>5}{'iters':>7}{'nest':>5}  "
          f"{'type':<10}{'conds'}")
    for w in all_workloads():
        print(f"{w.name:<14}{w.suite:<9}{w.size_lines:>5}{w.paper_iters:>7}"
              f"{w.nest:>5}  {w.loop_type:<10}{'yes' if w.conds else 'no'}")
    return 0


def cmd_show(args) -> int:
    w = get_workload(args.workload)
    print(f"! {w.name} [{w.suite}]  Table 2: size={w.size_lines} "
          f"iters={w.paper_iters} nest={w.nest} type={w.loop_type} "
          f"conds={'yes' if w.conds else 'no'}")
    if w.notes:
        print(f"! {w.notes}")
    print(kernel_str(w.build()))
    return 0


def cmd_compile(args) -> int:
    w = get_workload(args.workload)
    level = Level(args.level)
    machine = MachineConfig(issue_width=args.width)
    options = _pass_options(args)

    lk = lower_kernel(w.build())
    if args.stage in ("naive", "all"):
        print("=== naive lowering ===")
        print(format_function(lk.func))
    rep = run_conv(lk.func, lk.counted, lk.live_out_exit, options=options)
    if args.stage in ("conv", "all"):
        print("\n=== after Conv ===")
        print(format_function(lk.func))
    from .pipeline import apply_ilp_transforms, schedule_function

    sb, rep = apply_ilp_transforms(
        lk.func, lk.counted[lk.inner_header], level, machine, lk.live_out_exit,
        check=args.check, options=options, report=rep,
    )
    schedule_function(lk.func, machine, lk.live_out_exit, sb=sb,
                      doall=lk.inner_kind == "doall", check=args.check,
                      options=options, report=rep,
                      scheduler=args.scheduler,
                      solver_budget=args.solver_budget,
                      solver_store=_solver_store(args))
    print(f"\n=== {level.label} on issue-{args.width or 'inf'}: "
          f"unroll x{rep.unroll_factor}, {rep.renamed} renamed, "
          f"{rep.inductions} ind, {rep.accumulators} acc, "
          f"{rep.searches} search, {rep.combined} combined, "
          f"{rep.trees} trees ===")
    print(format_block(sb.body))
    if rep.optsched:
        print("\nexact-scheduling proofs (per block):")
        for label, p in sorted(rep.optsched.items()):
            print(f"  {label:<12}{p['status']:<18}"
                  f"heur={p['heuristic_makespan']} "
                  f"opt={p['optimal_makespan']} lb>={p['proved_lb']} "
                  f"nodes={p['nodes']}"
                  f"{'  [cached]' if p['cached'] else ''}")
    usage = measure_register_usage(lk.func, lk.live_out_exit)
    print(f"\nregisters: {usage.int_regs} int + {usage.fp_regs} fp = {usage.total}")
    if args.stats:
        print("\nper-pass stats (pass, phase, round, rewrites, instr delta, ms):")
        for s in rep.stats:
            print(f"  {s.name:<22}{s.phase:<10}{s.round:>3}{s.rewrites:>6}"
                  f"{s.instr_delta:>+7}{s.seconds * 1e3:>9.2f}")
    return 0


def cmd_passes(args) -> int:
    """List the registered pass pipeline (the unit of --disable-pass)."""
    from .passes.registry import DEFAULT_PHASES, PHASE_ORDER

    print(f"{'pass':<24}{'phase':<10}{'gate':<8}{'ablatable':<11}description")
    for phase_name in PHASE_ORDER:
        phase = DEFAULT_PHASES[phase_name]
        rounds = (f"fixpoint, <={phase.max_rounds} rounds"
                  if phase.max_rounds > 1 else "single round")
        print(f"-- {phase_name} ({rounds}) " + "-" * 40)
        for p in phase.passes:
            ablatable = "no" if p.required else "yes"
            print(f"{p.name:<24}{p.phase:<10}{p.gate_label:<8}"
                  f"{ablatable:<11}{p.doc}")
    return 0


def cmd_ablate(args) -> int:
    """Leave-one-out pass ablation (see repro.experiments.ablation)."""
    from .experiments.ablation import main as ablation_main

    return ablation_main(args.rest)


def cmd_run(args) -> int:
    w = get_workload(args.workload)
    machine = MachineConfig(issue_width=args.width)
    options = _pass_options(args)
    store = _solver_store(args)
    levels = list(Level) if args.all_levels else [Level(args.level)]
    base = run_config(w, Level.CONV, MachineConfig(issue_width=1),
                      check_ir=args.check, options=options).cycles
    print(f"{w.name} (type={w.loop_type}); baseline issue-1/Conv = {base} cycles")
    for level in levels:
        r = run_config(w, level, machine, check_ir=args.check, options=options,
                       scheduler=args.scheduler,
                       solver_budget=args.solver_budget, solver_store=store)
        print(f"  {level.label}@issue-{args.width}: {r.cycles} cycles, "
              f"{r.instructions} instrs, speedup {base / r.cycles:.2f}, "
              f"{r.total_regs} regs  [checked]")
    return 0


def cmd_sweep(args) -> int:
    options = _pass_options(args)
    if args.fault_plan:
        # arm before any worker pool forks (fault-plan inheritance)
        from .resilience import faults
        from .resilience.faults import FaultPlan

        plan = FaultPlan.from_file(args.fault_plan)
        faults.arm(plan)
        print(plan.describe())
    store = None
    if args.store:
        from pathlib import Path as _Path

        from .service.store import ArtifactStore

        store = ArtifactStore(_Path(args.store))
    if args.workloads:
        # subset sweep (smoke tests / CI): no figure rendering, prints a
        # per-configuration summary instead
        from pathlib import Path

        from .experiments.sweep import run_sweep

        wls = [get_workload(n) for n in args.workloads.split(",")]
        journal = Path(args.journal) if args.journal else None
        data = run_sweep(wls, verbose=True, jobs=args.jobs, journal=journal,
                         resume=not args.force, check_ir=args.check,
                         options=options, store=store, engine=args.engine)
        for (name, level, width), r in data.results.items():
            print(f"{name:<14}{Level(level).label:<6}issue-{width}: "
                  f"{r.cycles} cycles, {r.instructions} instrs, "
                  f"{r.total_regs} regs  [checked]")
        print(f"{data.computed} computed, {data.reused} resumed, "
              f"{data.store_hits} from store "
              f"in {data.elapsed:.1f}s ({args.jobs} jobs)")
        if data.resilience:
            rz = data.resilience
            print(f"resilience: {rz.get('redispatched', 0)} redispatched, "
                  f"{rz.get('retries', 0)} retried, "
                  f"{rz.get('deadline_kills', 0)} deadline kills, "
                  f"{rz.get('worker_restarts', 0)} worker restarts")
        return 0

    from .experiments.run_all import main as run_all_main

    argv = ["--jobs", str(args.jobs)]
    if args.force:
        argv.append("--force")
    if args.check:
        argv.append("--check")
    if args.store:
        argv.extend(["--store", args.store])
    if args.engine != "auto":
        argv.extend(["--engine", args.engine])
    for name in (args.disable_pass or ()):
        argv.extend(["--disable-pass", name])
    return run_all_main(argv)


def cmd_check(args) -> int:
    """The differential correctness oracle (and optional fuzzing)."""
    from .check import fuzz as run_fuzz
    from .check import run_oracle

    widths = tuple(int(x) for x in args.widths.split(","))
    failed = False

    if not args.fuzz_only:
        wls = ([get_workload(n) for n in args.workloads.split(",")]
               if args.workloads else None)
        n = len(wls) if wls else len(all_workloads())
        print(f"differential oracle: {n} kernels x {len(list(Level))} levels "
              f"x widths {list(widths)} "
              f"({'with' if not args.no_ir_check else 'without'} IR checks)")
        report = run_oracle(wls, widths=widths, seed=args.seed,
                            check_ir=not args.no_ir_check, verbose=args.verbose,
                            cross_engine=args.cross_engine,
                            scheduler=args.scheduler,
                            solver_budget=args.solver_budget,
                            solver_store=_solver_store(args))
        print(report.summary())
        for d in report.divergences:
            print(f"  {d}")
        failed = failed or not report.ok

    if args.fuzz:
        print(f"fuzz: {args.fuzz} seeded random loop nests "
              f"(base seed {args.seed})")
        failures = run_fuzz(args.fuzz, seed=args.seed, widths=widths,
                            check_ir=not args.no_ir_check,
                            verbose=args.verbose)
        if failures:
            print(f"fuzz: {len(failures)} diverging case(s)")
            for f in failures:
                print(f"  {f}")
            failed = True
        else:
            print(f"fuzz: {args.fuzz} cases ok")

    return 1 if failed else 0


def cmd_serve(args) -> int:
    """Run the compilation service (see repro.service.server)."""
    from .service.server import main as serve_main

    return serve_main(args.rest)


def cmd_chaos(args) -> int:
    """Fault-injection suite (see repro.resilience.chaos)."""
    from .resilience.chaos import main as chaos_main

    return chaos_main(args.rest)


def cmd_cluster(args) -> int:
    """Multi-node cluster launcher (see repro.cluster.launch)."""
    from .cluster.launch import main as cluster_main

    return cluster_main(args.rest)


def cmd_submit(args) -> int:
    """Client side of the service: submit one request, print the reply."""
    import json as _json

    from .service.client import ServiceClient, ServiceRequestError

    c = ServiceClient(args.url, timeout=args.timeout)
    try:
        if args.what in ("compile", "run"):
            if not args.workload:
                print("submit compile/run requires a workload", file=sys.stderr)
                return 2
            fn = c.compile if args.what == "compile" else c.run
            reply = fn(args.workload, level=args.level, width=args.width,
                       disable=args.disable_pass or [])
        elif args.what == "sweep":
            names = (args.workload or "").split(",") if args.workload else []
            if not names:
                print("submit sweep requires workloads A,B,...", file=sys.stderr)
                return 2
            jid = c.sweep(names, widths=[int(x) for x in args.widths.split(",")])
            reply = c.wait_job(jid, timeout=args.timeout)
        elif args.what == "job":
            reply = c.job(args.workload)
        elif args.what == "metrics":
            reply = c.metrics()
        else:  # health
            reply = c.healthz()
    except ServiceRequestError as e:
        print(f"request failed: {e}", file=sys.stderr)
        return 1
    print(_json.dumps(reply, indent=2))
    return 0


def cmd_mii(args) -> int:
    w = get_workload(args.workload)
    machine = MachineConfig(issue_width=args.width)
    print(f"{w.name}: software-pipelining bounds (issue-{args.width})")
    for level in Level:
        ck = compile_kernel(w.build(), level, machine)
        b = compute_bounds(
            ck.sb.body.instrs, machine,
            iterations=ck.report.unroll_factor,
            prologue=ck.sb.preheader.instrs,
            doall=w.loop_type == "doall",
        )
        achieved = ck.inner_makespan / b.iterations
        line = (f"  {level.label}: ResMII={b.res_mii} RecMII={b.rec_mii} "
                f"MII/iter={b.mii_per_iteration:.2f} "
                f"achieved/iter={achieved:.2f}")
        if args.exact:
            from .optsched import modulo_schedule

            ms = modulo_schedule(
                ck.sb.body.instrs, machine,
                iterations=ck.report.unroll_factor,
                prologue=ck.sb.preheader.instrs,
                doall=w.loop_type == "doall",
            )
            line += (f" exactII/iter={ms.ii_per_iteration:.2f} "
                     f"[{ms.status}]")
        print(line)
    return 0


def cmd_headroom(args) -> int:
    """Heuristic-vs-optimal scheduling headroom (see experiments/headroom)."""
    from .experiments.headroom import main as headroom_main

    return headroom_main(args.rest)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = ap.add_subparsers(dest="cmd", required=True)

    sub.add_parser("list", help="list the 40 workloads")

    p = sub.add_parser("show", help="print a workload's source + metadata")
    p.add_argument("workload")

    check_help = ("run the IR invariant verifier between every compiler pass")

    def add_pipeline_flags(p):
        p.add_argument("--disable-pass", action="append", default=[],
                       metavar="NAME",
                       help="skip a registered pass (repeatable; see "
                            "`python -m repro passes`)")
        p.add_argument("--print-after", action="append", default=[],
                       metavar="NAME",
                       help="dump the IR after the named pass runs "
                            "(repeatable)")
        p.add_argument("--print-changed", action="store_true",
                       help="dump the IR after every pass that rewrote "
                            "something")

    def add_scheduler_flags(p):
        p.add_argument("--scheduler", choices=("list", "optimal"),
                       default="list",
                       help="schedule backend: greedy list scheduling "
                            "(default) or the exact solver with proof of "
                            "optimality (heuristic fallback under budget)")
        p.add_argument("--solver-budget", type=int, default=None,
                       metavar="NODES",
                       help="deterministic search-node budget per block "
                            "for --scheduler optimal")
        p.add_argument("--solver-store", metavar="DIR",
                       help="content-addressed store caching exact-solver "
                            "results across runs")

    sub.add_parser("passes",
                   help="list the registered pass pipeline "
                        "(phases, level gates, ablatability)")

    p = sub.add_parser("compile", help="print IR through the pipeline")
    p.add_argument("workload")
    p.add_argument("--level", type=int, default=4,
                   choices=[int(l) for l in Level])
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--stage", choices=("naive", "conv", "final", "all"),
                   default="final")
    p.add_argument("--check", action="store_true", help=check_help)
    p.add_argument("--stats", action="store_true",
                   help="print the per-pass stats table (rewrites, "
                        "instruction delta, wall time)")
    add_pipeline_flags(p)
    add_scheduler_flags(p)

    p = sub.add_parser("run", help="compile, simulate, and check a workload")
    p.add_argument("workload")
    p.add_argument("--level", type=int, default=4,
                   choices=[int(l) for l in Level])
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--all-levels", action="store_true")
    p.add_argument("--check", action="store_true", help=check_help)
    add_pipeline_flags(p)
    add_scheduler_flags(p)

    p = sub.add_parser("sweep", help="run the full evaluation grid")
    p.add_argument("--force", action="store_true")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (default: 1)")
    p.add_argument("--workloads", metavar="A,B,...",
                   help="comma-separated subset: sweep only these loops "
                        "and print a summary instead of the figures")
    p.add_argument("--journal", metavar="PATH",
                   help="JSONL journal for a --workloads sweep (enables "
                        "resuming an interrupted run)")
    p.add_argument("--store", metavar="DIR",
                   help="persistent content-addressed artifact store: "
                        "reuse configurations across sweeps/processes and "
                        "write back everything computed here")
    p.add_argument("--check", action="store_true", help=check_help)
    p.add_argument("--engine", choices=("auto", "compiled", "interp"),
                   default="auto",
                   help="simulator engine: 'compiled' = block-compiled "
                        "execute-once/replay-per-width core, 'interp' = "
                        "reference interpreter, 'auto' (default) = compiled "
                        "with fallback; results are bit-identical either way")
    p.add_argument("--fault-plan", metavar="FILE",
                   help="arm a fault-injection plan from a JSON file "
                        "(chaos testing only; see `python -m repro chaos`)")
    add_pipeline_flags(p)

    # remaining arguments are forwarded verbatim to
    # repro.experiments.ablation (try `python -m repro ablate --help`)
    sub.add_parser("ablate", add_help=False,
                   help="leave-one-out pass ablation -> "
                        "results/ablation.txt")

    # remaining arguments are forwarded verbatim to
    # repro.service.server (try `python -m repro serve --help`)
    sub.add_parser("serve", add_help=False,
                   help="run the compilation service (HTTP server over "
                        "the artifact store + async job engine)")

    # remaining arguments are forwarded verbatim to
    # repro.resilience.chaos (try `python -m repro chaos --help`)
    sub.add_parser("chaos", add_help=False,
                   help="fault-injection suite: crash/hang workers, corrupt "
                        "store writes, drop HTTP responses; verify identical "
                        "results and full fault accounting")

    # remaining arguments are forwarded verbatim to
    # repro.cluster.launch (try `python -m repro cluster --help`)
    sub.add_parser("cluster", add_help=False,
                   help="run a multi-node cluster: N node processes sharding "
                        "the store by consistent hash, plus a router "
                        "front-end")

    p = sub.add_parser("submit",
                       help="submit one request to a running service")
    p.add_argument("what",
                   choices=("compile", "run", "sweep", "job", "metrics",
                            "health"))
    p.add_argument("workload", nargs="?",
                   help="workload (compile/run), comma list (sweep), "
                        "or job id (job)")
    p.add_argument("--url", default="http://127.0.0.1:8734")
    p.add_argument("--level", type=int, default=4,
                   choices=[int(l) for l in Level])
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--widths", default="1,2,4,8", metavar="W,W,...")
    p.add_argument("--timeout", type=float, default=300.0)
    p.add_argument("--disable-pass", action="append", default=[],
                   metavar="NAME")

    p = sub.add_parser("mii", help="software-pipelining bounds per level")
    p.add_argument("workload")
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--exact", action="store_true",
                   help="additionally run the exact modulo scheduler and "
                        "print the achieved II per level")

    # remaining arguments are forwarded verbatim to
    # repro.experiments.headroom (try `python -m repro headroom --help`)
    sub.add_parser("headroom", add_help=False,
                   help="heuristic-vs-optimal scheduling headroom over the "
                        "corpus -> results/headroom.txt")

    p = sub.add_parser(
        "check",
        help="differential oracle: every kernel at every level must "
             "bit-match its unoptimized reference execution",
    )
    p.add_argument("--workloads", metavar="A,B,...",
                   help="comma-separated subset (default: all 40)")
    p.add_argument("--widths", default="1,8", metavar="W,W,...",
                   help="issue widths to check (default: 1,8)")
    p.add_argument("--seed", type=int, default=0,
                   help="input-data / fuzz base seed (default: 0)")
    p.add_argument("--fuzz", type=int, default=0, metavar="N",
                   help="additionally fuzz N random loop nests")
    p.add_argument("--fuzz-only", action="store_true",
                   help="skip the corpus oracle, only fuzz")
    p.add_argument("--no-ir-check", action="store_true",
                   help="skip the between-pass invariant verifier")
    p.add_argument("--cross-engine", action="store_true",
                   help="additionally run every configuration under both "
                        "simulator engines (interpreter and block-compiled "
                        "replay) and require bit-identical results")
    p.add_argument("--verbose", action="store_true")
    add_scheduler_flags(p)

    args, extra = ap.parse_known_args(argv)
    if args.cmd in ("ablate", "serve", "chaos", "cluster", "headroom"):
        args.rest = extra
    elif extra:
        ap.error(f"unrecognized arguments: {' '.join(extra)}")
    return {
        "list": cmd_list, "show": cmd_show, "passes": cmd_passes,
        "compile": cmd_compile, "run": cmd_run, "sweep": cmd_sweep,
        "ablate": cmd_ablate, "serve": cmd_serve, "submit": cmd_submit,
        "mii": cmd_mii, "check": cmd_check, "chaos": cmd_chaos,
        "cluster": cmd_cluster, "headroom": cmd_headroom,
    }[args.cmd](args)


if __name__ == "__main__":
    raise SystemExit(main())
