"""Basic blocks.

A block is a labeled straight-line instruction sequence.  Control may leave
a block through any branch instruction it contains (superblocks have side
exits mid-block), through a trailing unconditional jump, or by falling
through to the next block in function layout order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .instructions import Instr, Kind, Op


@dataclass(eq=False)
class Block:
    """A basic block (or superblock: single entry, possibly many exits)."""

    label: str
    instrs: list[Instr] = field(default_factory=list)

    def append(self, ins: Instr) -> Instr:
        self.instrs.append(ins)
        return ins

    def extend(self, instrs: list[Instr]) -> None:
        self.instrs.extend(instrs)

    def insert(self, idx: int, ins: Instr) -> Instr:
        self.instrs.insert(idx, ins)
        return ins

    def remove(self, ins: Instr) -> None:
        self.instrs.remove(ins)

    @property
    def terminator(self) -> Instr | None:
        """Trailing control instruction, if any."""
        if self.instrs and self.instrs[-1].is_control:
            return self.instrs[-1]
        return None

    @property
    def falls_through(self) -> bool:
        """True if control may reach the next block in layout order."""
        t = self.terminator
        return t is None or t.op not in (Op.JMP, Op.HALT)

    def branch_targets(self) -> Iterator[str]:
        """Labels this block may branch/jump to (in instruction order)."""
        for ins in self.instrs:
            if ins.is_control and ins.target is not None:
                yield ins.target.name

    def branches(self) -> Iterator[Instr]:
        for ins in self.instrs:
            if ins.is_control:
                yield ins

    def side_exits(self) -> Iterator[Instr]:
        """Branches other than the trailing terminator."""
        for ins in self.instrs[:-1]:
            if ins.is_control:
                yield ins

    @property
    def is_superblock(self) -> bool:
        """Has at least one mid-block side exit."""
        return any(True for _ in self.side_exits())

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __str__(self) -> str:
        from .printer import format_block

        return format_block(self)

    def __repr__(self) -> str:
        return f"<Block {self.label}: {len(self.instrs)} instrs>"
