"""repro.ir — the RISC intermediate representation.

Public surface: operand kinds, instructions/opcodes, blocks, functions,
loop discovery, the builder, the paper-notation printer and parser, and
the verifier.
"""

from .operands import (
    FImm,
    Imm,
    Label,
    Operand,
    Reg,
    RegClass,
    Sym,
    fp_reg,
    int_reg,
    is_constant,
)
from .instructions import (
    Instr,
    Kind,
    NEGATED_BRANCH,
    Op,
    OpInfo,
    OP_INFO,
    SWAPPED_BRANCH,
    make,
)
from .block import Block
from .function import EXIT_LABEL, Function, reachable_labels, remove_unreachable
from .loop import Loop, dominators, ensure_preheader, find_loops, innermost_loops, reverse_postorder
from .builder import FunctionBuilder
from .printer import format_block, format_function, format_instr, format_schedule
from .parser import ParseError, parse_block, parse_function, parse_instr, parse_operand
from .verify import VerifyError, verify_function, verify_instr

__all__ = [
    "FImm", "Imm", "Label", "Operand", "Reg", "RegClass", "Sym",
    "fp_reg", "int_reg", "is_constant",
    "Instr", "Kind", "NEGATED_BRANCH", "Op", "OpInfo", "OP_INFO",
    "SWAPPED_BRANCH", "make",
    "Block",
    "EXIT_LABEL", "Function", "reachable_labels", "remove_unreachable",
    "Loop", "dominators", "ensure_preheader", "find_loops",
    "innermost_loops", "reverse_postorder",
    "FunctionBuilder",
    "format_block", "format_function", "format_instr", "format_schedule",
    "ParseError", "parse_block", "parse_function", "parse_instr", "parse_operand",
    "VerifyError", "verify_function", "verify_instr",
]
