"""Loop structure: dominators, natural-loop discovery, loop descriptors.

The transformations of the paper operate on *inner loops*.  We discover
natural loops from dominator analysis so that passes (LICM, induction
variable strength reduction, unrolling, the expansion transformations) can
reason about preheaders, latches, exits, and nesting depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .block import Block
from .function import Function


def reverse_postorder(func: Function) -> list[str]:
    """Block labels in reverse postorder from the entry."""
    bm = func.block_map()
    seen: set[str] = set()
    post: list[str] = []

    # Iterative DFS to avoid recursion limits on long block chains.
    stack: list[tuple[str, int]] = [(func.entry.label, 0)]
    succs = {b.label: [s for s in func.successors(b) if s in bm] for b in func.blocks}
    seen.add(func.entry.label)
    while stack:
        lab, i = stack[-1]
        nxt = succs[lab]
        if i < len(nxt):
            stack[-1] = (lab, i + 1)
            s = nxt[i]
            if s not in seen:
                seen.add(s)
                stack.append((s, 0))
        else:
            stack.pop()
            post.append(lab)
    return list(reversed(post))


def dominators(func: Function) -> dict[str, set[str]]:
    """Classic iterative dominator sets (small CFGs; clarity over speed)."""
    rpo = reverse_postorder(func)
    preds = func.predecessors()
    all_labs = set(rpo)
    entry = func.entry.label
    dom: dict[str, set[str]] = {lab: set(all_labs) for lab in rpo}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for lab in rpo:
            if lab == entry:
                continue
            ps = [p for p in preds[lab] if p in all_labs]
            new = set(all_labs)
            for p in ps:
                new &= dom[p]
            new.add(lab)
            if new != dom[lab]:
                dom[lab] = new
                changed = True
    return dom


@dataclass(eq=False)
class Loop:
    """A natural loop.

    * ``header`` — unique entry block of the loop.
    * ``blocks`` — labels of all blocks in the loop (header included).
    * ``latches`` — blocks with a backedge to the header.
    * ``preheader`` — block outside the loop whose only successor is the
      header and which is the header's only outside predecessor
      (created on demand by :func:`ensure_preheader`).
    * ``exit_edges`` — (from_label, to_label) edges leaving the loop.
    """

    header: str
    blocks: set[str]
    latches: list[str]
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        d, p = 1, self.parent
        while p is not None:
            d += 1
            p = p.parent
        return d

    @property
    def is_innermost(self) -> bool:
        return not self.children

    def exit_edges(self, func: Function) -> list[tuple[str, str]]:
        edges = []
        bm = func.block_map()
        for lab in sorted(self.blocks):
            for s in func.successors(bm[lab]):
                if s not in self.blocks:
                    edges.append((lab, s))
        return edges

    def exit_targets(self, func: Function) -> list[str]:
        seen: list[str] = []
        for _, t in self.exit_edges(func):
            if t not in seen:
                seen.append(t)
        return seen

    def body_instrs(self, func: Function):
        bm = func.block_map()
        for b in func.blocks:  # layout order for determinism
            if b.label in self.blocks:
                yield from b.instrs

    def __repr__(self) -> str:
        return f"<Loop header={self.header} blocks={sorted(self.blocks)}>"


def find_loops(func: Function) -> list[Loop]:
    """Discover natural loops; returns them with parent/children nesting.

    Loops sharing a header are merged (standard natural-loop convention).
    The result is ordered outermost-first by nesting depth.
    """
    dom = dominators(func)
    bm = func.block_map()

    # backedges: edge u->h where h dominates u
    back: dict[str, list[str]] = {}
    for b in func.blocks:
        for s in func.successors(b):
            if s in dom.get(b.label, set()):
                back.setdefault(s, []).append(b.label)

    preds = func.predecessors()
    loops: list[Loop] = []
    for header, latches in back.items():
        body: set[str] = {header}
        work = [lat for lat in latches if lat != header]
        body.update(latches)
        while work:
            lab = work.pop()
            for p in preds[lab]:
                if p not in body and p in bm:
                    body.add(p)
                    work.append(p)
        loops.append(Loop(header, body, sorted(set(latches))))

    # nesting: loop A is parent of B if B.blocks < A.blocks
    loops.sort(key=lambda l: len(l.blocks), reverse=True)
    for i, inner in enumerate(loops):
        best: Loop | None = None
        for outer in loops:
            if outer is inner:
                continue
            if inner.blocks < outer.blocks:
                if best is None or len(outer.blocks) < len(best.blocks):
                    best = outer
        inner.parent = best
        if best is not None:
            best.children.append(inner)
    loops.sort(key=lambda l: l.depth)
    return loops


def innermost_loops(func: Function) -> list[Loop]:
    return [l for l in find_loops(func) if l.is_innermost]


def ensure_preheader(func: Function, loop: Loop) -> Block:
    """Return the loop's preheader block, creating one if necessary.

    The preheader is the unique out-of-loop predecessor of the header and
    falls through (or jumps) only to the header.
    """
    preds = func.predecessors()
    outside = [p for p in preds[loop.header] if p not in loop.blocks]
    if len(outside) == 1:
        cand = func.get_block(outside[0])
        succs = func.successors(cand)
        if succs == [loop.header]:
            return cand
    # create a fresh preheader immediately before the header in layout
    ph_label = func.new_label(f"{loop.header}.pre")
    idx = func.block_index(loop.header)
    ph = func.add_block(ph_label, index=idx)
    # all out-of-loop edges into the header must be routed through it;
    # branches that targeted the header now target the preheader
    from .operands import Label

    bm = func.block_map()
    for p in outside:
        pb = bm[p]
        for ins in pb.branches():
            if ins.target is not None and ins.target.name == loop.header:
                ins.target = Label(ph_label)
        # fall-through into the header now falls into the preheader, which
        # falls through to the header: layout insertion handles it.
    return ph
