"""Instruction definitions for the repro IR.

The opcode set is a RISC assembly similar to the MIPS R2000 (paper §3.1):
integer ALU ops, integer multiply/divide/remainder, floating-point
arithmetic, int<->fp conversions, loads/stores with base+offset addressing,
and fused compare-and-branch instructions.

Each opcode carries static metadata (kind, operand classes, commutativity,
whether it may trap) used by the analyses and transformations.  Latencies
are *not* stored here — they belong to the machine model
(:mod:`repro.machine`), because the paper treats them as a processor
parameter (Table 1).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator

from .operands import FImm, Imm, Label, Operand, Reg, RegClass, Sym


class Kind(enum.Enum):
    """Broad structural category of an opcode."""

    INT_ALU = enum.auto()
    INT_MUL = enum.auto()
    INT_DIV = enum.auto()
    FP_ALU = enum.auto()
    FP_MUL = enum.auto()
    FP_DIV = enum.auto()
    FP_CVT = enum.auto()
    LOAD = enum.auto()
    STORE = enum.auto()
    BRANCH = enum.auto()
    JUMP = enum.auto()
    HALT = enum.auto()
    NOP = enum.auto()
    # vector (Lev5 superword-level parallelism); latencies mirror the
    # scalar Table-1 classes of the per-lane operation
    VEC_IALU = enum.auto()
    VEC_IMUL = enum.auto()
    VEC_FALU = enum.auto()
    VEC_FMUL = enum.auto()
    VEC_FDIV = enum.auto()
    VEC_LOAD = enum.auto()
    VEC_STORE = enum.auto()
    VEC_PACK = enum.auto()


#: Kinds that denote vector (multi-lane) operations.
VECTOR_KINDS = frozenset({
    Kind.VEC_IALU, Kind.VEC_IMUL, Kind.VEC_FALU, Kind.VEC_FMUL,
    Kind.VEC_FDIV, Kind.VEC_LOAD, Kind.VEC_STORE, Kind.VEC_PACK,
})


class Op(enum.Enum):
    """Opcodes.  Value is the assembly mnemonic used by printer/parser."""

    # integer ALU (latency class: int ALU)
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"          # shift left logical
    SHRA = "shra"        # shift right arithmetic
    SHRL = "shrl"        # shift right logical
    MOV = "mov"          # integer register/immediate move
    # integer multiply / divide
    MUL = "mul"
    DIV = "div"          # truncating integer division
    REM = "rem"
    # floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMOV = "fmov"
    # conversions
    ITOF = "itof"
    FTOI = "ftoi"        # truncation toward zero
    # memory: address = src0 (base) + src1 (offset)
    LD = "ld"            # integer load
    LDF = "ldf"          # floating-point load
    ST = "st"            # integer store; srcs = (base, offset, value)
    STF = "stf"          # fp store
    # fused compare-and-branch, integer operands
    BLT = "blt"
    BLE = "ble"
    BGT = "bgt"
    BGE = "bge"
    BEQ = "beq"
    BNE = "bne"
    # fused compare-and-branch, fp operands
    FBLT = "fblt"
    FBLE = "fble"
    FBGT = "fbgt"
    FBGE = "fbge"
    FBEQ = "fbeq"
    FBNE = "fbne"
    JMP = "jmp"
    HALT = "halt"
    NOP = "nop"
    # vector memory: ``lanes`` consecutive words starting at base+offset
    VLD = "vld"          # int vector load
    VLDF = "vldf"        # fp vector load
    VST = "vst"          # int vector store; srcs = (base, offset, value)
    VSTF = "vstf"        # fp vector store
    # element-wise vector arithmetic
    VADD = "vadd"
    VSUB = "vsub"
    VMUL = "vmul"
    VFADD = "vfadd"
    VFSUB = "vfsub"
    VFMUL = "vfmul"
    VFDIV = "vfdiv"
    # lane marshalling: gather scalars into a vector / extract one lane
    VPACK = "vpack"      # srcs = lanes int scalars
    VPACKF = "vpackf"    # srcs = lanes fp scalars
    VEXT = "vext"        # srcs = (vector, Imm lane index)
    VEXTF = "vextf"


_INT_BRANCHES = {Op.BLT, Op.BLE, Op.BGT, Op.BGE, Op.BEQ, Op.BNE}
_FP_BRANCHES = {Op.FBLT, Op.FBLE, Op.FBGT, Op.FBGE, Op.FBEQ, Op.FBNE}


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    kind: Kind
    #: number of value source operands (branches: the 2 compared values);
    #: -1 means variadic — arity equals the instruction's ``lanes``
    n_srcs: int
    #: register class of the destination, or None
    dest_cls: RegClass | None
    #: register classes expected of each source operand
    src_cls: tuple[RegClass, ...]
    #: op is commutative in its two sources
    commutative: bool = False
    #: op may raise an architectural exception (div by zero);
    #: such ops are not speculated above branches
    may_trap: bool = False


_I = RegClass.INT
_F = RegClass.FP

OP_INFO: dict[Op, OpInfo] = {
    Op.ADD: OpInfo(Kind.INT_ALU, 2, _I, (_I, _I), commutative=True),
    Op.SUB: OpInfo(Kind.INT_ALU, 2, _I, (_I, _I)),
    Op.AND: OpInfo(Kind.INT_ALU, 2, _I, (_I, _I), commutative=True),
    Op.OR: OpInfo(Kind.INT_ALU, 2, _I, (_I, _I), commutative=True),
    Op.XOR: OpInfo(Kind.INT_ALU, 2, _I, (_I, _I), commutative=True),
    Op.SHL: OpInfo(Kind.INT_ALU, 2, _I, (_I, _I)),
    Op.SHRA: OpInfo(Kind.INT_ALU, 2, _I, (_I, _I)),
    Op.SHRL: OpInfo(Kind.INT_ALU, 2, _I, (_I, _I)),
    Op.MOV: OpInfo(Kind.INT_ALU, 1, _I, (_I,)),
    Op.MUL: OpInfo(Kind.INT_MUL, 2, _I, (_I, _I), commutative=True),
    Op.DIV: OpInfo(Kind.INT_DIV, 2, _I, (_I, _I), may_trap=True),
    Op.REM: OpInfo(Kind.INT_DIV, 2, _I, (_I, _I), may_trap=True),
    Op.FADD: OpInfo(Kind.FP_ALU, 2, _F, (_F, _F), commutative=True),
    Op.FSUB: OpInfo(Kind.FP_ALU, 2, _F, (_F, _F)),
    Op.FMUL: OpInfo(Kind.FP_MUL, 2, _F, (_F, _F), commutative=True),
    Op.FDIV: OpInfo(Kind.FP_DIV, 2, _F, (_F, _F)),
    Op.FMOV: OpInfo(Kind.FP_ALU, 1, _F, (_F,)),
    Op.ITOF: OpInfo(Kind.FP_CVT, 1, _F, (_I,)),
    Op.FTOI: OpInfo(Kind.FP_CVT, 1, _I, (_F,)),
    Op.LD: OpInfo(Kind.LOAD, 2, _I, (_I, _I)),
    Op.LDF: OpInfo(Kind.LOAD, 2, _F, (_I, _I)),
    Op.ST: OpInfo(Kind.STORE, 3, None, (_I, _I, _I)),
    Op.STF: OpInfo(Kind.STORE, 3, None, (_I, _I, _F)),
    Op.BLT: OpInfo(Kind.BRANCH, 2, None, (_I, _I)),
    Op.BLE: OpInfo(Kind.BRANCH, 2, None, (_I, _I)),
    Op.BGT: OpInfo(Kind.BRANCH, 2, None, (_I, _I)),
    Op.BGE: OpInfo(Kind.BRANCH, 2, None, (_I, _I)),
    Op.BEQ: OpInfo(Kind.BRANCH, 2, None, (_I, _I)),
    Op.BNE: OpInfo(Kind.BRANCH, 2, None, (_I, _I)),
    Op.FBLT: OpInfo(Kind.BRANCH, 2, None, (_F, _F)),
    Op.FBLE: OpInfo(Kind.BRANCH, 2, None, (_F, _F)),
    Op.FBGT: OpInfo(Kind.BRANCH, 2, None, (_F, _F)),
    Op.FBGE: OpInfo(Kind.BRANCH, 2, None, (_F, _F)),
    Op.FBEQ: OpInfo(Kind.BRANCH, 2, None, (_F, _F)),
    Op.FBNE: OpInfo(Kind.BRANCH, 2, None, (_F, _F)),
    Op.JMP: OpInfo(Kind.JUMP, 0, None, ()),
    Op.HALT: OpInfo(Kind.HALT, 0, None, ()),
    Op.NOP: OpInfo(Kind.NOP, 0, None, ()),
}

_VI = RegClass.VINT
_VF = RegClass.VFP

OP_INFO.update({
    Op.VLD: OpInfo(Kind.VEC_LOAD, 2, _VI, (_I, _I)),
    Op.VLDF: OpInfo(Kind.VEC_LOAD, 2, _VF, (_I, _I)),
    Op.VST: OpInfo(Kind.VEC_STORE, 3, None, (_I, _I, _VI)),
    Op.VSTF: OpInfo(Kind.VEC_STORE, 3, None, (_I, _I, _VF)),
    Op.VADD: OpInfo(Kind.VEC_IALU, 2, _VI, (_VI, _VI), commutative=True),
    Op.VSUB: OpInfo(Kind.VEC_IALU, 2, _VI, (_VI, _VI)),
    Op.VMUL: OpInfo(Kind.VEC_IMUL, 2, _VI, (_VI, _VI), commutative=True),
    Op.VFADD: OpInfo(Kind.VEC_FALU, 2, _VF, (_VF, _VF), commutative=True),
    Op.VFSUB: OpInfo(Kind.VEC_FALU, 2, _VF, (_VF, _VF)),
    Op.VFMUL: OpInfo(Kind.VEC_FMUL, 2, _VF, (_VF, _VF), commutative=True),
    Op.VFDIV: OpInfo(Kind.VEC_FDIV, 2, _VF, (_VF, _VF)),
    Op.VPACK: OpInfo(Kind.VEC_PACK, -1, _VI, (_I,)),
    Op.VPACKF: OpInfo(Kind.VEC_PACK, -1, _VF, (_F,)),
    Op.VEXT: OpInfo(Kind.VEC_PACK, 2, _I, (_VI, _I)),
    Op.VEXTF: OpInfo(Kind.VEC_PACK, 2, _F, (_VF, _I)),
})

#: element-wise vector op corresponding to each packable scalar op
VECTOR_OP_FOR: dict[Op, Op] = {
    Op.ADD: Op.VADD, Op.SUB: Op.VSUB, Op.MUL: Op.VMUL,
    Op.FADD: Op.VFADD, Op.FSUB: Op.VFSUB, Op.FMUL: Op.VFMUL,
    Op.FDIV: Op.VFDIV,
    Op.LD: Op.VLD, Op.LDF: Op.VLDF, Op.ST: Op.VST, Op.STF: Op.VSTF,
}

#: Branch condition negation, used when superblock formation flips a trace.
NEGATED_BRANCH: dict[Op, Op] = {
    Op.BLT: Op.BGE, Op.BGE: Op.BLT,
    Op.BLE: Op.BGT, Op.BGT: Op.BLE,
    Op.BEQ: Op.BNE, Op.BNE: Op.BEQ,
    Op.FBLT: Op.FBGE, Op.FBGE: Op.FBLT,
    Op.FBLE: Op.FBGT, Op.FBGT: Op.FBLE,
    Op.FBEQ: Op.FBNE, Op.FBNE: Op.FBEQ,
}

#: Branch with swapped comparison operands (a<b  <->  b>a).
SWAPPED_BRANCH: dict[Op, Op] = {
    Op.BLT: Op.BGT, Op.BGT: Op.BLT,
    Op.BLE: Op.BGE, Op.BGE: Op.BLE,
    Op.BEQ: Op.BEQ, Op.BNE: Op.BNE,
    Op.FBLT: Op.FBGT, Op.FBGT: Op.FBLT,
    Op.FBLE: Op.FBGE, Op.FBGE: Op.FBLE,
    Op.FBEQ: Op.FBEQ, Op.FBNE: Op.FBNE,
}

_uid_counter = itertools.count(1)


@dataclass(eq=False)
class Instr:
    """One IR instruction.

    Instructions are mutable objects with identity: the same ``Instr`` may
    not appear twice in a function.  ``uid`` provides a stable ordering for
    deterministic output.

    * ``dest`` — destination register, or None for stores/branches/nop.
    * ``srcs`` — value source operands.  For loads: ``(base, offset)``;
      for stores: ``(base, offset, value)``; for branches the two compared
      values.
    * ``target`` — branch/jump target label.
    """

    op: Op
    dest: Reg | None = None
    srcs: tuple[Operand, ...] = ()
    target: Label | None = None
    #: for branches: static probability the branch is taken (trace selection)
    prob: float | None = None
    #: unrolled-iteration index this instruction came from (0 = original
    #: body); used with the loop's DOALL classification for cross-iteration
    #: memory disambiguation
    tag: int = 0
    #: vector width in elements; 0 for scalar instructions.  Vector memory
    #: ops touch ``lanes`` consecutive words starting at base+offset.
    lanes: int = 0
    uid: int = field(default_factory=lambda: next(_uid_counter))

    # -- structural queries -------------------------------------------------

    @property
    def info(self) -> OpInfo:
        return OP_INFO[self.op]

    @property
    def kind(self) -> Kind:
        return OP_INFO[self.op].kind

    @property
    def is_branch(self) -> bool:
        return OP_INFO[self.op].kind is Kind.BRANCH

    @property
    def is_jump(self) -> bool:
        return self.op is Op.JMP

    @property
    def is_control(self) -> bool:
        k = OP_INFO[self.op].kind
        return k is Kind.BRANCH or k is Kind.JUMP or k is Kind.HALT

    @property
    def is_load(self) -> bool:
        k = OP_INFO[self.op].kind
        return k is Kind.LOAD or k is Kind.VEC_LOAD

    @property
    def is_store(self) -> bool:
        k = OP_INFO[self.op].kind
        return k is Kind.STORE or k is Kind.VEC_STORE

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_vector(self) -> bool:
        return OP_INFO[self.op].kind in VECTOR_KINDS

    @property
    def mem_words(self) -> int:
        """Number of consecutive memory words a memory op touches."""
        return self.lanes if self.lanes > 0 else 1

    @property
    def may_trap(self) -> bool:
        return OP_INFO[self.op].may_trap

    # -- operand access -----------------------------------------------------

    def reg_uses(self) -> Iterator[Reg]:
        """Registers read by this instruction."""
        for s in self.srcs:
            if isinstance(s, Reg):
                yield s

    def reg_defs(self) -> Iterator[Reg]:
        """Registers written by this instruction (0 or 1)."""
        if self.dest is not None:
            yield self.dest

    @property
    def address(self) -> tuple[Operand, Operand] | None:
        """(base, offset) for memory instructions, else None."""
        if self.is_mem:
            return (self.srcs[0], self.srcs[1])
        return None

    @property
    def store_value(self) -> Operand:
        assert self.is_store
        return self.srcs[2]

    def replace_uses(self, mapping: dict[Reg, Operand]) -> None:
        """Rewrite source registers in place according to ``mapping``."""
        if not mapping:
            return
        self.srcs = tuple(
            mapping.get(s, s) if isinstance(s, Reg) else s for s in self.srcs
        )

    def copy(self) -> "Instr":
        """Fresh instruction (new uid) with identical opcode/operands."""
        return Instr(self.op, self.dest, self.srcs, self.target, self.prob,
                     self.tag, self.lanes)

    # -- rendering ----------------------------------------------------------

    def __str__(self) -> str:
        from .printer import format_instr  # local import: avoid cycle

        return format_instr(self)

    def __repr__(self) -> str:
        return f"<{format_plain(self)} #{self.uid}>"


def format_plain(ins: Instr) -> str:
    """Low-level mnemonic rendering, independent of the pretty printer."""
    parts = [ins.op.value]
    if ins.dest is not None:
        parts.append(str(ins.dest))
    parts.extend(str(s) for s in ins.srcs)
    if ins.target is not None:
        parts.append(str(ins.target))
    return " ".join(parts)


# -- convenience constructors ------------------------------------------------

def make(op: Op, dest: Reg | None = None, srcs: tuple[Operand, ...] = (),
         target: Label | None = None, lanes: int = 0) -> Instr:
    """Construct an instruction, checking arity against opcode metadata.

    Vector opcodes require ``lanes >= 2``; variadic packs take exactly
    ``lanes`` sources.
    """
    info = OP_INFO[op]
    if info.kind in VECTOR_KINDS:
        if lanes < 2:
            raise ValueError(f"{op.value}: vector op needs lanes >= 2")
    elif lanes:
        raise ValueError(f"{op.value}: scalar op cannot carry lanes")
    expect = lanes if info.n_srcs < 0 else info.n_srcs
    if len(srcs) != expect:
        raise ValueError(
            f"{op.value} expects {expect} sources, got {len(srcs)}"
        )
    if (dest is None) != (info.dest_cls is None):
        raise ValueError(f"{op.value}: destination mismatch")
    if info.kind in (Kind.BRANCH, Kind.JUMP) and target is None:
        raise ValueError(f"{op.value}: missing branch target")
    return Instr(op, dest, srcs, target, lanes=lanes)
