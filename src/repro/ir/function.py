"""Function: the CFG container and unit of compilation/simulation.

A function is an ordered list of blocks; layout order defines fall-through.
Execution starts at the first block and ends when control falls off the end
of the last block.  Conventionally the last block is an (often empty) block
labeled ``exit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .block import Block
from .instructions import Instr, Op
from .operands import Reg, RegClass

EXIT_LABEL = "exit"


@dataclass(eq=False)
class Function:
    """An IR function: ordered basic blocks plus register/label allocators."""

    name: str
    blocks: list[Block] = field(default_factory=list)
    #: registers referenced outside the instruction stream (harness
    #: bindings); they survive reindex_regs and are never re-allocated
    pinned_regs: set[Reg] = field(default_factory=set)
    _next_reg: dict[RegClass, int] = field(
        default_factory=lambda: {cls: 1 for cls in RegClass}
    )
    _next_label: int = 0

    # -- construction -------------------------------------------------------

    def add_block(self, label: str | None = None, index: int | None = None) -> Block:
        """Create and insert a new block (at the end by default)."""
        if label is None:
            label = self.new_label()
        if any(b.label == label for b in self.blocks):
            raise ValueError(f"duplicate block label {label!r}")
        blk = Block(label)
        if index is None:
            self.blocks.append(blk)
        else:
            self.blocks.insert(index, blk)
        return blk

    def new_reg(self, cls: RegClass) -> Reg:
        """Allocate a fresh virtual register of the given class."""
        i = self._next_reg[cls]
        self._next_reg[cls] = i + 1
        return Reg(i, cls)

    def new_int_reg(self) -> Reg:
        return self.new_reg(RegClass.INT)

    def new_fp_reg(self) -> Reg:
        return self.new_reg(RegClass.FP)

    def reserve_reg(self, reg: Reg) -> Reg:
        """Mark a specific register id as in use (for hand-built IR)."""
        if reg.id >= self._next_reg[reg.cls]:
            self._next_reg[reg.cls] = reg.id + 1
        return reg

    def new_label(self, hint: str = "L") -> str:
        """Allocate a fresh, unused block label."""
        existing = {b.label for b in self.blocks}
        while True:
            self._next_label += 1
            lab = f"{hint}{self._next_label}"
            if lab not in existing:
                return lab

    def reindex_regs(self) -> None:
        """Recompute fresh-register counters from the instructions present
        (plus pinned registers that live only in harness bindings)."""
        nxt = {cls: 1 for cls in RegClass}
        for ins in self.iter_instrs():
            for r in ins.reg_uses():
                nxt[r.cls] = max(nxt[r.cls], r.id + 1)
            for r in ins.reg_defs():
                nxt[r.cls] = max(nxt[r.cls], r.id + 1)
        for r in self.pinned_regs:
            nxt[r.cls] = max(nxt[r.cls], r.id + 1)
        self._next_reg = nxt

    # -- structure queries ---------------------------------------------------

    @property
    def entry(self) -> Block:
        return self.blocks[0]

    def block_map(self) -> dict[str, Block]:
        return {b.label: b for b in self.blocks}

    def get_block(self, label: str) -> Block:
        for b in self.blocks:
            if b.label == label:
                return b
        raise KeyError(label)

    def block_index(self, label: str) -> int:
        for i, b in enumerate(self.blocks):
            if b.label == label:
                return i
        raise KeyError(label)

    def successors(self, blk: Block) -> list[str]:
        """Successor labels: every branch target plus fall-through."""
        succ: list[str] = []
        for ins in blk.branches():
            if ins.target is not None and ins.target.name not in succ:
                succ.append(ins.target.name)
        if blk.falls_through:
            idx = self.blocks.index(blk)
            if idx + 1 < len(self.blocks):
                nxt = self.blocks[idx + 1].label
                if nxt not in succ:
                    succ.append(nxt)
        return succ

    def fallthrough_succ(self, blk: Block) -> str | None:
        if not blk.falls_through:
            return None
        idx = self.blocks.index(blk)
        if idx + 1 < len(self.blocks):
            return self.blocks[idx + 1].label
        return None

    def predecessors(self) -> dict[str, list[str]]:
        preds: dict[str, list[str]] = {b.label: [] for b in self.blocks}
        for b in self.blocks:
            for s in self.successors(b):
                if s in preds:
                    preds[s].append(b.label)
        return preds

    def iter_instrs(self) -> Iterator[Instr]:
        for b in self.blocks:
            yield from b.instrs

    def n_instrs(self) -> int:
        return sum(len(b) for b in self.blocks)

    # -- editing helpers ------------------------------------------------------

    def retarget(self, old: str, new: str) -> None:
        """Rewrite every branch target ``old`` to ``new``."""
        from .operands import Label

        for ins in self.iter_instrs():
            if ins.target is not None and ins.target.name == old:
                ins.target = Label(new)

    def remove_block(self, label: str) -> None:
        self.blocks.remove(self.get_block(label))

    def ensure_fallthrough_jump(self, blk: Block) -> None:
        """Give ``blk`` an explicit jump to its current fall-through target,
        so it can be moved in layout order without changing behaviour."""
        from .operands import Label

        ft = self.fallthrough_succ(blk)
        if ft is not None:
            blk.append(Instr(Op.JMP, target=Label(ft)))

    # -- rendering -------------------------------------------------------------

    def __str__(self) -> str:
        from .printer import format_function

        return format_function(self)

    def __repr__(self) -> str:
        return f"<Function {self.name}: {len(self.blocks)} blocks, {self.n_instrs()} instrs>"


def reachable_labels(func: Function) -> set[str]:
    """Labels reachable from the entry block."""
    if not func.blocks:
        return set()
    bm = func.block_map()
    seen: set[str] = set()
    work = [func.entry.label]
    while work:
        lab = work.pop()
        if lab in seen or lab not in bm:
            continue
        seen.add(lab)
        work.extend(func.successors(bm[lab]))
    return seen


def remove_unreachable(func: Function) -> int:
    """Delete unreachable blocks; returns how many were removed."""
    keep = reachable_labels(func)
    dead = [b for b in func.blocks if b.label not in keep]
    for b in dead:
        func.blocks.remove(b)
    return len(dead)
