"""Parser for the paper-style assembly notation produced by the printer.

This enables tests (and users) to write IR exactly as it appears in the
paper's figures::

    func = parse_function('''
    function daxpy:
    L1:
      r2f = MEM(A+r1i)
      r3f = MEM(B+r1i)
      r4f = r2f + r3f
      MEM(C+r1i) = r4f
      r1i = r1i + 4
      blt (r1i r5i) L1
    exit:
    ''')

Binary opcodes are selected by destination register class (``r4f = a + b``
is ``fadd``; ``r1i = a + b`` is ``add``).
"""

from __future__ import annotations

import re

from .block import Block
from .function import Function
from .instructions import Instr, Op, OP_INFO, Kind
from .operands import FImm, Imm, Label, Operand, Reg, RegClass, Sym


class ParseError(ValueError):
    pass


_REG_RE = re.compile(r"^r(\d+)(vi|vf|i|f)$")
_REG_CLS = {"i": RegClass.INT, "f": RegClass.FP,
            "vi": RegClass.VINT, "vf": RegClass.VFP}
_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_SYM_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9.]*$")

_BINOPS_INT: dict[str, Op] = {
    "+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.REM,
    "&": Op.AND, "|": Op.OR, "^": Op.XOR,
    "<<": Op.SHL, ">>": Op.SHRA, ">>>": Op.SHRL,
}
_BINOPS_FP: dict[str, Op] = {
    "+": Op.FADD, "-": Op.FSUB, "*": Op.FMUL, "/": Op.FDIV,
}
_BRANCH_OPS = {
    op.value: op for op in Op if OP_INFO[op].kind is Kind.BRANCH
}

_BINOP_SPLIT = re.compile(r"\s(\+|\-|\*|/|%|&|\||\^|<<|>>>|>>)\s")
_VEC_RE = re.compile(r"^(v\w+)\.(\d+)\(\s*(.*?)\s*\)$")
_VEC_OPS = {
    op.value: op for op in Op
    if OP_INFO[op].kind.name.startswith("VEC_")
}
_MEM_RE = re.compile(r"^MEM\(\s*([^)+]+?)\s*(?:([+-])\s*([^)]+?)\s*)?\)$")
_BRANCH_RE = re.compile(r"^(\w+)\s*\(\s*(\S+)\s+(\S+)\s*\)\s*(\S+)$")
_CVT_RE = re.compile(r"^(itof|ftoi)\(\s*(\S+)\s*\)$")


def parse_operand(text: str) -> Operand:
    """Parse a register, immediate, or symbol."""
    text = text.strip()
    m = _REG_RE.match(text)
    if m:
        return Reg(int(m.group(1)), _REG_CLS[m.group(2)])
    if _INT_RE.match(text):
        return Imm(int(text))
    if _FLOAT_RE.match(text):
        return FImm(float(text))
    if _SYM_RE.match(text):
        return Sym(text)
    raise ParseError(f"cannot parse operand {text!r}")


def _parse_mem(text: str) -> tuple[Operand, Operand]:
    m = _MEM_RE.match(text.strip())
    if not m:
        raise ParseError(f"cannot parse memory operand {text!r}")
    base = parse_operand(m.group(1))
    if m.group(3) is None:
        off: Operand = Imm(0)
    else:
        off = parse_operand(m.group(3))
        if m.group(2) == "-":
            if isinstance(off, Imm):
                off = Imm(-off.value)
            else:
                raise ParseError(f"negative register offset in {text!r}")
    return base, off


def _parse_vec(m: re.Match, dest: Reg | None, line: str) -> Instr:
    from .instructions import make

    op = _VEC_OPS[m.group(1)]
    lanes = int(m.group(2))
    args = m.group(3)
    srcs = tuple(parse_operand(a) for a in args.split(",")) if args else ()
    try:
        return make(op, dest, srcs, lanes=lanes)
    except ValueError as e:
        raise ParseError(f"{e}: {line!r}") from None


def parse_instr(line: str) -> Instr:
    """Parse one instruction in printer notation."""
    line = line.strip()
    if line == "nop":
        return Instr(Op.NOP)
    if line == "halt":
        return Instr(Op.HALT)
    if line.startswith("jmp "):
        return Instr(Op.JMP, target=Label(line[4:].strip()))

    # vector, no destination (stores): vstf.4(A, r1i, r2vf)
    m = _VEC_RE.match(line)
    if m and m.group(1) in _VEC_OPS:
        return _parse_vec(m, None, line)

    m = _BRANCH_RE.match(line)
    if m and m.group(1) in _BRANCH_OPS:
        op = _BRANCH_OPS[m.group(1)]
        a, b = parse_operand(m.group(2)), parse_operand(m.group(3))
        return Instr(op, srcs=(a, b), target=Label(m.group(4)))

    if "=" not in line:
        raise ParseError(f"cannot parse instruction {line!r}")
    lhs, rhs = (s.strip() for s in line.split("=", 1))

    # store: MEM(...) = value
    if lhs.startswith("MEM("):
        base, off = _parse_mem(lhs)
        val = parse_operand(rhs)
        op = Op.STF if isinstance(val, (FImm,)) or (
            isinstance(val, Reg) and val.is_fp
        ) else Op.ST
        return Instr(op, srcs=(base, off, val))

    dest = parse_operand(lhs)
    if not isinstance(dest, Reg):
        raise ParseError(f"destination must be a register: {line!r}")

    # vector with destination: dest = vfadd.4(r1vf, r2vf)
    m = _VEC_RE.match(rhs)
    if m and m.group(1) in _VEC_OPS:
        return _parse_vec(m, dest, line)

    # load: dest = MEM(...)
    if rhs.startswith("MEM("):
        base, off = _parse_mem(rhs)
        return Instr(Op.LDF if dest.is_fp else Op.LD, dest, (base, off))

    # conversion: dest = itof(x) / ftoi(x)
    m = _CVT_RE.match(rhs)
    if m:
        op = Op.ITOF if m.group(1) == "itof" else Op.FTOI
        return Instr(op, dest, (parse_operand(m.group(2)),))

    # binary: dest = a OP b   (split on spaced operator to keep negative
    # immediates like "r1i = r2i + -4" unambiguous)
    m = _BINOP_SPLIT.search(rhs)
    if m:
        sym = m.group(1)
        a = parse_operand(rhs[: m.start()])
        b = parse_operand(rhs[m.end():])
        table = _BINOPS_FP if dest.is_fp else _BINOPS_INT
        if sym not in table:
            raise ParseError(f"operator {sym!r} invalid for {dest}: {line!r}")
        return Instr(table[sym], dest, (a, b))

    # move: dest = src
    src = parse_operand(rhs)
    return Instr(Op.FMOV if dest.is_fp else Op.MOV, dest, (src,))


def parse_block(text: str, label: str = "entry") -> Block:
    """Parse instruction lines (no labels) into a block."""
    blk = Block(label)
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        blk.append(parse_instr(line))
    return blk


def parse_function(text: str) -> Function:
    """Parse a whole function: optional header line, labeled blocks."""
    func: Function | None = None
    cur: Block | None = None
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("function "):
            name = line[len("function "):].rstrip(":").strip()
            func = Function(name)
            continue
        if func is None:
            func = Function("anonymous")
        if line.endswith(":") and _SYM_RE.match(line[:-1]):
            cur = func.add_block(line[:-1])
            continue
        if cur is None:
            cur = func.add_block("entry")
        cur.append(parse_instr(line))
    if func is None:
        raise ParseError("empty function text")
    func.reindex_regs()
    return func
