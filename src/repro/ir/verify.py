"""Structural and type verifier for IR functions.

Run after construction and after every transformation pass (the pipeline
does this in debug mode) to catch malformed IR early:

* operand arity and register classes match the opcode signature;
* branch targets name existing blocks;
* block labels are unique;
* no instruction object appears twice;
* unconditional jumps/branches only as allowed (side exits are permitted —
  superblocks rely on them — but a jump must terminate its block).
"""

from __future__ import annotations

from .function import Function
from .instructions import Instr, Kind, Op, OP_INFO
from .operands import FImm, Imm, Reg, RegClass, Sym


class VerifyError(AssertionError):
    pass


def _operand_class_ok(operand, expected: RegClass) -> bool:
    if isinstance(operand, Reg):
        return operand.cls is expected
    if isinstance(operand, Imm) or isinstance(operand, Sym):
        return expected is RegClass.INT
    if isinstance(operand, FImm):
        return expected is RegClass.FP
    return False


def verify_instr(ins: Instr) -> None:
    info = OP_INFO[ins.op]
    if len(ins.srcs) != info.n_srcs:
        raise VerifyError(f"{ins!r}: expected {info.n_srcs} srcs")
    if (ins.dest is None) != (info.dest_cls is None):
        raise VerifyError(f"{ins!r}: dest presence mismatch")
    if ins.dest is not None and ins.dest.cls is not info.dest_cls:
        raise VerifyError(f"{ins!r}: dest class {ins.dest.cls} != {info.dest_cls}")
    for i, (src, cls) in enumerate(zip(ins.srcs, info.src_cls)):
        if not _operand_class_ok(src, cls):
            raise VerifyError(f"{ins!r}: src {i} ({src}) not of class {cls}")
    if info.kind in (Kind.BRANCH, Kind.JUMP):
        if ins.target is None:
            raise VerifyError(f"{ins!r}: control instruction without target")
    elif ins.target is not None:
        raise VerifyError(f"{ins!r}: non-control instruction with target")


def verify_function(func: Function) -> None:
    labels = [b.label for b in func.blocks]
    if len(set(labels)) != len(labels):
        raise VerifyError(f"duplicate block labels in {func.name}")
    label_set = set(labels)

    seen_ids: set[int] = set()
    for blk in func.blocks:
        for idx, ins in enumerate(blk.instrs):
            if id(ins) in seen_ids:
                raise VerifyError(f"instruction {ins!r} appears twice")
            seen_ids.add(id(ins))
            verify_instr(ins)
            if ins.target is not None and ins.target.name not in label_set:
                raise VerifyError(
                    f"{ins!r} targets unknown label {ins.target.name!r}"
                )
            if ins.op is Op.JMP and idx != len(blk.instrs) - 1:
                raise VerifyError(f"jump mid-block in {blk.label}")
