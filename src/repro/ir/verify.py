"""Structural, type, and dataflow verifier for IR functions.

:func:`verify_function` checks structure after construction and after
every transformation pass to catch malformed IR early:

* operand arity and register classes match the opcode signature;
* branch targets name existing blocks;
* block labels are unique;
* no instruction object appears twice;
* unconditional jumps/branches only as allowed (side exits are permitted —
  superblocks rely on them — but a jump must terminate its block).

:func:`verify_def_before_use` adds a must-define forward dataflow check:
every register read must be written on *every* path from the entry (or be
defined on entry — harness-bound input scalars).  This is the invariant
renaming, the expansions, and scheduling must preserve: a transformation
that moves a use above its definition, or leaves an off-trace path reading
a register only the on-trace path initializes, is a miscompile even when
the hot path happens to execute correctly.

:func:`verify_pipeline` bundles both; the compilation pipeline runs it
between every pass when invoked with ``check=True`` (the CLI ``--check``
flag).
"""

from __future__ import annotations

from .function import Function, reachable_labels
from .instructions import Instr, Kind, Op, OP_INFO, VECTOR_KINDS
from .operands import FImm, Imm, Reg, RegClass, Sym

#: sanity cap on vector widths (well above any machine's vector_lanes)
MAX_LANES = 64


class VerifyError(AssertionError):
    pass


def _operand_class_ok(operand, expected: RegClass) -> bool:
    if isinstance(operand, Reg):
        return operand.cls is expected
    if isinstance(operand, Imm) or isinstance(operand, Sym):
        return expected is RegClass.INT
    if isinstance(operand, FImm):
        return expected is RegClass.FP
    return False


def verify_instr(ins: Instr) -> None:
    info = OP_INFO[ins.op]
    if info.kind in VECTOR_KINDS:
        if not 2 <= ins.lanes <= MAX_LANES:
            raise VerifyError(f"{ins!r}: vector op with lanes={ins.lanes}")
    elif ins.lanes:
        raise VerifyError(f"{ins!r}: scalar op with lanes={ins.lanes}")
    expect = ins.lanes if info.n_srcs < 0 else info.n_srcs
    if len(ins.srcs) != expect:
        raise VerifyError(f"{ins!r}: expected {expect} srcs")
    if (ins.dest is None) != (info.dest_cls is None):
        raise VerifyError(f"{ins!r}: dest presence mismatch")
    if ins.dest is not None and ins.dest.cls is not info.dest_cls:
        raise VerifyError(f"{ins!r}: dest class {ins.dest.cls} != {info.dest_cls}")
    src_cls = info.src_cls
    if info.n_srcs < 0:
        # variadic pack: every source is one lane of the element class
        src_cls = src_cls * ins.lanes
    for i, (src, cls) in enumerate(zip(ins.srcs, src_cls)):
        if not _operand_class_ok(src, cls):
            raise VerifyError(f"{ins!r}: src {i} ({src}) not of class {cls}")
    if ins.op in (Op.VEXT, Op.VEXTF):
        lane = ins.srcs[1]
        if not isinstance(lane, Imm) or not 0 <= lane.value < ins.lanes:
            raise VerifyError(f"{ins!r}: lane index {lane} out of range")
    if info.kind in (Kind.BRANCH, Kind.JUMP):
        if ins.target is None:
            raise VerifyError(f"{ins!r}: control instruction without target")
    elif ins.target is not None:
        raise VerifyError(f"{ins!r}: non-control instruction with target")


def verify_function(func: Function) -> None:
    labels = [b.label for b in func.blocks]
    if len(set(labels)) != len(labels):
        raise VerifyError(f"duplicate block labels in {func.name}")
    label_set = set(labels)

    seen_ids: set[int] = set()
    for blk in func.blocks:
        for idx, ins in enumerate(blk.instrs):
            if id(ins) in seen_ids:
                raise VerifyError(f"instruction {ins!r} appears twice")
            seen_ids.add(id(ins))
            verify_instr(ins)
            if ins.target is not None and ins.target.name not in label_set:
                raise VerifyError(
                    f"{ins!r} targets unknown label {ins.target.name!r}"
                )
            if ins.op is Op.JMP and idx != len(blk.instrs) - 1:
                raise VerifyError(f"jump mid-block in {blk.label}")


def verify_def_before_use(
    func: Function, defined_on_entry: set[Reg] | None = None
) -> None:
    """Every register use must be dominated by a definition on all paths.

    ``defined_on_entry`` lists registers initialized outside the
    instruction stream (the harness binds one per declared kernel scalar —
    ``Function.pinned_regs`` for lowered kernels).  Only blocks reachable
    from the entry are checked: mid-pipeline IR may hold detached blocks
    that a later cleanup removes.
    """
    if not func.blocks:
        return
    entry_defs = set(defined_on_entry or ())
    reachable = reachable_labels(func)
    bm = func.block_map()

    # Edge-sensitive def sets: a superblock body takes side exits
    # *mid-block*, so a definition after a side-exit branch does not reach
    # that branch's target.  For every CFG edge record the defs
    # accumulated up to the branching position (fall-through: the whole
    # block).  A target branched to from several positions keeps every
    # edge instance — must-define intersects them all.
    edges: dict[str, list[tuple[str, frozenset[Reg]]]] = {
        lab: [] for lab in reachable
    }
    for blk in func.blocks:
        if blk.label not in reachable:
            continue
        defs: set[Reg] = set()
        for ins in blk.instrs:
            if ins.is_control and ins.target is not None:
                t = ins.target.name
                if t in edges:
                    edges[t].append((blk.label, frozenset(defs)))
            if ins.dest is not None:
                defs.add(ins.dest)
        ft = func.fallthrough_succ(blk)
        if ft is not None and ft in edges:
            edges[ft].append((blk.label, frozenset(defs)))

    # forward must-define dataflow to fixpoint: defined-in of a block is
    # the intersection over incoming edges of (pred defined-in + defs
    # accumulated at the edge's position)
    universe: set[Reg] = set(entry_defs)
    for blk in func.blocks:
        for ins in blk.instrs:
            if ins.dest is not None:
                universe.add(ins.dest)
    defined_in: dict[str, set[Reg]] = {lab: set(universe) for lab in reachable}
    defined_in[func.entry.label] = set(entry_defs)
    changed = True
    while changed:
        changed = False
        for blk in func.blocks:
            lab = blk.label
            if lab not in reachable or lab == func.entry.label:
                continue
            ins_set = set(universe)
            for p, edge_defs in edges[lab]:
                ins_set &= defined_in[p] | edge_defs
            if ins_set != defined_in[lab]:
                defined_in[lab] = ins_set
                changed = True

    for blk in func.blocks:
        if blk.label not in reachable:
            continue
        defined = set(defined_in[blk.label])
        for ins in blk.instrs:
            for r in ins.reg_uses():
                if r not in defined:
                    raise VerifyError(
                        f"{func.name}/{blk.label}: {ins!r} uses {r} before "
                        f"any definition on some path"
                    )
            if ins.dest is not None:
                defined.add(ins.dest)


def verify_pipeline(
    func: Function,
    defined_on_entry: set[Reg] | None = None,
    stage: str = "",
) -> None:
    """Full between-pass invariant check: structure + def-before-use.

    ``stage`` names the pass that just ran, for error provenance.
    """
    try:
        verify_function(func)
        verify_def_before_use(func, defined_on_entry)
    except VerifyError as e:
        if stage:
            raise VerifyError(f"[after {stage}] {e}") from None
        raise
