"""Operand kinds for the repro RISC intermediate representation.

The IR models a load/store RISC instruction set similar to the MIPS R2000,
as assumed by the paper (Section 3.1).  Instructions operate on an unlimited
supply of *virtual registers* split into two classes — integer and floating
point — plus integer and floating-point immediates, symbolic addresses
(array base addresses, resolved by the simulator's symbol table), and
branch-target labels.

Operands are immutable value objects: two ``Reg(3, RegClass.INT)`` are the
same register.  The printer renders them in the paper's notation
(``r3i``, ``r3f``, ``A``, ``L1``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegClass(enum.Enum):
    """Register class: the machine has separate int, fp, and (for Lev5
    superword-level parallelism) vector-int / vector-fp register files."""

    INT = "i"
    FP = "f"
    VINT = "vi"
    VFP = "vf"

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"RegClass.{self.name}"

    @property
    def is_vector(self) -> bool:
        return self is RegClass.VINT or self is RegClass.VFP

    @property
    def element(self) -> "RegClass":
        """The scalar class of one lane (identity for scalar classes)."""
        if self is RegClass.VINT:
            return RegClass.INT
        if self is RegClass.VFP:
            return RegClass.FP
        return self


# Per-class hash base for Reg.__hash__.  Scalar bases keep the historical
# hash values ((id << 1) | is_fp) bit-identical — deterministic set
# iteration order, and therefore golden schedules, must not move when the
# vector classes are introduced.  Vector bases sit far above any realistic
# register id so vector and scalar registers never collide.
RegClass.INT._hash_base = 0
RegClass.FP._hash_base = 1
RegClass.VINT._hash_base = 0x40000000
RegClass.VFP._hash_base = 0x40000001


@dataclass(frozen=True, slots=True)
class Reg:
    """A virtual register.

    ``id`` is unique *within a class*; ``Reg(1, INT)`` and ``Reg(1, FP)``
    are distinct registers (printed ``r1i`` and ``r1f``).
    """

    id: int
    cls: RegClass

    def __hash__(self) -> int:
        # Registers live in the hottest sets of the compiler (liveness,
        # interference, dependence analysis).  The auto-generated hash
        # goes through a tuple and the enum member's name-string hash;
        # this small-int hash is much cheaper and, as a bonus,
        # independent of PYTHONHASHSEED, so set iteration order is
        # identical in every process.  The per-class base reproduces the
        # historical scalar hashes exactly (see RegClass above).
        return self.cls._hash_base + (self.id << 1)

    def __eq__(self, other) -> bool:
        if other.__class__ is Reg:
            return self.id == other.id and self.cls is other.cls
        return NotImplemented

    def __str__(self) -> str:
        return f"r{self.id}{self.cls.value}"

    def __repr__(self) -> str:
        return str(self)

    @property
    def is_int(self) -> bool:
        return self.cls is RegClass.INT

    @property
    def is_fp(self) -> bool:
        return self.cls is RegClass.FP

    @property
    def is_vector(self) -> bool:
        return self.cls.is_vector


@dataclass(frozen=True, slots=True)
class Imm:
    """Integer immediate operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return str(self)


@dataclass(frozen=True, slots=True)
class FImm:
    """Floating-point immediate operand."""

    value: float

    def __str__(self) -> str:
        return repr(float(self.value))

    def __repr__(self) -> str:
        return str(self)


@dataclass(frozen=True, slots=True)
class Sym:
    """A symbolic integer constant — an array base address.

    The simulator resolves symbols through a symbol table built when arrays
    are bound to memory.  For dependence analysis, two distinct symbols are
    guaranteed not to alias (FORTRAN array semantics).
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return str(self)


@dataclass(frozen=True, slots=True)
class Label:
    """A branch-target label naming a basic block."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return str(self)


#: Operands usable where an integer value is expected.
IntOperand = Reg | Imm | Sym
#: Operands usable where a floating-point value is expected.
FpOperand = Reg | FImm
#: Any value operand.
Operand = Reg | Imm | FImm | Sym


def int_reg(i: int) -> Reg:
    """Shorthand for ``Reg(i, RegClass.INT)``."""
    return Reg(i, RegClass.INT)


def fp_reg(i: int) -> Reg:
    """Shorthand for ``Reg(i, RegClass.FP)``."""
    return Reg(i, RegClass.FP)


def vint_reg(i: int) -> Reg:
    """Shorthand for ``Reg(i, RegClass.VINT)``."""
    return Reg(i, RegClass.VINT)


def vfp_reg(i: int) -> Reg:
    """Shorthand for ``Reg(i, RegClass.VFP)``."""
    return Reg(i, RegClass.VFP)


def is_constant(op: Operand) -> bool:
    """True if the operand has a compile-time-known value (Imm/FImm).

    ``Sym`` is a link-time constant but its numeric value is unknown to the
    compiler, so it does not count for operation combining or folding.
    """
    return isinstance(op, (Imm, FImm))
