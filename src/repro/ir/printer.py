"""Textual rendering of IR in the paper's assembly notation.

Examples (cf. Figure 1 of the paper)::

    r2f = MEM(A+r1i)
    r4f = r2f + r3f
    MEM(C+r1i) = r4f
    r1i = r1i + 4
    blt (r1i r5i) L1

The notation round-trips through :mod:`repro.ir.parser`.
"""

from __future__ import annotations

from .block import Block
from .function import Function
from .instructions import Instr, Kind, Op
from .operands import Imm, Operand

_BINOP_SYMBOL: dict[Op, str] = {
    Op.ADD: "+", Op.SUB: "-", Op.MUL: "*", Op.DIV: "/", Op.REM: "%",
    Op.AND: "&", Op.OR: "|", Op.XOR: "^",
    Op.SHL: "<<", Op.SHRA: ">>", Op.SHRL: ">>>",
    Op.FADD: "+", Op.FSUB: "-", Op.FMUL: "*", Op.FDIV: "/",
}

_CVT_NAME: dict[Op, str] = {Op.ITOF: "itof", Op.FTOI: "ftoi"}


def _addr(base: Operand, off: Operand) -> str:
    if isinstance(off, Imm):
        if off.value == 0:
            return f"MEM({base})"
        if off.value < 0:
            return f"MEM({base}{off.value})"
    return f"MEM({base}+{off})"


def format_instr(ins: Instr) -> str:
    """One instruction in paper notation."""
    op = ins.op
    if ins.is_vector:
        # mnemonic-dot-lanes call syntax, e.g. ``r1vf = vldf.4(A, r2i)``,
        # ``vstf.4(A, r2i, r3vf)``, ``r2vf = vfadd.4(r1vf, r2vf)``,
        # ``r9f = vextf.4(r1vf, 2)`` — round-trips through the parser
        call = f"{op.value}.{ins.lanes}({', '.join(map(str, ins.srcs))})"
        if ins.dest is not None:
            return f"{ins.dest} = {call}"
        return call
    if op in _BINOP_SYMBOL:
        a, b = ins.srcs
        return f"{ins.dest} = {a} {_BINOP_SYMBOL[op]} {b}"
    if op in (Op.MOV, Op.FMOV):
        return f"{ins.dest} = {ins.srcs[0]}"
    if op in _CVT_NAME:
        return f"{ins.dest} = {_CVT_NAME[op]}({ins.srcs[0]})"
    if ins.is_load:
        base, off = ins.srcs
        return f"{ins.dest} = {_addr(base, off)}"
    if ins.is_store:
        base, off, val = ins.srcs
        return f"{_addr(base, off)} = {val}"
    if ins.kind is Kind.BRANCH:
        a, b = ins.srcs
        return f"{op.value} ({a} {b}) {ins.target}"
    if op is Op.JMP:
        return f"jmp {ins.target}"
    if op is Op.HALT:
        return "halt"
    if op is Op.NOP:
        return "nop"
    raise AssertionError(f"unhandled opcode {op}")


def format_block(blk: Block, indent: str = "  ") -> str:
    lines = [f"{blk.label}:"]
    lines.extend(indent + format_instr(i) for i in blk.instrs)
    return "\n".join(lines)


def format_function(func: Function) -> str:
    parts = [f"function {func.name}:"]
    parts.extend(format_block(b) for b in func.blocks)
    return "\n".join(parts)


def format_schedule(instrs_with_times: list[tuple[Instr, int]]) -> str:
    """Render '<instr>    <issue-time>' rows like the paper's figures."""
    rendered = [(format_instr(i), t) for i, t in instrs_with_times]
    width = max((len(s) for s, _ in rendered), default=0)
    return "\n".join(f"{s:<{width}}  {t}" for s, t in rendered)
