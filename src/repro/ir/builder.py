"""Fluent construction of IR.

The builder keeps a current block and offers one method per operation,
returning the destination register so expressions compose::

    fb = FunctionBuilder("daxpy")
    fb.block("L1")
    x = fb.ldf(Sym("A"), i)
    y = fb.ldf(Sym("B"), i)
    fb.stf(Sym("C"), i, fb.fadd(x, y))
    i2 = fb.add(i, 4, dest=i)
    fb.blt(i2, n, "L1")

Integer/float Python literals are coerced to ``Imm``/``FImm``.
"""

from __future__ import annotations

from .block import Block
from .function import Function
from .instructions import Instr, Op
from .operands import FImm, Imm, Label, Operand, Reg, RegClass, Sym


def _int_op(v) -> Operand:
    if isinstance(v, int):
        return Imm(v)
    if isinstance(v, str):
        return Sym(v)
    return v


def _fp_op(v) -> Operand:
    if isinstance(v, (int, float)):
        return FImm(float(v))
    return v


class FunctionBuilder:
    """Builds a :class:`Function` block by block."""

    def __init__(self, name: str):
        self.func = Function(name)
        self.cur: Block | None = None

    # -- blocks ----------------------------------------------------------

    def block(self, label: str | None = None) -> Block:
        self.cur = self.func.add_block(label)
        return self.cur

    def at(self, blk: Block) -> "FunctionBuilder":
        self.cur = blk
        return self

    def emit(self, ins: Instr) -> Instr:
        assert self.cur is not None, "no current block"
        self.cur.append(ins)
        return ins

    # -- registers --------------------------------------------------------

    def ireg(self) -> Reg:
        return self.func.new_int_reg()

    def freg(self) -> Reg:
        return self.func.new_fp_reg()

    def _dest(self, dest: Reg | None, cls: RegClass) -> Reg:
        if dest is None:
            return self.func.new_reg(cls)
        if dest.cls is not cls:
            raise ValueError(f"dest {dest} has wrong class for {cls}")
        return self.func.reserve_reg(dest)

    # -- integer ops --------------------------------------------------------

    def _int2(self, op: Op, a, b, dest: Reg | None) -> Reg:
        d = self._dest(dest, RegClass.INT)
        self.emit(Instr(op, d, (_int_op(a), _int_op(b))))
        return d

    def add(self, a, b, dest: Reg | None = None) -> Reg:
        return self._int2(Op.ADD, a, b, dest)

    def sub(self, a, b, dest: Reg | None = None) -> Reg:
        return self._int2(Op.SUB, a, b, dest)

    def mul(self, a, b, dest: Reg | None = None) -> Reg:
        return self._int2(Op.MUL, a, b, dest)

    def div(self, a, b, dest: Reg | None = None) -> Reg:
        return self._int2(Op.DIV, a, b, dest)

    def rem(self, a, b, dest: Reg | None = None) -> Reg:
        return self._int2(Op.REM, a, b, dest)

    def and_(self, a, b, dest: Reg | None = None) -> Reg:
        return self._int2(Op.AND, a, b, dest)

    def or_(self, a, b, dest: Reg | None = None) -> Reg:
        return self._int2(Op.OR, a, b, dest)

    def xor(self, a, b, dest: Reg | None = None) -> Reg:
        return self._int2(Op.XOR, a, b, dest)

    def shl(self, a, b, dest: Reg | None = None) -> Reg:
        return self._int2(Op.SHL, a, b, dest)

    def shra(self, a, b, dest: Reg | None = None) -> Reg:
        return self._int2(Op.SHRA, a, b, dest)

    def shrl(self, a, b, dest: Reg | None = None) -> Reg:
        return self._int2(Op.SHRL, a, b, dest)

    def mov(self, a, dest: Reg | None = None) -> Reg:
        d = self._dest(dest, RegClass.INT)
        self.emit(Instr(Op.MOV, d, (_int_op(a),)))
        return d

    # -- floating point -------------------------------------------------------

    def _fp2(self, op: Op, a, b, dest: Reg | None) -> Reg:
        d = self._dest(dest, RegClass.FP)
        self.emit(Instr(op, d, (_fp_op(a), _fp_op(b))))
        return d

    def fadd(self, a, b, dest: Reg | None = None) -> Reg:
        return self._fp2(Op.FADD, a, b, dest)

    def fsub(self, a, b, dest: Reg | None = None) -> Reg:
        return self._fp2(Op.FSUB, a, b, dest)

    def fmul(self, a, b, dest: Reg | None = None) -> Reg:
        return self._fp2(Op.FMUL, a, b, dest)

    def fdiv(self, a, b, dest: Reg | None = None) -> Reg:
        return self._fp2(Op.FDIV, a, b, dest)

    def fmov(self, a, dest: Reg | None = None) -> Reg:
        d = self._dest(dest, RegClass.FP)
        self.emit(Instr(Op.FMOV, d, (_fp_op(a),)))
        return d

    def itof(self, a, dest: Reg | None = None) -> Reg:
        d = self._dest(dest, RegClass.FP)
        self.emit(Instr(Op.ITOF, d, (_int_op(a),)))
        return d

    def ftoi(self, a, dest: Reg | None = None) -> Reg:
        d = self._dest(dest, RegClass.INT)
        self.emit(Instr(Op.FTOI, d, (_fp_op(a),)))
        return d

    # -- memory ---------------------------------------------------------------

    def ld(self, base, offset=0, dest: Reg | None = None) -> Reg:
        d = self._dest(dest, RegClass.INT)
        self.emit(Instr(Op.LD, d, (_int_op(base), _int_op(offset))))
        return d

    def ldf(self, base, offset=0, dest: Reg | None = None) -> Reg:
        d = self._dest(dest, RegClass.FP)
        self.emit(Instr(Op.LDF, d, (_int_op(base), _int_op(offset))))
        return d

    def st(self, base, offset, value) -> Instr:
        return self.emit(
            Instr(Op.ST, srcs=(_int_op(base), _int_op(offset), _int_op(value)))
        )

    def stf(self, base, offset, value) -> Instr:
        return self.emit(
            Instr(Op.STF, srcs=(_int_op(base), _int_op(offset), _fp_op(value)))
        )

    # -- control ---------------------------------------------------------------

    def _branch(self, op: Op, a, b, target: str, fp: bool) -> Instr:
        conv = _fp_op if fp else _int_op
        return self.emit(Instr(op, srcs=(conv(a), conv(b)), target=Label(target)))

    def blt(self, a, b, target: str) -> Instr:
        return self._branch(Op.BLT, a, b, target, fp=False)

    def ble(self, a, b, target: str) -> Instr:
        return self._branch(Op.BLE, a, b, target, fp=False)

    def bgt(self, a, b, target: str) -> Instr:
        return self._branch(Op.BGT, a, b, target, fp=False)

    def bge(self, a, b, target: str) -> Instr:
        return self._branch(Op.BGE, a, b, target, fp=False)

    def beq(self, a, b, target: str) -> Instr:
        return self._branch(Op.BEQ, a, b, target, fp=False)

    def bne(self, a, b, target: str) -> Instr:
        return self._branch(Op.BNE, a, b, target, fp=False)

    def fblt(self, a, b, target: str) -> Instr:
        return self._branch(Op.FBLT, a, b, target, fp=True)

    def fble(self, a, b, target: str) -> Instr:
        return self._branch(Op.FBLE, a, b, target, fp=True)

    def fbgt(self, a, b, target: str) -> Instr:
        return self._branch(Op.FBGT, a, b, target, fp=True)

    def fbge(self, a, b, target: str) -> Instr:
        return self._branch(Op.FBGE, a, b, target, fp=True)

    def fbeq(self, a, b, target: str) -> Instr:
        return self._branch(Op.FBEQ, a, b, target, fp=True)

    def fbne(self, a, b, target: str) -> Instr:
        return self._branch(Op.FBNE, a, b, target, fp=True)

    def jmp(self, target: str) -> Instr:
        return self.emit(Instr(Op.JMP, target=Label(target)))

    def nop(self) -> Instr:
        return self.emit(Instr(Op.NOP))

    # -- finish ------------------------------------------------------------------

    def build(self, verify: bool = True) -> Function:
        if verify:
            from .verify import verify_function

            verify_function(self.func)
        return self.func
