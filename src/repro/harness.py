"""End-to-end harness: kernel -> compile at a level -> simulate -> check.

This is the public "just run it" API::

    ck = compile_kernel(kernel, Level.LEV4, issue8())
    out = run_compiled_kernel(ck, arrays={"A": a, "B": b, "C": c},
                              scalars={"n": 100})
    out.cycles, out.arrays["C"], out.scalars.get("s")
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .frontend.ast import Kernel, Ty
from .frontend.lower import LoweredKernel, lower_kernel
from .machine import MachineConfig
from .opt.driver import ConvReport, run_conv
from .pipeline import Level, TransformReport, apply_ilp_transforms, schedule_function
from .schedule.listsched import Schedule
from .schedule.superblock import SuperblockLoop
from .sim import Memory, simulate


@dataclass
class CompiledKernel:
    lowered: LoweredKernel
    level: Level
    machine: MachineConfig
    sb: SuperblockLoop
    schedules: dict[str, Schedule]
    conv_report: ConvReport
    ilp_report: TransformReport

    @property
    def func(self):
        return self.lowered.func

    @property
    def inner_makespan(self) -> int:
        return self.schedules[self.sb.header].makespan


def compile_kernel(
    kernel: Kernel,
    level: Level,
    machine: MachineConfig,
    unroll_factor: int | None = None,
    thr_unit_latency: bool = False,
) -> CompiledKernel:
    """Lower, classically optimize, ILP-transform, and schedule a kernel."""
    lk = lower_kernel(kernel)
    conv_rep = run_conv(lk.func, lk.counted, lk.live_out_exit)
    counted = lk.counted[lk.inner_header]
    sb, ilp_rep = apply_ilp_transforms(
        lk.func,
        counted,
        level,
        machine,
        lk.live_out_exit,
        unroll_factor,
        thr_unit_latency=thr_unit_latency,
    )
    doall = lk.inner_kind == "doall"
    schedules = schedule_function(
        lk.func, machine, lk.live_out_exit, sb=sb, doall=doall
    )
    return CompiledKernel(lk, level, machine, sb, schedules, conv_rep, ilp_rep)


@dataclass
class KernelRun:
    cycles: int
    instructions: int
    arrays: dict[str, np.ndarray]
    scalars: dict[str, float | int]

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def run_compiled_kernel(
    ck: CompiledKernel,
    arrays: dict[str, np.ndarray] | None = None,
    scalars: dict[str, float | int] | None = None,
    max_cycles: int = 200_000_000,
) -> KernelRun:
    """Simulate a compiled kernel on bound data.

    Every declared array must be provided with matching total size; input
    scalars default to 0.  Returns final array contents and the kernel's
    declared output scalars.
    """
    arrays = arrays or {}
    scalars = scalars or {}
    kernel = ck.lowered.kernel
    mem = Memory()
    for name, decl in kernel.arrays.items():
        if name not in arrays:
            raise ValueError(f"array {name!r} not bound")
        data = np.asarray(arrays[name])
        if data.size != decl.size:
            raise ValueError(
                f"array {name!r}: expected {decl.size} elements, got {data.size}"
            )
        mem.bind_array(name, data)

    iregs: dict[int, int] = {}
    fregs: dict[int, float] = {}
    for name, reg in ck.lowered.scalar_regs.items():
        ty = kernel.scalars.get(name)
        if ty is None:
            continue  # loop variables and such: defined by the code
        val = scalars.get(name, 0)
        if ty is Ty.FP:
            fregs[reg.id] = float(val)
        else:
            iregs[reg.id] = int(val)

    res = simulate(ck.func, ck.machine, mem, iregs, fregs, max_cycles=max_cycles)

    out_arrays = {
        name: mem.read_array(
            name, decl.dims,
            np.float64 if decl.ty is Ty.FP else np.int64,
        )
        for name, decl in kernel.arrays.items()
    }
    out_scalars: dict[str, float | int] = {}
    for name in kernel.outputs:
        reg = ck.lowered.scalar_regs[name]
        bank = res.fregs if reg.is_fp else res.iregs
        if reg.id in bank:
            out_scalars[name] = bank[reg.id]
        else:  # never written: the input value flows through
            out_scalars[name] = scalars.get(name, 0)
    return KernelRun(res.cycles, res.instructions, out_arrays, out_scalars)
