"""End-to-end harness: kernel -> compile at a level -> simulate -> check.

This is the public "just run it" API::

    ck = compile_kernel(kernel, Level.LEV4, issue8())
    out = run_compiled_kernel(ck, arrays={"A": a, "B": b, "C": c},
                              scalars={"n": 100})
    out.cycles, out.arrays["C"], out.scalars.get("s")

``compile_kernel`` is a composition of three stages with strictly widening
dependence on the configuration, so sweeps can share the early stages:

1. :func:`lower_conv` — lowering + classical optimization.  Depends only on
   the kernel (level- and machine-independent).
2. :func:`ilp_transform` — the paper's ILP transformations.  Depends on the
   level and on the machine's *latencies* only
   (:meth:`repro.machine.MachineConfig.latency_key`): machines differing
   only in issue width share transformed code.
3. :func:`schedule_kernel` — list scheduling.  Depends on the full machine
   (the issue width shapes every packet).

Stages 2 and 3 mutate the function in place; reuse an earlier stage's
result across several downstream calls by scheduling a ``.clone()`` of it.

Each stage appends to one unified
:class:`~repro.passes.stats.PipelineReport` (per-pass rewrites, wall
time, instruction-count deltas); ``options`` takes a
:class:`~repro.passes.manager.PassOptions` to disable registered passes
or dump IR after them.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from .frontend.ast import Kernel, Ty
from .frontend.lower import LoweredKernel, lower_kernel
from .ir.block import Block
from .ir.function import Function
from .machine import MachineConfig
from .opt.driver import run_conv
from .passes import PassOptions, PipelineReport
from .pipeline import Level, apply_ilp_transforms, schedule_function
from .schedule.listsched import Schedule
from .schedule.superblock import SuperblockLoop
from .sim import Memory, simulate


@dataclass
class CompiledKernel:
    lowered: LoweredKernel
    level: Level
    machine: MachineConfig
    sb: SuperblockLoop
    schedules: dict[str, Schedule]
    report: PipelineReport

    @property
    def func(self):
        return self.lowered.func

    @property
    def inner_makespan(self) -> int:
        return self.schedules[self.sb.header].makespan


def _clone_stage(obj):
    """Deep-copy a stage result, sharing the immutable kernel AST.

    The cloned ``Function``/``SuperblockLoop``/``scalar_regs`` stay mutually
    consistent (one deepcopy memo), so the clone can be mutated by later
    stages without disturbing the original.
    """
    memo = {id(obj.lowered.kernel): obj.lowered.kernel}
    return copy.deepcopy(obj, memo)


@dataclass
class ConvKernel:
    """Stage-1 result: lowered + classically optimized (level-independent)."""

    lowered: LoweredKernel
    report: PipelineReport

    def clone(self) -> "ConvKernel":
        return _clone_stage(self)


@dataclass
class TransformedKernel:
    """Stage-2 result: ILP-transformed but not yet scheduled.

    Width-independent: only the machine's latencies were observed
    (tree height reduction), so one ``TransformedKernel`` serves every
    issue width via ``schedule_kernel(tk.clone(), machine)``.
    """

    lowered: LoweredKernel
    level: Level
    sb: SuperblockLoop
    report: PipelineReport

    def clone(self) -> "TransformedKernel":
        """Clone for scheduling: fresh function/blocks/instruction lists,
        *shared* instruction and operand objects.

        The scheduling stage only reorders instruction lists — instruction
        objects are mutated exclusively by the ILP stage (superblock
        formation rewrites targets) — so structural sharing is safe here
        and far cheaper than a deep copy.  Do not feed a clone back into
        :func:`ilp_transform`.  The report is forked so each width's
        schedule extends its own copy of the shared transform history.
        """
        lk = self.lowered
        f = lk.func
        nf = Function(f.name, pinned_regs=set(f.pinned_regs),
                      _next_reg=dict(f._next_reg), _next_label=f._next_label)
        bmap: dict[int, Block] = {}
        for b in f.blocks:
            nb = Block(b.label, list(b.instrs))
            nf.blocks.append(nb)
            bmap[id(b)] = nb
        nlk = LoweredKernel(lk.kernel, nf, lk.scalar_regs, lk.counted,
                            lk.inner_header, lk.inner_kind)
        sb = self.sb
        nsb = SuperblockLoop(
            nf, bmap.get(id(sb.body), sb.body),
            bmap.get(id(sb.preheader), sb.preheader), sb.counted,
            set(sb.offtrace),
            None if sb.exit_block is None
            else bmap.get(id(sb.exit_block), sb.exit_block),
        )
        return TransformedKernel(nlk, self.level, nsb, self.report.fork())


def lower_conv(kernel: Kernel, options: PassOptions | None = None) -> ConvKernel:
    """Stage 1: lower a kernel and run the classical (conventional)
    optimizations.  Depends only on the kernel itself."""
    lk = lower_kernel(kernel)
    report = run_conv(lk.func, lk.counted, lk.live_out_exit, options=options)
    return ConvKernel(lk, report)


def ilp_transform(
    conv: ConvKernel,
    level: Level,
    machine: MachineConfig,
    unroll_factor: int | None = None,
    thr_unit_latency: bool = False,
    check: bool = False,
    options: PassOptions | None = None,
) -> TransformedKernel:
    """Stage 2: apply the paper's ILP transformations at ``level``.

    Mutates ``conv``'s function in place (pass ``conv.clone()`` to keep the
    stage-1 result reusable).  Observes only ``machine.latency_key()``.
    ``check=True`` runs the invariant verifier between every pass.
    """
    lk = conv.lowered
    counted = lk.counted[lk.inner_header]
    sb, report = apply_ilp_transforms(
        lk.func,
        counted,
        level,
        machine,
        lk.live_out_exit,
        unroll_factor,
        thr_unit_latency=thr_unit_latency,
        check=check,
        options=options,
        report=conv.report,
    )
    return TransformedKernel(lk, level, sb, report)


def schedule_kernel(
    tk: TransformedKernel, machine: MachineConfig, check: bool = False,
    options: PassOptions | None = None, scheduler: str = "list",
    solver_budget: int | None = None, solver_store=None,
) -> CompiledKernel:
    """Stage 3: schedule a transformed kernel for a concrete machine.

    Mutates ``tk``'s function in place (pass ``tk.clone()`` to schedule the
    same transformed code for several widths).  ``check=True`` verifies
    invariants on the scheduled code and the register coloring.
    ``scheduler`` selects the backend (``"list"`` heuristic or
    ``"optimal"`` exact, see :mod:`repro.optsched`).
    """
    lk = tk.lowered
    doall = lk.inner_kind == "doall"
    report = tk.report.fork()
    schedules = schedule_function(
        lk.func, machine, lk.live_out_exit, sb=tk.sb, doall=doall,
        check=check, options=options, report=report,
        scheduler=scheduler, solver_budget=solver_budget,
        solver_store=solver_store,
    )
    if check:
        from .regalloc import measure_register_usage

        measure_register_usage(lk.func, lk.live_out_exit, check=True)
    return CompiledKernel(lk, tk.level, machine, tk.sb, schedules, report)


def compile_kernel(
    kernel: Kernel,
    level: Level,
    machine: MachineConfig,
    unroll_factor: int | None = None,
    thr_unit_latency: bool = False,
    check: bool = False,
    options: PassOptions | None = None,
    scheduler: str = "list",
    solver_budget: int | None = None,
    solver_store=None,
) -> CompiledKernel:
    """Lower, classically optimize, ILP-transform, and schedule a kernel.

    ``check=True`` turns on the between-pass invariant verifier for every
    stage (the CLI ``--check`` flag); ``options`` carries pass disabling
    and IR printing controls (``--disable-pass``, ``--print-after``);
    ``scheduler`` selects the schedule backend (``"list"``/``"optimal"``).
    """
    tk = ilp_transform(
        lower_conv(kernel, options=options), level, machine, unroll_factor,
        thr_unit_latency=thr_unit_latency, check=check, options=options,
    )
    return schedule_kernel(tk, machine, check=check, options=options,
                           scheduler=scheduler, solver_budget=solver_budget,
                           solver_store=solver_store)


@dataclass
class KernelRun:
    cycles: int
    instructions: int
    arrays: dict[str, np.ndarray]
    scalars: dict[str, float | int]

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def bind_inputs(
    lowered: LoweredKernel,
    arrays: dict[str, np.ndarray] | None = None,
    scalars: dict[str, float | int] | None = None,
) -> tuple[Memory, dict[int, int], dict[int, float]]:
    """Bind workload data for execution: arrays into simulated memory,
    input scalars into register live-in maps.

    Every declared array must be provided with matching total size; input
    scalars default to 0.  Shared by the cycle-accurate simulator
    (:func:`run_compiled_kernel`) and the reference evaluator
    (:mod:`repro.check.refeval`), so both execute from identical state.
    """
    arrays = arrays or {}
    scalars = scalars or {}
    kernel = lowered.kernel
    mem = Memory()
    for name, decl in kernel.arrays.items():
        if name not in arrays:
            raise ValueError(f"array {name!r} not bound")
        data = np.asarray(arrays[name])
        if data.size != decl.size:
            raise ValueError(
                f"array {name!r}: expected {decl.size} elements, got {data.size}"
            )
        mem.bind_array(name, data)

    iregs: dict[int, int] = {}
    fregs: dict[int, float] = {}
    for name, reg in lowered.scalar_regs.items():
        ty = kernel.scalars.get(name)
        if ty is None:
            continue  # loop variables and such: defined by the code
        val = scalars.get(name, 0)
        if ty is Ty.FP:
            fregs[reg.id] = float(val)
        else:
            iregs[reg.id] = int(val)
    return mem, iregs, fregs


def collect_outputs(
    lowered: LoweredKernel,
    mem: Memory,
    iregs: dict[int, int],
    fregs: dict[int, float],
    scalars_in: dict[str, float | int] | None = None,
) -> tuple[dict[str, np.ndarray], dict[str, float | int]]:
    """Read final array contents and declared output scalars back out of an
    execution's end state (counterpart of :func:`bind_inputs`)."""
    scalars_in = scalars_in or {}
    kernel = lowered.kernel
    out_arrays = {
        name: mem.read_array(
            name, decl.dims,
            np.float64 if decl.ty is Ty.FP else np.int64,
        )
        for name, decl in kernel.arrays.items()
    }
    out_scalars: dict[str, float | int] = {}
    for name in kernel.outputs:
        reg = lowered.scalar_regs[name]
        bank = fregs if reg.is_fp else iregs
        if reg.id in bank:
            out_scalars[name] = bank[reg.id]
        else:  # never written: the input value flows through
            out_scalars[name] = scalars_in.get(name, 0)
    return out_arrays, out_scalars


def run_compiled_kernel(
    ck: CompiledKernel,
    arrays: dict[str, np.ndarray] | None = None,
    scalars: dict[str, float | int] | None = None,
    max_cycles: int = 200_000_000,
    engine: str = "auto",
) -> KernelRun:
    """Simulate a compiled kernel on bound data.

    Every declared array must be provided with matching total size; input
    scalars default to 0.  Returns final array contents and the kernel's
    declared output scalars.  ``engine`` selects the simulator core
    (see :func:`repro.sim.simulate`).
    """
    mem, iregs, fregs = bind_inputs(ck.lowered, arrays, scalars)
    res = simulate(ck.func, ck.machine, mem, iregs, fregs,
                   max_cycles=max_cycles, engine=engine)
    out_arrays, out_scalars = collect_outputs(
        ck.lowered, mem, res.iregs, res.fregs, scalars or {}
    )
    return KernelRun(res.cycles, res.instructions, out_arrays, out_scalars)


class BatchedRunner:
    """Execute a (workload, level) cell once, time it for many widths.

    The dynamic trace of the in-order model depends only on values, so
    the issue widths of one cell share it: construct the runner from any
    one width's :class:`CompiledKernel` (this executes the program once,
    valuewise) and call :meth:`run` per width to get that machine's
    cycle/instruction counts by trace replay — bit-identical to full
    simulation, at a fraction of the cost.

    End-state outputs are shared across widths (the scheduler preserves
    the values of memory and live-out scalars; speculation only touches
    dead or renamed registers).  A width whose schedule the replayer
    cannot map (or a machine outside replay scope) transparently falls
    back to a full simulation with freshly bound inputs —
    ``last_fallback`` reports which path the most recent :meth:`run`
    took, so callers can re-validate fallback outputs if they need to.

    Construction raises ``EngineUnsupported``/``ReplayUnsupported`` when
    the cell cannot use the compiled engine at all; callers then run
    each width the classic way.
    """

    def __init__(
        self,
        ck: CompiledKernel,
        arrays: dict[str, np.ndarray] | None = None,
        scalars: dict[str, float | int] | None = None,
        max_cycles: int = 200_000_000,
    ):
        from .sim import compiled_program, exec_plan, execute_plan, replay, replay_spec
        from .sim.simulator import _bank_dict

        self._arrays_in = arrays
        self._scalars_in = scalars
        self._max_cycles = max_cycles
        self.last_fallback = False
        mem, iregs, fregs = bind_inputs(ck.lowered, arrays, scalars)
        prog = compiled_program(ck.func, ck.machine, mem.symbols)
        self._plan = exec_plan(prog)
        spec = replay_spec(self._plan, prog)  # validate before executing
        self._segs, ivals, fvals = execute_plan(
            self._plan, mem, iregs, fregs, max_cycles
        )
        self._symbols = mem.symbols
        self._replay = replay
        self._replay_spec = replay_spec
        self._compiled_program = compiled_program
        cycles, n_instr = replay(self._segs, spec, max_cycles)
        out_arrays, out_scalars = collect_outputs(
            ck.lowered, mem, _bank_dict(ivals), _bank_dict(fvals), scalars or {}
        )
        self.arrays = out_arrays
        self.scalars = out_scalars
        self._first = KernelRun(cycles, n_instr, out_arrays, out_scalars)
        self._first_prog = prog

    def run(self, ck: CompiledKernel) -> KernelRun:
        """Cycle/instruction counts for ``ck``'s machine, with the shared
        end-state outputs.  ``ck`` must be a reschedule of the traced
        kernel (a width clone of the same transformed code)."""
        from .sim import ReplayUnmapped, ReplayUnsupported

        self.last_fallback = False
        prog = self._compiled_program(ck.func, ck.machine, self._symbols)
        if prog is self._first_prog:
            return self._first
        try:
            spec = self._replay_spec(self._plan, prog)
        except (ReplayUnmapped, ReplayUnsupported):
            self.last_fallback = True
            return run_compiled_kernel(
                ck, self._arrays_in, self._scalars_in, self._max_cycles
            )
        cycles, n_instr = self._replay(self._segs, spec, self._max_cycles)
        return KernelRun(cycles, n_instr, self.arrays, self.scalars)
