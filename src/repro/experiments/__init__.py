"""repro.experiments — the evaluation harness regenerating the paper's
tables and figures."""

from .sweep import (
    ConfigResult,
    SweepData,
    WIDTHS,
    load_sweep,
    run_config,
    run_sweep,
    save_sweep,
    sweep_cached,
)
from .histograms import (
    Distribution,
    REGISTER_BINS,
    SPEEDUP_BINS,
    bin_counts,
    doall_filter,
    register_distribution,
    speedup_distribution,
)
from .tables import (
    HeadlineClaims,
    compute_headline_claims,
    render_table1,
    render_table2,
)

__all__ = [
    "ConfigResult", "SweepData", "WIDTHS",
    "load_sweep", "run_config", "run_sweep", "save_sweep", "sweep_cached",
    "Distribution", "REGISTER_BINS", "SPEEDUP_BINS",
    "bin_counts", "doall_filter", "register_distribution", "speedup_distribution",
    "HeadlineClaims", "compute_headline_claims", "render_table1", "render_table2",
]
