"""Leave-one-out pass ablation: per-pass speedup contribution.

``python -m repro ablate`` measures what each registered pass is worth:
every workload is compiled and simulated with the full pipeline at the
requested level, then once per ablatable pass with exactly that pass
disabled.  The difference in speedup (vs. the paper's issue-1/Conv
baseline) is the pass's *contribution* on that workload — the
pass-attribution methodology of Kong & Pouchet's "performance
vocabulary" and Shivam et al.'s achievable-peak studies, applied to the
paper's transformation repertoire.

A positive contribution means the pass earns cycles; ~0 means it never
fires or is fully shadowed by later passes; negative means it actively
hurts on that loop (e.g. an expansion whose compensation code outweighs
the exposed parallelism at this width).

The default workload set is the 9-kernel oracle subset used by CI, so
the table is cheap to regenerate; ``--workloads all`` covers the full
corpus.  Results land in ``results/ablation.txt``.

The grid of (workload, ablated-pass) measurements is embarrassingly
parallel; ``--jobs N`` fans it out over the sweep engine's fork-based
process pool with a deterministic merge, so serial and parallel
ablations produce identical tables.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..machine import MachineConfig
from ..passes import PassOptions
from ..passes.registry import ablatable_passes, get_pass
from ..pipeline import Level
from ..workloads import Workload, all_workloads, get_workload
from .sweep import _fork_pool, default_cache_path, run_config

#: the differential-oracle CI subset: fast, and spanning FP DOALL,
#: reductions, searches with side exits, and serial recurrences
ORACLE_SET = ("add", "sum", "dotprod", "maxval", "merge",
              "LWS-1", "NAS-4", "SRS-1", "TFS-2")


@dataclass
class AblationData:
    """Leave-one-out grid: per (pass, workload) speedup contributions."""

    level: Level
    width: int
    workloads: list[str]
    passes: list[str]
    #: full-pipeline speedup per workload (vs issue-1 Conv)
    full_speedup: dict[str, float]
    #: contribution[(pass, workload)] = full_speedup - speedup_without_pass
    contribution: dict[tuple[str, str], float]
    #: (pass, workload) configurations that failed to compile/validate
    failures: dict[tuple[str, str], str] = field(default_factory=dict)
    elapsed: float = 0.0

    def mean_contribution(self, pass_name: str) -> float:
        vals = [self.contribution[(pass_name, w)] for w in self.workloads
                if (pass_name, w) in self.contribution]
        return sum(vals) / len(vals) if vals else 0.0


def _ablation_task(task: tuple) -> tuple:
    """One (workload, ablated-pass) measurement: the pair of cycle counts
    its contribution is computed from.  ``pass_name=None`` measures the
    full pipeline.  Module-level so the fork pool can pickle it; the
    worker-process classical-stage cache (keyed by disable set) is
    shared with the sweep engine.
    """
    name, level_int, width, seed, check, pass_name = task
    w = get_workload(name)
    # the baseline denominator is re-measured under the same ablation:
    # disabling a classical pass slows Conv too, and the paper's
    # speedups are always relative to the pipeline that produced them
    opts = PassOptions(disable=(pass_name,)) if pass_name else None
    try:
        base = run_config(w, Level.CONV, MachineConfig(issue_width=1),
                          seed=seed, check=check, options=opts).cycles
        at_level = run_config(w, Level(level_int),
                              MachineConfig(issue_width=width),
                              seed=seed, check=check, options=opts).cycles
    except Exception as e:  # noqa: BLE001 - a finding, not a crash
        return (name, pass_name, 0, 0, repr(e))
    return (name, pass_name, base, at_level, None)


def run_ablation(
    workloads: list[Workload] | None = None,
    level: Level = Level.LEV4,
    width: int = 8,
    passes: list[str] | None = None,
    seed: int = 0,
    check: bool = True,
    verbose: bool = False,
    jobs: int = 1,
) -> AblationData:
    """Measure leave-one-out speedup contributions.

    ``passes`` restricts the sweep to the named passes (default: every
    non-structural registered pass enabled at ``level``).  ``check``
    validates every ablated run against the workload's NumPy reference,
    so a pass whose removal *breaks* correctness is reported as a
    failure, not silently tabulated.  ``jobs > 1`` distributes the
    (workload, pass) grid over a process pool; the merge is
    deterministic, so serial and parallel tables are identical.
    """
    t0 = time.time()
    workloads = workloads if workloads is not None else [
        get_workload(n) for n in ORACLE_SET
    ]
    if passes is None:
        plist = [p.name for p in ablatable_passes(level)]
    else:
        plist = []
        for name in passes:
            p = get_pass(name)  # raises KeyError on unknown names
            if p.required:
                raise ValueError(f"pass {name!r} is structural; it cannot "
                                 f"be ablated")
            plist.append(p.name)

    tasks = [
        (w.name, int(level), width, seed, check, pass_name)
        for w in workloads for pass_name in (None, *plist)
    ]
    if jobs > 1 and len(tasks) > 1:
        with _fork_pool(jobs) as pool:
            outs = list(pool.map(_ablation_task, tasks))
    else:
        outs = [_ablation_task(t) for t in tasks]

    full_speedup: dict[str, float] = {}
    contribution: dict[tuple[str, str], float] = {}
    failures: dict[tuple[str, str], str] = {}
    for name, pass_name, base, at_level, err in outs:
        if pass_name is not None:
            continue
        if err is not None:  # the *full* pipeline must never fail
            raise RuntimeError(f"{name}: full-pipeline run failed: {err}")
        full_speedup[name] = base / at_level
        if verbose:
            print(f"  {name:<14}full {base / at_level:5.2f}x",
                  file=sys.stderr)
    for name, pass_name, base, at_level, err in outs:
        if pass_name is None:
            continue
        if err is not None:
            failures[(pass_name, name)] = err
        else:
            contribution[(pass_name, name)] = (
                full_speedup[name] - base / at_level
            )
    return AblationData(
        level=level, width=width, workloads=[w.name for w in workloads],
        passes=plist, full_speedup=full_speedup, contribution=contribution,
        failures=failures, elapsed=time.time() - t0,
    )


def render_ablation(data: AblationData) -> str:
    """The per-pass contribution table (rows sorted by mean contribution)."""
    head = (f"Leave-one-out pass ablation — {data.level.label} at "
            f"issue-{data.width}, speedup vs issue-1 Conv\n"
            f"contribution = full-pipeline speedup minus speedup with the "
            f"pass disabled\n")
    name_w = max(len("(full speedup)"),
                 max((len(p) for p in data.passes), default=4)) + 2
    cols = "".join(f"{w:>10}" for w in data.workloads)
    lines = [head,
             f"{'pass':<{name_w}}{cols}{'mean':>10}",
             "-" * (name_w + 10 * (len(data.workloads) + 1))]
    full = "".join(f"{data.full_speedup[w]:>10.2f}" for w in data.workloads)
    mean_full = (sum(data.full_speedup.values()) / len(data.full_speedup)
                 if data.full_speedup else 0.0)
    lines.append(f"{'(full speedup)':<{name_w}}{full}{mean_full:>10.2f}")
    ranked = sorted(data.passes, key=data.mean_contribution, reverse=True)
    for p in ranked:
        cells = ""
        for w in data.workloads:
            if (p, w) in data.contribution:
                cells += f"{data.contribution[(p, w)]:>10.2f}"
            elif (p, w) in data.failures:
                cells += f"{'FAIL':>10}"
            else:
                cells += f"{'-':>10}"
        lines.append(f"{p:<{name_w}}{cells}{data.mean_contribution(p):>10.2f}")
    if data.failures:
        lines.append("")
        lines.append(f"{len(data.failures)} failing ablated configuration(s):")
        for (p, w), err in sorted(data.failures.items()):
            lines.append(f"  {w} without {p}: {err}")
    lines.append("")
    lines.append(f"({len(data.workloads)} workloads x {len(data.passes)} "
                 f"passes in {data.elapsed:.1f}s)")
    return "\n".join(lines)


def default_ablation_path() -> Path:
    return default_cache_path().parent / "ablation.txt"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workloads", metavar="A,B,...",
                    help="comma-separated subset, or 'all' for the full "
                         "corpus (default: the 9-kernel oracle set)")
    ap.add_argument("--level", type=int, default=4,
                    choices=[int(l) for l in Level],
                    help="transformation level to ablate (default: 4)")
    ap.add_argument("--width", type=int, default=8,
                    help="issue width (default: 8)")
    ap.add_argument("--passes", metavar="A,B,...",
                    help="restrict to these passes (default: every "
                         "ablatable pass enabled at the level)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes for the (workload, pass) grid "
                         "(default: 1); the table is identical at any "
                         "job count")
    ap.add_argument("--no-check", action="store_true",
                    help="skip the NumPy reference validation of each run")
    ap.add_argument("--out", metavar="PATH",
                    help="output file (default: results/ablation.txt)")
    args = ap.parse_args(argv)

    if args.workloads in (None, ""):
        wls = [get_workload(n) for n in ORACLE_SET]
    elif args.workloads == "all":
        wls = all_workloads()
    else:
        wls = [get_workload(n) for n in args.workloads.split(",")]
    passes = args.passes.split(",") if args.passes else None

    data = run_ablation(
        wls, Level(args.level), args.width, passes=passes, seed=args.seed,
        check=not args.no_check, verbose=True, jobs=args.jobs,
    )
    text = render_ablation(data)
    out = Path(args.out) if args.out else default_ablation_path()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text + "\n")
    print(text)
    print(f"\nwrote {out}", file=sys.stderr)
    return 1 if data.failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
