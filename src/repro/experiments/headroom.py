"""Heuristic-vs-optimal scheduling headroom over the corpus.

``python -m repro headroom`` answers the question the exact backend
exists for: *how much schedule length does greedy list scheduling leave
on the table?*  Every loop nest is compiled once per backend from the
same transformed code, and three measurements line up per loop:

* **block headroom** — the heuristic inner-loop makespan vs. the exact
  solver's, with the per-block proof status (``optimal`` means every
  block's length was proven minimal; ``timeout-incumbent`` means the
  solver's deterministic node budget ran out and the incumbent —
  never worse than the heuristic — stands);
* **pipelining headroom** — the classical bound ``MII = max(ResMII,
  RecMII)`` vs. the exact modulo scheduler's achieved II vs. the acyclic
  makespan, i.e. what software pipelining would add on top of the best
  acyclic schedule;
* **simulated cycles** under both backends, with the end states compared
  bit-for-bit — a differential check that the solver's reorderings are
  semantics-preserving on real data.

With ``--store DIR`` every solver result is cached content-addressed
(see :mod:`repro.optsched.cache`); a second run against the same store
resolves every (loop, machine, II) instance from the cache, which
``benchmarks/bench_optsched_headroom.py`` uses to measure the warm-store
speedup.  Results land in ``results/headroom.txt``.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field

import numpy as np

from ..harness import (
    ilp_transform,
    lower_conv,
    run_compiled_kernel,
    schedule_kernel,
)
from ..machine import MachineConfig
from ..optsched import DEFAULT_BUDGET, DEFAULT_MODULO_BUDGET, modulo_schedule
from ..pipeline import Level
from ..workloads import Workload, all_workloads, get_workload


@dataclass
class LoopHeadroom:
    """One loop's heuristic-vs-optimal measurements."""

    name: str
    n_instrs: int                 #: superblock body size
    heuristic_makespan: int       #: inner-loop schedule length, list backend
    optimal_makespan: int         #: inner-loop schedule length, exact backend
    status: str                   #: worst per-block proof status of the loop
    proved_lb: int                #: proven lower bound on the body's length
    solver_nodes: int             #: search nodes spent across blocks
    solver_seconds: float         #: solver wall time across blocks
    cached_blocks: int            #: blocks answered from the solver store
    total_blocks: int
    mii: int                      #: classical modulo-scheduling lower bound
    exact_ii: int                 #: II the exact modulo scheduler achieved
    modulo_status: str
    modulo_seconds: float
    modulo_cached: bool
    cycles_list: int              #: simulated cycles, heuristic backend
    cycles_optimal: int           #: simulated cycles, exact backend
    states_match: bool            #: bit-identical end states across backends

    @property
    def block_headroom(self) -> int:
        return self.heuristic_makespan - self.optimal_makespan

    @property
    def pipelining_headroom(self) -> int:
        """Cycles/iteration-group software pipelining would still win."""
        return self.optimal_makespan - self.exact_ii

    def as_payload(self) -> dict:
        return {k: getattr(self, k) for k in (
            "name", "n_instrs", "heuristic_makespan", "optimal_makespan",
            "status", "proved_lb", "solver_nodes", "solver_seconds",
            "cached_blocks", "total_blocks", "mii", "exact_ii",
            "modulo_status", "modulo_seconds", "modulo_cached",
            "cycles_list", "cycles_optimal", "states_match",
        )}


@dataclass
class HeadroomData:
    level: Level
    width: int
    budget: int
    modulo_budget: int
    rows: list[LoopHeadroom] = field(default_factory=list)
    elapsed: float = 0.0

    def status_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.rows:
            out[r.status] = out.get(r.status, 0) + 1
        return out

    def modulo_status_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.rows:
            out[r.modulo_status] = out.get(r.modulo_status, 0) + 1
        return out


def _loop_status(optsched: dict) -> tuple[str, int, int, float, int]:
    """Aggregate per-block proof records into one loop-level verdict.

    The loop is ``optimal`` only if *every* scheduled block's length was
    proven minimal; one budget-exhausted or oversized block degrades the
    whole loop honestly.
    """
    rank = {"optimal": 0, "timeout-incumbent": 1, "too-large": 2}
    worst = "optimal"
    nodes = 0
    seconds = 0.0
    cached = 0
    for p in optsched.values():
        if rank[p["status"]] > rank[worst]:
            worst = p["status"]
        nodes += p["nodes"]
        seconds += p["seconds"]
        cached += 1 if p["cached"] else 0
    return worst, nodes, cached, seconds, len(optsched)


def _states_match(a, b) -> bool:
    """Bit-identical end states (arrays and scalars) across backends.

    Both backends schedule the *same* transformed code, so no fp
    reassociation separates them — unlike the cross-level oracle, this
    comparison is always exact.
    """
    if set(a.arrays) != set(b.arrays) or set(a.scalars) != set(b.scalars):
        return False
    for k in a.arrays:
        if not np.array_equal(a.arrays[k], b.arrays[k]):
            return False
    return all(a.scalars[k] == b.scalars[k] for k in a.scalars)


def measure_loop(
    w: Workload,
    level: Level,
    machine: MachineConfig,
    seed: int = 0,
    budget: int = DEFAULT_BUDGET,
    modulo_budget: int = DEFAULT_MODULO_BUDGET,
    store=None,
) -> LoopHeadroom:
    """Compile one loop under both backends and line the results up."""
    tk = ilp_transform(lower_conv(w.build()), level, machine)
    ck_opt = schedule_kernel(tk.clone(), machine, scheduler="optimal",
                             solver_budget=budget, solver_store=store)
    ck_list = schedule_kernel(tk, machine)

    status, nodes, cached, seconds, blocks = _loop_status(
        ck_opt.report.optsched
    )
    body = ck_opt.sb.body
    proved_lb = ck_opt.report.optsched[body.label]["proved_lb"]

    ms = modulo_schedule(
        body.instrs, machine,
        iterations=ck_opt.report.unroll_factor,
        prologue=ck_opt.sb.preheader.instrs,
        doall=w.loop_type == "doall",
        budget=modulo_budget, store=store,
    )

    arrays, scalars = w.make_inputs(seed)
    run_list = run_compiled_kernel(ck_list, arrays=arrays, scalars=scalars)
    run_opt = run_compiled_kernel(ck_opt, arrays=arrays, scalars=scalars)

    return LoopHeadroom(
        name=w.name,
        n_instrs=len(body.instrs),
        heuristic_makespan=ck_list.inner_makespan,
        optimal_makespan=ck_opt.inner_makespan,
        status=status,
        proved_lb=proved_lb,
        solver_nodes=nodes,
        solver_seconds=seconds,
        cached_blocks=cached,
        total_blocks=blocks,
        mii=ms.bounds.mii,
        exact_ii=ms.ii,
        modulo_status=ms.status,
        modulo_seconds=ms.seconds,
        modulo_cached=ms.cached,
        cycles_list=run_list.cycles,
        cycles_optimal=run_opt.cycles,
        states_match=_states_match(run_list, run_opt),
    )


def run_headroom(
    workloads: list[Workload] | None = None,
    level: Level = Level.LEV4,
    width: int = 8,
    seed: int = 0,
    budget: int = DEFAULT_BUDGET,
    modulo_budget: int = DEFAULT_MODULO_BUDGET,
    store=None,
    verbose: bool = False,
) -> HeadroomData:
    """The full heuristic-vs-optimal report (default: all 40 loops)."""
    workloads = workloads or all_workloads()
    machine = MachineConfig(issue_width=width)
    data = HeadroomData(level, width, budget, modulo_budget)
    t0 = time.time()
    for w in workloads:
        row = measure_loop(w, level, machine, seed=seed, budget=budget,
                           modulo_budget=modulo_budget, store=store)
        data.rows.append(row)
        if verbose:
            print(f"  {row.name:<14}heur={row.heuristic_makespan:>4} "
                  f"opt={row.optimal_makespan:>4} [{row.status}] "
                  f"mii={row.mii:>4} ii={row.exact_ii:>4} "
                  f"[{row.modulo_status}]")
    data.elapsed = time.time() - t0
    return data


def format_report(data: HeadroomData) -> str:
    """The ``results/headroom.txt`` table."""
    rows = [
        f"Scheduling headroom: heuristic vs. exact "
        f"({data.level.label}, issue-{data.width}, "
        f"budget {data.budget}/{data.modulo_budget} nodes)",
        "=" * 78,
        f"{'loop':<13}{'n':>5}{'heur':>6}{'opt':>5}{'lb':>5}  "
        f"{'proof':<18}{'MII':>4}{'II':>5}{'acyc':>5}  {'pipelining':<18}",
        "-" * 78,
    ]
    for r in data.rows:
        rows.append(
            f"{r.name:<13}{r.n_instrs:>5}{r.heuristic_makespan:>6}"
            f"{r.optimal_makespan:>5}{r.proved_lb:>5}  {r.status:<18}"
            f"{r.mii:>4}{r.exact_ii:>5}{r.optimal_makespan:>5}  "
            f"{r.modulo_status:<18}"
        )
    counts = data.status_counts()
    mcounts = data.modulo_status_counts()
    improved = sum(1 for r in data.rows if r.block_headroom > 0)
    proved = counts.get("optimal", 0)
    pipelined = sum(1 for r in data.rows if r.exact_ii < r.optimal_makespan)
    rows += [
        "-" * 78,
        f"block scheduling: {proved}/{len(data.rows)} loops proven optimal, "
        f"{improved} improved over the heuristic "
        f"(statuses: {counts})",
        f"modulo scheduling: "
        f"{mcounts.get('optimal', 0)} proven MII-optimal, "
        f"{pipelined} loops where pipelining beats the best acyclic "
        f"schedule (statuses: {mcounts})",
        f"elapsed {data.elapsed:.1f}s",
    ]
    return "\n".join(rows)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro headroom",
        description="heuristic-vs-optimal scheduling headroom report",
    )
    ap.add_argument("--workloads", metavar="A,B,...",
                    help="comma-separated subset (default: all 40)")
    ap.add_argument("--level", type=int, default=4,
                    choices=[int(l) for l in Level])
    ap.add_argument("--width", type=int, default=8)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                    help="solver node budget per block "
                         f"(default: {DEFAULT_BUDGET})")
    ap.add_argument("--modulo-budget", type=int,
                    default=DEFAULT_MODULO_BUDGET,
                    help="node budget per II search "
                         f"(default: {DEFAULT_MODULO_BUDGET})")
    ap.add_argument("--store", metavar="DIR",
                    help="content-addressed solver-result store "
                         "(second run against it is near-free)")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    store = None
    if args.store:
        from pathlib import Path

        from ..service.store import ArtifactStore

        store = ArtifactStore(Path(args.store))
    wls = ([get_workload(n) for n in args.workloads.split(",")]
           if args.workloads else None)

    data = run_headroom(wls, Level(args.level), args.width, seed=args.seed,
                        budget=args.budget, modulo_budget=args.modulo_budget,
                        store=store, verbose=args.verbose)
    text = format_report(data)
    print(text)

    from .sweep import default_cache_path

    outdir = default_cache_path().parent
    outdir.mkdir(parents=True, exist_ok=True)
    (outdir / "headroom.txt").write_text(text + "\n")

    bad = [r.name for r in data.rows
           if r.optimal_makespan > r.heuristic_makespan]
    mismatched = [r.name for r in data.rows if not r.states_match]
    if bad:
        print(f"FAIL: exact schedule worse than heuristic: {bad}",
              file=sys.stderr)
    if mismatched:
        print(f"FAIL: end-state divergence between backends: {mismatched}",
              file=sys.stderr)
    return 1 if bad or mismatched else 0


if __name__ == "__main__":
    raise SystemExit(main())
