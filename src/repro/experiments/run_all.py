"""CLI driver: run the full evaluation and write every table and figure.

Usage::

    python -m repro.experiments.run_all [--force] [--quiet]

Writes ``results/*.txt`` (one per paper table/figure) and prints them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..pipeline import Level
from .histograms import doall_filter, register_distribution, speedup_distribution
from .sweep import default_cache_path, sweep_cached
from .tables import compute_headline_claims, render_table1, render_table2


def figure_texts(data) -> dict[str, str]:
    """All regenerated artifacts, keyed by output file stem."""
    out: dict[str, str] = {}
    out["table1_latencies"] = render_table1()
    out["table2_corpus"] = render_table2()
    out["fig08_speedup_issue2"] = speedup_distribution(
        data, 2, title="Figure 8: speedup distribution, issue-2"
    ).render()
    out["fig09_speedup_issue4"] = speedup_distribution(
        data, 4, title="Figure 9: speedup distribution, issue-4"
    ).render()
    out["fig10_speedup_issue8"] = speedup_distribution(
        data, 8, title="Figure 10: speedup distribution, issue-8"
    ).render()
    out["fig11_regusage_issue8"] = register_distribution(
        data, 8, title="Figure 11: register usage distribution, issue-8"
    ).render()
    out["fig12_speedup_doall"] = speedup_distribution(
        data, 8, doall_filter(True),
        title="Figure 12: speedup distribution, DOALL loops, issue-8",
    ).render()
    out["fig13_regusage_doall"] = register_distribution(
        data, 8, doall_filter(True),
        title="Figure 13: register usage, DOALL loops, issue-8",
    ).render()
    out["fig14_speedup_nondoall"] = speedup_distribution(
        data, 8, doall_filter(False),
        title="Figure 14: speedup distribution, non-DOALL loops, issue-8",
    ).render()
    out["fig15_regusage_nondoall"] = register_distribution(
        data, 8, doall_filter(False),
        title="Figure 15: register usage, non-DOALL loops, issue-8",
    ).render()
    out["headline_claims"] = compute_headline_claims(data).render()
    return out


def per_loop_report(data) -> str:
    rows = [
        f"{'name':<14}{'type':<10}" + "".join(
            f"{lv.label + '@8':>10}" for lv in Level
        ) + f"{'regs@Lev4':>10}",
        "-" * 84,
    ]
    from ..workloads import get_workload

    for n in data.workload_names():
        w = get_workload(n)
        cells = "".join(f"{data.speedup(n, lv, 8):>10.2f}" for lv in Level)
        regs = data.get(n, Level.LEV4, 8).total_regs
        rows.append(f"{n:<14}{w.loop_type:<10}{cells}{regs:>10}")
    return "Per-loop speedups at issue-8 (vs issue-1 Conv)\n" + "\n".join(rows)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--force", action="store_true", help="recompute the sweep")
    ap.add_argument("--quiet", action="store_true", help="do not print figures")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes for the sweep (default: 1); "
                         "results are identical at any job count")
    ap.add_argument("--check", action="store_true",
                    help="run the IR invariant verifier between every "
                         "compiler pass of every configuration")
    ap.add_argument("--disable-pass", action="append", default=[],
                    metavar="NAME",
                    help="skip a registered pass everywhere (repeatable; "
                         "see `python -m repro passes`); the run bypasses "
                         "the sweep cache")
    ap.add_argument("--store", metavar="DIR",
                    help="persistent artifact store: reuse configurations "
                         "computed by earlier sweeps or service traffic, "
                         "and write back everything computed here")
    ap.add_argument("--engine", choices=("auto", "compiled", "interp"),
                    default="auto",
                    help="simulator engine: 'compiled' executes generated "
                         "block code once per cell and replays timing per "
                         "width, 'interp' is the reference interpreter, "
                         "'auto' (default) picks compiled with interpreter "
                         "fallback; results are identical either way")
    args = ap.parse_args(argv)

    from ..passes import PassOptions

    options = (PassOptions(disable=tuple(args.disable_pass))
               if args.disable_pass else None)
    store = None
    if args.store:
        from ..service.store import ArtifactStore

        store = ArtifactStore(Path(args.store))
    data = sweep_cached(force=args.force, verbose=not args.quiet,
                        jobs=args.jobs, check_ir=args.check, options=options,
                        store=store, engine=args.engine)
    outdir = default_cache_path().parent
    outdir.mkdir(parents=True, exist_ok=True)

    texts = figure_texts(data)
    texts["per_loop"] = per_loop_report(data)
    for stem, text in texts.items():
        if options is None:
            # ablated runs print only: the canonical figure files always
            # describe the full pipeline
            (outdir / f"{stem}.txt").write_text(text + "\n")
        if not args.quiet:
            print()
            print(text)
    print(f"\nwrote {len(texts)} artifacts to {outdir}/ "
          f"(sweep {data.elapsed:.1f}s, {data.computed} computed"
          + (f", {data.reused} resumed" if data.reused else "")
          + (f", {data.store_hits} from store" if data.store_hits else "")
          + ")",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
