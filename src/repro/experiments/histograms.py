"""Histogram builders using the paper's exact bin edges (Figures 8-15)."""

from __future__ import annotations

from dataclasses import dataclass

from ..pipeline import Level
from .sweep import SweepData

#: Figure 8 (issue-2) speedup bins
SPEEDUP_BINS_ISSUE2 = [
    ("0.00-1.24", 0.0, 1.25), ("1.25-1.49", 1.25, 1.5),
    ("1.50-1.74", 1.5, 1.75), ("1.75-1.99", 1.75, 2.0),
    ("2.00-2.49", 2.0, 2.5), ("2.50-2.99", 2.5, 3.0),
    ("3.00+", 3.0, float("inf")),
]

#: Figure 9 (issue-4) speedup bins
SPEEDUP_BINS_ISSUE4 = [
    ("0.00-1.49", 0.0, 1.5), ("1.50-1.99", 1.5, 2.0),
    ("2.00-2.49", 2.0, 2.5), ("2.50-2.99", 2.5, 3.0),
    ("3.00-3.49", 3.0, 3.5), ("3.50-3.99", 3.5, 4.0),
    ("4.00-4.99", 4.0, 5.0), ("5.00-5.99", 5.0, 6.0),
    ("6.00+", 6.0, float("inf")),
]

#: Figures 10/12/14 (issue-8) speedup bins
SPEEDUP_BINS_ISSUE8 = [
    ("0.00-1.99", 0.0, 2.0), ("2.00-2.49", 2.0, 2.5),
    ("2.50-2.99", 2.5, 3.0), ("3.00-3.99", 3.0, 4.0),
    ("4.00-4.99", 4.0, 5.0), ("5.00-5.99", 5.0, 6.0),
    ("6.00-6.99", 6.0, 7.0), ("7.00-7.99", 7.0, 8.0),
    ("8.00+", 8.0, float("inf")),
]

#: Figures 11/13/15 register usage bins
REGISTER_BINS = [
    ("0-15", 0, 16), ("16-31", 16, 32), ("32-47", 32, 48),
    ("48-63", 48, 64), ("64-95", 64, 96), ("96-127", 96, 128),
    ("128+", 128, float("inf")),
]

SPEEDUP_BINS = {2: SPEEDUP_BINS_ISSUE2, 4: SPEEDUP_BINS_ISSUE4, 8: SPEEDUP_BINS_ISSUE8}


def bin_counts(values: list[float], bins) -> list[int]:
    counts = [0] * len(bins)
    for v in values:
        for i, (_, lo, hi) in enumerate(bins):
            if lo <= v < hi:
                counts[i] += 1
                break
    return counts


@dataclass
class Distribution:
    """One figure: per-level histogram over the paper's bins."""

    title: str
    bins: list
    #: level label -> counts per bin
    series: dict[str, list[int]]
    #: level label -> raw values (for averages / tests)
    values: dict[str, list[float]]

    def average(self, level_label: str) -> float:
        vals = self.values[level_label]
        return sum(vals) / len(vals) if vals else 0.0

    def render(self) -> str:
        labels = [b[0] for b in self.bins]
        width = max(len(x) for x in labels + ["range"]) + 2
        head = f"{'range':<{width}}" + "".join(f"{lv:>6}" for lv in self.series)
        rows = [self.title, "=" * len(self.title), head, "-" * len(head)]
        for i, lab in enumerate(labels):
            rows.append(
                f"{lab:<{width}}" + "".join(f"{c[i]:>6}" for c in self.series.values())
            )
        rows.append("-" * len(head))
        rows.append(
            f"{'average':<{width}}"
            + "".join(f"{self.average(lv):>6.2f}" for lv in self.series)
        )
        return "\n".join(rows)


def speedup_distribution(
    data: SweepData,
    width: int,
    workload_filter=None,
    title: str | None = None,
) -> Distribution:
    bins = SPEEDUP_BINS[width]
    series: dict[str, list[int]] = {}
    values: dict[str, list[float]] = {}
    names = [
        n for n in data.workload_names()
        if workload_filter is None or workload_filter(n)
    ]
    for level in Level:
        vals = [data.speedup(n, level, width) for n in names]
        values[level.label] = vals
        series[level.label] = bin_counts(vals, bins)
    return Distribution(
        title or f"Speedup distribution, issue-{width} (n={len(names)} loops)",
        bins, series, values,
    )


def register_distribution(
    data: SweepData,
    width: int = 8,
    workload_filter=None,
    title: str | None = None,
) -> Distribution:
    series: dict[str, list[int]] = {}
    values: dict[str, list[float]] = {}
    names = [
        n for n in data.workload_names()
        if workload_filter is None or workload_filter(n)
    ]
    for level in Level:
        vals = [float(data.get(n, level, width).total_regs) for n in names]
        values[level.label] = vals
        series[level.label] = bin_counts(vals, REGISTER_BINS)
    return Distribution(
        title or f"Register usage distribution, issue-{width} (n={len(names)} loops)",
        REGISTER_BINS, series, values,
    )


def doall_filter(doall: bool):
    """Filter by DOALL / non-DOALL classification (Figures 12-15)."""
    from ..workloads import get_workload

    def f(name: str) -> bool:
        return (get_workload(name).loop_type == "doall") == doall

    return f
