"""Renderers for Table 1, Table 2, and the headline scalar claims."""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import Kind
from ..machine import PAPER_LATENCIES
from ..pipeline import Level
from ..workloads import all_workloads, get_workload
from .sweep import SweepData


def render_table1() -> str:
    rows = [
        ("Int ALU", Kind.INT_ALU), ("Int multiply", Kind.INT_MUL),
        ("Int divide", Kind.INT_DIV), ("branch", Kind.BRANCH),
        ("memory load", Kind.LOAD), ("FP ALU", Kind.FP_ALU),
        ("FP conversion", Kind.FP_CVT), ("FP multiply", Kind.FP_MUL),
        ("FP divide", Kind.FP_DIV), ("memory store", Kind.STORE),
    ]
    out = ["Table 1: instruction latencies", "=" * 31,
           f"{'Function':<16}{'Latency':>8}"]
    for name, kind in rows:
        lat = PAPER_LATENCIES[kind]
        suffix = " / 1 slot" if kind is Kind.BRANCH else ""
        out.append(f"{name:<16}{lat:>8}{suffix}")
    return "\n".join(out)


def render_table2() -> str:
    out = [
        "Table 2: loop nest descriptions (paper metadata; sim iters scaled)",
        "=" * 68,
        f"{'Name':<14}{'Size':>5}{'Iters':>7}{'Nest':>5}  {'Type':<10}{'Conds':<5}",
        "-" * 50,
    ]
    for w in all_workloads():
        out.append(
            f"{w.name:<14}{w.size_lines:>5}{w.paper_iters:>7}{w.nest:>5}  "
            f"{w.loop_type:<10}{'yes' if w.conds else 'no':<5}"
        )
    return "\n".join(out)


@dataclass
class HeadlineClaims:
    """The scalar results quoted in Sections 3.2 and 4."""

    #: average speedups by (width, level label)
    avg_speedup: dict[tuple[int, str], float]
    #: average speedups by (width, level, doall?) — Section 4 breakdown
    avg_speedup_split: dict[tuple[int, str, bool], float]
    #: average total registers at issue-8 per level
    avg_regs: dict[str, float]
    #: register growth factor Conv -> Lev4
    reg_growth: float
    #: number of loops needing < 128 registers at Lev4 / issue-8
    under_128: int

    def render(self) -> str:
        out = ["Headline claims (paper section 3.2 / 4 vs measured)",
               "=" * 52]
        paper = {
            (4, "Lev2"): 3.73, (4, "Lev4"): 4.35,
            (8, "Lev2"): 5.10, (8, "Lev4"): 6.68,
        }
        for (wd, lv), v in sorted(self.avg_speedup.items()):
            p = paper.get((wd, lv))
            ps = f"  (paper {p:.2f})" if p else ""
            out.append(f"avg speedup issue-{wd} {lv}: {v:.2f}{ps}")
        paper_split = {
            (8, "Lev2", True): 6.8, (8, "Lev2", False): 3.7,
            (8, "Lev4", True): 7.8, (8, "Lev4", False): 5.8,
        }
        for (wd, lv, da), v in sorted(
            self.avg_speedup_split.items(), key=lambda kv: (kv[0][0], kv[0][1], not kv[0][2])
        ):
            p = paper_split.get((wd, lv, da))
            ps = f"  (paper {p:.1f})" if p else ""
            kind = "DOALL" if da else "non-DOALL"
            out.append(f"avg speedup issue-{wd} {lv} {kind}: {v:.2f}{ps}")
        paper_regs = {"Lev1": 28.0, "Lev2": 57.0, "Lev3": 65.0, "Lev4": 71.0}
        for lv, v in self.avg_regs.items():
            p = paper_regs.get(lv)
            ps = f"  (paper {p:.0f})" if p else ""
            out.append(f"avg registers issue-8 {lv}: {v:.1f}{ps}")
        out.append(f"register growth Conv->Lev4: {self.reg_growth:.2f}x (paper 2.6x)")
        out.append(f"loops under 128 regs at Lev4/issue-8: {self.under_128}/40 (paper 37/40)")
        return "\n".join(out)


def compute_headline_claims(data: SweepData) -> HeadlineClaims:
    names = data.workload_names()
    doall = {n: get_workload(n).loop_type == "doall" for n in names}

    avg_speedup: dict[tuple[int, str], float] = {}
    for width in (2, 4, 8):
        for level in (Level.LEV2, Level.LEV3, Level.LEV4):
            vals = [data.speedup(n, level, width) for n in names]
            avg_speedup[(width, level.label)] = sum(vals) / len(vals)

    avg_split: dict[tuple[int, str, bool], float] = {}
    for level in (Level.LEV2, Level.LEV4):
        for da in (True, False):
            sel = [n for n in names if doall[n] == da]
            vals = [data.speedup(n, level, 8) for n in sel]
            avg_split[(8, level.label, da)] = sum(vals) / len(vals)

    avg_regs: dict[str, float] = {}
    for level in Level:
        vals = [data.get(n, level, 8).total_regs for n in names]
        avg_regs[level.label] = sum(vals) / len(vals)

    growth = avg_regs["Lev4"] / avg_regs["Conv"] if avg_regs["Conv"] else 0.0
    under = sum(
        1 for n in names if data.get(n, Level.LEV4, 8).total_regs < 128
    )
    return HeadlineClaims(avg_speedup, avg_split, avg_regs, growth, under)
