"""The evaluation grid: 40 loop nests x all levels x issue rates 1/2/4/8.

The level axis derives from :class:`repro.pipeline.Level` — the paper's
five (Conv..Lev4) plus Lev5 (SLP vectorization).

Replicates the paper's methodology (Section 3.1): each configuration is
compiled through the full pipeline and measured with execution-driven
simulation; speedups are relative to the issue-1 processor with
conventional (Conv) optimization; register usage is the colored
int+fp total of the compiled loop nest.

The grid is embarrassingly parallel and highly redundant, and the engine
exploits both:

* **Width sharding.**  The unit of work is a *task* — one (workload,
  level) cell covering every requested issue width.  The classical and
  ILP transformation stages observe only the machine's latencies
  (:func:`repro.harness.ilp_transform`), so a task transforms once and
  schedules a clone per width instead of recompiling from scratch
  4 times.  Classical optimization is additionally level-independent, so
  each worker process runs it once per workload (all levels share it).
* **Process parallelism.**  ``jobs > 1`` fans tasks out over a
  ``fork``-based process pool.  Results are merged deterministically
  (sorted by grid key), so serial and parallel sweeps are bit-identical.
* **Resumability.**  Each finished configuration is appended to a JSONL
  *journal*; an interrupted sweep rerun with the same journal reloads
  the finished configurations and computes only the missing ones.
* **Persistence.**  With ``store=`` (CLI ``--store DIR``), finished
  configurations are also written to the content-addressed artifact
  store (:mod:`repro.service.store`), keyed by the same canonical
  identity as the service (:mod:`repro.service.keys`).  A later sweep
  pointed at the same store — or compile/run traffic served from it —
  reuses them across processes and machines, so a warm rerun is
  near-free.

Results are cached as JSON so the figure benchmarks can re-render without
recomputation (delete ``results/sweep.json`` or pass ``force=True`` to
refresh).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..harness import (
    BatchedRunner,
    ConvKernel,
    ilp_transform,
    lower_conv,
    run_compiled_kernel,
    schedule_kernel,
)
from ..machine import MachineConfig
from ..passes import PassOptions
from ..pipeline import Level
from ..regalloc import measure_register_usage
from ..resilience.errors import clean_orphan_tmps
from ..resilience.supervisor import (
    CellQuarantined,
    SupervisedPool,
    TaskFailed,
)
from ..service.keys import request_key, sweep_header, workload_fingerprint
from ..workloads import Workload, all_workloads, check_run, get_workload


class SweepError(RuntimeError):
    """One or more grid cells failed permanently (details in ``args``)."""

WIDTHS = (1, 2, 4, 8)
#: 4 added per-phase timing fields and partial-grid journals; version-3
#: files (no timings, always full-grid) still load, as do version-4
#: files from before the per-pass ``t_passes`` timing map was added.
CACHE_VERSION = 4
_COMPAT_VERSIONS = (3, CACHE_VERSION)


@dataclass
class ConfigResult:
    workload: str
    level: int                # Level value
    width: int
    cycles: int
    instructions: int
    inner_makespan: int
    int_regs: int
    fp_regs: int
    checked: bool
    #: wall-clock phase costs.  Compilation work shared across the widths
    #: of a task (classical + ILP transformation) is attributed to the
    #: width that actually paid it (the task's first width), not smeared.
    t_compile: float = 0.0
    t_schedule: float = 0.0
    t_simulate: float = 0.0
    #: per-pass wall-clock seconds from the unified pipeline report, under
    #: the same attribution rule as ``t_compile``: shared transform passes
    #: are charged to the task's first width, scheduling to every width.
    t_passes: dict[str, float] = field(default_factory=dict)

    @property
    def total_regs(self) -> int:
        return self.int_regs + self.fp_regs


@dataclass
class SweepData:
    """Full grid of results, with speedup helpers."""

    results: dict[tuple[str, int, int], ConfigResult] = field(default_factory=dict)
    elapsed: float = 0.0
    #: configurations computed this run vs. reloaded from a journal
    computed: int = 0
    reused: int = 0
    #: corrupt/truncated journal lines skipped while resuming
    journal_skipped: int = 0
    #: configurations served from the persistent artifact store
    store_hits: int = 0
    #: supervised-pool counters (redispatched, retries, deadline_kills,
    #: worker_restarts, ...) from a ``jobs > 1`` run; empty when serial
    resilience: dict = field(default_factory=dict)
    #: (cell, error) pairs for cells that failed permanently (only
    #: populated with ``strict=False``; strict sweeps raise instead)
    failed: list = field(default_factory=list)

    def get(self, name: str, level: Level, width: int) -> ConfigResult:
        return self.results[(name, int(level), width)]

    def base_cycles(self, name: str) -> int:
        """Issue-1 processor with Conv: the paper's speedup denominator."""
        return self.get(name, Level.CONV, 1).cycles

    def speedup(self, name: str, level: Level, width: int) -> float:
        return self.base_cycles(name) / self.get(name, level, width).cycles

    def workload_names(self) -> list[str]:
        return sorted({k[0] for k in self.results}, key=str.lower)

    def pass_seconds(self) -> dict[str, float]:
        """Aggregate compile-time cost per registered pass over the grid
        (the bench trajectory tracks these; see ``bench_sweep_perf``)."""
        out: dict[str, float] = {}
        for r in self.results.values():
            for name, s in r.t_passes.items():
                out[name] = out.get(name, 0.0) + s
        return out


# ---------------------------------------------------------------------------
# per-process worker state
# ---------------------------------------------------------------------------

#: classical optimization is level- and machine-independent, so one
#: ``ConvKernel`` per (workload, disabled-pass set) serves every task a
#: worker process sees.  The time it cost rides along and is charged to
#: the first task that needs it (``_conv_cached`` pops the cost).
_CONV_CACHE: dict[tuple, tuple[ConvKernel, float]] = {}
#: inputs are read-only (``check_run`` copies before mutating;
#: ``Memory.bind_array`` copies into simulated memory), so one binding
#: per (workload, seed) serves every configuration.
_INPUT_CACHE: dict[tuple[str, int], tuple[dict, dict]] = {}


def _conv_cached(
    w: Workload, options: PassOptions | None = None
) -> tuple[ConvKernel, float]:
    """Stage-1 result for a workload, plus the cost if paid just now.

    Keyed by the disabled-pass set: ablation runs that switch classical
    passes off must not be served the fully-optimized cached result.
    """
    key = (w.name, options.key if options is not None else ())
    hit = _CONV_CACHE.get(key)
    if hit is not None:
        conv, _ = hit
        return conv, 0.0
    t0 = time.perf_counter()
    conv = lower_conv(w.build(), options=options)
    dt = time.perf_counter() - t0
    _CONV_CACHE[key] = (conv, dt)
    return conv, dt


def _inputs_cached(w: Workload, seed: int) -> tuple[dict, dict]:
    key = (w.name, seed)
    hit = _INPUT_CACHE.get(key)
    if hit is None:
        hit = w.make_inputs(seed)
        _INPUT_CACHE[key] = hit
    return hit


def _measure(w: Workload, ck, arrays: dict, scalars: dict, check: bool,
             t_compile: float, t_sched: float,
             t_passes: dict[str, float] | None = None,
             engine: str = "auto") -> ConfigResult:
    usage = measure_register_usage(ck.func, ck.lowered.live_out_exit)
    t0 = time.perf_counter()
    run = run_compiled_kernel(ck, arrays=arrays, scalars=scalars,
                              engine=engine)
    if check:
        check_run(w, run.arrays, run.scalars, arrays, scalars)
    t_sim = time.perf_counter() - t0
    return ConfigResult(
        w.name, int(ck.level), ck.machine.issue_width, run.cycles,
        run.instructions, ck.inner_makespan, usage.int_regs, usage.fp_regs,
        check, t_compile=t_compile, t_schedule=t_sched, t_simulate=t_sim,
        t_passes=t_passes if t_passes is not None else {},
    )


def _charged_pass_seconds(ck, first_width: bool, conv_fresh: bool) -> dict[str, float]:
    """Per-pass seconds under the t_compile attribution rule: transform
    phases are charged to the task's first width (and the classical phase
    only when this task actually paid it), scheduling to every width."""
    if not first_width:
        return ck.report.pass_seconds(phases=("schedule",))
    if conv_fresh:
        return ck.report.pass_seconds()
    return ck.report.pass_seconds(phases=("ilp", "cleanup", "schedule"))


def _run_task(task: tuple) -> list[ConfigResult]:
    """Run one (workload, level) cell over the requested widths.

    The ILP transformation runs once on a clone of the cached stage-1
    result; each width schedules its own clone of the transformed code.
    With the compiled engine (the default), the cell then *executes*
    once — the dynamic trace is width-independent — and each width's
    cycle/instruction counts come from replaying that trace against its
    own schedule (:class:`repro.harness.BatchedRunner`), bit-identical
    to simulating every width in full.
    """
    name, level_int, widths, seed, check, check_ir, options, engine = task
    w = get_workload(name)
    level = Level(level_int)

    conv, t_conv = _conv_cached(w, options)
    t0 = time.perf_counter()
    tk = ilp_transform(conv.clone(), level, MachineConfig(issue_width=widths[0]),
                       check=check_ir, options=options)
    t_transform = t_conv + (time.perf_counter() - t0)

    arrays, scalars = _inputs_cached(w, seed)
    cks = []
    t_scheds = []
    for i, width in enumerate(widths):
        machine = MachineConfig(issue_width=width)
        t0 = time.perf_counter()
        # the last width may consume tk itself: nothing reads it afterwards
        clone = tk.clone() if i + 1 < len(widths) else tk
        cks.append(schedule_kernel(clone, machine, check=check_ir,
                                   options=options))
        t_scheds.append(time.perf_counter() - t0)

    runner = None
    t_exec = 0.0
    if engine in ("auto", "compiled") and len(cks) > 1:
        from ..sim import EngineUnsupported, ReplayUnsupported

        t0 = time.perf_counter()
        try:
            runner = BatchedRunner(cks[0], arrays, scalars)
        except (EngineUnsupported, ReplayUnsupported):
            runner = None  # cell outside engine scope: simulate per width
        t_exec = time.perf_counter() - t0

    out: list[ConfigResult] = []
    for i, ck in enumerate(cks):
        if runner is None:
            out.append(_measure(
                w, ck, arrays, scalars, check, t_transform, t_scheds[i],
                _charged_pass_seconds(ck, i == 0, t_conv > 0), engine=engine,
            ))
        else:
            usage = measure_register_usage(ck.func, ck.lowered.live_out_exit)
            t0 = time.perf_counter()
            run = runner.run(ck)
            # outputs are shared across widths, so one check covers the
            # cell — except a width that fell back to a fresh full
            # simulation, whose outputs are its own
            if check and (i == 0 or runner.last_fallback):
                check_run(w, run.arrays, run.scalars, arrays, scalars)
            t_sim = (time.perf_counter() - t0) + (t_exec if i == 0 else 0.0)
            out.append(ConfigResult(
                w.name, int(ck.level), ck.machine.issue_width, run.cycles,
                run.instructions, ck.inner_makespan, usage.int_regs,
                usage.fp_regs, check, t_compile=t_transform,
                t_schedule=t_scheds[i], t_simulate=t_sim,
                t_passes=_charged_pass_seconds(ck, i == 0, t_conv > 0),
            ))
        t_transform = 0.0  # shared cost charged to the first width only
    return out


def run_config(
    w: Workload, level: Level, machine: MachineConfig, seed: int = 0,
    check: bool = True, check_ir: bool = False,
    options: PassOptions | None = None, engine: str = "auto",
    scheduler: str = "list", solver_budget: int | None = None,
    solver_store=None,
) -> ConfigResult:
    """Compile, simulate, and check a single configuration.

    Unlike the sweep tasks this honors the full ``machine`` (custom
    latencies / slot limits — the ablation benchmarks use those); the
    classical stage is still reused across calls per workload.
    ``check_ir=True`` additionally runs the between-pass invariant
    verifier (the CLI ``--check`` flag); ``options`` carries
    ``--disable-pass`` / ``--print-after`` pipeline controls;
    ``scheduler`` selects the schedule backend (``--scheduler``), with
    ``solver_store`` caching exact-solver results fleet-wide.
    """
    conv, t_conv = _conv_cached(w, options)
    t0 = time.perf_counter()
    tk = ilp_transform(conv.clone(), level, machine, check=check_ir,
                       options=options)
    t_compile = t_conv + (time.perf_counter() - t0)
    t0 = time.perf_counter()
    ck = schedule_kernel(tk, machine, check=check_ir, options=options,
                         scheduler=scheduler, solver_budget=solver_budget,
                         solver_store=solver_store)
    t_sched = time.perf_counter() - t0
    arrays, scalars = _inputs_cached(w, seed)
    return _measure(w, ck, arrays, scalars, check, t_compile, t_sched,
                    _charged_pass_seconds(ck, True, t_conv > 0),
                    engine=engine)


# ---------------------------------------------------------------------------
# the sweep driver
# ---------------------------------------------------------------------------


def _journal_header(seed: int, check: bool, check_ir: bool = False,
                    options: PassOptions | None = None) -> dict:
    """Journal identity: the canonical grid-wide half of the request
    identity (:func:`repro.service.keys.sweep_header` — shared with the
    artifact store, so the two can never disagree) plus the journal's
    own schema version."""
    disable = options.key if options is not None else ()
    return {"version": CACHE_VERSION,
            **sweep_header(seed, check, check_ir, disable)}


def read_journal(
    path: Path, seed: int, check: bool, check_ir: bool = False,
    on_skip=None, options: PassOptions | None = None,
) -> dict[tuple, ConfigResult]:
    """Finished configurations from an (possibly interrupted) journal.

    Skips truncated or corrupt lines (the process died mid-write — a torn
    line may even be invalid UTF-8, so parsing works on raw bytes) and
    reports each skip through ``on_skip(lineno, raw_line)``.  The whole
    journal is rejected if the header does not match the requested sweep
    parameters.
    """
    results: dict[tuple, ConfigResult] = {}
    try:
        lines = path.read_bytes().splitlines()
    except OSError:
        return results
    if not lines:
        return results
    try:
        header = json.loads(lines[0])
    except (UnicodeDecodeError, json.JSONDecodeError):
        return results
    if header != _journal_header(seed, check, check_ir, options):
        return results
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            d = json.loads(line)
            r = ConfigResult(**d)
        except (UnicodeDecodeError, json.JSONDecodeError, TypeError):
            if on_skip is not None:
                on_skip(lineno, line)
            continue  # truncated / malformed line
        results[(r.workload, r.level, r.width)] = r
    return results


def _fork_pool(jobs: int) -> ProcessPoolExecutor:
    # fork (not spawn) so workers inherit the parent's PYTHONHASHSEED:
    # several passes iterate sets of enum members, whose hashes vary with
    # the seed, and bit-identical serial/parallel results require every
    # process to break those ties the same way.
    return ProcessPoolExecutor(
        max_workers=jobs, mp_context=multiprocessing.get_context("fork")
    )


def _run_supervised(tasks, record, data: SweepData, jobs: int,
                    deadline_s: float | None, fingerprints: dict[str, str],
                    seed: int, check: bool, check_ir: bool,
                    disable: tuple) -> None:
    """Fan tasks out over the supervised pool: crashed/hung workers are
    replaced and their tasks re-dispatched; a permanently failing cell is
    recorded in ``data.failed`` instead of aborting the grid.  Tasks are
    keyed by canonical request key so a re-dispatched task's late
    duplicate can never double-count a configuration."""
    from concurrent.futures import as_completed

    def fingerprint(name: str) -> str:
        fp = fingerprints.get(name)
        if fp is None:
            fp = fingerprints[name] = workload_fingerprint(name)
        return fp

    with SupervisedPool(jobs, deadline_s=deadline_s) as pool:
        futures = {}
        for task in tasks:
            name, level_int, widths_t = task[0], task[1], task[2]
            key = request_key(
                "result", name, level_int, widths_t[0], seed=seed,
                check=check, check_ir=check_ir, disable=disable,
                fingerprint=fingerprint(name),
            )
            fut = pool.submit(_run_task, task, key=key,
                              cell=(name, level_int))
            futures[fut] = (name, level_int)
        for fut in as_completed(futures):
            cell = futures[fut]
            try:
                record(fut.result())
            except (CellQuarantined, TaskFailed) as e:
                data.failed.append((cell, repr(e)))
        data.resilience = dict(pool.counters)


def run_sweep(
    workloads: list[Workload] | None = None,
    levels: tuple[Level, ...] = tuple(Level),
    widths: tuple[int, ...] = WIDTHS,
    seed: int = 0,
    check: bool = True,
    verbose: bool = False,
    jobs: int = 1,
    journal: Path | None = None,
    resume: bool = True,
    check_ir: bool = False,
    options: PassOptions | None = None,
    store=None,
    supervise: bool = True,
    deadline_s: float | None = None,
    strict: bool = True,
    engine: str = "auto",
) -> SweepData:
    """Run the evaluation grid.

    ``engine`` selects the simulator core (see
    :func:`repro.sim.simulate`): the default compiled engine executes
    each (workload, level) cell once and replays the trace per width;
    ``"interp"`` forces the tuple interpreter.  Both produce identical
    results, so the engine is *not* part of the journal/store identity.

    ``jobs > 1`` distributes (workload, level) tasks over a process pool.
    With a ``journal`` path, every finished configuration is appended as a
    JSON line; rerunning with ``resume=True`` (the default) reloads the
    finished part and computes only the remainder.  Serial, parallel,
    resumed, and fresh sweeps all produce identical results.
    ``check_ir=True`` runs the invariant verifier between every compiler
    pass of every configuration (the CLI ``--check`` flag); ``options``
    carries ``--disable-pass`` pipeline controls (recorded in the journal
    header, so a resumed sweep never mixes pipelines).

    ``store`` (an :class:`~repro.service.store.ArtifactStore`) adds a
    persistent cross-process layer: configurations whose canonical key
    is already stored are reloaded instead of computed, and every
    computed configuration is written back, so a second sweep against
    the same store is near-free.

    ``supervise`` (default) runs the parallel pool under the resilience
    layer's :class:`~repro.resilience.supervisor.SupervisedPool`: a
    worker lost to a crash or a hang (past ``deadline_s``) is replaced
    and its task re-dispatched, deduplicated by canonical request key,
    instead of killing the whole sweep; counters land in
    ``SweepData.resilience``.  A cell that fails permanently (retries
    exhausted or circuit breaker open) raises :class:`SweepError` after
    the rest of the grid finishes — or, with ``strict=False``, is
    recorded in ``SweepData.failed`` and the sweep returns partial.
    """
    workloads = workloads or all_workloads()
    data = SweepData()
    t0 = time.time()
    disable = options.key if options is not None else ()

    def store_key(name: str, level: int, width: int, fp: str) -> str:
        # "result" blobs hold the sweep's full ConfigResult (phase and
        # per-pass timings included) — distinct from the service's
        # leaner "run" payloads for the same configuration
        return request_key("result", name, level, width, seed=seed,
                           check=check, check_ir=check_ir, disable=disable,
                           fingerprint=fp)

    if journal is not None and resume and journal.exists():
        wanted = {
            (w.name, int(lv), wd)
            for w in workloads for lv in levels for wd in widths
        }
        skipped: list[int] = []
        loaded = read_journal(journal, seed, check, check_ir,
                              on_skip=lambda lineno, raw: skipped.append(lineno),
                              options=options)
        for key, r in loaded.items():
            if key in wanted:
                data.results[key] = r
        data.journal_skipped = len(skipped)
        if skipped:
            print(f"  journal {journal}: skipped {len(skipped)} corrupt "
                  f"line(s) (first at line {skipped[0]}); "
                  f"those configurations will be recomputed", file=sys.stderr)
    data.reused = len(data.results)

    fingerprints: dict[str, str] = {}
    if store is not None:
        # persistent layer: anything the journal did not cover may still
        # be in the artifact store from an earlier sweep (or service
        # traffic).  A corrupt or stale blob is just a miss.
        fingerprints = {w.name: workload_fingerprint(w.name)
                        for w in workloads}
        for w in workloads:
            for level in levels:
                for wd in widths:
                    gk = (w.name, int(level), wd)
                    if gk in data.results:
                        continue
                    payload = store.get(
                        store_key(w.name, int(level), wd, fingerprints[w.name])
                    )
                    if payload is None:
                        continue
                    try:
                        data.results[gk] = ConfigResult(**payload)
                    except TypeError:
                        continue  # foreign schema: recompute
                    data.store_hits += 1

    # one task per (workload, level): the widths of a cell share their
    # transformed code, so they stay together
    tasks = []
    for w in workloads:
        for level in levels:
            missing = tuple(
                wd for wd in widths if (w.name, int(level), wd) not in data.results
            )
            if missing:
                tasks.append((w.name, int(level), missing, seed, check,
                              check_ir, options, engine))

    jf = None
    if journal is not None and tasks:
        journal.parent.mkdir(parents=True, exist_ok=True)
        # a writer that died between tmp-write and rename strands a tmp
        # file next to the journal/cache forever; sweep startup is the
        # janitor (grace-period guarded — a fresh tmp may be live)
        clean_orphan_tmps(journal.parent, recursive=False)
        fresh = not (resume and data.results)
        torn_tail = (not fresh and journal.exists()
                     and not journal.read_bytes().endswith(b"\n"))
        jf = journal.open("w" if fresh else "a")
        if fresh:
            jf.write(json.dumps(_journal_header(seed, check, check_ir,
                                                options)) + "\n")
            jf.flush()
        elif torn_tail:
            # terminate a torn final line so appended records stay parseable
            jf.write("\n")

    def record(rs: list[ConfigResult]) -> None:
        for r in rs:
            data.results[(r.workload, r.level, r.width)] = r
            if jf is not None:
                jf.write(json.dumps(asdict(r)) + "\n")
            if store is not None:
                fp = fingerprints.get(r.workload)
                if fp is None:
                    fp = fingerprints[r.workload] = workload_fingerprint(r.workload)
                store.put(store_key(r.workload, r.level, r.width, fp),
                          asdict(r))
        if jf is not None:
            jf.flush()
        data.computed += len(rs)
        if verbose and rs:
            r = rs[0]
            print(f"  {r.workload} {Level(r.level).label} done "
                  f"({time.time() - t0:.1f}s)")

    try:
        if jobs > 1 and len(tasks) > 1:
            if supervise:
                _run_supervised(tasks, record, data, jobs, deadline_s,
                                fingerprints, seed, check, check_ir, disable)
            else:
                with _fork_pool(jobs) as pool:
                    for rs in pool.map(_run_task, tasks):
                        record(rs)
        else:
            for task in tasks:
                record(_run_task(task))
    finally:
        if jf is not None:
            jf.close()

    if data.failed:
        print(f"  sweep: {len(data.failed)} cell(s) failed permanently: "
              + ", ".join(f"{c[0]}/L{c[1]}" for c, _ in data.failed),
              file=sys.stderr)
        if strict:
            raise SweepError(
                f"{len(data.failed)} cell(s) failed permanently", data.failed)

    # deterministic merge: identical key order no matter which process
    # finished first or how much came from the journal
    data.results = dict(sorted(data.results.items()))
    data.elapsed = time.time() - t0
    return data


# ---------------------------------------------------------------------------
# disk cache
# ---------------------------------------------------------------------------


def default_cache_path() -> Path:
    return Path(__file__).resolve().parents[3] / "results" / "sweep.json"


def default_journal_path() -> Path:
    return default_cache_path().with_suffix(".journal.jsonl")


def save_sweep(data: SweepData, path: Path | None = None) -> Path:
    path = path or default_cache_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": CACHE_VERSION,
        "elapsed": data.elapsed,
        "results": [asdict(r) for r in data.results.values()],
    }
    # atomic: a reader (or a crash) mid-save must never observe a torn
    # cache; orphaned tmps from dead writers are cleaned at sweep start
    tmp = path.with_name(f".{path.name}-{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload))
    os.replace(tmp, path)
    return path


def load_sweep(path: Path | None = None, require_complete: bool = True) -> SweepData | None:
    """Load a cached sweep.

    By default only a full 40x5x4 grid is usable (the figure renderers
    need every cell); ``require_complete=False`` returns whatever subset
    the file holds, so partial sweeps remain inspectable.
    """
    path = path or default_cache_path()
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("version") not in _COMPAT_VERSIONS:
        return None
    data = SweepData(elapsed=payload.get("elapsed", 0.0))
    for d in payload["results"]:
        r = ConfigResult(**d)
        data.results[(r.workload, r.level, r.width)] = r
    if require_complete:
        expected = len(all_workloads()) * len(Level) * len(WIDTHS)
        if len(data.results) != expected:
            return None
    return data


def sweep_cached(force: bool = False, verbose: bool = False, jobs: int = 1,
                 check_ir: bool = False,
                 options: PassOptions | None = None,
                 store=None, engine: str = "auto") -> SweepData:
    """Load the cached grid or compute and cache it.

    Computation journals to ``results/sweep.journal.jsonl``, so an
    interrupted sweep resumes where it stopped; the journal is removed
    once the full grid is saved.  ``check_ir=True`` forces a fresh sweep
    with the between-pass invariant verifier on (never satisfied from the
    cache, which does not record verification).  A run with disabled
    passes (``options``) bypasses the cache entirely — loading and
    saving — so ablations never poison the canonical grid.  ``store``
    threads a persistent :class:`~repro.service.store.ArtifactStore`
    through the computation (CLI ``--store DIR``).
    """
    ablated = options is not None and bool(options.key)
    if not force and not check_ir and not ablated:
        cached = load_sweep()
        if cached is not None:
            return cached
    if ablated:
        return run_sweep(verbose=verbose, jobs=jobs, check_ir=check_ir,
                         options=options, store=store, engine=engine)
    journal = default_journal_path()
    data = run_sweep(verbose=verbose, jobs=jobs, journal=journal,
                     resume=not force, check_ir=check_ir, store=store,
                     engine=engine)
    save_sweep(data)
    journal.unlink(missing_ok=True)
    return data
