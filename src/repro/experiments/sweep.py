"""The evaluation grid: 40 loop nests x 5 levels x issue rates 1/2/4/8.

Replicates the paper's methodology (Section 3.1): each configuration is
compiled through the full pipeline and measured with execution-driven
simulation; speedups are relative to the issue-1 processor with
conventional (Conv) optimization; register usage is the colored
int+fp total of the compiled loop nest.

Results are cached as JSON so the figure benchmarks can re-render without
recomputation (delete ``results/sweep.json`` or pass ``force=True`` to
refresh).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..harness import compile_kernel, run_compiled_kernel
from ..machine import MachineConfig
from ..pipeline import Level
from ..regalloc import measure_register_usage
from ..workloads import Workload, all_workloads, check_run

WIDTHS = (1, 2, 4, 8)
CACHE_VERSION = 3


@dataclass
class ConfigResult:
    workload: str
    level: int                # Level value
    width: int
    cycles: int
    instructions: int
    inner_makespan: int
    int_regs: int
    fp_regs: int
    checked: bool

    @property
    def total_regs(self) -> int:
        return self.int_regs + self.fp_regs


@dataclass
class SweepData:
    """Full grid of results, with speedup helpers."""

    results: dict[tuple[str, int, int], ConfigResult] = field(default_factory=dict)
    elapsed: float = 0.0

    def get(self, name: str, level: Level, width: int) -> ConfigResult:
        return self.results[(name, int(level), width)]

    def base_cycles(self, name: str) -> int:
        """Issue-1 processor with Conv: the paper's speedup denominator."""
        return self.get(name, Level.CONV, 1).cycles

    def speedup(self, name: str, level: Level, width: int) -> float:
        return self.base_cycles(name) / self.get(name, level, width).cycles

    def workload_names(self) -> list[str]:
        return sorted({k[0] for k in self.results}, key=str.lower)


def run_config(
    w: Workload, level: Level, machine: MachineConfig, seed: int = 0,
    check: bool = True,
) -> ConfigResult:
    arrays, scalars = w.make_inputs(seed)
    ck = compile_kernel(w.build(), level, machine)
    out = run_compiled_kernel(
        ck,
        arrays={k: v.copy() for k, v in arrays.items()},
        scalars=scalars,
    )
    if check:
        check_run(w, out.arrays, out.scalars, arrays, scalars)
    usage = measure_register_usage(ck.func, ck.lowered.live_out_exit)
    return ConfigResult(
        w.name, int(level), machine.issue_width, out.cycles, out.instructions,
        ck.inner_makespan, usage.int_regs, usage.fp_regs, check,
    )


def run_sweep(
    workloads: list[Workload] | None = None,
    levels: tuple[Level, ...] = tuple(Level),
    widths: tuple[int, ...] = WIDTHS,
    seed: int = 0,
    check: bool = True,
    verbose: bool = False,
) -> SweepData:
    data = SweepData()
    t0 = time.time()
    for w in workloads or all_workloads():
        for level in levels:
            for width in widths:
                r = run_config(w, level, MachineConfig(issue_width=width), seed, check)
                data.results[(w.name, int(level), width)] = r
            if verbose:
                print(f"  {w.name} {level.label} done")
        if verbose:
            print(f"{w.name} done ({time.time() - t0:.1f}s)")
    data.elapsed = time.time() - t0
    return data


# ---------------------------------------------------------------------------
# disk cache
# ---------------------------------------------------------------------------


def default_cache_path() -> Path:
    return Path(__file__).resolve().parents[3] / "results" / "sweep.json"


def save_sweep(data: SweepData, path: Path | None = None) -> Path:
    path = path or default_cache_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": CACHE_VERSION,
        "elapsed": data.elapsed,
        "results": [asdict(r) for r in data.results.values()],
    }
    path.write_text(json.dumps(payload))
    return path


def load_sweep(path: Path | None = None) -> SweepData | None:
    path = path or default_cache_path()
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("version") != CACHE_VERSION:
        return None
    data = SweepData(elapsed=payload.get("elapsed", 0.0))
    for d in payload["results"]:
        r = ConfigResult(**d)
        data.results[(r.workload, r.level, r.width)] = r
    # a usable cache covers the full grid
    expected = len(all_workloads()) * len(Level) * len(WIDTHS)
    if len(data.results) != expected:
        return None
    return data


def sweep_cached(force: bool = False, verbose: bool = False) -> SweepData:
    """Load the cached grid or compute and cache it."""
    if not force:
        cached = load_sweep()
        if cached is not None:
            return cached
    data = run_sweep(verbose=verbose)
    save_sweep(data)
    return data
