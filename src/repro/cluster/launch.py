"""Cluster launchers: process-per-node fleets and in-process test rigs.

``repro cluster --nodes 3 --store DIR`` starts N node *processes* (each
a full service with its own engine, fork pool, and store shard), forms
the ring, and runs a router in the foreground::

    repro cluster --nodes 3 --store /tmp/shards --jobs 1
    # router on http://127.0.0.1:8733 -> 3 node processes

Two launchers back it:

* :class:`ProcessCluster` — one OS process per node (spawned via
  ``python -m repro.cluster.launch --serve-node``), real enough to
  SIGKILL: the chaos suite and the load benchmark kill whole nodes and
  measure what the survivors do.
* :class:`ThreadCluster` — N nodes on daemon threads in one process,
  for unit/integration tests that need a live cluster without the
  process-spawn cost (each node still has its own engine and shard).

Ports are allocated by binding port 0 and reading back the kernel's
choice; the brief close-then-rebind window is benign on localhost
(``allow_reuse_address``), and every launcher waits for ``/healthz``
on each node before declaring the cluster up.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from ..service.client import (
    ServiceClient,
    ServiceRequestError,
    ServiceUnavailable,
)
from .node import make_node, serve_node_background
from .router import serve_router_background


def free_ports(n: int, host: str = "127.0.0.1") -> list[int]:
    """``n`` distinct currently-free TCP ports (bind-0 then read back)."""
    socks, ports = [], []
    try:
        for _ in range(n):
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            s.bind((host, 0))
            socks.append(s)
            ports.append(s.getsockname()[1])
    finally:
        for s in socks:
            s.close()
    return ports


def _wait_healthy(urls: list[str], deadline_s: float = 30.0) -> None:
    end = time.monotonic() + deadline_s
    pending = list(urls)
    while pending:
        url = pending[0]
        try:
            ok = ServiceClient(url, timeout=2.0, retry=None).healthz().get("ok")
        except (ServiceUnavailable, ServiceRequestError):
            ok = False
        if ok:
            pending.pop(0)
            continue
        if time.monotonic() > end:
            raise TimeoutError(f"node {url} not healthy after {deadline_s}s")
        time.sleep(0.05)


class ThreadCluster:
    """N in-process nodes on daemon threads (test/benchmark rig)."""

    def __init__(self, n: int = 3, store_root: Path | None = None,
                 jobs: int = 1, max_pending: int = 64,
                 default_timeout: float = 120.0, vnodes: int = 64):
        self.servers, self.engines, self.states = [], [], []
        for i in range(n):
            store = (Path(store_root) / f"node{i}"
                     if store_root is not None else None)
            httpd, engine, cluster, _url = serve_node_background(
                store_dir=store, jobs=jobs, max_pending=max_pending,
                default_timeout=default_timeout, vnodes=vnodes)
            self.servers.append(httpd)
            self.engines.append(engine)
            self.states.append(cluster)
        self.urls = [c.self_url for c in self.states]
        for c in self.states:
            c.join(self.urls)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def close(self) -> None:
        for httpd in self.servers:
            httpd.shutdown()
        for engine in self.engines:
            engine.close()


class ProcessCluster:
    """N node processes — kill-able for real (chaos, load benchmark)."""

    def __init__(self, n: int = 3, store_root: Path | None = None,
                 jobs: int = 1, max_pending: int = 64,
                 default_timeout: float = 120.0, host: str = "127.0.0.1",
                 fault_plan: str | None = None, quiet: bool = True):
        self.n = n
        self.store_root = Path(store_root) if store_root is not None else None
        self.jobs = jobs
        self.max_pending = max_pending
        self.default_timeout = default_timeout
        self.host = host
        self.fault_plan = fault_plan
        self.quiet = quiet
        self.urls: list[str] = []
        self.procs: dict[str, subprocess.Popen] = {}

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ProcessCluster":
        ports = free_ports(self.n, self.host)
        self.urls = [f"http://{self.host}:{p}" for p in ports]
        src_dir = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = (src_dir + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src_dir)
        for i, port in enumerate(ports):
            cmd = [sys.executable, "-m", "repro.cluster.launch",
                   "--serve-node", "--host", self.host, "--port", str(port),
                   "--peers", ",".join(self.urls),
                   "--jobs", str(self.jobs),
                   "--max-pending", str(self.max_pending),
                   "--timeout", str(self.default_timeout)]
            if self.store_root is not None:
                cmd += ["--store", str(self.store_root / f"node{i}")]
            if self.fault_plan:
                cmd += ["--fault-plan", self.fault_plan]
            out = subprocess.DEVNULL if self.quiet else None
            self.procs[self.urls[i]] = subprocess.Popen(
                cmd, env=env, stdout=out, stderr=out)
        _wait_healthy(self.urls)
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.stop()

    def alive(self) -> list[str]:
        return [u for u, p in self.procs.items() if p.poll() is None]

    def kill(self, url: str) -> None:
        """SIGKILL one node (and its worker children): no shutdown
        hooks, no flushes — the failure mode the chaos suite wants."""
        p = self.procs[url]
        if p.poll() is None:
            try:
                os.kill(p.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            p.wait(timeout=10)

    def stop(self) -> None:
        for p in self.procs.values():
            if p.poll() is None:
                p.terminate()
        for p in self.procs.values():
            try:
                p.wait(timeout=10)
            except subprocess.TimeoutExpired:
                p.kill()
                p.wait(timeout=10)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def _serve_node_forever(args) -> int:
    """Internal ``--serve-node`` entry: one node process of a cluster."""
    if args.fault_plan:
        from ..resilience import faults
        from ..resilience.faults import FaultPlan

        faults.arm(FaultPlan.from_file(args.fault_plan))
    httpd, engine, cluster = make_node(
        host=args.host, port=args.port, store_dir=args.store,
        jobs=args.jobs, max_pending=args.max_pending,
        default_timeout=args.timeout, quiet=not args.verbose,
        vnodes=args.vnodes)
    peers = [u for u in (args.peers or "").split(",") if u]
    cluster.join(peers if peers else [cluster.self_url])
    print(f"cluster node {cluster.self_url} "
          f"(ring of {len(cluster.ring)})", flush=True)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.shutdown()
        engine.close()
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro cluster",
        description="Run a multi-node compilation-service cluster "
                    "(N node processes + a router front-end).")
    ap.add_argument("--nodes", type=int, default=3, metavar="N",
                    help="node processes (default: 3)")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8733,
                    help="router port (default: 8733; 0 = pick free)")
    ap.add_argument("--store", metavar="DIR", default=None,
                    help="shard root: node i stores under DIR/node<i>")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes per node (default: 1)")
    ap.add_argument("--max-pending", type=int, default=64, metavar="N")
    ap.add_argument("--timeout", type=float, default=120.0)
    ap.add_argument("--vnodes", type=int, default=64,
                    help="virtual nodes per node on the hash ring")
    ap.add_argument("--fault-plan", metavar="FILE", default=None,
                    help="arm this fault plan inside every node")
    ap.add_argument("--verbose", action="store_true")
    # internal: run as a single node process of a cluster
    ap.add_argument("--serve-node", action="store_true",
                    help=argparse.SUPPRESS)
    ap.add_argument("--peers", default="", help=argparse.SUPPRESS)
    args = ap.parse_args(argv)

    if args.serve_node:
        return _serve_node_forever(args)

    cluster = ProcessCluster(
        n=args.nodes, store_root=args.store, jobs=args.jobs,
        max_pending=args.max_pending, default_timeout=args.timeout,
        host=args.host, fault_plan=args.fault_plan, quiet=not args.verbose)
    cluster.start()
    httpd, _router, url = serve_router_background(
        cluster.urls, host=args.host, port=args.port,
        quiet=not args.verbose)
    store_note = f", shards under {args.store}" if args.store else ""
    print(f"repro cluster: router {url} over {args.nodes} node(s)"
          f"{store_note}", flush=True)
    for u in cluster.urls:
        print(f"  node {u}", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        httpd.shutdown()
        cluster.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
