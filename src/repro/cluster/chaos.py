"""``repro chaos --cluster``: SIGKILL a whole node mid-batch and prove
the fleet's answers don't change.

The single-node chaos suite (:mod:`repro.resilience.chaos`) injects
faults *inside* one service; this mode removes an entire node — engine,
fork pool, and store shard — with ``SIGKILL`` (no shutdown hooks, no
flushes) while a batch is in flight, and requires **exact
reconciliation**: every request is served byte-identically to a
fault-free single-node baseline, and every deviation from the smooth
path is accounted for by a counter that was *predicted in advance* from
the consistent-hash ring:

* phase 1 — first half of the grid through the router, all nodes up;
* kill — the victim is chosen as the node owning the most second-half
  keys (so the kill is guaranteed to matter), then SIGKILLed;
* phase 2 — second half through the router: requests for victim-owned
  keys must fail over along the ring's preference order, exactly
  ``victim_owned(second_half)`` times;
* phase 3 — the *entire* grid re-requested: victim-owned keys from
  phase 1 lost their artifacts with the victim's shard and must be
  recomputed (a counted miss); every other key must be a cache hit.

The reconciliation fails if results differ anywhere, if the router's
failover counter deviates from the ring prediction, if a lost artifact
is recomputed more or fewer times than predicted, or if any surviving
engine logged an error.  Report: ``results/CHAOS_cluster_report.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from ..resilience.chaos import (
    DEFAULT_LEVELS,
    DEFAULT_WIDTHS,
    DEFAULT_WORKLOADS,
    _run_serve,
)
from ..service.client import ServiceClient
from ..service.keys import request_key, workload_fingerprint
from .launch import ProcessCluster
from .ring import HashRing
from .router import serve_router_background


def _grid(workloads, levels, widths) -> list[tuple[str, int, int]]:
    return [(n, int(lv), int(wd))
            for n in workloads for lv in levels for wd in widths]


def _cfg_key(cfg: tuple[str, int, int], fps: dict) -> str:
    n, lv, wd = cfg
    return request_key("run", n, lv, wd, seed=0, check=True, check_ir=False,
                       disable=(), fingerprint=fps[n])


def run_cluster_chaos(*, nodes: int = 3, jobs: int = 1,
                      workloads=DEFAULT_WORKLOADS, levels=DEFAULT_LEVELS,
                      widths=DEFAULT_WIDTHS, workdir: Path | None = None,
                      out: Path | None = None, verbose: bool = True) -> dict:
    """Kill a node mid-batch; reconcile exactly.  Returns the report."""
    import tempfile

    t0 = time.monotonic()
    if workdir is None:
        workdir = Path(tempfile.mkdtemp(prefix="repro-cluster-chaos-"))
    workdir.mkdir(parents=True, exist_ok=True)

    grid = _grid(workloads, levels, widths)
    half = len(grid) // 2
    first, second = grid[:half], grid[half:]
    fps = {n: workload_fingerprint(n) for n in workloads}
    keys = {cfg: _cfg_key(cfg, fps) for cfg in grid}

    if verbose:
        print(f"cluster chaos: {len(grid)} configs over {nodes} nodes, "
              f"kill after {half} ({workdir})")
        print("cluster chaos: fault-free single-node baseline...")
    base, _, _ = _run_serve(workloads, levels, widths, jobs,
                            workdir / "baseline" / "store",
                            pool_deadline_s=120.0)

    cluster = ProcessCluster(n=nodes, store_root=workdir / "cluster",
                             jobs=jobs).start()
    router_httpd = None
    try:
        router_httpd, router, router_url = serve_router_background(
            cluster.urls)
        # predict the failure accounting BEFORE any request flows: the
        # ring is deterministic, so ownership — and therefore which
        # requests a dead node can disturb — is known in advance
        ring = HashRing(cluster.urls)
        owner = {cfg: ring.node_for(keys[cfg]) for cfg in grid}
        victim = max(cluster.urls,
                     key=lambda u: (sum(1 for c in second if owner[c] == u),
                                    u))
        victim_first = [c for c in first if owner[c] == victim]
        victim_second = [c for c in second if owner[c] == victim]
        predicted_failovers = len(victim_second) + sum(
            1 for c in grid if owner[c] == victim)
        if verbose:
            print(f"cluster chaos: victim {victim} owns "
                  f"{len(victim_first)}+{len(victim_second)} of "
                  f"{half}+{len(second)} keys")

        client = ServiceClient(router_url, timeout=120.0, retry=None)

        def run_cfg(cfg):
            n, lv, wd = cfg
            return client.run(n, level=lv, width=wd, timeout=60.0)

        got: dict[str, dict] = {}
        for cfg in first:
            got[f"{cfg[0]}/L{cfg[1]}/w{cfg[2]}"] = run_cfg(cfg)["result"]

        if verbose:
            print(f"cluster chaos: SIGKILL {victim} mid-batch...")
        cluster.kill(victim)

        for cfg in second:
            got[f"{cfg[0]}/L{cfg[1]}/w{cfg[2]}"] = run_cfg(cfg)["result"]

        # phase 3: every artifact must still be servable — the victim's
        # shard died with it, so exactly its phase-1 keys recompute
        got3: dict[str, dict] = {}
        misses = 0
        for cfg in grid:
            r = run_cfg(cfg)
            got3[f"{cfg[0]}/L{cfg[1]}/w{cfg[2]}"] = r["result"]
            if r.get("cache") != "hit":
                misses += 1

        survivors = [u for u in cluster.urls if u != victim]
        survivor_errors = 0
        for u in survivors:
            m = ServiceClient(u, retry=None).metrics()
            survivor_errors += int(m.get("errors", 0))
        counters = router.snapshot()
    finally:
        if router_httpd is not None:
            router_httpd.shutdown()
        cluster.stop()

    checks = [
        {"check": "batch served byte-identically across the kill",
         "expected": len(base),
         "observed": sum(1 for k in base if got.get(k) == base[k]),
         "ok": got == base},
        {"check": "post-kill re-request byte-identical",
         "expected": len(base),
         "observed": sum(1 for k in base if got3.get(k) == base[k]),
         "ok": got3 == base},
        {"check": "router failovers exactly as ring-predicted",
         "expected": predicted_failovers,
         "observed": counters["failovers"],
         "ok": counters["failovers"] == predicted_failovers},
        {"check": "lost artifacts recomputed exactly once each",
         "expected": len(victim_first), "observed": misses,
         "ok": misses == len(victim_first)},
        {"check": "no unroutable requests",
         "expected": 0, "observed": counters["unroutable"],
         "ok": counters["unroutable"] == 0},
        {"check": "surviving engines logged zero errors",
         "expected": 0, "observed": survivor_errors,
         "ok": survivor_errors == 0},
    ]
    ok = all(c["ok"] for c in checks)
    report = {
        "mode": "cluster",
        "grid": {"workloads": list(workloads), "levels": list(levels),
                 "widths": list(widths), "configs": len(grid)},
        "nodes": nodes,
        "victim": victim,
        "victim_owned": {"first_half": len(victim_first),
                         "second_half": len(victim_second)},
        "router": counters,
        "checks": checks,
        "ok": ok,
        "elapsed_s": round(time.monotonic() - t0, 2),
    }
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2))
    if verbose:
        for c in checks:
            mark = "ok " if c["ok"] else "FAIL"
            print(f"  [{mark}] {c['check']}: expected {c['expected']}, "
                  f"observed {c['observed']}")
        where = f" -> {out}" if out is not None else ""
        print(f"cluster chaos: {'PASS' if ok else 'FAIL'} "
              f"({report['elapsed_s']}s){where}")
    return report
