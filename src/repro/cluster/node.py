"""A cluster node: the whole service, plus sharding & peer protocol.

A node is the single-process compilation service (HTTP handler, async
job engine, supervised fork pool, store shard) extended with three
cluster behaviors:

* **Ownership forwarding (the single-flight funnel).**  Every request
  key has exactly one owner on the consistent-hash ring.  A node
  receiving ``/v1/compile|run`` for a key it does not own proxies the
  request to the owner and relays the reply (*forwarded-wait*: the
  caller's connection waits while the owner computes).  Because every
  copy of a key funnels into the owner's
  :class:`~repro.service.jobs.JobEngine`, its existing single-flight
  table *is* the cluster-wide in-flight registry — the same key
  submitted to two different nodes compiles exactly once, with zero new
  coordination state.  If the owner is unreachable the node computes
  locally instead (counted as ``failover_local`` — the recovery path
  the chaos oracle reconciles against).
* **Work-stealing on overload.**  When admission control sheds a
  request (pending queue past the soft-shed threshold), the node does
  not 429 immediately: it offers the computation to its least-loaded
  peer over ``POST /cluster/compute``, waits, lands the resulting
  artifact back on its *own* shard (it is the owner), and serves the
  reply marked ``"cache": "stolen"``.  Concurrent sheds of the same key
  join one steal through a small in-flight registry, mirroring the
  engine's dedup.  Only when no peer can take the work does the node
  fall back to degraded store serving and finally a real 429.
* **Peer protocol** (all JSON over the existing HTTP front)::

      POST /cluster/compute   {kind, workload, level, width, ...}
                              compute here regardless of ownership
      POST /cluster/put       {key, payload} -> land on this shard
      GET  /cluster/info      membership + load (queue depth, tiers)

Hop headers (``X-Repro-Hop: forward|route|steal``) are loop guards: a
request that already made one node-to-node (or router-to-node) hop is
terminal — it is served locally, never re-forwarded, so no routing loop
can form even with a stale ring.
"""

from __future__ import annotations

import functools
import threading
from collections import Counter
from concurrent.futures import Future
from http.server import ThreadingHTTPServer
from pathlib import Path

from ..service.client import (
    ServiceClient,
    ServiceOverloaded,
    ServiceRequestError,
    ServiceUnavailable,
)
from ..service.jobs import JobEngine, Overloaded
from ..service.keys import request_key, workload_fingerprint
from ..service.server import (
    ServiceError,
    ServiceHTTPServer,
    _Handler,
    _req_fields,
)
from ..service.store import ArtifactStore
from .ring import HashRing

#: one node-to-node hop is allowed; these header values are terminal
HOP_HEADER = "X-Repro-Hop"


@functools.lru_cache(maxsize=256)
def _fingerprint(workload: str) -> str:
    """Kernel fingerprints are pure in the workload name within one
    process (CODE_VERSION salts actual code changes), so routing does
    not rebuild the kernel on every request."""
    return workload_fingerprint(workload)


def _key_of(kind: str, f: dict) -> str:
    """The canonical request key of validated request fields."""
    try:
        fp = _fingerprint(f["workload"])
    except KeyError as e:  # get_workload: unknown workload name
        raise ServiceError(400, f"unknown workload {e}") from None
    return request_key(
        kind, f["workload"], f["level"], f["width"], seed=f["seed"],
        check=f["check"], check_ir=f["check_ir"],
        disable=tuple(f["disable"]),
        fingerprint=fp,
    )


class ClusterState:
    """One node's view of the cluster: ring, peer clients, counters."""

    def __init__(self, vnodes: int = 64):
        self.self_url: str | None = None
        self.vnodes = vnodes
        self.ring: HashRing | None = None
        self.engine: JobEngine | None = None
        self._lock = threading.Lock()
        self._clients: dict[tuple[str, str], ServiceClient] = {}
        #: steal-path single-flight: key -> Future of the reply dict
        self._steal_inflight: dict[str, Future] = {}
        self.counters: Counter = Counter({
            "forwarded_out": 0,   # proxied to the key's owner
            "forwarded_in": 0,    # served here for another node's caller
            "failover_local": 0,  # owner unreachable: computed here
            "steals_out": 0,      # shed work handed to a peer
            "steals_in": 0,       # peer work computed here
            "steal_joined": 0,    # duplicate sheds joined one steal
            "puts_in": 0,         # artifacts landed here by peers
        })

    # -- membership ------------------------------------------------------

    def join(self, urls: list[str]) -> None:
        """Adopt the cluster membership (must include this node)."""
        if self.self_url is None:
            raise RuntimeError("node has no bound URL yet")
        if self.self_url not in urls:
            raise ValueError(f"{self.self_url} not in membership {urls}")
        self.ring = HashRing(urls, vnodes=self.vnodes)

    @property
    def active(self) -> bool:
        return self.ring is not None and len(self.ring) > 1

    def peers(self) -> list[str]:
        if self.ring is None:
            return []
        return [u for u in self.ring.nodes if u != self.self_url]

    def _client(self, url: str, hop: str | None) -> ServiceClient:
        """A cached peer client.  No transport retry: a dead peer should
        fail over along the ring immediately, not back off against a
        corpse; forwarded-wait needs a generous read timeout."""
        purpose = hop or "plain"
        with self._lock:
            c = self._clients.get((url, purpose))
            if c is None:
                timeout = 15.0 if purpose == "plain" else (
                    (self.engine.default_timeout if self.engine else 120.0)
                    + 30.0)
                headers = {HOP_HEADER: hop} if hop else {}
                c = ServiceClient(url, timeout=timeout, retry=None,
                                  headers=headers)
                self._clients[(url, purpose)] = c
        return c

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] += n

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self.counters)

    # -- forwarding ------------------------------------------------------

    def forward(self, path: str, body: dict, owner: str) -> dict | None:
        """Proxy a request to the owning node; None if it is down."""
        try:
            reply = self._client(owner, "forward")._call("POST", path, body)
        except ServiceUnavailable:
            return None
        except ServiceRequestError as e:
            # the owner answered: relay its verdict (429/503/...) as-is
            raise ServiceError(e.status, str(e)) from None
        self.count("forwarded_out")
        reply["forwarded"] = True
        return reply

    # -- work stealing ---------------------------------------------------

    def peer_loads(self) -> list[tuple[int, str]]:
        """(queue_depth, url) of reachable peers, least loaded first."""
        loads = []
        for url in self.peers():
            try:
                info = self._client(url, None)._call("GET", "/cluster/info")
            except (ServiceUnavailable, ServiceRequestError):
                continue
            loads.append((int(info.get("queue_depth", 0)), url))
        loads.sort()
        return loads

    def steal(self, kind: str, f: dict, timeout: float | None,
              key: str) -> dict | None:
        """Hand a shed computation to a peer; None if no peer can take
        it.  Duplicate sheds of one key join a single steal."""
        if not self.active:
            return None
        with self._lock:
            fut = self._steal_inflight.get(key)
            if fut is not None:
                joiner = True
            else:
                fut = Future()
                self._steal_inflight[key] = fut
                joiner = False
        if joiner:
            self.count("steal_joined")
            try:
                reply = fut.result(
                    timeout=(timeout if timeout is not None else
                             (self.engine.default_timeout if self.engine
                              else 120.0)) + 30.0)
            except Exception:
                return None
            return None if reply is None else dict(reply)
        try:
            reply = self._steal_once(kind, f, timeout, key)
            fut.set_result(reply)
            return reply
        except BaseException as e:
            fut.set_exception(e)
            raise
        finally:
            with self._lock:
                self._steal_inflight.pop(key, None)

    def _steal_once(self, kind: str, f: dict, timeout: float | None,
                    key: str) -> dict | None:
        body = {"kind": kind, **f}
        if timeout is not None:
            body["timeout"] = timeout
        for _, url in self.peer_loads():
            try:
                reply = self._client(url, "steal")._call(
                    "POST", "/cluster/compute", body)
            except (ServiceUnavailable, ServiceOverloaded):
                continue  # peer died or is saturated too: try the next
            except ServiceRequestError:
                # a real compilation failure would recur anywhere; stop
                # burning peers and let the local shed path answer
                return None
            self.count("steals_out")
            payload = reply.get("result")
            if payload is not None and self.engine is not None:
                # this node owns the key: land the artifact on *its*
                # shard so the cluster's placement stays consistent
                self.engine.store_put(key, payload)
            return {"job": None, "cache": "stolen", "result": payload,
                    "node": self.self_url, "stolen_by": url}
        return None


class _NodeHandler(_Handler):
    """The service handler plus cluster routing (see module docstring)."""

    server_version = "repro-cluster-node/1"
    cluster: ClusterState = None

    # -- GET -------------------------------------------------------------

    def _handle_get(self) -> None:
        cl = self.cluster
        if self.path == "/cluster/info":
            ring = cl.ring.nodes if cl.ring is not None else []
            self._send(200, {
                "node": cl.self_url,
                "nodes": ring,
                "queue_depth": self.engine.queue_depth,
                "soft_pending": self.engine.soft_pending,
                "max_pending": self.engine.max_pending,
                "counters": cl.snapshot(),
                "computed": self.engine.counters["computed"],
            })
        elif self.path == "/metrics":
            m = self.engine.metrics()
            m["cluster"] = {"node": cl.self_url, **cl.snapshot()}
            self._send(200, m)
        else:
            super()._handle_get()

    # -- POST ------------------------------------------------------------

    def _handle_post(self, body: dict) -> None:
        cl = self.cluster
        if self.path == "/cluster/compute":
            kind = str(body.get("kind", "run"))
            if kind not in ("compile", "run"):
                raise ServiceError(400, f"bad kind {kind!r}")
            f = _req_fields(body)
            timeout = f.pop("timeout")
            if self.headers.get(HOP_HEADER) == "steal":
                cl.count("steals_in")
            self._serve_single(kind, f, timeout,
                               extra={"node": cl.self_url})
            return
        if self.path == "/cluster/put":
            try:
                key = str(body["key"])
                payload = body["payload"]
            except (KeyError, TypeError) as e:
                raise ServiceError(400, f"bad request: {e!r}") from None
            cl.count("puts_in")
            stored = self.engine.store_put(key, payload)
            self._send(200, {"stored": bool(stored), "node": cl.self_url})
            return
        if self.path in ("/v1/compile", "/v1/run") and cl.active:
            kind = self.path.rsplit("/", 1)[1]
            f = _req_fields(body)
            timeout = f.pop("timeout")
            key = _key_of(kind, f)
            owner = cl.ring.node_for(key)
            hop = self.headers.get(HOP_HEADER)
            if owner != cl.self_url and hop is None:
                reply = cl.forward(self.path, body, owner)
                if reply is not None:
                    self._send(200, reply)
                    return
                # owner down: compute here so the request still succeeds
                # (the artifact lands on this shard; the chaos oracle
                # counts this as the recovery of a node-loss fault)
                cl.count("failover_local")
            elif hop == "forward":
                cl.count("forwarded_in")
            self._serve_single(kind, f, timeout,
                               extra={"node": cl.self_url, "owner": owner})
            return
        if self.path == "/v1/sweep" and cl.active:
            try:
                super()._serve_sweep(body)
            except Overloaded:
                # soft-shed tier crossed: offer the whole sweep to the
                # least-loaded peer before shedding for real
                if self.headers.get(HOP_HEADER) is not None:
                    raise
                for _, url in cl.peer_loads():
                    try:
                        reply = cl._client(url, "steal")._call(
                            "POST", "/v1/sweep", body)
                    except (ServiceUnavailable, ServiceOverloaded,
                            ServiceRequestError):
                        continue
                    cl.count("steals_out")
                    reply["node"] = url
                    reply["stolen_by"] = url
                    self._send(202, reply)
                    return
                raise
            return
        super()._handle_post(body)

    def _on_overload(self, kind: str, f: dict,
                     timeout: float | None) -> dict | None:
        cl = self.cluster
        if cl.active and self.headers.get(HOP_HEADER) != "steal":
            reply = cl.steal(kind, f, timeout, _key_of(kind, f))
            if reply is not None:
                return reply
        return super()._on_overload(kind, f, timeout)


def make_node(
    host: str = "127.0.0.1",
    port: int = 0,
    store_dir: str | Path | None = None,
    jobs: int = 1,
    max_pending: int = 64,
    max_store_bytes: int | None = None,
    default_timeout: float = 120.0,
    quiet: bool = True,
    vnodes: int = 64,
) -> tuple[ThreadingHTTPServer, JobEngine, ClusterState]:
    """Build (but do not start) one cluster node; port 0 picks a free
    port.  Call ``cluster.join(all_urls)`` once every node is bound."""
    store = (ArtifactStore(Path(store_dir), max_bytes=max_store_bytes)
             if store_dir is not None else None)
    engine = JobEngine(store=store, jobs=jobs, max_pending=max_pending,
                       default_timeout=default_timeout)
    cluster = ClusterState(vnodes=vnodes)
    cluster.engine = engine
    handler = type("NodeHandler", (_NodeHandler,),
                   {"engine": engine, "cluster": cluster, "quiet": quiet})
    httpd = ServiceHTTPServer((host, port), handler)
    bound_host, bound_port = httpd.server_address[:2]
    cluster.self_url = f"http://{bound_host}:{bound_port}"
    return httpd, engine, cluster


def serve_node_background(**kwargs):
    """Start one node on a daemon thread; returns
    ``(httpd, engine, cluster, url)``.  Test/benchmark helper."""
    httpd, engine, cluster = make_node(**kwargs)
    threading.Thread(target=httpd.serve_forever, daemon=True,
                     name="repro-cluster-node-http").start()
    return httpd, engine, cluster, cluster.self_url
