"""Ring-aware client SDK: owner-direct dispatch without a router hop.

    from repro.cluster.client import ClusterClient

    c = ClusterClient(["http://127.0.0.1:9001", "http://127.0.0.1:9002"])
    r = c.run("dotprod", level=4, width=8)   # straight to the owner node
    job = c.sweep(["add", "sum"])            # (node_url, job_id) handle
    rec = c.wait_job(job)

The client builds the same consistent-hash ring the nodes use, so a
single request goes **directly** to the node that owns (and caches) its
key — no router round-trip, no second hop.  When the owner is down the
client walks the key's deterministic preference order itself, sending
the ``X-Repro-Hop: route`` header so the fallback node computes locally
(the *forwarded-wait* path) instead of re-forwarding to the corpse;
such replies carry ``"failover": true`` and are tallied in
``c.failovers``.

Sweeps are whole-grid: submitted to the first reachable node in the
grid key's preference order (that node's engine batches the cells); the
returned handle ``(node_url, job_id)`` pins polling to the node that
owns the job.  For *cell-wise* sweep spreading use the router
(:mod:`repro.cluster.router`), which this client happily points at too
— a router URL passed as the only "node" degenerates every call into
plain proxying.
"""

from __future__ import annotations

from ..service.client import (
    ServiceClient,
    ServiceRequestError,
    ServiceUnavailable,
)
from .node import HOP_HEADER, _key_of
from .ring import HashRing


class ClusterClient:
    def __init__(self, nodes: list[str], timeout: float = 300.0,
                 vnodes: int = 64):
        if not nodes:
            raise ValueError("need at least one node URL")
        self.ring = HashRing(nodes, vnodes=vnodes)
        self.timeout = timeout
        self._clients: dict[tuple[str, str | None], ServiceClient] = {}
        #: preference-order hops taken past unreachable owners
        self.failovers = 0

    def _client(self, url: str, hop: str | None = None) -> ServiceClient:
        c = self._clients.get((url, hop))
        if c is None:
            c = ServiceClient(url, timeout=self.timeout, retry=None,
                              headers={HOP_HEADER: hop} if hop else {})
            self._clients[(url, hop)] = c
        return c

    # -- dispatch --------------------------------------------------------

    def _dispatch(self, path: str, body: dict, key: str) -> dict:
        last = None
        for i, url in enumerate(self.ring.preference(key)):
            try:
                reply = self._client(url, "route" if i else None)._call(
                    "POST", path, body)
            except ServiceUnavailable as e:
                self.failovers += 1
                last = e
                continue
            if i:
                reply["failover"] = True
            return reply
        raise ServiceUnavailable(f"no node reachable for {key[:12]}: {last}")

    def compile(self, workload: str, level: int = 4, width: int = 8,
                **kwargs) -> dict:
        body = {"workload": workload, "level": level, "width": width,
                **kwargs}
        return self._dispatch("/v1/compile", body,
                              self._body_key("compile", body))

    def run(self, workload: str, level: int = 4, width: int = 8,
            **kwargs) -> dict:
        body = {"workload": workload, "level": level, "width": width,
                **kwargs}
        return self._dispatch("/v1/run", body, self._body_key("run", body))

    @staticmethod
    def _body_key(kind: str, body: dict) -> str:
        from ..service.server import _req_fields
        f = _req_fields(dict(body))
        f.pop("timeout")
        return _key_of(kind, f)

    # -- sweeps ----------------------------------------------------------

    def sweep(self, workloads: list[str], levels=None, widths=None,
              **kwargs) -> tuple[str, str]:
        """Submit a whole-grid sweep; returns the ``(node_url, job_id)``
        handle to poll (the job record lives on that node)."""
        body = {"workloads": list(workloads), **kwargs}
        if levels is not None:
            body["levels"] = list(levels)
        if widths is not None:
            body["widths"] = list(widths)
        # placement only (any string hashes onto the ring): the same
        # grid always lands on the same node, spreading distinct sweeps
        key = (f"sweep:{sorted(workloads)}"
               f":{sorted(levels) if levels is not None else 'all'}"
               f":{sorted(widths) if widths is not None else 'all'}"
               f":{int(kwargs.get('seed', 0))}")
        reply = self._dispatch("/v1/sweep", body, key)
        # a node that stole the sweep reports where the job really lives
        node = reply.get("node") or reply.get("routed_by")
        if node is None:
            node = self.ring.preference(key)[0]
        return node, reply["job"]

    def wait_job(self, handle: tuple[str, str], timeout: float = 300.0,
                 poll: float = 0.05) -> dict:
        node, jid = handle
        return self._client(node).wait_job(jid, timeout=timeout, poll=poll)

    # -- fleet views -----------------------------------------------------

    def healthz(self) -> dict:
        nodes = {}
        for url in self.ring.nodes:
            try:
                nodes[url] = bool(self._client(url)._call(
                    "GET", "/healthz").get("ok"))
            except (ServiceUnavailable, ServiceRequestError):
                nodes[url] = False
        return {"ok": any(nodes.values()), "nodes": nodes}

    def metrics(self) -> dict:
        out = {}
        for url in self.ring.nodes:
            try:
                out[url] = self._client(url)._call("GET", "/metrics")
            except (ServiceUnavailable, ServiceRequestError):
                out[url] = {"unreachable": True}
        return out
