"""Consistent-hash ring: stable key → node placement.

The store shards and the single-flight funnels both need every process
in the cluster (nodes, router, clients) to agree on which node owns a
given request key — and to keep agreeing as nodes join and leave.  A
modulo hash moves almost every key when N changes; a consistent-hash
ring moves only the keys that land on the changed node: ~K/N of them on
average for a K-key space, and *provably* none whose owner did not
change (removing a node can only reassign keys it owned; adding a node
can only claim keys for itself).

Each node is placed at ``vnodes`` pseudo-random points on a 64-bit
circle (SHA-256 of ``"{node}#{i}"``); a key (already a SHA-256 hex
digest from :mod:`repro.service.keys`, but any string works) maps to
the first node point at or clockwise of its own hash.  Virtual nodes
smooth the load: with 64 points per node the heaviest/lightest node
imbalance stays within a few tens of percent even at N=3.

``preference(key)`` is the failover order: the distinct nodes in ring
order starting at the owner.  Everyone computing the same preference
list is what lets the router and clients fail over deterministically
when the owner is down, without any coordination.
"""

from __future__ import annotations

import bisect
import hashlib


def _point(data: str) -> int:
    """A position on the 64-bit ring circle."""
    return int.from_bytes(
        hashlib.sha256(data.encode()).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over node names (URLs, typically)."""

    def __init__(self, nodes=(), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[int] = []       # sorted vnode positions
        self._owners: list[str] = []       # node at each position
        for n in nodes:
            self.add(n)

    # -- membership ------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            p = _point(f"{node}#{i}")
            at = bisect.bisect_left(self._points, p)
            # ties broken by node name so every process builds the
            # identical ring regardless of insertion order
            while (at < len(self._points) and self._points[at] == p
                   and self._owners[at] < node):
                at += 1
            self._points.insert(at, p)
            self._owners.insert(at, node)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- placement -------------------------------------------------------

    def node_for(self, key: str) -> str:
        """The owning node of ``key`` (raises on an empty ring)."""
        if not self._points:
            raise ValueError("empty ring")
        at = bisect.bisect_right(self._points, _point(key))
        if at == len(self._points):
            at = 0  # wrap past the top of the circle
        return self._owners[at]

    def preference(self, key: str) -> list[str]:
        """All distinct nodes in ring order from the owner: the
        deterministic failover sequence for ``key``."""
        if not self._points:
            return []
        at = bisect.bisect_right(self._points, _point(key))
        seen: list[str] = []
        n = len(self._points)
        for i in range(n):
            owner = self._owners[(at + i) % n]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self._nodes):
                    break
        return seen
