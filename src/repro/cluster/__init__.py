"""Multi-node scale-out of the compilation service.

One node = the whole single-process service (HTTP front, async
:class:`~repro.service.jobs.JobEngine`, supervised fork pool, and a
content-addressed store *shard*).  The cluster layer shards the
key space across N such nodes with a consistent-hash ring keyed by the
canonical request identity of :mod:`repro.service.keys`, so any
expensive compilation is computed once *anywhere* and served from the
owning shard ever after:

* :mod:`repro.cluster.ring` — the consistent-hash ring (virtual nodes,
  bounded key movement on membership change).
* :mod:`repro.cluster.node` — the cluster node: the service handler
  plus ownership forwarding (a request for a key another node owns is
  proxied there, so every key funnels into exactly one engine's
  single-flight table), steal-on-overload (a node past its soft-shed
  threshold hands the computation to its least-loaded peer and lands
  the artifact back on its own shard), and the ``/cluster/*`` peer
  protocol.
* :mod:`repro.cluster.router` — the stateless front-end: forwards
  ``/v1/compile|run`` by key, fans ``/v1/sweep`` grids out cell-wise,
  fails over along the ring when a node dies, and aggregates
  ``/metrics`` across the fleet.
* :mod:`repro.cluster.client` — ring-aware client SDK (owner-direct
  dispatch with forwarded-wait failover).
* :mod:`repro.cluster.launch` — process-per-node cluster launcher
  (the ``repro cluster`` CLI) and in-process thread clusters for tests.
* :mod:`repro.cluster.chaos` — ``repro chaos --cluster``: SIGKILL a
  whole node mid-batch and require exact reconciliation (every request
  served byte-identically or accounted as a counted, retried fault).
"""

from .ring import HashRing

__all__ = ["HashRing"]
