"""The classical ("Conv") optimization pipeline.

Runs the paper's conventional-optimizer baseline to fixpoint:

    "The conventional scalar transformations consist of a complete set of
    classical local, global, and loop transformations, including constant
    propagation, copy propagation, common subexpression elimination,
    constant folding, operation folding, redundant memory access
    elimination, dead code removal, loop invariant code removal, loop
    induction variable strength reduction, and loop induction variable
    elimination."

Every transformation level of the evaluation (Conv, Lev1..Lev4) starts
from the output of this pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loopvars import CountedLoop
from ..ir.function import Function, remove_unreachable
from ..ir.operands import Reg
from ..ir.verify import verify_function
from .constprop import propagate_constants
from .copyprop import coalesce_moves, propagate_copies_global, propagate_copies_local
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .ivsr import strength_reduce_ivs
from .licm import hoist_loop_invariants
from .redundant_mem import eliminate_redundant_memory


@dataclass
class ConvReport:
    constants: int = 0
    copies: int = 0
    cse: int = 0
    dead: int = 0
    hoisted: int = 0
    derived_ivs: int = 0
    redundant_mem: int = 0
    rounds: int = 0


def run_conv(
    func: Function,
    counted: dict[str, CountedLoop] | None = None,
    live_out_exit: set[Reg] | None = None,
    max_rounds: int = 10,
    verify: bool = True,
) -> ConvReport:
    """Apply the classical pipeline to fixpoint (bounded rounds).

    ``counted`` maps inner-loop headers to their metadata; induction
    variable elimination updates entries in place when it retargets a loop
    test.  ``live_out_exit`` lists registers the caller reads after the
    run (workload outputs) so DCE keeps them.
    """
    live_out_exit = live_out_exit or set()
    rep = ConvReport()
    protected = {id(c.increment) for c in (counted or {}).values()}
    for _ in range(max_rounds):
        changed = 0
        protected = {id(c.increment) for c in (counted or {}).values()}
        changed += _tick(rep, "constants", propagate_constants(func))
        # coalescing must precede copy propagation: a multi-update reduction
        # lowers as `t = s + x; s = t` chains that copy propagation would
        # rewire through the temps, hiding the self-update shape from
        # accumulator expansion
        changed += _tick(rep, "copies", coalesce_moves(func))
        changed += _tick(rep, "copies", propagate_copies_local(func))
        changed += _tick(rep, "copies", propagate_copies_global(func))
        changed += _tick(rep, "cse", eliminate_common_subexpressions(func, protected))
        changed += _tick(rep, "redundant_mem", eliminate_redundant_memory(func))
        changed += _tick(rep, "hoisted", hoist_loop_invariants(func, live_out_exit))
        changed += _tick(
            rep, "derived_ivs", strength_reduce_ivs(func, counted, live_out_exit)
        )
        changed += _tick(rep, "dead", eliminate_dead_code(func, live_out_exit))
        rep.rounds += 1
        if changed == 0:
            break
    remove_unreachable(func)
    func.reindex_regs()
    if verify:
        verify_function(func)
    return rep


def _tick(rep: ConvReport, attr: str, n: int) -> int:
    setattr(rep, attr, getattr(rep, attr) + n)
    return n
