"""The classical ("Conv") optimization pipeline.

Runs the paper's conventional-optimizer baseline to fixpoint:

    "The conventional scalar transformations consist of a complete set of
    classical local, global, and loop transformations, including constant
    propagation, copy propagation, common subexpression elimination,
    constant folding, operation folding, redundant memory access
    elimination, dead code removal, loop invariant code removal, loop
    induction variable strength reduction, and loop induction variable
    elimination."

Every transformation level of the evaluation (Conv, Lev1..Lev4) starts
from the output of this pipeline.

The fixpoint itself is owned by the unified pass manager
(:mod:`repro.passes`): this module is the thin entry point that binds a
function into a :class:`~repro.passes.manager.PipelineContext` and runs
the registered ``conv`` phase.  Pass ordering and per-round protected-set
recomputation live in :mod:`repro.passes.registry`.
"""

from __future__ import annotations

from ..analysis.loopvars import CountedLoop
from ..ir.function import Function
from ..ir.operands import Reg


def run_conv(
    func: Function,
    counted: dict[str, CountedLoop] | None = None,
    live_out_exit: set[Reg] | None = None,
    max_rounds: int = 10,
    verify: bool = True,
    options=None,
    report=None,
):
    """Apply the classical pipeline to fixpoint (bounded rounds).

    ``counted`` maps inner-loop headers to their metadata; induction
    variable elimination updates entries in place when it retargets a loop
    test.  ``live_out_exit`` lists registers the caller reads after the
    run (workload outputs) so DCE keeps them.  ``options`` takes a
    :class:`~repro.passes.manager.PassOptions` (pass disabling / IR
    printing); ``report`` an existing
    :class:`~repro.passes.stats.PipelineReport` to extend.

    Returns the :class:`~repro.passes.stats.PipelineReport` with one
    :class:`~repro.passes.stats.PassStats` row per pass execution.
    """
    from ..passes import PassManager, PipelineContext, PipelineReport

    ctx = PipelineContext(
        func=func,
        report=report if report is not None else PipelineReport(),
        live_out_exit=live_out_exit or set(),
        counted_map=counted,
        verify_final=verify,
    )
    PassManager(options).run_phase("conv", ctx, max_rounds=max_rounds)
    return ctx.report
