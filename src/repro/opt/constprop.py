"""Constant propagation and folding (local, per block).

Propagates known constant register values forward through each block,
rewrites uses, and folds operations whose inputs are all constants into
moves.  Also applies the safe algebraic identities (x+0, x*1, x*0, x<<0,
x-0, x/1) that naive lowering produces constantly.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import FImm, Imm, Operand, Reg

_INT_LIMIT = 1 << 31

_INT_FOLD = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << b if 0 <= b < 32 else None,
    Op.SHRA: lambda a, b: a >> b if 0 <= b < 64 else None,
}

_FP_FOLD = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FDIV: lambda a, b: a / b if b != 0.0 else None,
}


def _fold(ins: Instr) -> Operand | None:
    """Value of ``ins`` if computable at compile time."""
    op = ins.op
    if op in (Op.MOV, Op.FMOV):
        s = ins.srcs[0]
        return s if isinstance(s, (Imm, FImm)) else None
    if op is Op.DIV:
        a, b = ins.srcs
        if isinstance(a, Imm) and isinstance(b, Imm) and b.value != 0:
            q = abs(a.value) // abs(b.value)
            return Imm(-q if (a.value < 0) != (b.value < 0) else q)
        return None
    if op is Op.REM:
        a, b = ins.srcs
        if isinstance(a, Imm) and isinstance(b, Imm) and b.value != 0:
            q = abs(a.value) // abs(b.value)
            q = -q if (a.value < 0) != (b.value < 0) else q
            return Imm(a.value - b.value * q)
        return None
    if op in _INT_FOLD:
        a, b = ins.srcs
        if isinstance(a, Imm) and isinstance(b, Imm):
            v = _INT_FOLD[op](a.value, b.value)
            if v is not None and abs(v) < _INT_LIMIT:
                return Imm(v)
        return None
    if op in _FP_FOLD:
        a, b = ins.srcs
        if isinstance(a, FImm) and isinstance(b, FImm):
            v = _FP_FOLD[op](a.value, b.value)
            if v is not None:
                return FImm(v)
        return None
    if op is Op.ITOF and isinstance(ins.srcs[0], Imm):
        return FImm(float(ins.srcs[0].value))
    return None


def _identity(ins: Instr) -> Operand | None:
    """Algebraic simplification of ``ins`` to a single operand, if any."""
    op = ins.op
    if op in (Op.ADD, Op.FADD):
        a, b = ins.srcs
        if isinstance(b, (Imm, FImm)) and b.value == 0:
            return a
        if isinstance(a, (Imm, FImm)) and a.value == 0:
            return b
    elif op in (Op.SUB, Op.FSUB, Op.SHL, Op.SHRA, Op.SHRL):
        a, b = ins.srcs
        if isinstance(b, (Imm, FImm)) and b.value == 0:
            return a
    elif op in (Op.MUL, Op.FMUL):
        a, b = ins.srcs
        for x, y in ((a, b), (b, a)):
            if isinstance(y, (Imm, FImm)):
                if y.value == 1:
                    return x
                if y.value == 0 and isinstance(y, Imm):
                    return Imm(0)
    elif op in (Op.DIV, Op.FDIV):
        a, b = ins.srcs
        if isinstance(b, (Imm, FImm)) and b.value == 1:
            return a
    return None


_CMP_FOLD = {
    "blt": lambda a, b: a < b, "ble": lambda a, b: a <= b,
    "bgt": lambda a, b: a > b, "bge": lambda a, b: a >= b,
    "beq": lambda a, b: a == b, "bne": lambda a, b: a != b,
    "fblt": lambda a, b: a < b, "fble": lambda a, b: a <= b,
    "fbgt": lambda a, b: a > b, "fbge": lambda a, b: a >= b,
    "fbeq": lambda a, b: a == b, "fbne": lambda a, b: a != b,
}


def fold_constant_branches(func: Function) -> int:
    """Resolve branches whose both operands are compile-time constants:
    always-taken becomes a jump, never-taken disappears.  With a known
    trip count this is what erases an unnecessary preconditioning loop
    (the paper's "iteration count known on loop entry" case)."""
    from ..ir.instructions import Kind

    changed = 0
    for blk in func.blocks:
        new_instrs = []
        for ins in blk.instrs:
            if ins.kind is Kind.BRANCH:
                a, b = ins.srcs
                if isinstance(a, (Imm, FImm)) and isinstance(b, (Imm, FImm)):
                    changed += 1
                    if _CMP_FOLD[ins.op.value](a.value, b.value):
                        new_instrs.append(
                            Instr(Op.JMP, target=ins.target, prob=ins.prob)
                        )
                        break  # the rest of the block is unreachable
                    continue  # never taken: drop
            new_instrs.append(ins)
        blk.instrs = new_instrs
    return changed


def propagate_constants(func: Function) -> int:
    """Local constant propagation + folding.  Returns rewrites made."""
    changed = 0
    for blk in func.blocks:
        known: dict[Reg, Operand] = {}
        for ins in blk.instrs:
            sub = {
                r: known[r]
                for r in ins.reg_uses()
                if r in known
            }
            if sub:
                # only substitute where operand classes allow constants: any
                # slot accepts a constant of its class in this ISA
                ins.replace_uses(sub)
                changed += 1
            folded = _fold(ins)
            if folded is None:
                simplified = _identity(ins)
                if simplified is not None and ins.dest is not None:
                    mv = Op.FMOV if ins.dest.is_fp else Op.MOV
                    ins.op = mv
                    ins.srcs = (simplified,)
                    changed += 1
                    if isinstance(simplified, (Imm, FImm)):
                        folded = simplified
            if folded is not None and ins.dest is not None:
                mv = Op.FMOV if ins.dest.is_fp else Op.MOV
                if ins.op is not mv or ins.srcs != (folded,):
                    ins.op = mv
                    ins.srcs = (folded,)
                    changed += 1
                known[ins.dest] = folded
                continue
            if ins.dest is not None:
                known.pop(ins.dest, None)
    return changed
