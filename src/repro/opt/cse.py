"""Common subexpression elimination (local value numbering).

Within each block, pure ALU operations with identical opcode and value
numbers for their operands reuse the earlier result through a move (which
copy propagation then folds away).  Memory operations are handled by the
redundant-memory pass, not here.
"""

from __future__ import annotations

import itertools

from ..ir.function import Function
from ..ir.instructions import Instr, Kind, Op
from ..ir.operands import FImm, Imm, Operand, Reg, Sym

_PURE_KINDS = {Kind.INT_ALU, Kind.INT_MUL, Kind.INT_DIV, Kind.FP_ALU,
               Kind.FP_MUL, Kind.FP_DIV, Kind.FP_CVT}


def eliminate_common_subexpressions(
    func: Function, protected: frozenset[int] | set[int] = frozenset()
) -> int:
    """``protected`` holds ids of instructions that must not be rewritten —
    the canonical increments of counted loops, which value numbering would
    otherwise merge with body arithmetic (e.g. an ``i+1`` subscript),
    destroying the loop shape that strength reduction and unrolling need."""
    changed = 0
    for blk in func.blocks:
        vn = itertools.count(1)
        value_of: dict[Reg, int] = {}
        const_num: dict[object, int] = {}
        expr_num: dict[tuple, tuple[int, Reg]] = {}

        def operand_vn(op: Operand) -> int:
            if isinstance(op, Reg):
                if op not in value_of:
                    value_of[op] = next(vn)
                return value_of[op]
            key = (type(op).__name__, getattr(op, "value", getattr(op, "name", None)))
            if key not in const_num:
                const_num[key] = next(vn)
            return const_num[key]

        for ins in blk.instrs:
            d = ins.dest
            if ins.kind not in _PURE_KINDS or d is None or id(ins) in protected:
                if d is not None:
                    value_of[d] = next(vn)
                continue
            if ins.op in (Op.MOV, Op.FMOV):
                value_of[d] = operand_vn(ins.srcs[0])
                continue
            nums = tuple(operand_vn(s) for s in ins.srcs)
            if ins.info.commutative:
                nums = tuple(sorted(nums))
            key = (ins.op, nums)
            hit = expr_num.get(key)
            if hit is not None:
                num, src = hit
                # reuse only if the holder still has that value number
                if value_of.get(src) == num:
                    ins.op = Op.FMOV if d.is_fp else Op.MOV
                    ins.srcs = (src,)
                    value_of[d] = num
                    changed += 1
                    continue
            num = next(vn)
            value_of[d] = num
            expr_num[key] = (num, d)
    return changed
