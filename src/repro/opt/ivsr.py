"""Induction variable strength reduction and elimination.

Turns per-iteration address arithmetic (``t = i*4 + base``) into pointer
induction variables, and — when the original counter becomes otherwise
dead — replaces the loop exit test with a test on the derived variable
(*linear function test replacement*).  This is what produces the paper's
Figure 1(b) loop shape, where the only induction variable left is the
byte-offset register tested directly against a pre-scaled limit.

The pass runs rounds to fixpoint.  Each round:

1. find *basic IVs*: registers whose only in-loop definition is
   ``i = i + c`` (immediate c) in a latch-dominating block;
2. convert *derived expressions*: single-def instructions
   ``x = iv * C | iv + inv | inv + iv | iv - inv | iv << C``
   in latch-dominating blocks, all of whose uses follow the definition —
   each becomes a new IV: initialization cloned into the preheader, the
   defining instruction replaced by a move (cleaned by copy propagation),
   and an increment ``x' += step_x`` placed right after the basic IV's
   increment.

After the rounds, if the loop's counted test is on a basic IV that is
dead apart from its own increment and the test, and some derived IV with
a positive scale exists, the test is rewritten onto the derived IV and
the counter eliminated (by the next DCE).  The ``CountedLoop`` metadata
is updated so unrolling keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.loopvars import CountedLoop
from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.loop import Loop, dominators, ensure_preheader, find_loops
from ..ir.operands import Imm, Operand, Reg, Sym


@dataclass
class _BasicIV:
    reg: Reg
    step: int
    inc: Instr
    inc_block: str


@dataclass
class _DerivedIV:
    """x = scale * iv + offset_expr; stepped by scale * iv.step."""

    reg: Reg
    basic: _BasicIV
    scale: int
    inc: Instr  # the increment instruction created for x


def _find_basic_ivs(func: Function, loop: Loop, dom, latch: str) -> dict[Reg, _BasicIV]:
    defs: dict[Reg, list[tuple[str, Instr]]] = {}
    for lab in loop.blocks:
        for ins in func.get_block(lab).instrs:
            if ins.dest is not None:
                defs.setdefault(ins.dest, []).append((lab, ins))
    out: dict[Reg, _BasicIV] = {}
    for reg, sites in defs.items():
        if len(sites) != 1:
            continue
        lab, ins = sites[0]
        if lab not in dom.get(latch, set()):
            continue
        step = None
        if ins.op is Op.ADD:
            a, b = ins.srcs
            if a == reg and isinstance(b, Imm):
                step = b.value
            elif b == reg and isinstance(a, Imm):
                step = a.value
        elif ins.op is Op.SUB:
            a, b = ins.srcs
            if a == reg and isinstance(b, Imm):
                step = -b.value
        if step is not None and step != 0:
            out[reg] = _BasicIV(reg, step, ins, lab)
    return out


def _uses_follow_def(func: Function, loop: Loop, dom, reg: Reg,
                     def_lab: str, def_ins: Instr) -> bool:
    """Every in-loop use of ``reg`` is strictly after its definition."""
    for lab in loop.blocks:
        blk = func.get_block(lab)
        dpos = None
        if lab == def_lab:
            dpos = blk.instrs.index(def_ins)
        for pos, ins in enumerate(blk.instrs):
            if reg not in set(ins.reg_uses()):
                continue
            if lab == def_lab:
                if pos <= dpos:
                    return False
            elif def_lab not in dom.get(lab, set()):
                return False
    return True


def strength_reduce_ivs(
    func: Function,
    counted: dict[str, CountedLoop] | None = None,
    live_out_exit: set[Reg] | None = None,
) -> int:
    """Run IVSR on every loop of the function.  ``counted`` maps loop
    header labels to their metadata, updated in place by test replacement.
    Returns the number of derived IVs created."""
    total = 0
    for loop in sorted(find_loops(func), key=lambda l: -l.depth):
        if len(loop.latches) != 1:
            continue
        total += _reduce_loop(func, loop, counted or {}, live_out_exit or set())
    return total


def _reduce_loop(
    func: Function,
    loop: Loop,
    counted: dict[str, CountedLoop],
    live_out_exit: set[Reg] = frozenset(),
) -> int:
    latch = loop.latches[0]
    created = 0
    derived_scale: dict[Reg, tuple[_BasicIV, int, Instr]] = {}

    from ..analysis.liveness import liveness

    for _round in range(8):
        dom = dominators(func)
        basics = _find_basic_ivs(func, loop, dom, latch)
        if not basics:
            break
        lv = liveness(func, live_out_exit)
        exit_live: set[Reg] = set()
        for _, tgt in loop.exit_edges(func):
            exit_live |= lv.live_in.get(tgt, set())
        in_loop_defs: dict[Reg, int] = {}
        for lab in loop.blocks:
            for ins in func.get_block(lab).instrs:
                if ins.dest is not None:
                    in_loop_defs[ins.dest] = in_loop_defs.get(ins.dest, 0) + 1

        def invariant(op: Operand) -> bool:
            return not isinstance(op, Reg) or op not in in_loop_defs

        converted = False
        for lab in sorted(loop.blocks):
            if lab not in dom.get(latch, set()):
                continue
            blk = func.get_block(lab)
            for ins in list(blk.instrs):
                d = ins.dest
                if d is None or d in basics or in_loop_defs.get(d, 0) != 1:
                    continue
                # match x = f(iv) patterns
                iv: Reg | None = None
                scale: int | None = None
                if ins.op is Op.MUL:
                    a, b = ins.srcs
                    if isinstance(a, Reg) and a in basics and isinstance(b, Imm):
                        iv, scale = a, b.value
                    elif isinstance(b, Reg) and b in basics and isinstance(a, Imm):
                        iv, scale = b, a.value
                elif ins.op is Op.SHL:
                    a, b = ins.srcs
                    if isinstance(a, Reg) and a in basics and isinstance(b, Imm) \
                            and 0 <= b.value < 31:
                        iv, scale = a, 1 << b.value
                elif ins.op is Op.ADD:
                    a, b = ins.srcs
                    if isinstance(a, Reg) and a in basics and invariant(b):
                        iv, scale = a, 1
                    elif isinstance(b, Reg) and b in basics and invariant(a):
                        iv, scale = b, 1
                elif ins.op is Op.SUB:
                    a, b = ins.srcs
                    if isinstance(a, Reg) and a in basics and invariant(b):
                        iv, scale = a, 1
                if iv is None or scale is None or scale == 0:
                    continue
                other_ok = all(
                    invariant(s) for s in ins.srcs if not (isinstance(s, Reg) and s == iv)
                )
                if not other_ok:
                    continue
                if not _uses_follow_def(func, loop, dom, d, lab, ins):
                    continue
                if d in exit_live:
                    # the temp's exit value would change: as an IV it ends
                    # one step further than the last in-loop computation
                    continue
                biv = basics[iv]
                step_x = biv.step * scale
                if step_x == 0:
                    continue
                # no use of d may follow the basic IV's increment within an
                # iteration, or it would observe the stepped value early
                inc_blk0 = func.get_block(biv.inc_block)
                inc_pos0 = inc_blk0.instrs.index(biv.inc)
                late_use = any(
                    d in set(u.reg_uses())
                    for u in inc_blk0.instrs[inc_pos0 + 1:]
                )
                if late_use:
                    continue
                # 1. initialization: clone the computation into the preheader
                ph = ensure_preheader(func, loop)
                ph.append(ins.copy())
                # 2. increment after the basic IV's increment
                inc_blk = func.get_block(biv.inc_block)
                inc_pos = inc_blk.instrs.index(biv.inc)
                x_inc = Instr(Op.ADD, d, (d, Imm(step_x)))
                inc_blk.insert(inc_pos + 1, x_inc)
                # 3. the in-loop computation disappears
                blk.remove(ins)
                # track the root counter through derived-of-derived chains
                # so test replacement can retarget onto the final pointer
                parent = derived_scale.get(iv)
                if parent is not None:
                    root_biv, parent_scale, _ = parent
                    derived_scale[d] = (root_biv, parent_scale * scale, x_inc)
                else:
                    derived_scale[d] = (biv, scale, x_inc)
                created += 1
                converted = True
        if not converted:
            break

    _replace_linear_test(func, loop, latch, derived_scale, counted)
    return created


def _replace_linear_test(
    func: Function,
    loop: Loop,
    latch: str,
    derived_scale: dict[Reg, tuple[_BasicIV, int, Instr]],
    counted: dict[str, CountedLoop],
) -> None:
    """Linear function test replacement + counter elimination."""
    info = counted.get(loop.header)
    if info is None or not derived_scale:
        return
    latch_blk = func.get_block(latch)
    term = latch_blk.terminator
    if term is None or term is not info.branch:
        return
    iv = info.iv
    # candidates derived directly from the tested counter, positive scale,
    # produced by a MUL/SHL (scale > 1 pointer) or scale 1 with invariant
    # offset; prefer the largest scale (the innermost address stride)
    cands = [
        (d, biv, sc, inc)
        for d, (biv, sc, inc) in derived_scale.items()
        if biv.reg == iv and sc > 0
    ]
    if not cands:
        return
    # the counter must be dead apart from its increment and the test
    for lab in loop.blocks:
        for ins in func.get_block(lab).instrs:
            if ins is info.increment or ins is info.branch:
                continue
            if iv in set(ins.reg_uses()):
                return
    # prefer (at equal scale) a derived IV that has other in-loop uses
    # (an address pointer), so the retargeted test keeps no extra IV alive
    def other_uses(reg: Reg) -> int:
        count = 0
        for lab in loop.blocks:
            for ins in func.get_block(lab).instrs:
                if reg in set(ins.reg_uses()) and ins.dest != reg:
                    count += 1
        return count

    d, biv, sc, x_inc = max(cands, key=lambda c: (c[2], other_uses(c[0])))

    # find d's preheader initialization (the cloned computation): the last
    # preheader instruction defining d
    ph = ensure_preheader(func, loop)
    init = None
    for ins in ph.instrs:
        if ins.dest == d:
            init = ins
    if init is None:
        return
    # x = sc*iv + off  with off = init_value - sc*iv0; the test iv < limit
    # becomes x < sc*limit + off, computed in the preheader as
    # lim' = sc*(limit - iv0) + x0
    lim = func.new_int_reg()
    tmp = func.new_int_reg()
    ph.extend([
        Instr(Op.SUB, tmp, (info.limit, iv)),
        Instr(Op.MUL, tmp, (tmp, Imm(sc))),
        Instr(Op.ADD, lim, (tmp, d)),
    ])
    # rewrite the branch onto (d, lim), preserving operand orientation
    a, b = info.branch.srcs
    if a == iv:
        info.branch.srcs = (d, lim)
    else:
        info.branch.srcs = (lim, d)
    counted[loop.header] = info.clone_for(
        branch=info.branch,
        increment=x_inc,
        iv=d,
        step=biv.step * sc,
        limit=lim,
    )
