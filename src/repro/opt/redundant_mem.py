"""Redundant memory access elimination (local, per block).

* load after load of the same address with no intervening may-alias store
  -> move from the earlier loaded register;
* load after store to the same address -> move from the stored value;
* store after store to the same address with no intervening may-alias
  load or store -> the earlier store is deleted.

Address equality uses the symbolic analysis of
:mod:`repro.analysis.memdep`; "same address" means provably-equal
expressions, and "may alias" its conservative test.
"""

from __future__ import annotations

from ..analysis.memdep import AddressAnalysis, may_alias
from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import FImm, Imm, Reg


def _same_addr(e1, e2) -> bool:
    return e1.terms == e2.terms and e1.const == e2.const


def eliminate_redundant_memory(
    func: Function, prologues: dict[str, list] | None = None
) -> int:
    """``prologues`` optionally maps a block label to preheader code its
    addresses may be resolved through (see AddressAnalysis) — used when
    this runs on a superblock after induction expansion moved address
    setup into the preheader."""
    changed = 0
    prologues = prologues or {}
    for blk in func.blocks:
        instrs = blk.instrs
        aa = AddressAnalysis(instrs, prologues.get(blk.label))
        mem = [i for i, ins in enumerate(instrs) if ins.is_mem]
        if not mem:
            continue
        exprs = {i: aa.address_expr(i) for i in mem}
        to_delete: set[int] = set()
        replace_with_move: dict[int, object] = {}

        for a_idx, i in enumerate(mem):
            ins_i = instrs[i]
            if i in to_delete or i in replace_with_move:
                continue
            if ins_i.is_vector:
                # vector accesses move multiple words: never forward from
                # or delete them (conservative)
                continue
            # the value this access makes available
            if ins_i.is_load:
                avail = ins_i.dest
            else:
                avail = ins_i.store_value
            killed = False
            for j in mem[a_idx + 1:]:
                ins_j = instrs[j]
                same = _same_addr(exprs[i], exprs[j]) and not ins_j.is_vector
                if ins_j.is_load and same and not killed:
                    # forward the value, if the register holding it is not
                    # clobbered in between
                    if isinstance(avail, Reg):
                        clobbered = any(
                            instrs[t].dest == avail for t in range(i + 1, j)
                        )
                        if clobbered:
                            continue
                    replace_with_move[j] = avail
                elif ins_j.is_store:
                    if same and not killed and ins_i.is_store:
                        # i's value is never observed before overwrite: no
                        # intervening may-alias load, and no branch through
                        # which off-trace code could read memory
                        observed = any(
                            instrs[t].is_load
                            and may_alias(exprs[i], exprs[t],
                                          ins_i.mem_words,
                                          instrs[t].mem_words)
                            for t in mem
                            if i < t < j
                        ) or any(
                            instrs[t].is_control for t in range(i + 1, j)
                        )
                        if not observed and j not in to_delete:
                            to_delete.add(i)
                        killed = True
                    elif may_alias(exprs[i], exprs[j],
                                   ins_i.mem_words, ins_j.mem_words):
                        killed = True
                if killed and ins_i.is_load:
                    break

        if to_delete or replace_with_move:
            new_instrs: list[Instr] = []
            for i, ins in enumerate(instrs):
                if i in to_delete:
                    changed += 1
                    continue
                if i in replace_with_move:
                    val = replace_with_move[i]
                    d = ins.dest
                    assert d is not None
                    mv = Op.FMOV if d.is_fp else Op.MOV
                    new_instrs.append(Instr(mv, d, (val,)))
                    changed += 1
                    continue
                new_instrs.append(ins)
            blk.instrs = new_instrs
    return changed
