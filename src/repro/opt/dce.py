"""Dead code elimination (global, flow-insensitive mark and sweep).

An instruction is live if it has a side effect (store, control, halt) or
defines a register transitively used by a live instruction or listed in
``live_out_exit`` (workload outputs read by the harness after the run).
Flow-insensitive use counting is conservative and therefore safe.
"""

from __future__ import annotations

from collections import defaultdict

from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import Reg


def eliminate_dead_code(func: Function, live_out_exit: set[Reg] | None = None) -> int:
    live_out_exit = live_out_exit or set()
    defs_of: dict[Reg, list[Instr]] = defaultdict(list)
    for ins in func.iter_instrs():
        if ins.dest is not None:
            defs_of[ins.dest].append(ins)

    live: set[int] = set()
    work: list[Instr] = []
    for ins in func.iter_instrs():
        if ins.is_store or ins.is_control or ins.op is Op.NOP:
            live.add(id(ins))
            work.append(ins)
        elif ins.dest is not None and ins.dest in live_out_exit:
            live.add(id(ins))
            work.append(ins)
    while work:
        ins = work.pop()
        for r in ins.reg_uses():
            for d in defs_of.get(r, ()):
                if id(d) not in live:
                    live.add(id(d))
                    work.append(d)

    removed = 0
    for blk in func.blocks:
        keep = [ins for ins in blk.instrs if id(ins) in live]
        removed += len(blk.instrs) - len(keep)
        blk.instrs = keep
    return removed


def remove_nops(func: Function) -> int:
    removed = 0
    for blk in func.blocks:
        keep = [ins for ins in blk.instrs if ins.op is not Op.NOP]
        removed += len(blk.instrs) - len(keep)
        blk.instrs = keep
    return removed
