"""repro.opt — the classical ("Conv") optimizer."""

from .constprop import propagate_constants
from .copyprop import propagate_copies_global, propagate_copies_local
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code, remove_nops
from .driver import run_conv
from .ivsr import strength_reduce_ivs
from .licm import hoist_loop_invariants
from .redundant_mem import eliminate_redundant_memory

__all__ = [
    "propagate_constants",
    "propagate_copies_global", "propagate_copies_local",
    "eliminate_common_subexpressions",
    "eliminate_dead_code", "remove_nops",
    "run_conv",
    "strength_reduce_ivs",
    "hoist_loop_invariants",
    "eliminate_redundant_memory",
]
