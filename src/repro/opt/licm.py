"""Loop-invariant code motion.

Hoists to the preheader instructions whose operands are loop invariant,
that are the only definition of their register in the loop, in a block
that dominates the latch (so they execute every iteration — the hoist
cannot introduce a computation that was conditionally skipped in a way
that matters for a pure op, but the dominance requirement keeps possibly
trapping ops and the definition-dominance discipline intact), and whose
register is not live into the loop header (hoisting must not clobber a
value the first iteration expected).

Loads are hoisted only when no store in the loop can touch the same array
(symbol-level disambiguation); possibly-trapping ops (div/rem) only from
latch-dominating blocks, which our do-while loops always execute.
"""

from __future__ import annotations

from ..analysis.liveness import liveness
from ..ir.function import Function
from ..ir.instructions import Instr, Kind, Op
from ..ir.loop import Loop, dominators, ensure_preheader, find_loops
from ..ir.operands import Reg, Sym

_HOISTABLE_KINDS = {
    Kind.INT_ALU, Kind.INT_MUL, Kind.INT_DIV,
    Kind.FP_ALU, Kind.FP_MUL, Kind.FP_DIV, Kind.FP_CVT,
}


def _loop_stores_syms(func: Function, loop: Loop) -> tuple[set[str], bool]:
    """(symbols stored through, any store with non-symbol base?)"""
    syms: set[str] = set()
    unknown = False
    for ins in loop.body_instrs(func):
        if ins.is_store:
            base = ins.srcs[0]
            if isinstance(base, Sym):
                syms.add(base.name)
            else:
                unknown = True
    return syms, unknown


def hoist_loop_invariants(func: Function, live_out_exit: set[Reg] | None = None) -> int:
    total = 0
    loops = find_loops(func)
    # innermost first: code hoisted out of an inner loop can then be hoisted
    # again out of the enclosing loop on the next pass iteration
    for loop in sorted(loops, key=lambda l: -l.depth):
        total += _hoist_one(func, loop, live_out_exit or set())
    return total


def _hoist_one(func: Function, loop: Loop, live_out_exit: set[Reg]) -> int:
    bm = func.block_map()
    dom = dominators(func)
    if len(loop.latches) != 1:
        return 0
    latch = loop.latches[0]

    defs_in_loop: dict[Reg, int] = {}
    for ins in loop.body_instrs(func):
        if ins.dest is not None:
            defs_in_loop[ins.dest] = defs_in_loop.get(ins.dest, 0) + 1

    lv = liveness(func, live_out_exit)
    header_live_in = lv.live_in.get(loop.header, set())
    store_syms, store_unknown = _loop_stores_syms(func, loop)

    hoisted = 0
    changed = True
    while changed:
        changed = False
        for lab in sorted(loop.blocks):
            if lab not in dom.get(latch, set()):
                continue  # must execute every iteration
            blk = bm[lab]
            for ins in list(blk.instrs):
                d = ins.dest
                if d is None:
                    continue
                invariant_srcs = all(
                    not isinstance(s, Reg) or s not in defs_in_loop
                    for s in ins.srcs
                )
                if not invariant_srcs:
                    continue
                if ins.kind in _HOISTABLE_KINDS:
                    pass
                elif ins.kind is Kind.LOAD:
                    base = ins.srcs[0]
                    if store_unknown:
                        continue
                    if not isinstance(base, Sym) or base.name in store_syms:
                        continue
                else:
                    continue
                if defs_in_loop.get(d, 0) != 1:
                    continue
                if d in header_live_in:
                    # the first iteration sees a pre-loop value of d; we
                    # cannot overwrite it before the loop
                    continue
                ph = ensure_preheader(func, loop)
                blk.remove(ins)
                ph.append(ins)
                defs_in_loop.pop(d, None)
                hoisted += 1
                changed = True
    return hoisted
