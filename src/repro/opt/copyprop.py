"""Copy propagation.

Local: within a block, after ``d = s`` every use of ``d`` reads ``s``
until either is redefined.

Global: a register with exactly one definition in the whole function,
which is a move from a register that is *never* redefined after that
point (conservatively: has exactly one definition as well, or is never
defined at all — a live-in), can be propagated everywhere.
"""

from __future__ import annotations

from collections import defaultdict

from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import Reg


def propagate_copies_local(func: Function) -> int:
    changed = 0
    for blk in func.blocks:
        copy_of: dict[Reg, Reg] = {}
        for ins in blk.instrs:
            sub = {r: copy_of[r] for r in ins.reg_uses() if r in copy_of}
            if sub:
                ins.replace_uses(sub)
                changed += 1
            d = ins.dest
            if d is None:
                continue
            # invalidate copies broken by this definition
            copy_of.pop(d, None)
            for k in [k for k, v in copy_of.items() if v == d]:
                copy_of.pop(k)
            if ins.op in (Op.MOV, Op.FMOV) and isinstance(ins.srcs[0], Reg):
                s = ins.srcs[0]
                if s != d:
                    copy_of[d] = s
    return changed


def coalesce_moves(func: Function) -> int:
    """Backward move coalescing: rewrite ``t = a op b; ...; s = t`` into
    ``s = a op b`` when ``t`` is a single-use temporary and ``s`` is not
    touched in between.  This restores the ``s = s + x`` self-update shape
    of reductions that expression lowering splits into a temp and a move —
    the shape accumulator expansion recognizes.
    """
    use_count: dict[Reg, int] = defaultdict(int)
    def_count: dict[Reg, int] = defaultdict(int)
    for ins in func.iter_instrs():
        for r in ins.reg_uses():
            use_count[r] += 1
        if ins.dest is not None:
            def_count[ins.dest] += 1

    changed = 0
    for blk in func.blocks:
        i = 0
        while i < len(blk.instrs):
            mov = blk.instrs[i]
            if (
                mov.op not in (Op.MOV, Op.FMOV)
                or not isinstance(mov.srcs[0], Reg)
                or mov.dest is None
            ):
                i += 1
                continue
            t = mov.srcs[0]
            s = mov.dest
            if t == s or use_count[t] != 1 or def_count[t] != 1:
                i += 1
                continue
            # find t's definition earlier in this block
            dpos = None
            for j in range(i - 1, -1, -1):
                ins = blk.instrs[j]
                if ins.dest == t:
                    dpos = j
                    break
                if s in set(ins.reg_uses()) or ins.dest == s or ins.is_control:
                    break  # s touched (or block region ends) before t's def
            if dpos is None:
                i += 1
                continue
            d = blk.instrs[dpos]
            if d.is_control or d.dest != t:
                i += 1
                continue
            d.dest = s
            blk.instrs.pop(i)
            def_count[t] -= 1
            def_count[s] += 1
            use_count[t] -= 1
            changed += 1
            # do not advance i: the next instruction shifted into place
    return changed


def propagate_copies_global(func: Function) -> int:
    from ..ir.loop import dominators

    def_count: dict[Reg, int] = defaultdict(int)
    def_site: dict[Reg, tuple[str, int, Instr]] = {}
    for blk in func.blocks:
        for pos, ins in enumerate(blk.instrs):
            if ins.dest is not None:
                def_count[ins.dest] += 1
                def_site[ins.dest] = (blk.label, pos, ins)

    dom = dominators(func)

    def def_dominates_all_uses(d: Reg) -> bool:
        dlab, dpos, _ = def_site[d]
        for blk in func.blocks:
            for pos, ins in enumerate(blk.instrs):
                if d in set(ins.reg_uses()):
                    if blk.label == dlab:
                        if pos <= dpos:
                            return False
                    elif dlab not in dom.get(blk.label, set()):
                        return False
        return True

    def src_def_dominates(s: Reg, dlab: str, dpos: int) -> bool:
        """s's single def (if any) must dominate the move, else the move
        might read a stale s around a backedge."""
        if s not in def_site:
            return True  # live-in, never written
        slab, spos, _ = def_site[s]
        if slab == dlab:
            return spos < dpos
        return slab in dom.get(dlab, set())

    sub: dict[Reg, Reg] = {}
    for d, (dlab, dpos, ins) in def_site.items():
        if def_count[d] != 1 or ins.op not in (Op.MOV, Op.FMOV):
            continue
        s = ins.srcs[0]
        if (
            isinstance(s, Reg)
            and def_count.get(s, 0) <= 1
            and s != d
            and src_def_dominates(s, dlab, dpos)
            and def_dominates_all_uses(d)
        ):
            sub[d] = s
    if not sub:
        return 0
    # resolve chains d -> s -> t
    for d in list(sub):
        seen = {d}
        t = sub[d]
        while t in sub and t not in seen:
            seen.add(t)
            t = sub[t]
        sub[d] = t
    changed = 0
    for ins in func.iter_instrs():
        m = {r: sub[r] for r in ins.reg_uses() if r in sub}
        if m:
            ins.replace_uses(m)
            changed += 1
    return changed
