"""FORTRAN-style pretty printer for kernel ASTs.

Renders the corpus kernels the way the paper's loop nests would appear in
their original sources — handy for inspecting workloads (`python -m repro
show <name>`) and for documentation.
"""

from __future__ import annotations

from .ast import (
    ArrayRef,
    Assign,
    Bin,
    Cmp,
    Const,
    Cvt,
    Do,
    Expr,
    If,
    Kernel,
    Neg,
    Stmt,
    VarRef,
)

_PREC = {"+": 1, "-": 1, "*": 2, "/": 2, "%": 2}

_CMP_F77 = {"<": ".LT.", "<=": ".LE.", ">": ".GT.", ">=": ".GE.",
            "==": ".EQ.", "!=": ".NE."}


def expr_str(e: Expr, parent_prec: int = 0) -> str:
    if isinstance(e, Const):
        return repr(e.value)
    if isinstance(e, VarRef):
        return e.name
    if isinstance(e, ArrayRef):
        return f"{e.name}({', '.join(expr_str(i) for i in e.idxs)})"
    if isinstance(e, Neg):
        return f"-{expr_str(e.e, 3)}"
    if isinstance(e, Cvt):
        return f"FLOAT({expr_str(e.e)})"
    if isinstance(e, Bin):
        p = _PREC[e.op]
        s = f"{expr_str(e.l, p)} {e.op} {expr_str(e.r, p + (e.op in '-/%'))}"
        return f"({s})" if p < parent_prec else s
    raise TypeError(f"cannot render {e!r}")


def cond_str(c: Cmp) -> str:
    return f"{expr_str(c.l)} {_CMP_F77[c.op]} {expr_str(c.r)}"


def stmt_lines(s: Stmt, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(s, Assign):
        return [f"{pad}{expr_str(s.target)} = {expr_str(s.value)}"]
    if isinstance(s, If):
        out = [f"{pad}IF ({cond_str(s.cond)}) THEN"]
        for st in s.then:
            out.extend(stmt_lines(st, indent + 1))
        if s.els:
            out.append(f"{pad}ELSE")
            for st in s.els:
                out.extend(stmt_lines(st, indent + 1))
        out.append(f"{pad}ENDIF")
        return out
    if isinstance(s, Do):
        tag = f"  ! {s.kind}" if s.kind else ""
        out = [f"{pad}DO {s.var} = {expr_str(s.lo)}, {expr_str(s.hi)}{tag}"]
        for st in s.body:
            out.extend(stmt_lines(st, indent + 1))
        out.append(f"{pad}ENDDO")
        return out
    raise TypeError(f"cannot render {s!r}")


def kernel_str(k: Kernel) -> str:
    lines = [f"SUBROUTINE {k.name.replace('-', '_')}"]
    for name, decl in k.arrays.items():
        dims = ", ".join(str(d) for d in decl.dims)
        ty = "REAL" if decl.ty.value == "fp" else "INTEGER"
        lines.append(f"  {ty} {name}({dims})")
    for name, ty in k.scalars.items():
        tname = "REAL" if ty.value == "fp" else "INTEGER"
        lines.append(f"  {tname} {name}")
    if k.outputs:
        lines.append(f"  ! outputs: {', '.join(k.outputs)}")
    lines.append("")
    for s in k.body:
        lines.extend(stmt_lines(s, 1))
    lines.append("END")
    return "\n".join(lines)
