"""repro.frontend — the FORTRAN-like kernel language and its lowering."""

from .ast import (
    ArrayDecl,
    ArrayRef,
    Assign,
    Bin,
    Cmp,
    Const,
    Cvt,
    Do,
    Expr,
    If,
    Kernel,
    Neg,
    Stmt,
    Ty,
    VarRef,
    aref,
    assign,
    do,
    flt,
    if_,
    var,
    wrap,
)
from .typing import TypeEnv, TypeError_, check_kernel
from .lower import LoweredKernel, Lowerer, lower_kernel

__all__ = [
    "ArrayDecl", "ArrayRef", "Assign", "Bin", "Cmp", "Const", "Cvt", "Do",
    "Expr", "If", "Kernel", "Neg", "Stmt", "Ty", "VarRef",
    "aref", "assign", "do", "flt", "if_", "var", "wrap",
    "TypeEnv", "TypeError_", "check_kernel",
    "LoweredKernel", "Lowerer", "lower_kernel",
]
