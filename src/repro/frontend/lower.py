"""Lowering kernel ASTs to IR.

Code generation is deliberately naive — temporaries for every
subexpression, full address arithmetic at every array reference, one
fixed register per scalar variable — because the paper's "Conv" baseline
is *defined* as classical optimization cleaning up exactly this kind of
code (constant folding, CSE, LICM, induction-variable strength reduction
turn the naive address math into the pointer-induction loops of
Figure 1(b)).

Arrays are column-major, 1-based, 4-byte elements.  ``DO`` loops lower to
do-while form (test at the bottom), with ``CountedLoop`` metadata recorded
for every loop so strength reduction can retarget tests and unrolling can
precondition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.loopvars import CountedLoop
from ..ir.block import Block
from ..ir.function import Function
from ..ir.instructions import Instr, Op
from ..ir.operands import FImm, Imm, Label, Operand, Reg, RegClass, Sym
from .ast import (
    ArrayRef,
    Assign,
    Bin,
    Cmp,
    Const,
    Cvt,
    Do,
    Expr,
    If,
    Kernel,
    Neg,
    Stmt,
    Ty,
    VarRef,
)
from .typing import check_kernel

_BIN_INT = {"+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.DIV, "%": Op.REM}
_BIN_FP = {"+": Op.FADD, "-": Op.FSUB, "*": Op.FMUL, "/": Op.FDIV}

#: condition -> branch-if-true opcode (int, fp)
_CMP_TRUE = {
    "<": (Op.BLT, Op.FBLT),
    "<=": (Op.BLE, Op.FBLE),
    ">": (Op.BGT, Op.FBGT),
    ">=": (Op.BGE, Op.FBGE),
    "==": (Op.BEQ, Op.FBEQ),
    "!=": (Op.BNE, Op.FBNE),
}
_NEGATE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=", "!=": "=="}


@dataclass
class LoweredKernel:
    """Result of lowering: the function plus binding information."""

    kernel: Kernel
    func: Function
    #: scalar variable -> its register
    scalar_regs: dict[str, Reg]
    #: loop header label -> counted-loop metadata (kept current by passes)
    counted: dict[str, CountedLoop]
    #: header label of the innermost loop (the ILP target)
    inner_header: str
    #: KAP classification of the innermost loop
    inner_kind: str

    @property
    def live_out_exit(self) -> set[Reg]:
        return {self.scalar_regs[n] for n in self.kernel.outputs}


class Lowerer:
    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.env = check_kernel(kernel)
        self.func = Function(kernel.name)
        self.cur: Block = self.func.add_block("entry")
        self.scalar_regs: dict[str, Reg] = {}
        self.counted: dict[str, CountedLoop] = {}
        self.inner: tuple[int, str, str] | None = None  # (depth, header, kind)
        self._depth = 0

    # -- registers -----------------------------------------------------------

    def scalar_reg(self, name: str) -> Reg:
        reg = self.scalar_regs.get(name)
        if reg is None:
            ty = self.env.scalars.setdefault(name, Ty.INT)
            reg = self.func.new_reg(RegClass.INT if ty is Ty.INT else RegClass.FP)
            self.scalar_regs[name] = reg
        return reg

    def emit(self, ins: Instr) -> Instr:
        self.cur.append(ins)
        return ins

    def new_block(self, hint: str = "L") -> Block:
        self.cur = self.func.add_block(self.func.new_label(hint))
        return self.cur

    # -- expressions --------------------------------------------------------

    def lower_expr(self, e: Expr) -> Operand:
        if isinstance(e, Const):
            return Imm(e.value) if isinstance(e.value, int) else FImm(float(e.value))
        if isinstance(e, VarRef):
            return self.scalar_reg(e.name)
        if isinstance(e, ArrayRef):
            base, off = self.lower_address(e)
            decl = self.kernel.arrays[e.name]
            dest = self.func.new_reg(
                RegClass.FP if decl.ty is Ty.FP else RegClass.INT
            )
            self.emit(Instr(Op.LDF if decl.ty is Ty.FP else Op.LD, dest, (base, off)))
            return dest
        if isinstance(e, Bin):
            lt = self.env.expr_type(e.l)
            rt = self.env.expr_type(e.r)
            fp = Ty.FP in (lt, rt)
            a = self.lower_expr(e.l)
            b = self.lower_expr(e.r)
            if fp:
                a = self._to_fp(a, lt)
                b = self._to_fp(b, rt)
                dest = self.func.new_fp_reg()
                self.emit(Instr(_BIN_FP[e.op], dest, (a, b)))
            else:
                dest = self.func.new_int_reg()
                self.emit(Instr(_BIN_INT[e.op], dest, (a, b)))
            return dest
        if isinstance(e, Neg):
            t = self.env.expr_type(e.e)
            v = self.lower_expr(e.e)
            if t is Ty.FP:
                dest = self.func.new_fp_reg()
                self.emit(Instr(Op.FSUB, dest, (FImm(0.0), v)))
            else:
                dest = self.func.new_int_reg()
                self.emit(Instr(Op.SUB, dest, (Imm(0), v)))
            return dest
        if isinstance(e, Cvt):
            v = self.lower_expr(e.e)
            return self._to_fp(v, Ty.INT)
        raise TypeError(f"cannot lower {e!r}")

    def _to_fp(self, v: Operand, ty: Ty) -> Operand:
        if ty is Ty.FP:
            return v
        if isinstance(v, Imm):
            return FImm(float(v.value))
        dest = self.func.new_fp_reg()
        self.emit(Instr(Op.ITOF, dest, (v,)))
        return dest

    def lower_address(self, ref: ArrayRef) -> tuple[Operand, Operand]:
        """(base, offset) operands for a column-major, 1-based reference."""
        decl = self.kernel.arrays[ref.name]
        stride = 1
        const_adj = 0
        off: Operand | None = None
        for idx, dim in zip(ref.idxs, decl.dims):
            byte_stride = 4 * stride
            const_adj -= byte_stride
            v = self.lower_expr(idx)
            if isinstance(v, Imm):
                const_adj += v.value * byte_stride
            else:
                scaled = self.func.new_int_reg()
                self.emit(Instr(Op.MUL, scaled, (v, Imm(byte_stride))))
                if off is None:
                    off = scaled
                else:
                    s = self.func.new_int_reg()
                    self.emit(Instr(Op.ADD, s, (off, scaled)))
                    off = s
            stride *= dim
        if off is None:
            return Sym(ref.name), Imm(const_adj)
        if const_adj:
            t = self.func.new_int_reg()
            self.emit(Instr(Op.ADD, t, (off, Imm(const_adj))))
            off = t
        return Sym(ref.name), off

    # -- statements -------------------------------------------------------------

    def lower_stmt(self, s: Stmt) -> None:
        if isinstance(s, Assign):
            self._lower_assign(s)
        elif isinstance(s, If):
            self._lower_if(s)
        elif isinstance(s, Do):
            self._lower_do(s)
        else:
            raise TypeError(f"cannot lower {s!r}")

    def _lower_assign(self, s: Assign) -> None:
        if isinstance(s.target, VarRef):
            reg = self.scalar_reg(s.target.name)
            vt = self.env.expr_type(s.value)
            v = self.lower_expr(s.value)
            if reg.is_fp:
                v = self._to_fp(v, vt)
                self.emit(Instr(Op.FMOV, reg, (v,)))
            else:
                self.emit(Instr(Op.MOV, reg, (v,)))
        else:
            decl = self.kernel.arrays[s.target.name]
            vt = self.env.expr_type(s.value)
            v = self.lower_expr(s.value)
            base, off = self.lower_address(s.target)
            if decl.ty is Ty.FP:
                v = self._to_fp(v, vt)
                self.emit(Instr(Op.STF, srcs=(base, off, v)))
            else:
                self.emit(Instr(Op.ST, srcs=(base, off, v)))

    def _branch_on(self, cond: Cmp, negate: bool, target: str, prob: float) -> None:
        op_str = _NEGATE[cond.op] if negate else cond.op
        lt = self.env.expr_type(cond.l)
        rt = self.env.expr_type(cond.r)
        fp = Ty.FP in (lt, rt)
        a = self.lower_expr(cond.l)
        b = self.lower_expr(cond.r)
        if fp:
            a = self._to_fp(a, lt)
            b = self._to_fp(b, rt)
        bop = _CMP_TRUE[op_str][1 if fp else 0]
        self.emit(Instr(bop, srcs=(a, b), target=Label(target), prob=prob))

    def _lower_if(self, s: If) -> None:
        # the conditional branch terminates its block so superblock trace
        # selection can route through either arm
        join_label = self.func.new_label("J")
        if s.els:
            els_label = self.func.new_label("E")
            self._branch_on(s.cond, negate=True, target=els_label, prob=1.0 - s.p_then)
            self.new_block("T")
            for st in s.then:
                self.lower_stmt(st)
            self.emit(Instr(Op.JMP, target=Label(join_label)))
            self.cur = self.func.add_block(els_label)
            for st in s.els:
                self.lower_stmt(st)
            self.cur = self.func.add_block(join_label)
        else:
            self._branch_on(s.cond, negate=True, target=join_label, prob=1.0 - s.p_then)
            self.new_block("T")
            for st in s.then:
                self.lower_stmt(st)
            self.cur = self.func.add_block(join_label)

    def _lower_do(self, s: Do) -> None:
        iv = self.scalar_reg(s.var)
        lo = self.lower_expr(s.lo)
        hi = self.lower_expr(s.hi)
        self.emit(Instr(Op.MOV, iv, (lo,)))
        # limit = hi + 1, so the bottom test is `iv < limit`
        if isinstance(hi, Imm):
            limit: Operand = Imm(hi.value + 1)
        else:
            limit = self.func.new_int_reg()
            self.emit(Instr(Op.ADD, limit, (hi, Imm(1))))
        header = self.func.new_label("D")
        self.cur = self.func.add_block(header)
        self._depth += 1
        for st in s.body:
            self.lower_stmt(st)
        inc = self.emit(Instr(Op.ADD, iv, (iv, Imm(1))))
        br = self.emit(
            Instr(Op.BLT, srcs=(iv, limit), target=Label(header), prob=0.9)
        )
        self.counted[header] = CountedLoop(header, iv, 1, limit, br, inc)
        if self.inner is None or self._depth >= self.inner[0]:
            self.inner = (self._depth, header, s.kind)
        self._depth -= 1
        self.new_block("X")

    # -- driver ---------------------------------------------------------------------

    def lower(self) -> LoweredKernel:
        # fixed registers for every declared scalar up front, so harness
        # bindings and outputs are well-defined even for unreferenced ones;
        # pinning keeps them from being re-allocated after dead-code removal
        for name in self.kernel.scalars:
            self.func.pinned_regs.add(self.scalar_reg(name))
        for s in self.kernel.body:
            self.lower_stmt(s)
        # terminate: explicit halt so fix-up blocks can be appended later
        exit_blk = self.func.add_block("exit")
        exit_blk.append(Instr(Op.HALT))
        if self.inner is None:
            raise ValueError(f"kernel {self.kernel.name} has no loop")
        from ..ir.verify import verify_function

        verify_function(self.func)
        return LoweredKernel(
            self.kernel,
            self.func,
            self.scalar_regs,
            self.counted,
            self.inner[1],
            self.inner[2],
        )


def lower_kernel(kernel: Kernel) -> LoweredKernel:
    return Lowerer(kernel).lower()
