"""Abstract syntax for the FORTRAN-like kernel language.

The 40 loop nests of the evaluation (Table 2) are written in this small
language: scalar and array declarations, ``DO`` loops with unit step,
``IF`` statements, and arithmetic over int/fp expressions.  Arrays are
column-major with 1-based subscripts, like the FORTRAN sources the paper
extracted its loops from.

Construction helpers keep kernels readable::

    i = var("i")
    body = [assign(aref("C", i), aref("A", i) + aref("B", i))]
    k = Kernel("add", arrays={...}, body=[do("i", 1, var("n"), body)])
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Ty(enum.Enum):
    INT = "int"
    FP = "fp"


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class; operators build ``Bin`` nodes."""

    def __add__(self, other):
        return Bin("+", self, wrap(other))

    def __radd__(self, other):
        return Bin("+", wrap(other), self)

    def __sub__(self, other):
        return Bin("-", self, wrap(other))

    def __rsub__(self, other):
        return Bin("-", wrap(other), self)

    def __mul__(self, other):
        return Bin("*", self, wrap(other))

    def __rmul__(self, other):
        return Bin("*", wrap(other), self)

    def __truediv__(self, other):
        return Bin("/", self, wrap(other))

    def __rtruediv__(self, other):
        return Bin("/", wrap(other), self)

    def __mod__(self, other):
        return Bin("%", self, wrap(other))

    def __neg__(self):
        return Neg(self)

    # comparisons build conditions (not booleans)
    def __lt__(self, other):
        return Cmp("<", self, wrap(other))

    def __le__(self, other):
        return Cmp("<=", self, wrap(other))

    def __gt__(self, other):
        return Cmp(">", self, wrap(other))

    def __ge__(self, other):
        return Cmp(">=", self, wrap(other))

    def eq(self, other):
        return Cmp("==", self, wrap(other))

    def ne(self, other):
        return Cmp("!=", self, wrap(other))


@dataclass(eq=False)
class Const(Expr):
    value: float | int

    @property
    def is_int(self) -> bool:
        return isinstance(self.value, int)


@dataclass(eq=False)
class VarRef(Expr):
    name: str


@dataclass(eq=False)
class ArrayRef(Expr):
    name: str
    idxs: tuple


@dataclass(eq=False)
class Bin(Expr):
    op: str  # + - * / %
    l: Expr
    r: Expr


@dataclass(eq=False)
class Neg(Expr):
    e: Expr


@dataclass(eq=False)
class Cvt(Expr):
    """Explicit int -> fp conversion (FLOAT(e))."""

    e: Expr


@dataclass(eq=False)
class Cmp:
    op: str  # < <= > >= == !=
    l: Expr
    r: Expr


def wrap(v) -> Expr:
    if isinstance(v, Expr):
        return v
    if isinstance(v, (int, float)):
        return Const(v)
    raise TypeError(f"cannot use {v!r} in an expression")


def var(name: str) -> VarRef:
    return VarRef(name)


def aref(name: str, *idxs) -> ArrayRef:
    return ArrayRef(name, tuple(wrap(i) for i in idxs))


def flt(e) -> Cvt:
    return Cvt(wrap(e))


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


class Stmt:
    pass


@dataclass(eq=False)
class Assign(Stmt):
    target: VarRef | ArrayRef
    value: Expr


@dataclass(eq=False)
class If(Stmt):
    cond: Cmp
    then: list
    els: list = field(default_factory=list)
    #: static probability the THEN side executes (trace selection hint)
    p_then: float = 0.5


@dataclass(eq=False)
class Do(Stmt):
    """``DO var = lo, hi`` with unit step; executes at least once when
    lo <= hi (the corpus guarantees non-zero trip counts)."""

    var: str
    lo: Expr
    hi: Expr
    body: list
    #: KAP-style classification of THIS loop: 'doall', 'doacross', 'serial'
    kind: str = "serial"


def assign(target, value) -> Assign:
    return Assign(target, wrap(value))


def do(v: str, lo, hi, body: list, kind: str = "serial") -> Do:
    return Do(v, wrap(lo), wrap(hi), body, kind)


def if_(cond: Cmp, then: list, els: list | None = None, p_then: float = 0.5) -> If:
    return If(cond, then, els or [], p_then)


# ---------------------------------------------------------------------------
# kernel container
# ---------------------------------------------------------------------------


@dataclass
class ArrayDecl:
    ty: Ty
    dims: tuple[int, ...]  # concrete extents, column-major

    @property
    def size(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n


@dataclass
class Kernel:
    """A loop-nest kernel: declarations + statements.

    ``scalars`` maps names to types; input scalars are bound by the
    harness, ``outputs`` lists the scalars read back after the run.
    """

    name: str
    body: list
    arrays: dict[str, ArrayDecl] = field(default_factory=dict)
    scalars: dict[str, Ty] = field(default_factory=dict)
    outputs: list[str] = field(default_factory=list)

    def inner_do(self) -> Do:
        """The innermost DO loop (the evaluation target)."""
        d = None
        stmts = self.body
        while True:
            dos = [s for s in stmts if isinstance(s, Do)]
            if not dos:
                break
            d = dos[-1]
            stmts = d.body
        if d is None:
            raise ValueError(f"kernel {self.name} has no loop")
        return d

    def nest_depth(self) -> int:
        def depth(stmts) -> int:
            best = 0
            for s in stmts:
                if isinstance(s, Do):
                    best = max(best, 1 + depth(s.body))
                elif isinstance(s, If):
                    best = max(best, depth(s.then), depth(s.els))
            return best

        return depth(self.body)
