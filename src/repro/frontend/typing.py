"""Type inference and checking for kernel ASTs.

INT and FP are the only value types.  Mixed arithmetic promotes to FP via
an implicit conversion (like FORTRAN's REAL promotion); array subscripts
and loop bounds must be INT.
"""

from __future__ import annotations

from .ast import (
    ArrayRef,
    Assign,
    Bin,
    Cmp,
    Const,
    Cvt,
    Do,
    Expr,
    If,
    Kernel,
    Neg,
    Stmt,
    Ty,
    VarRef,
)


class TypeError_(TypeError):
    pass


class TypeEnv:
    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.scalars = dict(kernel.scalars)

    def expr_type(self, e: Expr) -> Ty:
        if isinstance(e, Const):
            return Ty.INT if isinstance(e.value, int) else Ty.FP
        if isinstance(e, VarRef):
            try:
                return self.scalars[e.name]
            except KeyError:
                raise TypeError_(f"undeclared scalar {e.name!r}") from None
        if isinstance(e, ArrayRef):
            try:
                decl = self.kernel.arrays[e.name]
            except KeyError:
                raise TypeError_(f"undeclared array {e.name!r}") from None
            if len(e.idxs) != len(decl.dims):
                raise TypeError_(
                    f"{e.name}: {len(e.idxs)} subscripts for {len(decl.dims)}-D array"
                )
            for idx in e.idxs:
                if self.expr_type(idx) is not Ty.INT:
                    raise TypeError_(f"{e.name}: non-integer subscript")
            return decl.ty
        if isinstance(e, Bin):
            lt, rt = self.expr_type(e.l), self.expr_type(e.r)
            if e.op == "%" and (lt is not Ty.INT or rt is not Ty.INT):
                raise TypeError_("% requires integer operands")
            return Ty.FP if Ty.FP in (lt, rt) else Ty.INT
        if isinstance(e, Neg):
            return self.expr_type(e.e)
        if isinstance(e, Cvt):
            if self.expr_type(e.e) is not Ty.INT:
                raise TypeError_("FLOAT() of a non-integer")
            return Ty.FP
        raise TypeError_(f"unknown expression {e!r}")

    def check_stmt(self, s: Stmt) -> None:
        if isinstance(s, Assign):
            tt = self.expr_type(s.target)
            vt = self.expr_type(s.value)
            if tt is Ty.INT and vt is Ty.FP:
                raise TypeError_("cannot assign fp value to int target")
        elif isinstance(s, If):
            self.expr_type(s.cond.l)
            self.expr_type(s.cond.r)
            for st in s.then:
                self.check_stmt(st)
            for st in s.els:
                self.check_stmt(st)
        elif isinstance(s, Do):
            if self.expr_type(s.lo) is not Ty.INT or self.expr_type(s.hi) is not Ty.INT:
                raise TypeError_(f"DO {s.var}: non-integer bounds")
            if s.var in self.scalars and self.scalars[s.var] is not Ty.INT:
                raise TypeError_(f"loop variable {s.var} declared non-integer")
            self.scalars.setdefault(s.var, Ty.INT)
            for st in s.body:
                self.check_stmt(st)
        else:
            raise TypeError_(f"unknown statement {s!r}")


def check_kernel(kernel: Kernel) -> TypeEnv:
    """Validate the kernel; returns the environment (loop vars added)."""
    env = TypeEnv(kernel)
    for name in kernel.outputs:
        if name not in kernel.scalars:
            raise TypeError_(f"output {name!r} is not a declared scalar")
    for s in kernel.body:
        env.check_stmt(s)
    return env
