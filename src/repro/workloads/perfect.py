"""The 29 PERFECT-club loop nests of Table 2.

Synthetic stand-ins matched row-by-row to the paper's table: source-line
count, nesting depth, KAP loop classification of the innermost loop, and
presence of conditionals.  See DESIGN.md §3 for the substitution rationale.
Simulated trip counts are scaled down from the paper's (kept as
``paper_iters``).
"""

from __future__ import annotations

import numpy as np

from ..frontend.ast import ArrayDecl, Kernel, Ty, aref, assign, do, if_, var
from .corpus import Workload, ints, near_one, pos, register

_F = Ty.FP
_I = Ty.INT


def _fp2(*names):
    return {n: _F for n in names}


# ---------------------------------------------------------------------------
# APS: air pollution simulation style elementwise sweeps
# ---------------------------------------------------------------------------

def _aps1() -> Workload:
    NI, NJ = 64, 3

    def build():
        i, j, q = var("i"), var("j"), var("q")
        return Kernel(
            "APS-1",
            arrays={n: ArrayDecl(_F, (NI, NJ)) for n in "ABTC"},
            scalars={"q": _F},
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(aref("T", i, j), aref("A", i, j) * q + aref("B", i, j)),
                assign(aref("C", i, j), aref("T", i, j) * aref("B", i, j)),
            ], kind="doall")])],
        )

    def data(rng):
        return (
            {"A": ints(rng, (NI, NJ)), "B": ints(rng, (NI, NJ)),
             "T": np.zeros((NI, NJ)), "C": np.zeros((NI, NJ))},
            {"q": 3.0},
        )

    def ref(a, s):
        T = a["A"] * s["q"] + a["B"]
        return {"T": T, "C": T * a["B"]}, {}

    return Workload("APS-1", "PERFECT", 2, 64, 2, "doall", False, build, data, ref)


def _aps2() -> Workload:
    NI, NJ = 31, 3

    def build():
        i, j = var("i"), var("j")
        q, r = var("q"), var("r")
        t1, t2, t3, t4, t5 = (var(n) for n in ("t1", "t2", "t3", "t4", "t5"))
        A, B, C = aref("A", i, j), aref("B", i, j), aref("C", i, j)
        return Kernel(
            "APS-2",
            arrays={n: ArrayDecl(_F, (NI, NJ)) for n in "ABCDEF"},
            scalars={"q": _F, "r": _F, **_fp2("t1", "t2", "t3", "t4", "t5")},
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(t1, A + B),
                assign(t2, A - B),
                assign(t3, t1 * t2),
                assign(aref("D", i, j), t3 + q),
                assign(t4, C * t1),
                assign(aref("E", i, j), t4 - t3),
                assign(t5, t4 + t2),
                assign(aref("F", i, j), t5 * r),
            ], kind="doall")])],
        )

    def data(rng):
        arrs = {n: ints(rng, (NI, NJ)) for n in "ABC"}
        arrs.update({n: np.zeros((NI, NJ)) for n in "DEF"})
        return arrs, {"q": 2.0, "r": 0.5}

    def ref(a, s):
        t1 = a["A"] + a["B"]
        t2 = a["A"] - a["B"]
        t3 = t1 * t2
        t4 = a["C"] * t1
        t5 = t4 + t2
        return {"D": t3 + s["q"], "E": t4 - t3, "F": t5 * s["r"]}, {}

    return Workload("APS-2", "PERFECT", 8, 31, 2, "doall", False, build, data, ref)


def _aps3() -> Workload:
    N = 96

    def build():
        i, q, t = var("i"), var("q"), var("t")
        return Kernel(
            "APS-3",
            arrays={n: ArrayDecl(_F, (N,)) for n in "ABC"},
            scalars={"q": _F, "t": _F},
            body=[do("i", 1, N, [
                assign(t, aref("A", i) * q),
                assign(aref("B", i), t + aref("C", i)),
            ], kind="doall")],
        )

    def data(rng):
        return ({"A": ints(rng, N), "B": np.zeros(N), "C": ints(rng, N)},
                {"q": 2.5})

    def ref(a, s):
        return {"B": a["A"] * s["q"] + a["C"]}, {}

    return Workload("APS-3", "PERFECT", 2, 776, 1, "doall", False, build, data, ref)


# ---------------------------------------------------------------------------
# CSS: circuit simulation — serial scalar recurrence with a clamp
# ---------------------------------------------------------------------------

def _css1() -> Workload:
    N = 64

    def build():
        i, t, x = var("i"), var("t"), var("x")
        return Kernel(
            "CSS-1",
            arrays={n: ArrayDecl(_F, (N,)) for n in "ABC"},
            scalars={"q": _F, "c": _F, "r": _F, "x": _F, "t": _F},
            outputs=["x"],
            body=[do("i", 1, N, [
                assign(t, aref("A", i) - x * var("q")),
                if_(t < var("c"), [assign(t, t + aref("B", i))], p_then=0.5),
                assign(x, t * var("r")),
                assign(aref("C", i), x),
            ], kind="serial")],
        )

    def data(rng):
        return ({"A": ints(rng, N), "B": ints(rng, N), "C": np.zeros(N)},
                {"q": 0.5, "c": 5.0, "r": 0.5, "x": 0.0})

    def ref(a, s):
        x = s["x"]
        C = np.zeros_like(a["C"])
        for k in range(len(C)):
            t = a["A"][k] - x * s["q"]
            if t < s["c"]:
                t = t + a["B"][k]
            x = t * s["r"]
            C[k] = x
        return {"C": C}, {"x": x}

    return Workload("CSS-1", "PERFECT", 6, 67, 1, "serial", True, build, data, ref)


# ---------------------------------------------------------------------------
# LWS: first-order linear recurrences (wave solver style)
# ---------------------------------------------------------------------------

def _lws1() -> Workload:
    NI, NJ = 96, 2

    def build():
        i, j, q, t = var("i"), var("j"), var("q"), var("t")
        return Kernel(
            "LWS-1",
            arrays={"A": ArrayDecl(_F, (NI, NJ)), "B": ArrayDecl(_F, (NI, NJ))},
            scalars={"q": _F, "t": _F},
            body=[do("j", 1, NJ, [do("i", 2, NI, [
                assign(t, aref("A", i - 1, j) * q),
                assign(aref("A", i, j), t + aref("B", i, j)),
            ], kind="serial")])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI, NJ)), "B": ints(rng, (NI, NJ))}, {"q": 0.5})

    def ref(a, s):
        A = a["A"].copy()
        for j in range(A.shape[1]):
            for i in range(1, A.shape[0]):
                A[i, j] = A[i - 1, j] * s["q"] + a["B"][i, j]
        return {"A": A}, {}

    return Workload("LWS-1", "PERFECT", 2, 343, 2, "serial", False, build, data, ref)


def _lws2() -> Workload:
    NI, NJ = 96, 2

    def build():
        i, j = var("i"), var("j")
        return Kernel(
            "LWS-2",
            arrays={"A": ArrayDecl(_F, (NI, NJ)), "B": ArrayDecl(_F, (NI, NJ))},
            scalars={"s": _F},
            outputs=["s"],
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(var("s"), var("s") + aref("A", i, j) * aref("B", i, j)),
            ], kind="serial")])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI, NJ)), "B": ints(rng, (NI, NJ))}, {"s": 0.0})

    def ref(a, s):
        return {}, {"s": s["s"] + float((a["A"] * a["B"]).sum())}

    return Workload("LWS-2", "PERFECT", 1, 3087, 2, "serial", False, build, data, ref)


# ---------------------------------------------------------------------------
# MTS: conditional accumulation and a 3-deep minimum search
# ---------------------------------------------------------------------------

def _mts1() -> Workload:
    NI, NJ = 96, 2

    def build():
        i, j, t = var("i"), var("j"), var("t")
        return Kernel(
            "MTS-1",
            arrays={"A": ArrayDecl(_F, (NI, NJ))},
            scalars={"c": _F, "s": _F, "t": _F},
            outputs=["s"],
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(t, aref("A", i, j)),
                if_(t > var("c"), [assign(var("s"), var("s") + t)], p_then=0.55),
            ], kind="serial")])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI, NJ))}, {"c": 4.0, "s": 0.0})

    def ref(a, s):
        A = a["A"]
        return {}, {"s": s["s"] + float(A[A > s["c"]].sum())}

    return Workload("MTS-1", "PERFECT", 2, 423, 2, "serial", True, build, data, ref)


def _mts2() -> Workload:
    NI, NJ, NK = 24, 2, 2

    def build():
        i, j, k, t = var("i"), var("j"), var("k"), var("t")
        return Kernel(
            "MTS-2",
            arrays={"A": ArrayDecl(_F, (NI, NJ, NK))},
            scalars={"m": _F, "t": _F},
            outputs=["m"],
            body=[do("k", 1, NK, [do("j", 1, NJ, [do("i", 1, NI, [
                assign(t, aref("A", i, j, k)),
                if_(t < var("m"), [assign(var("m"), t)], p_then=0.8),
            ], kind="serial")])])],
        )

    def data(rng):
        # descending ramps make the minimum update frequently: the search
        # recurrence is then on the critical path (search expansion target)
        base = np.arange(NI * NJ * NK, 0.0, -1.0).reshape((NI, NJ, NK), order="F")
        noise = rng.integers(0, 2, (NI, NJ, NK)).astype(np.float64)
        return ({"A": base + noise}, {"m": 1e9})

    def ref(a, s):
        return {}, {"m": min(float(a["A"].min()), s["m"])}

    return Workload("MTS-2", "PERFECT", 2, 24, 3, "serial", True, build, data, ref)


# ---------------------------------------------------------------------------
# NAS: long elementwise bodies, a prefix recurrence, a big serial body,
# and a distance-2 DOACROSS
# ---------------------------------------------------------------------------

def _nas1() -> Workload:
    N = 96

    def build():
        i = var("i")
        wr, wi, c1, c2, q = (var(n) for n in ("wr", "wi", "c1", "c2", "q"))
        t = {k: var(f"t{k}") for k in range(1, 13)}
        XR, XI = aref("XR", i), aref("XI", i)
        YR, YI = aref("YR", i), aref("YI", i)
        names = ["XR", "XI", "YR", "YI", "ZR", "ZI", "WR", "WI",
                 "UR", "UI", "VR", "VI", "SR", "SI"]
        return Kernel(
            "NAS-1",
            arrays={n: ArrayDecl(_F, (N,)) for n in names},
            scalars={"wr": _F, "wi": _F, "c1": _F, "c2": _F, "q": _F,
                     **{f"t{k}": _F for k in range(1, 13)}},
            body=[do("i", 1, N, [
                assign(t[1], XR * wr - XI * wi),
                assign(t[2], XR * wi + XI * wr),
                assign(t[3], YR + t[1]),
                assign(t[4], YI + t[2]),
                assign(t[5], YR - t[1]),
                assign(t[6], YI - t[2]),
                assign(aref("ZR", i), t[3] * c1 + t[4] * c2),
                assign(aref("ZI", i), t[4] * c1 - t[3] * c2),
                assign(aref("WR", i), t[5] * c1 + t[6] * c2),
                assign(aref("WI", i), t[6] * c1 - t[5] * c2),
                assign(t[7], t[3] * t[5] - t[4] * t[6]),
                assign(t[8], t[3] * t[6] + t[4] * t[5]),
                assign(aref("UR", i), t[7] + q),
                assign(aref("UI", i), t[8] - q),
                assign(t[9], t[7] * c1),
                assign(t[10], t[8] * c2),
                assign(aref("VR", i), t[9] - t[10]),
                assign(aref("VI", i), t[9] + t[10]),
                assign(t[11], t[1] * t[2]),
                assign(t[12], t[11] - c1),
                assign(aref("SR", i), t[12] * q),
                assign(aref("SI", i), t[11] + t[12]),
            ], kind="doall")],
        )

    def data(rng):
        arrs = {n: ints(rng, N, 1, 5) for n in ("XR", "XI", "YR", "YI")}
        for n in ("ZR", "ZI", "WR", "WI", "UR", "UI", "VR", "VI", "SR", "SI"):
            arrs[n] = np.zeros(N)
        return arrs, {"wr": 2.0, "wi": 1.0, "c1": 3.0, "c2": 2.0, "q": 1.0}

    def ref(a, s):
        t1 = a["XR"] * s["wr"] - a["XI"] * s["wi"]
        t2 = a["XR"] * s["wi"] + a["XI"] * s["wr"]
        t3, t4 = a["YR"] + t1, a["YI"] + t2
        t5, t6 = a["YR"] - t1, a["YI"] - t2
        t7 = t3 * t5 - t4 * t6
        t8 = t3 * t6 + t4 * t5
        t9, t10 = t7 * s["c1"], t8 * s["c2"]
        t11 = t1 * t2
        t12 = t11 - s["c1"]
        return {
            "ZR": t3 * s["c1"] + t4 * s["c2"], "ZI": t4 * s["c1"] - t3 * s["c2"],
            "WR": t5 * s["c1"] + t6 * s["c2"], "WI": t6 * s["c1"] - t5 * s["c2"],
            "UR": t7 + s["q"], "UI": t8 - s["q"],
            "VR": t9 - t10, "VI": t9 + t10,
            "SR": t12 * s["q"], "SI": t11 + t12,
        }, {}

    return Workload("NAS-1", "PERFECT", 22, 1500, 1, "doall", False, build, data, ref)


def _nas2() -> Workload:
    N = 96

    def build():
        i, q = var("i"), var("q")
        t1, t2, t3 = var("t1"), var("t2"), var("t3")
        return Kernel(
            "NAS-2",
            arrays={n: ArrayDecl(_F, (N,)) for n in "ABCD"},
            scalars={"q": _F, "t1": _F, "t2": _F, "t3": _F},
            body=[do("i", 1, N, [
                assign(t1, aref("A", i) + aref("B", i)),
                assign(t2, aref("A", i) - aref("B", i)),
                assign(aref("C", i), t1 * t2),
                assign(t3, t1 * q + t2),
                assign(aref("D", i), t3 * t3),
            ], kind="doall")],
        )

    def data(rng):
        return ({"A": ints(rng, N), "B": ints(rng, N),
                 "C": np.zeros(N), "D": np.zeros(N)}, {"q": 2.0})

    def ref(a, s):
        t1, t2 = a["A"] + a["B"], a["A"] - a["B"]
        t3 = t1 * s["q"] + t2
        return {"C": t1 * t2, "D": t3 * t3}, {}

    return Workload("NAS-2", "PERFECT", 5, 1520, 1, "doall", False, build, data, ref)


def _nas3() -> Workload:
    N = 128

    def build():
        i, q, r, c = var("i"), var("q"), var("r"), var("c")
        t1, t2, t3, t4 = var("t1"), var("t2"), var("t3"), var("t4")
        return Kernel(
            "NAS-3",
            arrays={n: ArrayDecl(_F, (N,)) for n in "ABCD"},
            scalars={"q": _F, "r": _F, "c": _F, "t1": _F, "t2": _F, "t3": _F, "t4": _F},
            body=[do("i", 1, N, [
                assign(t1, aref("A", i) * q),
                assign(t2, aref("B", i) * r),
                assign(t3, t1 + t2),
                assign(aref("C", i), t3 + c),
                assign(t4, t1 - t2),
                assign(aref("D", i), t4 * t3),
            ], kind="doall")],
        )

    def data(rng):
        return ({"A": ints(rng, N), "B": ints(rng, N),
                 "C": np.zeros(N), "D": np.zeros(N)},
                {"q": 2.0, "r": 3.0, "c": 1.0})

    def ref(a, s):
        t1, t2 = a["A"] * s["q"], a["B"] * s["r"]
        t3, t4 = t1 + t2, t1 - t2
        return {"C": t3 + s["c"], "D": t4 * t3}, {}

    return Workload("NAS-3", "PERFECT", 6, 6000, 1, "doall", False, build, data, ref)


def _nas4() -> Workload:
    N = 96

    def build():
        i, t = var("i"), var("t")
        return Kernel(
            "NAS-4",
            arrays={"A": ArrayDecl(_F, (N,)), "B": ArrayDecl(_F, (N,))},
            scalars={"t": _F},
            body=[do("i", 2, N, [
                assign(t, aref("B", i - 1) + aref("A", i)),
                assign(aref("B", i), t),
            ], kind="serial")],
        )

    def data(rng):
        return ({"A": ints(rng, N), "B": ints(rng, N)}, {})

    def ref(a, s):
        B = a["B"].copy()
        for i in range(1, len(B)):
            B[i] = B[i - 1] + a["A"][i]
        return {"B": B}, {}

    return Workload("NAS-4", "PERFECT", 2, 1204, 1, "serial", False, build, data, ref)


def _nas5() -> Workload:
    """71-line body: eight reaction-channel updates feeding two
    accumulators, plus a tail of elementwise writes.  Serial because of the
    reductions."""
    NI, NJ = 64, 2
    COEF = [(0.5 + k, 1.0 + 0.5 * k) for k in range(8)]

    def build():
        i, j, q = var("i"), var("j"), var("q")
        A, B = aref("A", i, j), aref("B", i, j)
        stmts = []
        for k, (c, d) in enumerate(COEF):
            t1, t2, t3, t4, t5, t6 = (var(f"k{k}_{m}") for m in range(6))
            stmts += [
                assign(t1, A * c + B),
                assign(t2, t1 * t1),
                assign(t3, t2 - A),
                assign(t4, t3 * d),
                assign(var("s1"), var("s1") + t4),
                assign(t5, t4 + t2),
                assign(t6, t5 * c),
                assign(var("s2"), var("s2") + t6),
            ]
        t7, t8 = var("t7"), var("t8")
        stmts += [
            assign(t7, A - B),
            assign(t8, t7 * q),
            assign(aref("D", i, j), t8 * t7),
            assign(aref("E", i, j), t8 + t7),
            assign(aref("F", i, j), t7 + q),
            assign(aref("G", i, j), t8 * t8),
            assign(aref("H", i, j), t8 - A),
        ]
        scalars = {"q": _F, "s1": _F, "s2": _F, "t7": _F, "t8": _F}
        for k in range(8):
            scalars.update({f"k{k}_{m}": _F for m in range(6)})
        return Kernel(
            "NAS-5",
            arrays={n: ArrayDecl(_F, (NI, NJ)) for n in "ABDEFGH"},
            scalars=scalars,
            outputs=["s1", "s2"],
            body=[do("j", 1, NJ, [do("i", 1, NI, stmts, kind="serial")])],
        )

    def data(rng):
        arrs = {"A": ints(rng, (NI, NJ), 1, 4), "B": ints(rng, (NI, NJ), 1, 4)}
        for n in "DEFGH":
            arrs[n] = np.zeros((NI, NJ))
        return arrs, {"q": 2.0, "s1": 0.0, "s2": 0.0}

    def ref(a, s):
        A, B, q = a["A"], a["B"], s["q"]
        s1 = s["s1"]
        s2 = s["s2"]
        for c, d in COEF:
            t1 = A * c + B
            t2 = t1 * t1
            t3 = t2 - A
            t4 = t3 * d
            s1 += t4.sum()
            t5 = t4 + t2
            s2 += (t5 * c).sum()
        t7 = A - B
        t8 = t7 * q
        return (
            {"D": t8 * t7, "E": t8 + t7, "F": t7 + q, "G": t8 * t8, "H": t8 - A},
            {"s1": float(s1), "s2": float(s2)},
        )

    return Workload(
        "NAS-5", "PERFECT", 71, 1500, 2, "serial", False, build, data, ref,
        rtol=1e-7,
    )


def _nas6() -> Workload:
    NI, NJ = 96, 2

    def build():
        i, j, q, r = var("i"), var("j"), var("q"), var("r")
        t = {k: var(f"t{k}") for k in range(1, 12)}
        A, B = aref("A", i, j), aref("B", i, j)
        C = aref("C", i, j)
        return Kernel(
            "NAS-6",
            arrays={n: ArrayDecl(_F, (NI, NJ)) for n in "ABCDEFGH"},
            scalars={"q": _F, "r": _F, **{f"t{k}": _F for k in range(1, 12)}},
            body=[do("j", 1, NJ, [do("i", 1, NI - 2, [
                # distance-2 carried dependence through A
                assign(t[1], A * q),
                assign(t[2], t[1] + B),
                assign(aref("A", i + 2, j), t[2] * r),
                # independent elementwise tail
                assign(t[3], B + C),
                assign(t[4], B - C),
                assign(t[5], t[3] * t[4]),
                assign(aref("D", i, j), t[5] + q),
                assign(t[6], t[3] * r),
                assign(aref("E", i, j), t[6] - t[4]),
                assign(t[7], t[5] + t[6]),
                assign(aref("F", i, j), t[7] * q),
                assign(t[8], t[7] - t[1]),
                assign(t[9], t[8] * t[8]),
                assign(aref("G", i, j), t[9] + r),
                assign(t[10], t[9] - t[5]),
                assign(t[11], t[10] * q),
                assign(aref("H", i, j), t[11] + t[3]),
            ], kind="doacross")])],
        )

    def data(rng):
        arrs = {n: ints(rng, (NI, NJ), 1, 3) for n in "ABC"}
        for n in "DEFGH":
            arrs[n] = np.zeros((NI, NJ))
        return arrs, {"q": 0.5, "r": 0.5}

    def ref(a, s):
        A = a["A"].copy()
        B, C, q, r = a["B"], a["C"], s["q"], s["r"]
        out = {n: np.zeros_like(A) for n in "DEFGH"}
        for j in range(NJ):
            for i in range(NI - 2):
                t1 = A[i, j] * q
                t2 = t1 + B[i, j]
                A[i + 2, j] = t2 * r
                t3 = B[i, j] + C[i, j]
                t4 = B[i, j] - C[i, j]
                t5 = t3 * t4
                out["D"][i, j] = t5 + q
                t6 = t3 * r
                out["E"][i, j] = t6 - t4
                t7 = t5 + t6
                out["F"][i, j] = t7 * q
                t8 = t7 - t1
                t9 = t8 * t8
                out["G"][i, j] = t9 + r
                t10 = t9 - t5
                t11 = t10 * q
                out["H"][i, j] = t11 + t3
        return {"A": A, **out}, {}

    return Workload("NAS-6", "PERFECT", 24, 635, 2, "doacross", False, build, data, ref)


# ---------------------------------------------------------------------------
# SDS: small reductions and recurrences
# ---------------------------------------------------------------------------

def _sds1() -> Workload:
    NI, NJ = 25, 3

    def build():
        i, j = var("i"), var("j")
        return Kernel(
            "SDS-1",
            arrays={"A": ArrayDecl(_F, (NI, NJ))},
            scalars={"p": _F},
            outputs=["p"],
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(var("p"), var("p") * aref("A", i, j)),
            ], kind="serial")])],
        )

    def data(rng):
        return ({"A": near_one(rng, (NI, NJ))}, {"p": 1.0})

    def ref(a, s):
        return {}, {"p": s["p"] * float(np.prod(a["A"]))}

    return Workload(
        "SDS-1", "PERFECT", 1, 25, 2, "serial", False, build, data, ref,
        rtol=1e-7,
    )


def _sds2() -> Workload:
    NI, NJ, NK = 32, 2, 2

    def build():
        i, j, k = var("i"), var("j"), var("k")
        return Kernel(
            "SDS-2",
            arrays={"A": ArrayDecl(_F, (NI, NJ, NK))},
            scalars={"s": _F},
            outputs=["s"],
            body=[do("k", 1, NK, [do("j", 1, NJ, [do("i", 1, NI, [
                assign(var("s"), var("s") + aref("A", i, j, k)),
            ], kind="serial")])])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI, NJ, NK))}, {"s": 0.0})

    def ref(a, s):
        return {}, {"s": s["s"] + float(a["A"].sum())}

    return Workload("SDS-2", "PERFECT", 1, 32, 3, "serial", False, build, data, ref)


def _sds3() -> Workload:
    NI, NJ = 26, 3

    def build():
        i, j, q = var("i"), var("j"), var("q")
        return Kernel(
            "SDS-3",
            arrays={"A": ArrayDecl(_F, (NI, NJ))},
            scalars={"q": _F},
            body=[do("j", 1, NJ, [do("i", 2, NI, [
                assign(aref("A", i, j), aref("A", i - 1, j) * q),
            ], kind="serial")])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI, NJ))}, {"q": 0.5})

    def ref(a, s):
        A = a["A"].copy()
        for j in range(NJ):
            for i in range(1, NI):
                A[i, j] = A[i - 1, j] * s["q"]
        return {"A": A}, {}

    return Workload("SDS-3", "PERFECT", 1, 25, 2, "serial", False, build, data, ref)


def _sds4() -> Workload:
    NI, NJ = 25, 3

    def build():
        i, j, q, t = var("i"), var("j"), var("q"), var("t")
        return Kernel(
            "SDS-4",
            arrays={"A": ArrayDecl(_F, (NI + 1, NJ)),
                    "B": ArrayDecl(_F, (NI, NJ)),
                    "C": ArrayDecl(_F, (NI, NJ))},
            scalars={"q": _F, "t": _F},
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(t, aref("B", i, j) * q),
                assign(aref("A", i + 1, j), t),
                assign(aref("C", i, j), aref("A", i, j) + t),
            ], kind="doacross")])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI + 1, NJ)), "B": ints(rng, (NI, NJ)),
                 "C": np.zeros((NI, NJ))}, {"q": 2.0})

    def ref(a, s):
        A = a["A"].copy()
        C = np.zeros((NI, NJ))
        for j in range(NJ):
            for i in range(NI):
                t = a["B"][i, j] * s["q"]
                A[i + 1, j] = t
                C[i, j] = A[i, j] + t
        return {"A": A, "C": C}, {}

    return Workload("SDS-4", "PERFECT", 3, 25, 2, "doacross", False, build, data, ref)


# ---------------------------------------------------------------------------
# SRS: structural analysis sweeps
# ---------------------------------------------------------------------------

def _srs1() -> Workload:
    N = 96

    def build():
        i, t, u = var("i"), var("t"), var("u")
        return Kernel(
            "SRS-1",
            arrays={n: ArrayDecl(_F, (N,)) for n in "ABC"},
            scalars={"t": _F, "u": _F},
            body=[do("i", 1, N, [
                assign(t, aref("A", i) + aref("B", i)),
                assign(u, aref("A", i) - aref("B", i)),
                assign(aref("C", i), t * u),
            ], kind="doall")],
        )

    def data(rng):
        return ({"A": ints(rng, N), "B": ints(rng, N), "C": np.zeros(N)}, {})

    def ref(a, s):
        return {"C": (a["A"] + a["B"]) * (a["A"] - a["B"])}, {}

    return Workload("SRS-1", "PERFECT", 3, 287, 1, "doall", False, build, data, ref)


def _srs2() -> Workload:
    NI, NJ = 72, 2

    def build():
        i, j, q, r = var("i"), var("j"), var("q"), var("r")
        t, u = var("t"), var("u")
        return Kernel(
            "SRS-2",
            arrays={n: ArrayDecl(_F, (NI, NJ)) for n in "ABCDE"},
            scalars={"q": _F, "r": _F, "t": _F, "u": _F},
            body=[do("j", 1, NJ, [do("i", 2, NI, [
                assign(t, aref("A", i, j)),
                assign(aref("C", i, j), aref("C", i - 1, j) * q + t),
                assign(u, t * r),
                assign(aref("D", i, j), u + aref("B", i, j)),
                assign(aref("E", i, j), u * t),
            ], kind="doacross")])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI, NJ)), "B": ints(rng, (NI, NJ)),
                 "C": ints(rng, (NI, NJ)), "D": np.zeros((NI, NJ)),
                 "E": np.zeros((NI, NJ))}, {"q": 0.5, "r": 2.0})

    def ref(a, s):
        C = a["C"].copy()
        D = np.zeros((NI, NJ))
        E = np.zeros((NI, NJ))
        for j in range(NJ):
            for i in range(1, NI):
                t = a["A"][i, j]
                C[i, j] = C[i - 1, j] * s["q"] + t
                u = t * s["r"]
                D[i, j] = u + a["B"][i, j]
                E[i, j] = u * t
        return {"C": C, "D": D, "E": E}, {}

    return Workload("SRS-2", "PERFECT", 5, 287, 2, "doacross", False, build, data, ref)


def _srs3() -> Workload:
    NI, NJ = 96, 2

    def build():
        i, j = var("i"), var("j")
        return Kernel(
            "SRS-3",
            arrays={n: ArrayDecl(_F, (NI, NJ)) for n in "ABC"},
            scalars={},
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(aref("A", i, j), aref("B", i, j) * aref("C", i, j)),
            ], kind="doall")])],
        )

    def data(rng):
        return ({"A": np.zeros((NI, NJ)), "B": ints(rng, (NI, NJ)),
                 "C": ints(rng, (NI, NJ))}, {})

    def ref(a, s):
        return {"A": a["B"] * a["C"]}, {}

    return Workload("SRS-3", "PERFECT", 1, 287, 2, "doall", False, build, data, ref)


def _srs4() -> Workload:
    NI, NJ, NK = 87, 2, 2

    def build():
        i, j, k, q, r, c = var("i"), var("j"), var("k"), var("q"), var("r"), var("c")
        t = {m: var(f"t{m}") for m in range(1, 6)}
        A, B = aref("A", i, j, k), aref("B", i, j, k)
        return Kernel(
            "SRS-4",
            arrays={n: ArrayDecl(_F, (NI, NJ, NK)) for n in "ABCDEF"},
            scalars={"q": _F, "r": _F, "c": _F, **{f"t{m}": _F for m in range(1, 6)}},
            body=[do("k", 1, NK, [do("j", 1, NJ, [do("i", 1, NI, [
                assign(t[1], A + B),
                assign(t[2], A * q),
                assign(t[3], t[1] - t[2]),
                assign(aref("C", i, j, k), t[3] * r),
                assign(t[4], t[3] + t[1]),
                assign(aref("D", i, j, k), t[4] * t[2]),
                assign(t[5], t[4] - c),
                assign(aref("E", i, j, k), t[5] * t[5]),
                assign(aref("F", i, j, k), t[5] + t[3]),
            ], kind="doall")])])],
        )

    def data(rng):
        arrs = {"A": ints(rng, (NI, NJ, NK)), "B": ints(rng, (NI, NJ, NK))}
        for n in "CDEF":
            arrs[n] = np.zeros((NI, NJ, NK))
        return arrs, {"q": 2.0, "r": 3.0, "c": 1.0}

    def ref(a, s):
        t1 = a["A"] + a["B"]
        t2 = a["A"] * s["q"]
        t3 = t1 - t2
        t4 = t3 + t1
        t5 = t4 - s["c"]
        return {"C": t3 * s["r"], "D": t4 * t2, "E": t5 * t5, "F": t5 + t3}, {}

    return Workload("SRS-4", "PERFECT", 9, 87, 3, "doall", False, build, data, ref)


def _srs5() -> Workload:
    NI, NJ = 72, 2

    def build():
        i, j, q = var("i"), var("j"), var("q")
        a = {k: var(f"a{k}") for k in range(4)}
        b = {k: var(f"b{k}") for k in range(4)}
        t = {k: var(f"t{k}") for k in range(1, 4)}
        u = {k: var(f"u{k}") for k in range(1, 6)}
        v = {k: var(f"v{k}") for k in range(1, 6)}
        w = {k: var(f"w{k}") for k in range(1, 5)}
        X = aref("X", i, j)
        scalars = {"q": _F}
        for d in (a, b):
            scalars.update({vv.name: _F for vv in d.values()})
        for d in (t, u, v, w):
            scalars.update({vv.name: _F for vv in d.values()})
        return Kernel(
            "SRS-5",
            arrays={n: ArrayDecl(_F, (NI, NJ)) for n in "XPQRS"},
            scalars=scalars,
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(t[1], X),
                assign(t[2], t[1] * t[1]),
                assign(t[3], t[2] * t[1]),
                assign(u[1], t[3] * a[3]),
                assign(u[2], t[2] * a[2]),
                assign(u[3], t[1] * a[1]),
                assign(u[4], u[1] + u[2]),
                assign(u[5], u[4] + u[3]),
                assign(aref("P", i, j), u[5] + a[0]),
                assign(v[1], t[3] * b[3]),
                assign(v[2], t[2] * b[2]),
                assign(v[3], t[1] * b[1]),
                assign(v[4], v[1] + v[2]),
                assign(v[5], v[4] + v[3]),
                assign(aref("Q", i, j), v[5] + b[0]),
                assign(w[1], u[5] * v[5]),
                assign(w[2], u[5] - v[5]),
                assign(aref("R", i, j), w[1] * w[2]),
                assign(w[3], w[1] + t[2]),
                assign(w[4], w[3] * q),
                assign(aref("S", i, j), w[4] - t[3]),
            ], kind="doall")])],
        )

    def data(rng):
        arrs = {"X": ints(rng, (NI, NJ), 1, 4)}
        for n in "PQRS":
            arrs[n] = np.zeros((NI, NJ))
        return arrs, {"q": 0.5, "a0": 1.0, "a1": 2.0, "a2": 3.0, "a3": 1.0,
                      "b0": 2.0, "b1": 1.0, "b2": 2.0, "b3": 2.0}

    def ref(a_, s):
        t1 = a_["X"]
        t2 = t1 * t1
        t3 = t2 * t1
        u5 = t3 * s["a3"] + t2 * s["a2"] + t1 * s["a1"]
        v5 = t3 * s["b3"] + t2 * s["b2"] + t1 * s["b1"]
        w1 = u5 * v5
        w2 = u5 - v5
        return {
            "P": u5 + s["a0"], "Q": v5 + s["b0"], "R": w1 * w2,
            "S": (w1 + t2) * s["q"] - t3,
        }, {}

    return Workload("SRS-5", "PERFECT", 21, 287, 2, "doall", False, build, data, ref)


def _srs6() -> Workload:
    NI, NJ = 96, 2

    def build():
        i, j = var("i"), var("j")
        return Kernel(
            "SRS-6",
            arrays={"A": ArrayDecl(_F, (NI, NJ))},
            scalars={"s": _F},
            outputs=["s"],
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(var("s"), var("s") + aref("A", i, j)),
            ], kind="serial")])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI, NJ))}, {"s": 0.0})

    def ref(a, s):
        return {}, {"s": s["s"] + float(a["A"].sum())}

    return Workload("SRS-6", "PERFECT", 1, 287, 2, "serial", False, build, data, ref)


# ---------------------------------------------------------------------------
# TFS: flow solver sweeps with divisions and a recurrence
# ---------------------------------------------------------------------------

def _tfs1() -> Workload:
    NI, NJ = 72, 2

    def build():
        i, j, q, r, c = var("i"), var("j"), var("q"), var("r"), var("c")
        t = {k: var(f"t{k}") for k in range(1, 8)}
        return Kernel(
            "TFS-1",
            arrays={n: ArrayDecl(_F, (NI, NJ)) for n in "ABCDEFG"},
            scalars={"q": _F, "r": _F, "c": _F, **{f"t{k}": _F for k in range(1, 8)}},
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(t[1], aref("A", i, j) + q),
                assign(t[2], aref("B", i, j) / t[1]),
                assign(t[3], aref("C", i, j) / t[1]),
                assign(t[4], t[2] + t[3]),
                assign(t[5], t[2] - t[3]),
                assign(aref("D", i, j), t[4] * t[5]),
                assign(t[6], t[4] / r),
                assign(aref("E", i, j), t[6] + t[5]),
                assign(t[7], t[5] * c),
                assign(aref("F", i, j), t[7] - t[6]),
                assign(aref("G", i, j), t[7] * t[4]),
            ], kind="doall")])],
        )

    def data(rng):
        arrs = {"A": pos(rng, (NI, NJ)), "B": ints(rng, (NI, NJ)),
                "C": ints(rng, (NI, NJ))}
        for n in "DEFG":
            arrs[n] = np.zeros((NI, NJ))
        return arrs, {"q": 1.0, "r": 2.0, "c": 4.0}

    def ref(a, s):
        t1 = a["A"] + s["q"]
        t2 = a["B"] / t1
        t3 = a["C"] / t1
        t4, t5 = t2 + t3, t2 - t3
        t6 = t4 / s["r"]
        t7 = t5 * s["c"]
        return {"D": t4 * t5, "E": t6 + t5, "F": t7 - t6, "G": t7 * t4}, {}

    return Workload(
        "TFS-1", "PERFECT", 11, 89, 2, "doall", False, build, data, ref,
        rtol=1e-7,
    )


def _tfs2() -> Workload:
    NI, NJ = 80, 2

    def build():
        i, j, q, r, c = var("i"), var("j"), var("q"), var("r"), var("c")
        t1, t2, t3 = var("t1"), var("t2"), var("t3")
        return Kernel(
            "TFS-2",
            arrays={n: ArrayDecl(_F, (NI, NJ)) for n in "ABCDEF"},
            scalars={"q": _F, "r": _F, "c": _F, "t1": _F, "t2": _F, "t3": _F},
            body=[do("j", 1, NJ, [do("i", 2, NI, [
                assign(t1, aref("A", i, j) * q),
                assign(aref("B", i, j), aref("B", i - 1, j) + t1),
                assign(t2, t1 + aref("C", i, j)),
                assign(aref("D", i, j), t2 * r),
                assign(t3, t2 - t1),
                assign(aref("E", i, j), t3 * t2),
                assign(aref("F", i, j), t3 + c),
            ], kind="doacross")])],
        )

    def data(rng):
        arrs = {"A": ints(rng, (NI, NJ)), "B": ints(rng, (NI, NJ)),
                "C": ints(rng, (NI, NJ))}
        for n in "DEF":
            arrs[n] = np.zeros((NI, NJ))
        return arrs, {"q": 2.0, "r": 0.5, "c": 1.0}

    def ref(a, s):
        B = a["B"].copy()
        D = np.zeros((NI, NJ))
        E = np.zeros((NI, NJ))
        F = np.zeros((NI, NJ))
        for j in range(NJ):
            for i in range(1, NI):
                t1 = a["A"][i, j] * s["q"]
                B[i, j] = B[i - 1, j] + t1
                t2 = t1 + a["C"][i, j]
                D[i, j] = t2 * s["r"]
                t3 = t2 - t1
                E[i, j] = t3 * t2
                F[i, j] = t3 + s["c"]
        return {"B": B, "D": D, "E": E, "F": F}, {}

    return Workload("TFS-2", "PERFECT", 7, 120, 2, "doacross", False, build, data, ref)


def _tfs3() -> Workload:
    NI, NJ, NK = 49, 2, 2

    def build():
        i, j, k, q, t = var("i"), var("j"), var("k"), var("q"), var("t")
        return Kernel(
            "TFS-3",
            arrays={n: ArrayDecl(_F, (NI, NJ, NK)) for n in "ABC"},
            scalars={"q": _F, "t": _F},
            body=[do("k", 1, NK, [do("j", 1, NJ, [do("i", 1, NI, [
                assign(t, aref("A", i, j, k) * q),
                assign(aref("B", i, j, k), t + aref("C", i, j, k)),
            ], kind="doall")])])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI, NJ, NK)), "B": np.zeros((NI, NJ, NK)),
                 "C": ints(rng, (NI, NJ, NK))}, {"q": 2.0})

    def ref(a, s):
        return {"B": a["A"] * s["q"] + a["C"]}, {}

    return Workload("TFS-3", "PERFECT", 2, 49, 3, "doall", False, build, data, ref)


# ---------------------------------------------------------------------------
# WSS: weather simulation sweeps
# ---------------------------------------------------------------------------

def _wss1() -> Workload:
    NI, NJ = 96, 2

    def build():
        i, j, q = var("i"), var("j"), var("q")
        return Kernel(
            "WSS-1",
            arrays={"A": ArrayDecl(_F, (NI, NJ)), "B": ArrayDecl(_F, (NI, NJ))},
            scalars={"q": _F},
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(aref("A", i, j), aref("B", i, j) * q),
            ], kind="doall")])],
        )

    def data(rng):
        return ({"A": np.zeros((NI, NJ)), "B": ints(rng, (NI, NJ))}, {"q": 3.0})

    def ref(a, s):
        return {"A": a["B"] * s["q"]}, {}

    return Workload("WSS-1", "PERFECT", 1, 96, 2, "doall", False, build, data, ref)


def _wss2() -> Workload:
    NI, NJ = 39, 2

    def build():
        i, j, q, t, u = var("i"), var("j"), var("q"), var("t"), var("u")
        return Kernel(
            "WSS-2",
            arrays={"A": ArrayDecl(_F, (NI + 1, NJ)),
                    "B": ArrayDecl(_F, (NI, NJ)),
                    "C": ArrayDecl(_F, (NI, NJ))},
            scalars={"q": _F, "t": _F, "u": _F},
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(t, aref("A", i, j) + aref("B", i, j)),
                assign(aref("A", i + 1, j), t * q),
                assign(u, t - aref("B", i, j)),
                assign(aref("C", i, j), u * u),
            ], kind="doacross")])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI + 1, NJ)), "B": ints(rng, (NI, NJ)),
                 "C": np.zeros((NI, NJ))}, {"q": 0.5})

    def ref(a, s):
        A = a["A"].copy()
        C = np.zeros((NI, NJ))
        for j in range(NJ):
            for i in range(NI):
                t = A[i, j] + a["B"][i, j]
                A[i + 1, j] = t * s["q"]
                u = t - a["B"][i, j]
                C[i, j] = u * u
        return {"A": A, "C": C}, {}

    return Workload("WSS-2", "PERFECT", 4, 39, 2, "doacross", False, build, data, ref)


for _w in (
    _aps1, _aps2, _aps3, _css1, _lws1, _lws2, _mts1, _mts2,
    _nas1, _nas2, _nas3, _nas4, _nas5, _nas6,
    _sds1, _sds2, _sds3, _sds4,
    _srs1, _srs2, _srs3, _srs4, _srs5, _srs6,
    _tfs1, _tfs2, _tfs3, _wss1, _wss2,
):
    register(_w())
