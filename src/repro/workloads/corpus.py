"""The 40-loop-nest workload corpus (Table 2 of the paper).

The paper's loops were extracted from the PERFECT club benchmarks, SPEC,
and vector library routines — FORTRAN sources we do not have.  Each
workload here is a synthetic kernel matched to its Table 2 row: same name,
approximate source-line count, nesting depth, loop type (the KAP
classification of the innermost loop), and presence of conditionals.  The
dependence *structure* (what makes a loop DOALL, DOACROSS, or serial) is
what drives every result in the paper, and it is preserved exactly.

Iteration counts are scaled down for simulation speed; the paper's counts
are kept as metadata (`paper_iters`).  Each workload carries a NumPy
reference implementation; every compiled configuration is checked against
it, so the transformation pipeline is continuously validated for
correctness, not just speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..frontend.ast import Kernel


@dataclass
class Workload:
    """One Table 2 row: kernel builder + data + reference semantics."""

    name: str
    suite: str                 # PERFECT | SPEC | VECTOR
    size_lines: int            # Table 2 "Size"
    paper_iters: int           # Table 2 "Iters" (innermost average)
    nest: int                  # Table 2 "Nest"
    loop_type: str             # doall | doacross | serial
    conds: bool                # Table 2 "Conds"
    build: Callable[[], Kernel]
    #: rng -> (arrays, scalars) input bindings
    data: Callable[[np.random.Generator], tuple[dict, dict]]
    #: (arrays, scalars) -> (expected arrays, expected scalars); receives
    #: private copies and may mutate them
    reference: Callable[[dict, dict], tuple[dict, dict]]
    rtol: float = 1e-9
    notes: str = ""

    def make_inputs(self, seed: int = 0) -> tuple[dict, dict]:
        arrays, scalars = self.data(np.random.default_rng(seed))
        return arrays, scalars


_REGISTRY: dict[str, Workload] = {}


def register(w: Workload) -> Workload:
    if w.name in _REGISTRY:
        raise ValueError(f"duplicate workload {w.name}")
    _REGISTRY[w.name] = w
    return w


def all_workloads() -> list[Workload]:
    """All 40 workloads, importing the suite modules on first use."""
    from . import perfect, spec, vector  # noqa: F401  (registration side effect)

    return list(_REGISTRY.values())


def get_workload(name: str) -> Workload:
    all_workloads()
    return _REGISTRY[name]


# ---------------------------------------------------------------------------
# data helpers: integer-valued floats keep most fp arithmetic exact, which
# makes reassociating transformations (accumulator expansion, tree height
# reduction) checkable with tight tolerances
# ---------------------------------------------------------------------------


def ints(rng: np.random.Generator, shape, lo: int = 1, hi: int = 9) -> np.ndarray:
    """Float array of small integers (exact fp arithmetic)."""
    return rng.integers(lo, hi + 1, shape).astype(np.float64)


def pos(rng: np.random.Generator, shape, lo: int = 1, hi: int = 4) -> np.ndarray:
    """Small positive values, safe divisors."""
    return rng.integers(lo, hi + 1, shape).astype(np.float64)


def near_one(rng: np.random.Generator, shape) -> np.ndarray:
    """Values near 1.0 so long products stay bounded."""
    return rng.choice(np.array([0.8, 0.9, 1.0, 1.1, 1.25]), shape)


def iarr(rng: np.random.Generator, shape, lo: int = 1, hi: int = 9) -> np.ndarray:
    return rng.integers(lo, hi + 1, shape).astype(np.int64)


def fcol(a: np.ndarray) -> np.ndarray:
    """Force column-major layout view semantics (we only care about values;
    the memory binder flattens order='F' itself)."""
    return np.asarray(a, dtype=np.float64)


def check_run(w: Workload, out_arrays: dict, out_scalars: dict,
              arrays_in: dict, scalars_in: dict) -> None:
    """Assert a run's outputs match the workload's reference."""
    exp_arrays, exp_scalars = w.reference(
        {k: np.array(v, dtype=np.float64, copy=True) for k, v in arrays_in.items()},
        dict(scalars_in),
    )
    for name, exp in exp_arrays.items():
        got = out_arrays[name]
        if not np.allclose(got, exp, rtol=w.rtol, atol=1e-12):
            bad = np.argwhere(~np.isclose(got, exp, rtol=w.rtol, atol=1e-12))
            raise AssertionError(
                f"{w.name}: array {name} mismatch at {bad[:5].tolist()}; "
                f"got {np.asarray(got).flat[0:4]} want {np.asarray(exp).flat[0:4]}"
            )
    for name, exp in exp_scalars.items():
        got = out_scalars[name]
        if not np.isclose(got, exp, rtol=w.rtol, atol=1e-12):
            raise AssertionError(f"{w.name}: scalar {name}: got {got} want {exp}")
