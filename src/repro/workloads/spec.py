"""The 6 SPEC loop nests of Table 2 (doduc, matrix300, nasa7, tomcatv)."""

from __future__ import annotations

import numpy as np

from ..frontend.ast import ArrayDecl, Kernel, Ty, aref, assign, do, if_, var
from .corpus import Workload, ints, pos, register

_F = Ty.FP


def _doduc1() -> Workload:
    """Monte-Carlo reactor style: big serial body with conditionals,
    divisions, and a carried state scalar (38 lines, 13 iterations)."""
    N = 16

    def build():
        i = var("i")
        x, s = var("x"), var("s")
        t = {k: var(f"t{k}") for k in range(1, 18)}
        q, r, c, w = var("q"), var("r"), var("c"), var("w")
        A, B, C = aref("A", i), aref("B", i), aref("C", i)
        scalars = {"q": _F, "r": _F, "c": _F, "w": _F, "x": _F, "s": _F,
                   **{f"t{k}": _F for k in range(1, 18)}}
        return Kernel(
            "doduc-1",
            arrays={n: ArrayDecl(_F, (N,)) for n in "ABCDE"},
            scalars=scalars,
            outputs=["x", "s"],
            body=[do("i", 1, N, [
                assign(t[1], A * x),                       # 1
                assign(t[2], t[1] + B),                    # 2
                assign(t[3], C + q),                       # 3
                assign(t[4], t[2] / t[3]),                 # 4
                assign(t[5], t[4] * t[4]),                 # 5
                assign(t[6], t[5] - t[2]),                 # 6
                if_(t[4] > c,                              # 7 (+2 arms)
                    [assign(t[7], t[4] * r)],
                    [assign(t[7], t[4] + r)], p_then=0.6),
                assign(t[8], t[7] + t[6]),                 # 10
                assign(t[9], t[8] / q),                    # 11
                assign(t[10], t[9] * w),                   # 12
                assign(t[11], t[10] - t[5]),               # 13
                assign(aref("D", i), t[11]),               # 14
                assign(t[12], t[11] * t[7]),               # 15
                if_(t[12] > 0.0,                           # 16 (+1 arm)
                    [assign(s, s + t[12])], p_then=0.6),
                assign(t[13], t[8] * t[9]),                # 18
                assign(t[14], t[13] + t[10]),              # 19
                assign(t[15], t[14] / t[3]),               # 20
                assign(aref("E", i), t[15]),               # 21
                assign(t[16], t[15] + t[4]),               # 22
                assign(t[17], t[16] * w),                  # 23
                assign(x, t[17] * q),                      # 24
            ], kind="serial")],
        )

    def data(rng):
        return ({"A": pos(rng, N, 1, 3), "B": ints(rng, N, 1, 4),
                 "C": pos(rng, N, 1, 3), "D": np.zeros(N), "E": np.zeros(N)},
                {"q": 2.0, "r": 0.5, "c": 1.0, "w": 0.25, "x": 1.0, "s": 0.0})

    def ref(a, sc):
        x, s = sc["x"], sc["s"]
        D = np.zeros(N)
        E = np.zeros(N)
        for k in range(N):
            t1 = a["A"][k] * x
            t2 = t1 + a["B"][k]
            t3 = a["C"][k] + sc["q"]
            t4 = t2 / t3
            t5 = t4 * t4
            t6 = t5 - t2
            t7 = t4 * sc["r"] if t4 > sc["c"] else t4 + sc["r"]
            t8 = t7 + t6
            t9 = t8 / sc["q"]
            t10 = t9 * sc["w"]
            t11 = t10 - t5
            D[k] = t11
            t12 = t11 * t7
            if t12 > 0.0:
                s = s + t12
            t13 = t8 * t9
            t14 = t13 + t10
            t15 = t14 / t3
            E[k] = t15
            t16 = t15 + t4
            t17 = t16 * sc["w"]
            x = t17 * sc["q"]
        return {"D": D, "E": E}, {"x": x, "s": s}

    return Workload(
        "doduc-1", "SPEC", 38, 13, 1, "serial", True, build, data, ref,
        rtol=1e-6,
    )


def _matrix300() -> Workload:
    """The SAXPY column update at the heart of matrix multiply."""
    N = 96

    def build():
        i, s = var("i"), var("s")
        return Kernel(
            "matrix300-1",
            arrays={"A": ArrayDecl(_F, (N,)), "C": ArrayDecl(_F, (N,))},
            scalars={"s": _F},
            body=[do("i", 1, N, [
                assign(aref("C", i), aref("C", i) + aref("A", i) * s),
            ], kind="doall")],
        )

    def data(rng):
        return ({"A": ints(rng, N), "C": ints(rng, N)}, {"s": 3.0})

    def ref(a, sc):
        return {"C": a["C"] + a["A"] * sc["s"]}, {}

    return Workload("matrix300-1", "SPEC", 1, 300, 1, "doall", False, build, data, ref)


def _nasa7_1() -> Workload:
    NI, NJ, NK = 96, 2, 2

    def build():
        i, j, k = var("i"), var("j"), var("k")
        return Kernel(
            "nasa7-1",
            arrays={"A": ArrayDecl(_F, (NI, NJ, NK)),
                    "B": ArrayDecl(_F, (NJ, NK)),
                    "C": ArrayDecl(_F, (NI, NJ, NK))},
            scalars={},
            body=[do("k", 1, NK, [do("j", 1, NJ, [do("i", 1, NI, [
                assign(aref("C", i, j, k),
                       aref("C", i, j, k) + aref("A", i, j, k) * aref("B", j, k)),
            ], kind="doall")])])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI, NJ, NK)), "B": ints(rng, (NJ, NK)),
                 "C": ints(rng, (NI, NJ, NK))}, {})

    def ref(a, sc):
        return {"C": a["C"] + a["A"] * a["B"][None, :, :]}, {}

    return Workload("nasa7-1", "SPEC", 1, 256, 3, "doall", False, build, data, ref)


def _nasa7_2() -> Workload:
    NI, NJ, NK = 64, 2, 2

    def build():
        i, j, k, q, r, t = var("i"), var("j"), var("k"), var("q"), var("r"), var("t")
        return Kernel(
            "nasa7-2",
            arrays={"A": ArrayDecl(_F, (NI, NJ, NK)),
                    "B": ArrayDecl(_F, (NI + 1, NJ, NK)),
                    "C": ArrayDecl(_F, (NI, NJ, NK))},
            scalars={"q": _F, "r": _F, "t": _F},
            body=[do("k", 1, NK, [do("j", 1, NJ, [do("i", 1, NI, [
                assign(t, aref("A", i, j, k) * q),
                assign(aref("B", i + 1, j, k), t + aref("B", i, j, k)),
                assign(aref("C", i, j, k), t * r),
            ], kind="doacross")])])],
        )

    def data(rng):
        return ({"A": ints(rng, (NI, NJ, NK), 1, 3),
                 "B": ints(rng, (NI + 1, NJ, NK), 1, 3),
                 "C": np.zeros((NI, NJ, NK))}, {"q": 0.5, "r": 2.0})

    def ref(a, sc):
        B = a["B"].copy()
        C = np.zeros((NI, NJ, NK))
        for k in range(NK):
            for j in range(NJ):
                for i in range(NI):
                    t = a["A"][i, j, k] * sc["q"]
                    B[i + 1, j, k] = t + B[i, j, k]
                    C[i, j, k] = t * sc["r"]
        return {"B": B, "C": C}, {}

    return Workload("nasa7-2", "SPEC", 3, 1000, 3, "doacross", False, build, data, ref)


def _tomcatv1() -> Workload:
    """Mesh-generation sweep: neighbor reads, distinct output arrays
    (DOALL), long arithmetic chains (tree-height-reduction fodder)."""
    NI, NJ = 66, 2

    def build():
        i, j = var("i"), var("j")
        t = {k: var(f"t{k}") for k in range(1, 14)}
        X, Y = aref("X", i, j), aref("Y", i, j)
        return Kernel(
            "tomcatv-1",
            arrays={n: ArrayDecl(_F, (NI, NJ)) for n in
                    ("X", "Y", "RX", "RY", "AA", "DD")},
            scalars={f"t{k}": _F for k in range(1, 14)},
            body=[do("j", 1, NJ, [do("i", 2, NI - 1, [
                assign(t[1], aref("X", i + 1, j)),              # 1
                assign(t[2], aref("X", i - 1, j)),              # 2
                assign(t[3], aref("Y", i + 1, j)),              # 3
                assign(t[4], aref("Y", i - 1, j)),              # 4
                assign(t[5], t[1] - t[2]),                      # 5  dx
                assign(t[6], t[3] - t[4]),                      # 6  dy
                assign(t[7], X * 2.0),                          # 7
                assign(t[8], t[1] + t[2] - t[7]),               # 8  xxx
                assign(t[9], Y * 2.0),                          # 9
                assign(t[10], t[3] + t[4] - t[9]),              # 10 yxx
                assign(aref("RX", i, j), t[8] * t[5] + t[10] * t[6]),   # 11
                assign(aref("RY", i, j), t[8] * t[6] - t[10] * t[5]),   # 12
                assign(t[11], t[5] * t[5]),                     # 13
                assign(t[12], t[6] * t[6]),                     # 14
                assign(aref("AA", i, j), t[11] + t[12]),        # 15
                assign(t[13], t[11] - t[12]),                   # 16
                assign(aref("DD", i, j), t[13] * 0.25),         # 17
            ], kind="doall")])],
        )

    def data(rng):
        return ({"X": ints(rng, (NI, NJ), 1, 5), "Y": ints(rng, (NI, NJ), 1, 5),
                 "RX": np.zeros((NI, NJ)), "RY": np.zeros((NI, NJ)),
                 "AA": np.zeros((NI, NJ)), "DD": np.zeros((NI, NJ))}, {})

    def ref(a, sc):
        X, Y = a["X"], a["Y"]
        RX = np.zeros((NI, NJ))
        RY = np.zeros((NI, NJ))
        AA = np.zeros((NI, NJ))
        DD = np.zeros((NI, NJ))
        for j in range(NJ):
            for i in range(1, NI - 1):
                dx = X[i + 1, j] - X[i - 1, j]
                dy = Y[i + 1, j] - Y[i - 1, j]
                xxx = X[i + 1, j] + X[i - 1, j] - 2.0 * X[i, j]
                yxx = Y[i + 1, j] + Y[i - 1, j] - 2.0 * Y[i, j]
                RX[i, j] = xxx * dx + yxx * dy
                RY[i, j] = xxx * dy - yxx * dx
                AA[i, j] = dx * dx + dy * dy
                DD[i, j] = (dx * dx - dy * dy) * 0.25
        return {"RX": RX, "RY": RY, "AA": AA, "DD": DD}, {}

    return Workload("tomcatv-1", "SPEC", 21, 255, 2, "doall", False, build, data, ref)


def _tomcatv2() -> Workload:
    """Residual-maximum search with absolute values (serial, conds)."""
    NI, NJ = 96, 2

    def build():
        i, j = var("i"), var("j")
        rx, ry, m = var("rx"), var("ry"), var("m")
        return Kernel(
            "tomcatv-2",
            arrays={"RX": ArrayDecl(_F, (NI, NJ)), "RY": ArrayDecl(_F, (NI, NJ))},
            scalars={"rx": _F, "ry": _F, "m": _F},
            outputs=["m"],
            body=[do("j", 1, NJ, [do("i", 1, NI, [
                assign(rx, aref("RX", i, j)),                       # 1
                if_(rx < 0.0, [assign(rx, 0.0 - rx)], p_then=0.5),  # 2 (+1)
                assign(ry, aref("RY", i, j)),                       # 4
                if_(ry < 0.0, [assign(ry, 0.0 - ry)], p_then=0.5),  # 5 (+1)
                if_(rx > var("m"), [assign(var("m"), rx)], p_then=0.3),  # 7 (+1)
                if_(ry > var("m"), [assign(var("m"), ry)], p_then=0.3),
            ], kind="serial")])],
        )

    def data(rng):
        return ({"RX": ints(rng, (NI, NJ), -9, 9), "RY": ints(rng, (NI, NJ), -9, 9)},
                {"m": 0.0})

    def ref(a, sc):
        m = max(sc["m"], float(np.abs(a["RX"]).max()), float(np.abs(a["RY"]).max()))
        return {}, {"m": m}

    return Workload("tomcatv-2", "SPEC", 8, 255, 2, "serial", True, build, data, ref)


for _w in (_doduc1, _matrix300, _nasa7_1, _nasa7_2, _tomcatv1, _tomcatv2):
    register(_w())
