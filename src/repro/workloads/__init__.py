"""repro.workloads — the 40-loop-nest corpus of Table 2."""

from .corpus import (
    Workload,
    all_workloads,
    check_run,
    get_workload,
    ints,
    near_one,
    pos,
    register,
)

__all__ = [
    "Workload", "all_workloads", "check_run", "get_workload",
    "ints", "near_one", "pos", "register",
]
