"""The 5 vector library routines of Table 2."""

from __future__ import annotations

import numpy as np

from ..frontend.ast import ArrayDecl, Kernel, Ty, aref, assign, do, if_, var
from .corpus import Workload, ints, register

_F = Ty.FP


def _add() -> Workload:
    N = 128

    def build():
        i = var("i")
        return Kernel(
            "add",
            arrays={n: ArrayDecl(_F, (N,)) for n in "ABC"},
            scalars={},
            body=[do("i", 1, N, [
                assign(aref("C", i), aref("A", i) + aref("B", i)),
            ], kind="doall")],
        )

    def data(rng):
        return ({"A": ints(rng, N), "B": ints(rng, N), "C": np.zeros(N)}, {})

    def ref(a, s):
        return {"C": a["A"] + a["B"]}, {}

    return Workload("add", "VECTOR", 1, 1024, 1, "doall", False, build, data, ref)


def _dotprod() -> Workload:
    N = 128

    def build():
        i = var("i")
        return Kernel(
            "dotprod",
            arrays={"A": ArrayDecl(_F, (N,)), "B": ArrayDecl(_F, (N,))},
            scalars={"s": _F},
            outputs=["s"],
            body=[do("i", 1, N, [
                assign(var("s"), var("s") + aref("A", i) * aref("B", i)),
            ], kind="serial")],
        )

    def data(rng):
        return ({"A": ints(rng, N), "B": ints(rng, N)}, {"s": 0.0})

    def ref(a, s):
        return {}, {"s": s["s"] + float(np.dot(a["A"], a["B"]))}

    return Workload("dotprod", "VECTOR", 1, 1024, 1, "serial", False, build, data, ref)


def _maxval() -> Workload:
    N = 128

    def build():
        i, t = var("i"), var("t")
        return Kernel(
            "maxval",
            arrays={"A": ArrayDecl(_F, (N,))},
            scalars={"m": _F, "t": _F},
            outputs=["m"],
            body=[do("i", 1, N, [
                assign(t, aref("A", i)),
                # random data: the update is rare, so the trace skips it
                if_(t > var("m"), [assign(var("m"), t)], p_then=0.2),
            ], kind="serial")],
        )

    def data(rng):
        return ({"A": rng.permutation(np.arange(1.0, N + 1))}, {"m": 0.0})

    def ref(a, s):
        return {}, {"m": max(s["m"], float(a["A"].max()))}

    return Workload("maxval", "VECTOR", 3, 1024, 1, "serial", True, build, data, ref)


def _merge() -> Workload:
    N = 128

    def build():
        i, t, u = var("i"), var("t"), var("u")
        return Kernel(
            "merge",
            arrays={n: ArrayDecl(_F, (N,)) for n in "ABC"},
            scalars={"t": _F, "u": _F},
            body=[do("i", 1, N, [
                assign(t, aref("A", i)),
                assign(u, aref("B", i)),
                if_(t < u,
                    [assign(aref("C", i), t)],
                    [assign(aref("C", i), u)], p_then=0.85),
            ], kind="doall")],
        )

    def data(rng):
        # biased so the likely arm matches the trace choice (a profile)
        A = ints(rng, N, 1, 4)
        B = ints(rng, N, 4, 9)
        swap = rng.random(N) < 0.15
        A2, B2 = A.copy(), B.copy()
        A2[swap], B2[swap] = B[swap], A[swap]
        return ({"A": A2, "B": B2, "C": np.zeros(N)}, {})

    def ref(a, s):
        return {"C": np.minimum(a["A"], a["B"])}, {}

    return Workload("merge", "VECTOR", 4, 1024, 1, "doall", True, build, data, ref)


def _sum() -> Workload:
    N = 128

    def build():
        i = var("i")
        return Kernel(
            "sum",
            arrays={"A": ArrayDecl(_F, (N,))},
            scalars={"s": _F},
            outputs=["s"],
            body=[do("i", 1, N, [
                assign(var("s"), var("s") + aref("A", i)),
            ], kind="serial")],
        )

    def data(rng):
        return ({"A": ints(rng, N)}, {"s": 0.0})

    def ref(a, s):
        return {}, {"s": s["s"] + float(a["A"].sum())}

    return Workload("sum", "VECTOR", 1, 1024, 1, "serial", False, build, data, ref)


for _w in (_add, _dotprod, _maxval, _merge, _sum):
    register(_w())
