"""Interference graph construction over a whole function.

The modeled processor has an unlimited register file, but the paper's
register allocator "attempts to utilize the least number of registers
required for a given loop.  Therefore, registers are reused as soon as
they become available."  We measure that number by building the
interference graph of the final (scheduled) code and coloring it greedily:
two virtual registers interfere when one is defined at a point where the
other is live.

Registers live into the function (workload inputs) are treated as defined
at entry, so they interfere with each other and with anything live across
their range.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..analysis.liveness import liveness
from ..ir.function import Function
from ..ir.operands import Reg, RegClass


@dataclass
class InterferenceGraph:
    adj: dict[Reg, set[Reg]] = field(default_factory=lambda: defaultdict(set))
    nodes: set[Reg] = field(default_factory=set)

    def add_node(self, r: Reg) -> None:
        self.nodes.add(r)
        self.adj.setdefault(r, set())

    def add_edge(self, a: Reg, b: Reg) -> None:
        if a == b or a.cls is not b.cls:
            return
        self.add_node(a)
        self.add_node(b)
        self.adj[a].add(b)
        self.adj[b].add(a)

    def degree(self, r: Reg) -> int:
        return len(self.adj.get(r, ()))

    def of_class(self, cls: RegClass) -> list[Reg]:
        return [r for r in self.nodes if r.cls is cls]


def build_interference(
    func: Function, live_out_exit: set[Reg] | None = None
) -> InterferenceGraph:
    live_out_exit = live_out_exit or set()
    lv = liveness(func, live_out_exit)
    g = InterferenceGraph()

    for ins in func.iter_instrs():
        for r in ins.reg_uses():
            g.add_node(r)
        for r in ins.reg_defs():
            g.add_node(r)

    adj = g.adj
    for blk in func.blocks:
        live = set(lv.live_out[blk.label])
        for ins in reversed(blk.instrs):
            d = ins.dest
            if d is not None:
                # inlined add_edge (this loop dominates construction time);
                # every register was registered as a node above
                dcls = d.cls
                dadj = adj[d]
                nodes_add = g.nodes.add
                for other in live:
                    if other != d and other.cls is dcls:
                        dadj.add(other)
                        adj[other].add(d)
                        nodes_add(other)  # live-through regs may be new
                live.discard(d)
            for r in ins.reg_uses():
                live.add(r)

    # function inputs: live-in registers of the entry block are all defined
    # "before" the program and therefore mutually interfere
    entry_live = lv.live_in.get(func.entry.label, set())
    for a in entry_live:
        for b in entry_live:
            g.add_edge(a, b)
        # and with everything live wherever they remain live: covered by the
        # def-point rule for other registers; between two never-defined
        # registers the entry clique is what accounts for them
    return g
