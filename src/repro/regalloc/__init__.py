"""repro.regalloc — register usage measurement (interference + coloring)."""

from .interference import InterferenceGraph, build_interference
from .coloring import RegisterUsage, color_class, measure_register_usage

__all__ = [
    "InterferenceGraph", "build_interference",
    "RegisterUsage", "color_class", "measure_register_usage",
]
