"""repro.regalloc — register usage measurement (interference + coloring)."""

from .interference import InterferenceGraph, build_interference
from .coloring import (
    ColoringError,
    RegisterUsage,
    color_class,
    measure_register_usage,
    verify_coloring,
)

__all__ = [
    "InterferenceGraph", "build_interference",
    "ColoringError", "RegisterUsage", "color_class",
    "measure_register_usage", "verify_coloring",
]
