"""Greedy graph coloring and register-usage measurement.

Chaitin-style simplification order (repeatedly remove the minimum-degree
node, color in reverse) with first-fit color choice.  With an unbounded
color supply this never spills; the number of colors used per register
class is the paper's "registers utilized" statistic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..ir.function import Function
from ..ir.operands import Reg, RegClass
from .interference import InterferenceGraph, build_interference


def color_class(g: InterferenceGraph, cls: RegClass) -> dict[Reg, int]:
    nodes = sorted(g.of_class(cls), key=lambda r: r.id)
    if not nodes:
        return {}
    # Simplification stack: repeatedly remove the (degree, id)-minimal
    # node.  A lazy heap replaces the original min-over-set scan (which
    # was quadratic): each degree decrement pushes a fresh entry, and
    # stale entries (already removed, or recorded at an outdated degree)
    # are discarded on pop.  Degrees only decrease and every decrease is
    # pushed, so the pop sequence is *identical* to the min() scan.
    # adjacency sets only ever hold same-class registers (``add_edge``
    # rejects cross-class pairs), so no class filtering is needed inside
    degree = {r: len(g.adj[r]) for r in nodes}
    removed: set[Reg] = set()
    stack: list[Reg] = []
    heap = [(degree[r], r.id, r) for r in nodes]
    heapq.heapify(heap)
    while heap:
        d, _, r = heapq.heappop(heap)
        if r in removed or d != degree[r]:
            continue
        removed.add(r)
        stack.append(r)
        for n in g.adj[r]:
            if n not in removed:
                degree[n] -= 1
                heapq.heappush(heap, (degree[n], n.id, n))
    colors: dict[Reg, int] = {}
    get_color = colors.get
    for r in reversed(stack):
        # first-fit: the lowest color absent among colored neighbors,
        # found as the lowest clear bit of the used-color mask
        mask = 0
        for n in g.adj[r]:
            c = get_color(n)
            if c is not None:
                mask |= 1 << c
        colors[r] = (~mask & (mask + 1)).bit_length() - 1
    return colors


@dataclass
class RegisterUsage:
    """Registers utilized by a compiled function, per class and total.

    Vector registers live in their own file (see ``machine.py``), so they
    are counted separately and default to 0 for scalar-only code."""

    int_regs: int
    fp_regs: int
    vint_regs: int = 0
    vfp_regs: int = 0

    @property
    def total(self) -> int:
        return self.int_regs + self.fp_regs + self.vint_regs + self.vfp_regs


class ColoringError(AssertionError):
    pass


def verify_coloring(g: InterferenceGraph, colors: dict[Reg, int]) -> None:
    """Post-regalloc consistency: a coloring is valid iff every node got a
    color and no interference edge connects two same-colored registers.

    The paper's register statistic is only meaningful if the coloring
    respects interference — a violation means two simultaneously-live
    values would share a physical register, i.e. a silent miscompile on
    real hardware even though the virtual-register simulator runs fine.
    """
    for r, c in colors.items():
        if c < 0:
            raise ColoringError(f"{r}: negative color {c}")
        for n in g.adj.get(r, ()):
            cn = colors.get(n)
            if cn is None:
                raise ColoringError(f"{n} interferes with {r} but is uncolored")
            if cn == c:
                raise ColoringError(
                    f"interfering registers {r} and {n} share color {c}"
                )


def measure_register_usage(
    func: Function, live_out_exit: set[Reg] | None = None, check: bool = False
) -> RegisterUsage:
    g = build_interference(func, live_out_exit)
    counts = {}
    for cls in RegClass:
        colors = color_class(g, cls)
        if check:
            verify_coloring(g, colors)
        counts[cls] = (max(colors.values()) + 1) if colors else 0
    return RegisterUsage(counts[RegClass.INT], counts[RegClass.FP],
                         counts[RegClass.VINT], counts[RegClass.VFP])
