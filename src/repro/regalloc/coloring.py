"""Greedy graph coloring and register-usage measurement.

Chaitin-style simplification order (repeatedly remove the minimum-degree
node, color in reverse) with first-fit color choice.  With an unbounded
color supply this never spills; the number of colors used per register
class is the paper's "registers utilized" statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.function import Function
from ..ir.operands import Reg, RegClass
from .interference import InterferenceGraph, build_interference


def color_class(g: InterferenceGraph, cls: RegClass) -> dict[Reg, int]:
    nodes = sorted(g.of_class(cls), key=lambda r: r.id)
    if not nodes:
        return {}
    # simplification stack: repeatedly remove min-degree node
    degree = {r: sum(1 for n in g.adj[r] if n.cls is cls) for r in nodes}
    removed: set[Reg] = set()
    stack: list[Reg] = []
    work = set(nodes)
    while work:
        r = min(work, key=lambda x: (degree[x], x.id))
        work.discard(r)
        removed.add(r)
        stack.append(r)
        for n in g.adj[r]:
            if n.cls is cls and n not in removed:
                degree[n] -= 1
    colors: dict[Reg, int] = {}
    for r in reversed(stack):
        used = {colors[n] for n in g.adj[r] if n in colors}
        c = 0
        while c in used:
            c += 1
        colors[r] = c
    return colors


@dataclass
class RegisterUsage:
    """Registers utilized by a compiled function, per class and total."""

    int_regs: int
    fp_regs: int

    @property
    def total(self) -> int:
        return self.int_regs + self.fp_regs


def measure_register_usage(
    func: Function, live_out_exit: set[Reg] | None = None
) -> RegisterUsage:
    g = build_interference(func, live_out_exit)
    ints = color_class(g, RegClass.INT)
    fps = color_class(g, RegClass.FP)
    n_int = (max(ints.values()) + 1) if ints else 0
    n_fp = (max(fps.values()) + 1) if fps else 0
    return RegisterUsage(n_int, n_fp)
