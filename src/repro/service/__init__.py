"""repro.service — the compilation service subsystem.

Turns the compiler + simulator into an inference-stack-shaped server:
requests in, cached or freshly computed artifacts out.

* :mod:`repro.service.keys` — the canonical configuration identity:
  one helper derives both the sweep-journal header and the
  content-addressed store key, so the two can never disagree on what
  "same configuration" means.
* :mod:`repro.service.store` — a content-addressed on-disk artifact
  store (SHA-256 keys over canonicalized kernel source + machine
  config + level + disable set + code-version salt) with atomic
  writes, LRU size-capped eviction, and corruption-tolerant reads.
* :mod:`repro.service.jobs` — the async job engine: single-flight
  deduplication of identical in-flight requests, batching of
  compatible requests onto one width-sharded compilation, bounded
  queue with load shedding, per-request timeouts.
* :mod:`repro.service.server` — an HTTP front-end on stdlib
  ``ThreadingHTTPServer``: ``POST /v1/compile``, ``POST /v1/run``,
  ``POST /v1/sweep``, ``GET /v1/jobs/<id>``, ``GET /healthz``,
  ``GET /metrics``.
* :mod:`repro.service.client` — a small SDK over ``urllib`` used by
  ``repro submit`` and ``examples/service_client.py``.

Entry points: ``python -m repro serve`` / ``python -m repro submit``.
"""

from .keys import (
    CODE_VERSION,
    canonical_json,
    request_identity,
    request_key,
    sweep_header,
    workload_fingerprint,
)
from .store import ArtifactStore, StoreStats

__all__ = [
    "CODE_VERSION", "canonical_json", "request_identity", "request_key",
    "sweep_header", "workload_fingerprint",
    "ArtifactStore", "StoreStats",
]
