"""Content-addressed on-disk artifact store.

Blobs are JSON envelopes addressed by the SHA-256 request key of
:mod:`repro.service.keys`, laid out git-style under the store root::

    root/
      objects/ab/abcdef....json     # envelope: salt, key, payload
      quarantine/                   # corrupt blobs, moved aside
      index.json                    # LRU bookkeeping (best-effort)

Guarantees:

* **Atomic writes** — a blob is written to a tmp file in the same
  directory and ``os.replace``d into place, so readers (and concurrent
  writers of the same key: last rename wins, both contents identical by
  construction) never observe a torn blob at its final path.
* **Corruption tolerance** — a blob that fails to parse, fails its
  envelope check, or carries the wrong key is treated as a *miss* and
  moved into ``quarantine/`` so it cannot poison later reads (and so a
  corrupt file is preserved for inspection instead of being silently
  clobbered by the recomputation).
* **Version-salt invalidation** — every envelope records the
  :data:`~repro.service.keys.CODE_VERSION` salt it was written under;
  a mismatch is a miss and the stale blob is deleted.
* **LRU size-capped eviction** — ``max_bytes`` caps the total blob
  size; inserting past the cap evicts least-recently-*used* blobs
  (reads refresh recency).  Recency is a *logical use counter*, not a
  wall-clock stamp: ``time.time()`` can step backwards (NTP, manual
  resets) and across machines two stores' clocks never agree, either of
  which would silently reorder eviction and throw away the hottest
  blob.  The counter is persisted in the index and survives reopen; a
  lost or torn index is rebuilt by scanning ``objects/`` (recency
  degrades to file-mtime *rank*, re-assigned deterministically, and
  correctness is unaffected).
* **Classified failure handling** — write and eviction I/O errors run
  through the :mod:`repro.resilience.errors` taxonomy: transient ones
  (``ENOSPC``, ``EIO``, ...) are retried under the shared
  :class:`~repro.resilience.retry.RetryPolicy` and then *degrade* (the
  result is served, just not persisted) instead of failing the caller;
  only fatal ones (permissions, read-only fs) raise.  Orphaned
  ``*.tmp`` files from writers that died between write and rename are
  cleaned on open after a grace period.

Fault sites (active only under an armed
:class:`~repro.resilience.faults.FaultPlan`): ``store.torn_write``
truncates a blob's bytes before the rename, ``store.enospc`` raises at
the write, ``store.eio`` raises at the fsync.
"""

from __future__ import annotations

import errno
import json
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from ..resilience import faults
from ..resilience.errors import (
    classify_os_error,
    clean_orphan_tmps,
    log_tolerated,
)
from ..resilience.retry import RetryPolicy, retry_call
from .keys import CODE_VERSION, canonical_json

#: write/rename retry schedule: brief, because a put that cannot land
#: quickly should degrade (skip persistence) rather than stall serving
PUT_RETRY = RetryPolicy(max_attempts=3, base_s=0.01, cap_s=0.1, budget_s=1.0)


@dataclass
class StoreStats:
    """Counters since this handle was opened (not persisted)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    quarantined: int = 0
    invalidated: int = 0
    #: transient write failures retried / degraded to "not persisted"
    put_retries: int = 0
    put_failures: int = 0
    #: eviction unlinks absorbed by the taxonomy (transient, logged)
    evict_errors: int = 0
    #: orphaned tmp files removed at open
    tmp_cleaned: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Entry:
    size: int
    used: int  # logical-use counter: higher = more recently used


@dataclass
class ArtifactStore:
    """One process's handle on a store directory.

    Safe for concurrent use by multiple processes: blob writes are
    atomic renames, reads tolerate missing/corrupt files, and the index
    is advisory.  Not internally locked — callers in one process should
    serialize access per handle (the job engine does).
    """

    root: Path
    #: total blob-byte cap; None = unbounded
    max_bytes: int | None = None
    #: envelope salt; artifacts written under any other salt are stale
    salt: str = CODE_VERSION
    stats: StoreStats = field(default_factory=StoreStats)
    #: a tmp file older than this is an orphan (its writer is dead)
    tmp_grace_s: float = 600.0
    #: write/rename retry schedule for transient OSErrors
    retry: RetryPolicy = PUT_RETRY

    def __post_init__(self):
        self.root = Path(self.root)
        self._objects = self.root / "objects"
        self._quarantine = self.root / "quarantine"
        self._index_path = self.root / "index.json"
        self._objects.mkdir(parents=True, exist_ok=True)
        self.stats.tmp_cleaned += clean_orphan_tmps(self.root, self.tmp_grace_s)
        #: per-key write-attempt sequence, so injected write faults fire
        #: on the first attempt and let the retry/recompute land clean
        self._fault_seq: Counter = Counter()
        self._index: dict[str, _Entry] = {}
        self._load_index()

    # -- paths ----------------------------------------------------------

    def _blob_path(self, key: str) -> Path:
        if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"malformed store key {key!r}")
        return self._objects / key[:2] / f"{key}.json"

    # -- index ----------------------------------------------------------

    def _load_index(self) -> None:
        try:
            raw = json.loads(self._index_path.read_text())
            # ``used`` may be a legacy wall-clock float from an index
            # written before the logical counter; it is only used as a
            # rank below, so both forms load fine
            loaded = [
                (k, int(v["size"]), float(v["used"]))
                for k, v in raw.get("entries", {}).items()
            ]
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            loaded = None
        if loaded is None:
            # rebuild from a directory scan; recency falls back to the
            # blobs' mtime *rank* (ties broken by key, so the rebuild is
            # deterministic for a given set of files)
            loaded = []
            for p in self._objects.glob("??/*.json"):
                try:
                    st = p.stat()
                except OSError:
                    continue
                loaded.append((p.stem, st.st_size, st.st_mtime))
        else:
            # drop index entries whose blob vanished (another process
            # evicted or quarantined it)
            loaded = [
                (k, size, used) for k, size, used in loaded
                if self._blob_path(k).exists()
            ]
        # re-rank into compact logical counters 1..n, preserving order:
        # only the *order* of recency stamps matters for LRU, and ranks
        # are immune to whatever clock produced the originals
        loaded.sort(key=lambda t: (t[2], t[0]))
        self._index = {
            k: _Entry(size, rank)
            for rank, (k, size, _) in enumerate(loaded, start=1)
        }
        self._use_seq = len(loaded)

    def _next_use(self) -> int:
        """The next logical-use stamp (never goes backwards)."""
        self._use_seq += 1
        return self._use_seq

    def _save_index(self) -> None:
        payload = {
            "entries": {
                k: {"size": e.size, "used": e.used}
                for k, e in self._index.items()
            }
        }
        tmp = self._index_path.with_name(f".index-{os.getpid()}.tmp")
        try:
            tmp.write_text(canonical_json(payload))
            os.replace(tmp, self._index_path)
        except OSError:
            tmp.unlink(missing_ok=True)  # advisory only

    # -- public API -----------------------------------------------------

    def get(self, key: str):
        """The stored payload for ``key``, or None on any kind of miss."""
        path = self._blob_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            self._index.pop(key, None)
            return None
        try:
            # parse from raw bytes: a torn blob may not even be valid UTF-8
            env = json.loads(raw)
            if env["key"] != key or "payload" not in env:
                raise ValueError("envelope mismatch")
            env_salt = env["salt"]
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                TypeError, ValueError):
            self._quarantine_blob(path)
            self._index.pop(key, None)
            self.stats.misses += 1
            return None
        if env_salt != self.salt:
            # written by a different code version: stale, not corrupt
            path.unlink(missing_ok=True)
            self._index.pop(key, None)
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        e = self._index.get(key)
        if e is None:
            self._index[key] = _Entry(len(raw), self._next_use())
        else:
            e.used = self._next_use()
        return env["payload"]

    def put(self, key: str, payload) -> Path | None:
        """Store a JSON-serializable payload under ``key`` atomically.

        Transient write errors are retried under :attr:`retry`; if they
        persist the put *degrades* — the blob is simply not stored (a
        future read is a miss and recomputes) and ``None`` is returned.
        Only fatal errors raise.
        """
        path = self._blob_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # plain dumps, not canonical_json: blob *content* must round-trip
        # with dict insertion order intact (e.g. a ConfigResult's
        # t_passes map records pass execution order); only key
        # derivation needs canonical form
        data = json.dumps({"salt": self.salt, "key": key,
                           "payload": payload})

        def count_retry(attempt, delay, exc):
            self.stats.put_retries += 1

        try:
            retry_call(lambda: self._write_blob(path, key, data),
                       policy=self.retry, on_retry=count_retry)
        except OSError as e:
            if classify_os_error(e) == "fatal":
                raise
            self.stats.put_failures += 1
            log_tolerated(f"store.put {key[:16]}", e)
            return None
        self._index[key] = _Entry(len(data.encode()), self._next_use())
        self.stats.puts += 1
        if self.max_bytes is not None:
            self._evict_to(self.max_bytes, keep=key)
        self._save_index()
        return path

    def _write_blob(self, path: Path, key: str, data: str) -> None:
        """tmp-write + fsync + atomic rename, with the write fault sites."""
        plan = faults.ARMED
        attempt = 0
        if plan is not None:
            attempt = self._fault_seq[key]
            self._fault_seq[key] += 1
            if plan.fire("store.torn_write", key, attempt):
                # a torn write is *silent*: the writer thinks it
                # succeeded, and only a later read detects + quarantines
                data = data[: max(1, len(data) // 2)]
        tmp = path.with_name(f".{key[:16]}-{os.getpid()}.tmp")
        try:
            with open(tmp, "w") as f:
                if plan is not None and plan.fire("store.enospc", key, attempt):
                    raise OSError(errno.ENOSPC, "injected: no space left")
                f.write(data)
                f.flush()
                if plan is not None and plan.fire("store.eio", key, attempt):
                    raise OSError(errno.EIO, "injected: I/O error at fsync")
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise

    def contains(self, key: str) -> bool:
        return self._blob_path(key).exists()

    def total_bytes(self) -> int:
        return sum(e.size for e in self._index.values())

    def __len__(self) -> int:
        return len(self._index)

    # -- maintenance ----------------------------------------------------

    def _quarantine_blob(self, path: Path) -> None:
        self._quarantine.mkdir(parents=True, exist_ok=True)
        dest = self._quarantine / f"{path.stem}-{os.getpid()}-{time.time_ns()}"
        try:
            os.replace(path, dest)
        except OSError:
            path.unlink(missing_ok=True)  # raced: someone else moved it
        self.stats.quarantined += 1

    def _evict_to(self, max_bytes: int, keep: str | None = None) -> None:
        """Delete least-recently-used blobs until total size fits.

        ``keep`` (the blob just written) is never evicted: a single
        entry larger than the cap stays until something newer lands.
        """
        total = self.total_bytes()
        if total <= max_bytes:
            return
        for key, e in sorted(self._index.items(), key=lambda kv: kv[1].used):
            if key == keep:
                continue
            try:
                self._blob_path(key).unlink(missing_ok=True)
            except OSError as err:
                # a blob we cannot unlink right now is not fatal to the
                # cache: classify, log, count, and move on (a later
                # eviction or the index rebuild will reconcile it)
                if classify_os_error(err) == "fatal":
                    raise
                self.stats.evict_errors += 1
                log_tolerated(f"store.evict {key[:16]}", err)
                continue
            del self._index[key]
            self.stats.evictions += 1
            total -= e.size
            if total <= max_bytes:
                break
