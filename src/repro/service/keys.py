"""Canonical configuration identity: one definition of "same config".

Three consumers need to agree on when two compile/run requests denote
the same work:

* the sweep journal (resume must never reuse a result computed under
  different parameters),
* the content-addressed artifact store (a hit must be byte-equivalent
  to recomputing), and
* the job engine's single-flight table (duplicate in-flight requests
  collapse onto one computation).

They all go through this module.  The identity of a request is a plain
dict with **every field present** (defaults filled in, never omitted)
and all set-valued fields sorted, serialized as canonical JSON (sorted
keys, fixed separators), and hashed with SHA-256 together with:

* the *canonicalized kernel source* of the workload (the FORTRAN-style
  pretty-printing of its AST — so editing a workload's kernel
  invalidates its artifacts while renames of Python internals do not),
* the full machine description (latencies, slot limits, speculation
  flags — not just the issue width), and
* :data:`CODE_VERSION`, a salt bumped whenever the compiler or
  simulator changes observable output, which invalidates every stored
  artifact at once.
"""

from __future__ import annotations

import hashlib
import json

from ..frontend.pretty import kernel_str
from ..machine import MachineConfig, to_description
from ..sim import ENGINE_VERSION
from ..workloads import get_workload

#: Compiler-side salt component: bump when compiled output changes
#: (pass behavior, scheduling, lowering).
COMPILER_VERSION = "repro-2026.08-pm5"

#: Bump when compiled output or simulation semantics change: every
#: artifact keyed under the old salt becomes unreachable (and is lazily
#: invalidated by the store).  The sweep journal embeds it too, so a
#: stale journal is recomputed rather than trusted.  The simulator
#: engine version is folded in directly — an engine rewrite (e.g. the
#: block-compiled trace/replay core) cannot forget to invalidate
#: cached run/result artifacts, because the salt moves with it.
CODE_VERSION = f"{COMPILER_VERSION}+{ENGINE_VERSION}"

#: Request kinds with distinct result payloads (a compile artifact is
#: not a run result, so they get distinct keys even for one config):
#: ``compile`` = scheduled-code artifact, ``run`` = the service's
#: simulate+check payload, ``result`` = the sweep's full ConfigResult
#: (timings and per-pass stats included).
KINDS = ("compile", "run", "result")


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def workload_fingerprint(workload: str) -> str:
    """SHA-256 of the workload's canonicalized kernel source.

    The pretty-printed FORTRAN-style source is the canonical form: it
    captures arrays/scalars/outputs and the loop-nest body, and is
    stable under refactors of the Python builder that produce the same
    kernel.
    """
    src = kernel_str(get_workload(workload).build())
    return hashlib.sha256(src.encode()).hexdigest()


def request_identity(
    kind: str,
    workload: str,
    level: int,
    width: int,
    *,
    seed: int = 0,
    check: bool = True,
    check_ir: bool = False,
    disable: tuple[str, ...] = (),
    machine: MachineConfig | None = None,
    schedule_backend: str = "list",
) -> dict:
    """The canonical identity dict of one request, defaults filled in.

    ``disable`` is deduplicated and sorted (PassOptions semantics: the
    disable *set* is what matters).  ``machine`` defaults to the paper
    machine at ``width``; passing an explicit config must agree with
    ``width``.  ``schedule_backend`` ("list" or "optimal") is always
    materialized so heuristic and exact-scheduled artifacts never share
    a key.
    """
    if kind not in KINDS:
        raise ValueError(f"unknown request kind {kind!r} (known: {KINDS})")
    if schedule_backend not in ("list", "optimal"):
        raise ValueError(
            f"unknown schedule backend {schedule_backend!r}"
        )
    if machine is None:
        machine = MachineConfig(issue_width=int(width))
    elif machine.issue_width != int(width):
        raise ValueError(
            f"machine issue_width {machine.issue_width} != width {width}"
        )
    return {
        "kind": kind,
        "workload": str(workload),
        "level": int(level),
        "width": int(width),
        "seed": int(seed),
        "check": bool(check),
        "check_ir": bool(check_ir),
        "disable": sorted(set(disable)),
        "machine": to_description(machine),
        "schedule_backend": str(schedule_backend),
    }


def request_key(
    kind: str,
    workload: str,
    level: int,
    width: int,
    *,
    seed: int = 0,
    check: bool = True,
    check_ir: bool = False,
    disable: tuple[str, ...] = (),
    machine: MachineConfig | None = None,
    schedule_backend: str = "list",
    fingerprint: str | None = None,
) -> str:
    """Content address of a request's result: SHA-256 hex digest over the
    canonical identity, the kernel-source fingerprint, and the
    code-version salt.

    ``fingerprint`` can be supplied to avoid rebuilding the kernel when
    the caller loops over many configurations of one workload.
    """
    ident = request_identity(
        kind, workload, level, width, seed=seed, check=check,
        check_ir=check_ir, disable=disable, machine=machine,
        schedule_backend=schedule_backend,
    )
    if fingerprint is None:
        fingerprint = workload_fingerprint(workload)
    payload = {"salt": CODE_VERSION, "kernel": fingerprint, "request": ident}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def sweep_header(
    seed: int, check: bool, check_ir: bool = False,
    disable: tuple[str, ...] = (), schedule_backend: str = "list",
) -> dict:
    """The sweep-journal header: the grid-wide half of the identity.

    A journal line is keyed by (workload, level, width); everything else
    a :func:`request_identity` contains — seed, check flags, disable
    set, schedule backend, code version — lives here, so header equality
    plus grid key equality is exactly request-identity equality (the
    journal always uses the default paper machine per width).
    """
    return {
        "salt": CODE_VERSION,
        "seed": int(seed),
        "check": bool(check),
        "check_ir": bool(check_ir),
        "disable": sorted(set(disable)),
        "schedule_backend": str(schedule_backend),
    }
