"""Async job engine: single-flight, batching, admission control.

The engine owns an asyncio event loop on a background thread plus the
sweep engine's ``fork``-based :class:`ProcessPoolExecutor`.  Requests
enter from any thread (HTTP handler threads, the client-side of tests)
via :meth:`JobEngine.submit`; results flow back through
``concurrent.futures`` bridges.

Request lifecycle::

    submit ──admission──▶ store lookup ──hit──▶ done (cache="hit")
                │ full                │ miss
                ▼                     ▼
            Overloaded         single-flight table ──in flight──▶ join
               (shed)                 │ new
                                      ▼
                         cell batch (workload, level, ...) ── batch
                         window ──▶ one width-sharded compilation on
                         the process pool ──▶ store.put per width ──▶
                         resolve every joined future

* **Single-flight** — identical requests (same canonical key from
  :mod:`repro.service.keys`) submitted while one is in flight await the
  same future; only one computation runs.
* **Batching** — requests that differ *only in issue width* land in the
  same *cell* (one (workload, level, seed, flags, disable) unit).  The
  first request arms a ``batch_window`` timer; everything that joins
  the cell before it fires is compiled once and scheduled per width —
  the same width-sharding the sweep engine uses
  (``TransformedKernel.clone``).
* **Admission control, tiered** — at most ``max_pending`` accepted-but-
  unfinished configurations; past that, new requests are *shed*
  (:class:`Overloaded`, surfaced as HTTP 429).  Shedding is tiered:
  expensive sweep requests are shed earlier, at ``soft_pending``
  (default 75% of ``max_pending``), keeping headroom so cheap single
  requests survive a burst.  A sweep request is admitted or shed
  atomically for all the configurations it expands to, so one oversized
  sweep cannot wedge the queue.
* **Timeouts** — each request carries a deadline
  (``default_timeout`` unless overridden), stamped and enforced on
  ``time.monotonic()`` so an NTP/wall-clock step can neither expire a
  fresh job nor keep a dead one alive; expiry fails *that waiter*
  with :class:`RequestTimeout` while the underlying computation is left
  to finish and populate the store (process-pool work is not
  cancellable mid-kernel).  Wall-clock timestamps appear only in the
  ``/v1/jobs/<id>`` display fields.
* **Supervised execution** — the fork pool runs under the resilience
  layer's :class:`~repro.resilience.supervisor.SupervisedPool`: a
  worker lost to a crash or hang is replaced and the cell re-dispatched
  (deduplicated by canonical request key), and a cell that keeps
  failing trips its circuit breaker — further requests for it fail
  fast (:class:`~repro.resilience.supervisor.CellQuarantined`, HTTP
  503) until the cooldown's half-open probe heals it.
* **Degraded reads** — :meth:`JobEngine.degraded_lookup` serves a
  result straight from the artifact store when admission sheds a
  request; the server marks such responses ``"degraded": true``.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..experiments.sweep import _conv_cached, _inputs_cached
from ..harness import ilp_transform, run_compiled_kernel, schedule_kernel
from ..ir.printer import format_block
from ..machine import MachineConfig
from ..passes import PassOptions
from ..pipeline import Level
from ..regalloc import measure_register_usage
from ..resilience import faults
from ..resilience.supervisor import CellQuarantined, SupervisedPool
from ..workloads import check_run, get_workload
from .keys import request_key, workload_fingerprint
from .store import ArtifactStore


class Overloaded(RuntimeError):
    """Admission control rejected the request (HTTP 429)."""


class RequestTimeout(RuntimeError):
    """The request's deadline expired before its result was ready."""


# ---------------------------------------------------------------------------
# the process-pool worker (module-level: must pickle under fork)
# ---------------------------------------------------------------------------


def _array_digest(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()


def compute_cell(task: tuple) -> list[dict]:
    """Compile one (workload, level) cell for several widths; optionally
    simulate.  Mirrors the sweep engine's ``_run_task`` width sharding:
    classical optimization is cached per worker process, the ILP
    transformation runs once, each width schedules a structural clone.
    """
    kind, name, level_int, widths, seed, check, check_ir, disable = task
    w = get_workload(name)
    options = PassOptions(disable=tuple(disable)) if disable else None
    simulate = kind == "run"

    conv, _ = _conv_cached(w, options)
    tk = ilp_transform(conv.clone(), Level(level_int),
                       MachineConfig(issue_width=widths[0]),
                       check=check_ir, options=options)
    out: list[dict] = []
    for i, width in enumerate(widths):
        machine = MachineConfig(issue_width=width)
        clone = tk.clone() if i + 1 < len(widths) else tk
        ck = schedule_kernel(clone, machine, check=check_ir, options=options)
        usage = measure_register_usage(ck.func, ck.lowered.live_out_exit)
        payload = {
            "kind": kind,
            "workload": name,
            "level": level_int,
            "width": width,
            "inner_makespan": ck.inner_makespan,
            "int_regs": usage.int_regs,
            "fp_regs": usage.fp_regs,
            "static_instructions": sum(len(b.instrs) for b in ck.func.blocks),
            "unroll_factor": ck.report.unroll_factor,
        }
        if simulate:
            arrays, scalars = _inputs_cached(w, seed)
            run = run_compiled_kernel(ck, arrays=arrays, scalars=scalars)
            if check:
                check_run(w, run.arrays, run.scalars, arrays, scalars)
            payload.update(
                cycles=run.cycles,
                instructions=run.instructions,
                checked=bool(check),
                seed=seed,
                scalars={k: v for k, v in run.scalars.items()},
                array_digests={k: _array_digest(v)
                               for k, v in sorted(run.arrays.items())},
            )
        else:
            payload["ir"] = format_block(ck.sb.body)
        out.append(payload)
    return out


# ---------------------------------------------------------------------------
# jobs
# ---------------------------------------------------------------------------


@dataclass
class Job:
    """One accepted request (or sweep of requests) and its outcome.

    Clock discipline: the *deadline* is enforced on ``time.monotonic()``
    (``deadline_mono``, stamped at admission) so an NTP step can neither
    expire a fresh job nor keep a dead one alive.  ``created`` /
    ``finished`` are wall-clock and exist **only** for display in
    ``/v1/jobs/<id>`` responses; nothing is computed from them —
    ``elapsed_s`` comes from the monotonic clock.
    """

    id: str
    kind: str
    request: dict
    state: str = "queued"        # queued | running | done | failed | timeout
    cache: Optional[str] = None  # hit | miss | joined (single-flight)
    result: Optional[dict] = None
    error: Optional[str] = None
    #: wall-clock timestamps, display only (never used for deadlines)
    created: float = field(default_factory=time.time)
    finished: Optional[float] = None
    #: monotonic admission stamp and hard deadline (enforcement)
    created_mono: float = field(default_factory=time.monotonic)
    deadline_mono: Optional[float] = None
    elapsed_s: Optional[float] = None
    #: bridge to the waiting thread
    future: Optional["asyncio.Future"] = None

    def remaining_s(self) -> Optional[float]:
        """Monotonic time left before the deadline (None = no deadline)."""
        if self.deadline_mono is None:
            return None
        return self.deadline_mono - time.monotonic()

    def as_dict(self) -> dict:
        return {
            "id": self.id, "kind": self.kind, "request": self.request,
            "state": self.state, "cache": self.cache, "result": self.result,
            "error": self.error, "created": self.created,
            "finished": self.finished, "elapsed_s": self.elapsed_s,
        }


@dataclass
class _Cell:
    """A batch of width-compatible requests awaiting one compilation."""

    task_head: tuple  # (kind, workload, level) — widths appended at fire
    seed: int
    check: bool
    check_ir: bool
    disable: tuple
    #: width -> (key, future) of every request joined before the timer fired
    waiters: dict[int, tuple[str, "asyncio.Future"]] = field(default_factory=dict)


class JobEngine:
    """The service's execution core (shared by server and tests)."""

    def __init__(
        self,
        store: ArtifactStore | None = None,
        jobs: int = 1,
        max_pending: int = 64,
        batch_window: float = 0.01,
        default_timeout: float = 120.0,
        soft_pending: int | None = None,
    ):
        self.store = store
        self.max_pending = max_pending
        #: sweep admission tier: sweeps shed here, singles at max_pending
        self.soft_pending = (soft_pending if soft_pending is not None
                             else max(1, (max_pending * 3) // 4))
        self.batch_window = batch_window
        self.default_timeout = default_timeout
        # the supervised pool forks its workers in its constructor —
        # before the loop / HTTP threads exist, since forking a
        # many-threaded process risks inheriting held locks.  The worker
        # deadline mirrors the request deadline: a cell the request
        # layer has given up on should not pin a worker forever.
        self._pool = SupervisedPool(jobs, deadline_s=default_timeout)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever,
                                        name="repro-service-loop", daemon=True)
        self._thread.start()
        self._lock = threading.Lock()
        self._pending = 0           # accepted, unfinished configurations
        self._jobs: dict[str, Job] = {}
        self._ids = itertools.count(1)
        # loop-confined state (touched only on the loop thread)
        self._inflight: dict[str, asyncio.Future] = {}
        self._cells: dict[tuple, _Cell] = {}
        # metrics
        self.counters = {
            "requests": 0, "hits": 0, "misses": 0, "joined": 0,
            "batched_cells": 0, "computed": 0, "shed": 0, "timeouts": 0,
            "errors": 0, "sweeps": 0,
        }
        self._latencies: deque[float] = deque(maxlen=2048)
        self._degraded_serves = 0
        self._closed = False

    # -- admission ------------------------------------------------------

    def _admit(self, n: int, kind: str = "single") -> None:
        # tiered shedding: a sweep (n configurations at once) is shed at
        # the soft tier, keeping headroom for cheap single requests
        limit = self.soft_pending if kind == "sweep" else self.max_pending
        with self._lock:
            if self._pending + n > limit:
                self.counters["shed"] += 1
                raise Overloaded(
                    f"queue full: {self._pending} pending + {n} requested "
                    f"> {limit} {kind} capacity"
                )
            self._pending += n

    def _release(self, n: int) -> None:
        with self._lock:
            self._pending -= n

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._pending

    # -- submission (any thread) ---------------------------------------

    def _new_job(self, kind: str, request: dict) -> Job:
        with self._lock:
            jid = f"job-{next(self._ids):06d}"
            job = Job(jid, kind, request)
            self._jobs[jid] = job
        return job

    def submit(self, kind: str, workload: str, level: int, width: int, *,
               seed: int = 0, check: bool = True, check_ir: bool = False,
               disable: tuple = (), timeout: float | None = None) -> Job:
        """Admit one compile/run request; returns immediately with a Job
        whose ``future`` resolves to the result payload."""
        get_workload(workload)  # unknown workloads fail fast, pre-admission
        request = {"workload": workload, "level": int(level),
                   "width": int(width), "seed": int(seed),
                   "check": bool(check), "check_ir": bool(check_ir),
                   "disable": sorted(set(disable))}
        self._admit(1)
        self.counters["requests"] += 1
        job = self._new_job(kind, request)
        job.deadline_mono = time.monotonic() + (
            timeout if timeout is not None else self.default_timeout)
        job.future = asyncio.run_coroutine_threadsafe(
            self._handle(job), self._loop
        )
        return job

    def submit_sweep(self, workloads: list[str], levels: list[int],
                     widths: list[int], *, seed: int = 0, check: bool = True,
                     check_ir: bool = False, disable: tuple = (),
                     timeout: float | None = None) -> Job:
        """Admit a grid of run requests atomically (all or shed)."""
        for name in workloads:
            get_workload(name)
        n = len(workloads) * len(levels) * len(widths)
        if n == 0:
            raise ValueError("empty sweep")
        request = {"workloads": list(workloads), "levels": list(levels),
                   "widths": list(widths), "seed": int(seed),
                   "check": bool(check), "check_ir": bool(check_ir),
                   "disable": sorted(set(disable)), "configs": n}
        self._admit(n, "sweep")
        self.counters["requests"] += 1
        self.counters["sweeps"] += 1
        job = self._new_job("sweep", request)
        job.deadline_mono = time.monotonic() + (
            timeout if timeout is not None else self.default_timeout)
        job.future = asyncio.run_coroutine_threadsafe(
            self._handle_sweep(job), self._loop
        )
        return job

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job: Job, timeout: float | None = None) -> dict:
        """Block until the job resolves; raises its failure if any."""
        return job.future.result(timeout)

    # -- request handling (loop thread) --------------------------------

    async def _handle(self, job: Job) -> dict:
        t0 = time.perf_counter()
        job.state = "running"
        try:
            # the deadline was stamped on the monotonic clock at
            # admission; a wall-clock (NTP) step between then and now
            # cannot stretch or shrink it
            result = await asyncio.wait_for(
                self._request(job.kind, job.request, job),
                job.remaining_s(),
            )
            job.result = result
            job.state = "done"
            return result
        except asyncio.TimeoutError:
            job.state = "timeout"
            job.error = "deadline expired"
            self.counters["timeouts"] += 1
            self.counters["errors"] += 1
            raise RequestTimeout(f"{job.id}: deadline expired") from None
        except Exception as e:
            job.state = "failed"
            job.error = repr(e)
            self.counters["errors"] += 1
            raise
        finally:
            job.finished = time.time()  # display only
            job.elapsed_s = round(time.monotonic() - job.created_mono, 6)
            self._latencies.append(time.perf_counter() - t0)
            self._release(1)

    async def _handle_sweep(self, job: Job) -> dict:
        t0 = time.perf_counter()
        job.state = "running"
        req = job.request
        subs = [
            {"workload": w, "level": lv, "width": wd, "seed": req["seed"],
             "check": req["check"], "check_ir": req["check_ir"],
             "disable": req["disable"]}
            for w in req["workloads"] for lv in req["levels"]
            for wd in req["widths"]
        ]
        try:
            hits0 = self.counters["hits"]
            results = await asyncio.wait_for(
                asyncio.gather(*(self._request("run", s, None) for s in subs)),
                job.remaining_s(),
            )
            result = {
                "configs": len(subs),
                "hits": self.counters["hits"] - hits0,
                "results": sorted(
                    results,
                    key=lambda r: (r["workload"], r["level"], r["width"]),
                ),
            }
            job.result = result
            job.state = "done"
            return result
        except asyncio.TimeoutError:
            job.state = "timeout"
            job.error = "deadline expired"
            self.counters["timeouts"] += 1
            self.counters["errors"] += 1
            raise RequestTimeout(f"{job.id}: deadline expired") from None
        except Exception as e:
            job.state = "failed"
            job.error = repr(e)
            self.counters["errors"] += 1
            raise
        finally:
            job.finished = time.time()  # display only
            job.elapsed_s = round(time.monotonic() - job.created_mono, 6)
            self._latencies.append(time.perf_counter() - t0)
            self._release(len(subs))

    async def _request(self, kind: str, req: dict, job: Job | None) -> dict:
        """Resolve one configuration: store, single-flight, or batch."""
        key = request_key(
            kind, req["workload"], req["level"], req["width"],
            seed=req["seed"], check=req["check"], check_ir=req["check_ir"],
            disable=tuple(req["disable"]),
            fingerprint=workload_fingerprint(req["workload"]),
        )
        if self.store is not None:
            cached = self.store.get(key)
            if cached is not None:
                self.counters["hits"] += 1
                if job is not None:
                    job.cache = "hit"
                return cached
        self.counters["misses"] += 1
        shared = self._inflight.get(key)
        if shared is not None:
            self.counters["joined"] += 1
            if job is not None:
                job.cache = "joined"
            return await asyncio.shield(shared)
        if job is not None:
            job.cache = "miss"
        fut = self._join_cell(kind, req, key)
        self._inflight[key] = fut
        try:
            return await asyncio.shield(fut)
        finally:
            if self._inflight.get(key) is fut:
                del self._inflight[key]

    def _join_cell(self, kind: str, req: dict, key: str) -> "asyncio.Future":
        """Attach a request to its cell batch, arming the timer on first
        join; returns the future for this request's width."""
        cell_id = (kind, req["workload"], req["level"], req["seed"],
                   req["check"], req["check_ir"], tuple(req["disable"]))
        cell = self._cells.get(cell_id)
        if cell is None:
            cell = _Cell(
                task_head=(kind, req["workload"], req["level"]),
                seed=req["seed"], check=req["check"],
                check_ir=req["check_ir"], disable=tuple(req["disable"]),
            )
            self._cells[cell_id] = cell
            self._loop.call_later(
                self.batch_window,
                lambda: asyncio.ensure_future(self._fire_cell(cell_id)),
            )
        width = req["width"]
        if width not in cell.waiters:
            cell.waiters[width] = (key, self._loop.create_future())
        return cell.waiters[width][1]

    async def _fire_cell(self, cell_id: tuple) -> None:
        cell = self._cells.pop(cell_id, None)
        if cell is None:
            return
        kind, name, level = cell.task_head
        widths = tuple(sorted(cell.waiters))
        task = (kind, name, level, widths, cell.seed, cell.check,
                cell.check_ir, cell.disable)
        self.counters["batched_cells"] += 1
        try:
            # the cell's canonical identity is its lowest-width request
            # key: the supervisor dedups re-dispatches by it, and the
            # breaker quarantines on the (workload, level) coordinate
            cell_key = cell.waiters[widths[0]][0]
            payloads = await asyncio.wrap_future(
                self._pool.submit(compute_cell, task,
                                  key=cell_key, cell=(name, level))
            )
        except Exception as e:
            for _, fut in cell.waiters.values():
                if not fut.done():
                    fut.set_exception(e)
            return
        self.counters["computed"] += len(payloads)
        for payload in payloads:
            width_key, fut = cell.waiters[payload["width"]]
            if self.store is not None:
                self.store.put(width_key, payload)
            if not fut.done():
                fut.set_result(payload)

    # -- graceful degradation ------------------------------------------

    def degraded_lookup(self, kind: str, req: dict) -> dict | None:
        """Serve a shed request straight from the artifact store.

        Called by the server when admission control rejects a request:
        a previously computed (possibly stale-version-adjacent) result
        beats a 429 for read-mostly clients.  Returns None when nothing
        is stored — the caller sheds for real.  The read is bounced onto
        the engine loop because the store handle is not internally
        locked.
        """
        if self.store is None or self._closed:
            return None

        key = request_key(
            kind, req["workload"], req["level"], req["width"],
            seed=req.get("seed", 0), check=req.get("check", True),
            check_ir=req.get("check_ir", False),
            disable=tuple(req.get("disable", ())),
            fingerprint=workload_fingerprint(req["workload"]),
        )

        async def _read():
            return self.store.get(key)

        try:
            cached = asyncio.run_coroutine_threadsafe(
                _read(), self._loop).result(timeout=5.0)
        except Exception:
            return None
        if cached is not None:
            with self._lock:
                self._degraded_serves += 1
        return cached

    def store_put(self, key: str, payload: dict) -> bool:
        """Persist a payload computed *elsewhere* into this node's store
        shard (thread-safe: bounced onto the engine loop, which owns the
        store handle).  The cluster layer uses this to land work-stolen
        and forwarded results on the key's owning shard."""
        if self.store is None or self._closed:
            return False

        async def _write():
            return self.store.put(key, payload) is not None

        try:
            return asyncio.run_coroutine_threadsafe(
                _write(), self._loop).result(timeout=10.0)
        except Exception:
            return False

    # -- metrics --------------------------------------------------------

    def metrics(self) -> dict:
        lats = sorted(self._latencies)

        def pct(p: float) -> float:
            if not lats:
                return 0.0
            return lats[min(len(lats) - 1, int(p * len(lats)))]

        m = dict(self.counters)
        m.update(
            queue_depth=self.queue_depth,
            latency_p50_s=round(pct(0.50), 6),
            latency_p95_s=round(pct(0.95), 6),
            jobs_total=len(self._jobs),
        )
        if self.store is not None:
            m["store"] = {
                "entries": len(self.store),
                "bytes": self.store.total_bytes(),
                **self.store.stats.as_dict(),
            }
        m["resilience"] = {
            **self._pool.counters,
            "breaker_trips": self._pool.breaker_trips,
            "degraded_serves": self._degraded_serves,
        }
        if faults.ARMED is not None:
            m["faults"] = {"injected": dict(faults.ARMED.injected)}
        return m

    def health(self) -> dict:
        """The /healthz payload: liveness plus watchdog/breaker state."""
        return {
            "ok": True,
            "queue_depth": self.queue_depth,
            "pool": self._pool.status(),
        }

    # -- shutdown -------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._pool.close()
        self._loop.close()
