"""Client SDK for the compilation service (stdlib ``urllib`` only).

    from repro.service.client import ServiceClient

    c = ServiceClient("http://127.0.0.1:8734")
    c.healthz()
    r = c.run("dotprod", level=4, width=8)        # blocks; cached or fresh
    job = c.sweep(["add", "sum"], widths=[1, 8])  # async: returns job id
    data = c.wait_job(job)                        # poll until done
    c.metrics()["hits"]

Errors are raised as :class:`ServiceUnavailable` (connection refused or
dropped), :class:`ServiceOverloaded` (HTTP 429 — back off and retry),
or :class:`ServiceRequestError` (anything else non-2xx, with the
server's error string).  Transport failures and 503 (quarantined cell)
are retried under the shared :class:`~repro.resilience.retry.RetryPolicy`
— safe because every request is idempotent by canonical key; 429 is
retried only when ``retry_overloaded=True`` (by default shedding is a
signal the caller should see).  ``Retry-After`` headers override the
computed backoff, in both RFC 9110 forms — delta-seconds *and*
HTTP-date (:func:`parse_retry_after`).  Used by ``repro submit``, ``experiments/sweep.py``
clients, and ``examples/service_client.py``.
"""

from __future__ import annotations

import email.utils
import http.client
import json
import time
import urllib.error
import urllib.request
from datetime import datetime, timezone

from ..resilience.retry import RetryPolicy, RetryState

#: default transport retry schedule (connection drops, 503)
CLIENT_RETRY = RetryPolicy(max_attempts=5, base_s=0.05, cap_s=2.0,
                           budget_s=30.0)


def parse_retry_after(value: str | None, *, now: float | None = None
                      ) -> float | None:
    """Seconds of server-suggested backoff from a ``Retry-After`` header.

    RFC 9110 §10.2.3 allows two forms: non-negative *delta-seconds*
    (``"5"``) and an *HTTP-date* (``"Fri, 08 Aug 2026 12:00:00 GMT"``).
    Returns the delay in seconds (a past date clamps to ``0.0``), or
    ``None`` for a missing/unparseable header.  ``now`` (a POSIX
    timestamp) is injectable so tests don't race the real clock; the
    date arithmetic itself is a difference of two wall-clock readings
    taken at the same instant, so a clock *step* before the call cannot
    produce a bogus huge delay the way a persisted timestamp would.
    """
    if value is None:
        return None
    value = value.strip()
    try:
        return max(0.0, float(value))
    except ValueError:
        pass
    try:
        when = email.utils.parsedate_to_datetime(value)
    except (TypeError, ValueError):
        return None
    if when is None:
        return None
    if when.tzinfo is None:  # RFC 5322 parse of a legacy date w/o zone
        when = when.replace(tzinfo=timezone.utc)
    if now is None:
        now = time.time()
    return max(0.0, when.timestamp() - now)


class ServiceRequestError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        #: server-suggested backoff (``Retry-After`` header), if any
        self.retry_after = retry_after


class ServiceOverloaded(ServiceRequestError):
    """The service shed the request (HTTP 429): retry after a backoff."""


class ServiceUnavailable(RuntimeError):
    """The service could not be reached at all."""


class ServiceClient:
    def __init__(self, base_url: str, timeout: float = 300.0,
                 retry: RetryPolicy | None = CLIENT_RETRY,
                 retry_overloaded: bool = False,
                 headers: dict | None = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self.retry_overloaded = retry_overloaded
        #: extra headers sent with every request (the cluster layer uses
        #: this for its forwarding loop guards)
        self.headers = dict(headers or {})
        #: transport retries performed over this client's lifetime
        self.retries = 0

    # -- transport ------------------------------------------------------

    def _retryable(self, e: Exception) -> bool:
        if isinstance(e, ServiceUnavailable):
            return True
        if isinstance(e, ServiceOverloaded):
            return self.retry_overloaded
        return isinstance(e, ServiceRequestError) and e.status == 503

    def _call(self, method: str, path: str, body: dict | None = None) -> dict:
        if self.retry is None:
            return self._call_once(method, path, body)
        state = RetryState(self.retry)
        while True:
            try:
                return self._call_once(method, path, body)
            except (ServiceRequestError, ServiceUnavailable) as e:
                if not self._retryable(e):
                    raise
                delay = state.next_delay(getattr(e, "retry_after", None))
                if delay is None:
                    raise
                self.retries += 1
                time.sleep(delay)

    def _call_once(self, method: str, path: str,
                   body: dict | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json", **self.headers},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as e:
            try:
                message = json.loads(e.read() or b"{}").get("error", str(e))
            except json.JSONDecodeError:
                message = str(e)
            retry_after = parse_retry_after(e.headers.get("Retry-After"))
            cls = ServiceOverloaded if e.code == 429 else ServiceRequestError
            raise cls(e.code, message, retry_after) from None
        except urllib.error.URLError as e:
            raise ServiceUnavailable(f"{self.base_url}: {e.reason}") from None
        except (http.client.HTTPException, OSError) as e:
            # a dropped connection mid-response surfaces raw from
            # http.client rather than wrapped in URLError
            raise ServiceUnavailable(f"{self.base_url}: {e!r}") from None

    # -- endpoints ------------------------------------------------------

    def healthz(self) -> dict:
        return self._call("GET", "/healthz")

    def metrics(self) -> dict:
        return self._call("GET", "/metrics")

    def compile(self, workload: str, level: int = 4, width: int = 8,
                **kwargs) -> dict:
        """Compile one configuration; returns the artifact payload
        (``result``) plus job id and cache disposition."""
        body = {"workload": workload, "level": level, "width": width, **kwargs}
        return self._call("POST", "/v1/compile", body)

    def run(self, workload: str, level: int = 4, width: int = 8,
            **kwargs) -> dict:
        """Compile + simulate (+ NumPy-check) one configuration."""
        body = {"workload": workload, "level": level, "width": width, **kwargs}
        return self._call("POST", "/v1/run", body)

    def sweep(self, workloads: list[str], levels=None, widths=None,
              **kwargs) -> str:
        """Submit an async sweep; returns the job id to poll."""
        body = {"workloads": list(workloads), **kwargs}
        if levels is not None:
            body["levels"] = list(levels)
        if widths is not None:
            body["widths"] = list(widths)
        return self._call("POST", "/v1/sweep", body)["job"]

    def job(self, job_id: str) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def wait_job(self, job_id: str, timeout: float = 300.0,
                 poll: float = 0.05) -> dict:
        """Poll a job until it leaves the queue; returns its final record.

        Raises :class:`ServiceRequestError` if the job failed or timed
        out server-side.
        """
        deadline = time.monotonic() + timeout
        while True:
            rec = self.job(job_id)
            if rec["state"] in ("done", "failed", "timeout"):
                if rec["state"] != "done":
                    raise ServiceRequestError(
                        500, f"job {job_id} {rec['state']}: {rec['error']}"
                    )
                return rec
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {rec['state']} "
                                   f"after {timeout}s")
            time.sleep(poll)
