"""HTTP front-end: stdlib ``ThreadingHTTPServer`` over the job engine.

Endpoints (all JSON in/out)::

    POST /v1/compile   {workload, level, width, disable?, check_ir?}
    POST /v1/run       {workload, level, width, seed?, check?, ...}
    POST /v1/sweep     {workloads, levels?, widths?, ...} -> {job} (async)
    GET  /v1/jobs/<id> job status + result once done
    GET  /healthz      liveness
    GET  /metrics      request counts, hit/miss ratio, queue depth,
                       p50/p95 latency, shed count, store bytes

``compile`` and ``run`` block until the result is ready (they ride the
engine's single-flight/batching and per-request timeout); ``sweep``
returns a job id immediately — poll ``/v1/jobs/<id>``.  Saturation is
surfaced as ``429`` with ``Retry-After`` — unless the artifact store
already holds the requested result, in which case it is served stale
with ``"degraded": true`` (a previously computed answer beats a
rejection for read-mostly clients).  A quarantined cell (open circuit
breaker) is ``503``; malformed requests are ``400``; failed
compilations ``500`` with the error string.  ``/healthz`` reports the
supervised pool's watchdog view (worker liveness, heartbeat ages,
breaker states) alongside the liveness bit.

``--fault-plan FILE`` arms a :mod:`repro.resilience.faults` plan before
the engine forks its workers — the chaos suite's entry point for
injecting dropped/delayed responses, worker crashes, and store I/O
errors into a live server.

No new dependencies: ``http.server`` + ``json`` only.  Not a hardened
public-internet server — it is the in-lab traffic front of the
compilation service (bind it to localhost).
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from ..resilience import faults
from ..resilience.faults import FaultPlan
from ..resilience.supervisor import CellQuarantined
from .jobs import JobEngine, Overloaded, RequestTimeout
from .store import ArtifactStore

#: request bodies larger than this are rejected outright (bad client)
MAX_BODY_BYTES = 1 << 20


class ServiceError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with a load-worthy listen backlog.

    The stdlib default backlog is 5: under a concurrent load generator
    (or a router fanning a sweep out cell-wise) the accept queue
    overflows and the kernel resets connections before the handler ever
    sees them.  128 matches the admission-control queue bound — beyond
    that the service is shedding anyway.
    """

    request_queue_size = 128
    daemon_threads = True


class _DroppedResponse(Exception):
    """Injected ``server.drop_response``: abandon the connection."""


def _req_fields(body: dict) -> dict:
    """Validated common fields of a compile/run request."""
    try:
        out = {
            "workload": str(body["workload"]),
            "level": int(body.get("level", 4)),
            "width": int(body.get("width", 8)),
            "seed": int(body.get("seed", 0)),
            "check": bool(body.get("check", True)),
            "check_ir": bool(body.get("check_ir", False)),
            "disable": tuple(body.get("disable", ())),
            "timeout": (float(body["timeout"])
                        if "timeout" in body else None),
        }
    except (KeyError, TypeError, ValueError) as e:
        raise ServiceError(400, f"bad request: {e!r}") from None
    if out["level"] not in range(5):
        raise ServiceError(400, f"bad level {out['level']}")
    if out["width"] not in (1, 2, 4, 8):
        raise ServiceError(400, f"bad width {out['width']}")
    return out


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    #: set by make_server
    engine: JobEngine = None
    quiet: bool = True

    # -- plumbing -------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: A003
        if not self.quiet:
            super().log_message(fmt, *args)

    def _send(self, status: int, payload: dict, headers: dict = ()) -> None:
        plan = faults.ARMED
        if plan is not None and self.command == "POST":
            # response-path fault sites; keyed by arrival order (HTTP
            # responses have no natural content key)
            if plan.fire("server.drop_response",
                         plan.next_seq("server.drop_response")) is not None:
                raise _DroppedResponse()
            s = plan.fire("server.delay_response",
                          plan.next_seq("server.delay_response"))
            if s is not None:
                time.sleep(s.delay_s)
        data = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for k, v in dict(headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(data)

    def _body(self) -> dict:
        n = int(self.headers.get("Content-Length", 0) or 0)
        if n > MAX_BODY_BYTES:
            raise ServiceError(400, "request body too large")
        raw = self.rfile.read(n) if n else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as e:
            raise ServiceError(400, f"invalid JSON body: {e}") from None
        if not isinstance(body, dict):
            raise ServiceError(400, "JSON body must be an object")
        return body

    # -- routes ---------------------------------------------------------

    def do_GET(self):  # noqa: N802
        try:
            self._handle_get()
        except ServiceError as e:
            self._send(e.status, {"error": str(e)})

    def _handle_get(self) -> None:
        """GET route table (the cluster node handler extends this)."""
        if self.path == "/healthz":
            self._send(200, self.engine.health())
        elif self.path == "/metrics":
            self._send(200, self.engine.metrics())
        elif self.path.startswith("/v1/jobs/"):
            jid = self.path[len("/v1/jobs/"):]
            job = self.engine.job(jid)
            if job is None:
                raise ServiceError(404, f"unknown job {jid!r}")
            self._send(200, job.as_dict())
        else:
            raise ServiceError(404, f"no route {self.path!r}")

    def do_POST(self):  # noqa: N802
        try:
            self._do_post()
        except _DroppedResponse:
            self.close_connection = True

    def _do_post(self) -> None:
        try:
            self._handle_post(self._body())
        except _DroppedResponse:
            raise  # handled by do_POST: abandon the connection
        except Overloaded as e:
            self._send(429, {"error": str(e)}, {"Retry-After": "1"})
        except CellQuarantined as e:
            self._send(503, {"error": str(e)}, {"Retry-After": "5"})
        except RequestTimeout as e:
            self._send(504, {"error": str(e)})
        except ServiceError as e:
            self._send(e.status, {"error": str(e)})
        except Exception as e:  # compilation/simulation failure
            self._send(500, {"error": repr(e)})

    def _handle_post(self, body: dict) -> None:
        """POST route table (the cluster node handler extends this)."""
        if self.path in ("/v1/compile", "/v1/run"):
            kind = self.path.rsplit("/", 1)[1]
            f = _req_fields(body)
            timeout = f.pop("timeout")
            self._serve_single(kind, f, timeout)
        elif self.path == "/v1/sweep":
            self._serve_sweep(body)
        else:
            raise ServiceError(404, f"no route {self.path!r}")

    def _serve_single(self, kind: str, f: dict, timeout: float | None,
                      extra: dict | None = None) -> None:
        """One blocking compile/run through the local engine."""
        try:
            job = self.engine.submit(kind, **f, timeout=timeout)
        except KeyError as e:
            raise ServiceError(400, f"unknown workload {e}") from None
        except Overloaded:
            reply = self._on_overload(kind, f, timeout)
            if reply is None:
                raise
            self._send(200, {**reply, **(extra or {})})
            return
        result = self.engine.wait(job)
        self._send(200, {"job": job.id, "cache": job.cache,
                         "result": result, **(extra or {})})

    def _on_overload(self, kind: str, f: dict,
                     timeout: float | None) -> dict | None:
        """Admission shed a request: a reply dict to serve instead of the
        429, or None to shed for real.  Base behavior is graceful
        degradation — a stored result beats a 429; the cluster node
        handler tries work-stealing to a peer first."""
        stale = self.engine.degraded_lookup(kind, f)
        if stale is None:
            return None
        return {"job": None, "cache": "degraded", "degraded": True,
                "result": stale}

    def _serve_sweep(self, body: dict) -> None:
        try:
            workloads = [str(w) for w in body["workloads"]]
            levels = [int(x) for x in body.get("levels",
                                               (0, 1, 2, 3, 4))]
            widths = [int(x) for x in body.get("widths",
                                               (1, 2, 4, 8))]
            seed = int(body.get("seed", 0))
            check = bool(body.get("check", True))
            timeout = (float(body["timeout"])
                       if "timeout" in body else None)
        except (KeyError, TypeError, ValueError) as e:
            raise ServiceError(400, f"bad request: {e!r}") from None
        try:
            job = self.engine.submit_sweep(
                workloads, levels, widths, seed=seed, check=check,
                disable=tuple(body.get("disable", ())),
                timeout=timeout,
            )
        except KeyError as e:
            raise ServiceError(400, f"unknown workload {e}") from None
        self._send(202, {"job": job.id, "state": job.state,
                         "configs": job.request["configs"]})


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    store_dir: str | Path | None = None,
    jobs: int = 1,
    max_pending: int = 64,
    max_store_bytes: int | None = None,
    default_timeout: float = 120.0,
    quiet: bool = True,
) -> tuple[ThreadingHTTPServer, JobEngine]:
    """Build (but do not start) the service; port 0 picks a free port."""
    store = (ArtifactStore(Path(store_dir), max_bytes=max_store_bytes)
             if store_dir is not None else None)
    engine = JobEngine(store=store, jobs=jobs, max_pending=max_pending,
                       default_timeout=default_timeout)
    handler = type("Handler", (_Handler,), {"engine": engine, "quiet": quiet})
    httpd = ServiceHTTPServer((host, port), handler)
    return httpd, engine


def serve_background(**kwargs) -> tuple[ThreadingHTTPServer, JobEngine, str]:
    """Start a server on a daemon thread; returns (server, engine, url).

    Test/CI helper: ``examples/service_client.py --selftest`` and the
    integration suite use it to run client and server in one process.
    """
    httpd, engine = make_server(**kwargs)
    threading.Thread(target=httpd.serve_forever, daemon=True,
                     name="repro-service-http").start()
    host, port = httpd.server_address[:2]
    return httpd, engine, f"http://{host}:{port}"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro serve", description="Run the compilation service."
    )
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8734)
    ap.add_argument("--store", metavar="DIR",
                    help="persistent artifact-store directory "
                         "(default: serve without a store)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="compile/simulate worker processes (default: 1)")
    ap.add_argument("--max-pending", type=int, default=64, metavar="N",
                    help="admission-control queue bound (default: 64)")
    ap.add_argument("--max-store-bytes", type=int, default=None, metavar="B",
                    help="LRU-evict the store past this size (default: off)")
    ap.add_argument("--timeout", type=float, default=120.0,
                    help="default per-request deadline in seconds")
    ap.add_argument("--fault-plan", metavar="FILE", default=None,
                    help="arm a fault-injection plan from a JSON file "
                         "(chaos testing only)")
    ap.add_argument("--verbose", action="store_true",
                    help="log every request")
    args = ap.parse_args(argv)

    if args.fault_plan:
        # arm before the engine forks its workers, so the plan is
        # inherited by every worker process
        plan = FaultPlan.from_file(args.fault_plan)
        faults.arm(plan)
        print(plan.describe(), flush=True)

    httpd, engine = make_server(
        host=args.host, port=args.port, store_dir=args.store,
        jobs=args.jobs, max_pending=args.max_pending,
        max_store_bytes=args.max_store_bytes,
        default_timeout=args.timeout, quiet=not args.verbose,
    )
    host, port = httpd.server_address[:2]
    store_note = f", store={args.store}" if args.store else ""
    print(f"repro service on http://{host}:{port} "
          f"({args.jobs} worker(s){store_note})", flush=True)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.shutdown()
        engine.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
