"""repro — reproduction of Mahlke et al., "Compiler Code Transformations
for Superscalar-Based High-Performance Systems" (Supercomputing '92).

Public API quick reference:

* :func:`repro.harness.compile_kernel` / ``run_compiled_kernel`` — compile
  a kernel at a transformation level and simulate it;
* :class:`repro.pipeline.Level` — Conv / Lev1..Lev4, the paper's levels;
* :mod:`repro.machine` — ``issue1()/issue2()/issue4()/issue8()`` processor
  presets with the paper's Table-1 latencies;
* :mod:`repro.frontend` — the kernel language (``Kernel``, ``do``,
  ``assign``, ``aref``, ``var`` ...);
* :mod:`repro.workloads` — the 40-loop corpus of Table 2;
* :mod:`repro.experiments` — the sweep grid and figure renderers.
"""

from .machine import MachineConfig, issue1, issue2, issue4, issue8, unlimited
from .pipeline import Level

__version__ = "1.0.0"

__all__ = [
    "MachineConfig", "issue1", "issue2", "issue4", "issue8", "unlimited",
    "Level",
    "__version__",
]
