"""Structured error taxonomy for the fault-tolerant paths.

Every I/O-adjacent failure in the sweep/store/service stack falls into
one of three classes, and the handling rule is uniform:

* **Transient** — the operation may succeed if retried (``ENOSPC`` after
  eviction, ``EIO`` on a flaky disk, ``EAGAIN``, a dropped connection).
  Retried under a :class:`~repro.resilience.retry.RetryPolicy`; if the
  budget runs out the caller degrades (e.g. a result is served but not
  persisted) instead of crashing.
* **Corrupt** — the data is damaged but the system is healthy (torn
  blob, undecodable journal line).  Quarantined/skipped and recomputed;
  never retried in place (rereading torn bytes cannot help).
* **Fatal** — a programming error or an unrecoverable environment
  problem (permission denied on the store root, read-only filesystem).
  Raised: masking it would silently corrupt hours of results.

The classifier below maps ``OSError`` values onto the taxonomy; the
store's eviction path and the job engine's admission/persist paths used
to treat *any* ``OSError`` as fatal — now only genuinely fatal ones
propagate, the rest are logged and counted.
"""

from __future__ import annotations

import errno
import sys
import time
from pathlib import Path


class TransientError(Exception):
    """Retryable: the same operation may succeed shortly."""


class CorruptArtifact(Exception):
    """Damaged data: quarantine/skip and recompute, do not retry."""


class FatalError(Exception):
    """Unrecoverable: must propagate to the operator."""


#: errno values where retrying (possibly after eviction/backoff) is sane
TRANSIENT_ERRNOS = frozenset({
    errno.ENOSPC, errno.EDQUOT, errno.EIO, errno.EAGAIN, errno.EINTR,
    errno.EBUSY, errno.ETIMEDOUT, errno.EMFILE, errno.ENFILE,
    errno.ESTALE, errno.ECONNRESET, errno.ECONNREFUSED, errno.EPIPE,
})


def classify_os_error(exc: OSError) -> str:
    """``"transient"`` or ``"fatal"`` for an ``OSError``.

    ``ENOENT`` during cleanup/eviction is transient (another process
    already removed the file — the desired state holds); ``EACCES`` /
    ``EROFS`` / ``EPERM`` are fatal (retrying cannot fix permissions).
    """
    if exc.errno in TRANSIENT_ERRNOS or exc.errno == errno.ENOENT:
        return "transient"
    return "fatal"


def classify_exception(exc: BaseException) -> str:
    """Map any exception onto the taxonomy: ``transient`` | ``corrupt``
    | ``fatal``."""
    if isinstance(exc, TransientError):
        return "transient"
    if isinstance(exc, CorruptArtifact):
        return "corrupt"
    if isinstance(exc, FatalError):
        return "fatal"
    if isinstance(exc, OSError):
        return classify_os_error(exc)
    return "fatal"


def log_tolerated(where: str, exc: BaseException) -> None:
    """One-line stderr note for a classified-and-absorbed failure."""
    print(f"  [resilience] {where}: tolerated {classify_exception(exc)} "
          f"{exc!r}", file=sys.stderr)


# ---------------------------------------------------------------------------
# orphaned-tmp cleanup
# ---------------------------------------------------------------------------

#: a tmp file younger than this may belong to a live writer; leave it
DEFAULT_TMP_GRACE_S = 600.0


def clean_orphan_tmps(root: Path, grace_s: float = DEFAULT_TMP_GRACE_S,
                      recursive: bool = True, now: float | None = None) -> int:
    """Remove ``*.tmp`` droppings left by a writer that died between its
    tmp write and the atomic rename.

    Both the artifact store and the sweep journal/cache write via
    ``tmp + os.replace``; a crash in the window strands the tmp file
    forever (a new writer picks a fresh pid-stamped name).  Called on
    startup by the store and the sweep driver.  Only files older than
    ``grace_s`` go: a fresh tmp may be another live process mid-write.
    Returns the number of files removed; errors while removing are
    tolerated (another janitor may have won the race).
    """
    if not root.is_dir():
        return 0
    now = time.time() if now is None else now
    removed = 0
    pattern = "**/*.tmp" if recursive else "*.tmp"
    for p in root.glob(pattern):
        try:
            if not p.is_file() or now - p.stat().st_mtime < grace_s:
                continue
            p.unlink()
            removed += 1
        except OSError as e:
            if classify_os_error(e) == "fatal":
                raise
    return removed
