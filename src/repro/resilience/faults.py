"""Deterministic fault injection: seeded plans fired at named sites.

A :class:`FaultPlan` is an armed set of :class:`FaultSite` specs.  Code
on the hot paths (sweep worker loop, artifact store, job engine, HTTP
server) carries *sites* — named points where a fault can be injected:

====================== ====================================================
``worker.kill``        SIGKILL the worker process before it runs the task
``worker.hang``        sleep ``delay_s`` (≫ deadline) before the task
``worker.slow``        sleep ``delay_s`` (≪ deadline), then run normally
``worker.error``       raise from the task (Transient unless ``fatal``)
``store.torn_write``   truncate a blob's bytes mid-write (torn artifact)
``store.enospc``       raise ``OSError(ENOSPC)`` writing a blob
``store.eio``          raise ``OSError(EIO)`` at blob fsync
``server.drop_response``   close the HTTP connection without replying
``server.delay_response``  sleep ``delay_s`` before replying
====================== ====================================================

**Zero overhead when unarmed.**  The module global :data:`ARMED` is
``None`` almost always; every call site guards with a single
``faults.ARMED is not None`` test, so an un-armed run pays one pointer
compare per site visit and allocates nothing.

**Deterministic by content, not by schedule.**  Whether a site fires for
a given piece of work is a pure function of ``(plan seed, site name,
work key, attempt number)`` — a hash-thresholded Bernoulli draw — never
of wall clock, pid, or arrival order.  Two consequences the chaos suite
leans on: the same plan replays identically across runs and process
topologies, and the *expected* fault set can be computed independently
(:meth:`FaultPlan.count_for`) and reconciled against the recovery
counters, so no injected fault can escape unaccounted.

Fork inheritance arms the workers: ``arm()`` in the parent before the
pool forks and every worker sees the plan.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
from collections import Counter
from dataclasses import asdict, dataclass, field
from pathlib import Path

KNOWN_SITES = (
    "worker.kill", "worker.hang", "worker.slow", "worker.error",
    "store.torn_write", "store.enospc", "store.eio",
    "server.drop_response", "server.delay_response",
)


@dataclass(frozen=True)
class FaultSite:
    """One armed site: which keys it selects and how hard it hits them."""

    site: str
    #: fraction of keys selected (hash-thresholded, not sampled)
    rate: float = 1.0
    #: a selected key faults on attempts ``0..fires-1`` and then runs
    #: clean — so bounded retries always converge on the true result
    fires: int = 1
    #: sleep length for slow/hang/delay sites
    delay_s: float = 0.0
    #: ``worker.error`` raises FatalError instead of TransientError
    fatal: bool = False

    def __post_init__(self):
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r} (known: {KNOWN_SITES})")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0,1], got {self.rate}")
        if self.fires < 1:
            raise ValueError("fires must be >= 1")


def _selected(seed: int, site: str, key: str, rate: float) -> bool:
    """Hash-thresholded Bernoulli: same (seed, site, key) → same answer
    in every process, on every run."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    h = hashlib.sha256(f"{seed}\x00{site}\x00{key}".encode()).digest()
    return int.from_bytes(h[:8], "big") / 2.0 ** 64 < rate


@dataclass
class FaultPlan:
    """A seeded, composable set of fault sites.

    ``injected`` counts actual firings in *this process* (workers count
    their own; the parent reconciles via :meth:`count_for` instead).
    """

    seed: int = 0
    sites: tuple[FaultSite, ...] = ()
    injected: Counter = field(default_factory=Counter, compare=False)

    def __post_init__(self):
        self.sites = tuple(self.sites)
        names = [s.site for s in self.sites]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate fault sites in plan: {names}")
        self._by_site = {s.site: s for s in self.sites}
        self._seq = Counter()

    # -- decisions ------------------------------------------------------

    def count_for(self, site: str, key: str) -> int:
        """How many leading attempts of ``key`` fault at ``site`` (0 if
        the key is not selected).  Pure; usable for reconciliation."""
        s = self._by_site.get(site)
        if s is None or not _selected(self.seed, site, key, s.rate):
            return 0
        return s.fires

    def fire(self, site: str, key: str, attempt: int = 0) -> FaultSite | None:
        """The site spec if this (key, attempt) should fault, else None.
        Firing is recorded in :attr:`injected`."""
        s = self._by_site.get(site)
        if s is None or attempt >= self.count_for(site, key):
            return None
        self.injected[site] += 1
        return s

    def next_seq(self, site: str) -> str:
        """A per-site sequence key for sites with no natural work key
        (HTTP responses): ``#0``, ``#1``, ... in arrival order."""
        n = self._seq[site]
        self._seq[site] += 1
        return f"#{n}"

    # -- (de)serialization ----------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "sites": [asdict(s) for s in self.sites]},
            indent=2)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        return cls(seed=int(d.get("seed", 0)),
                   sites=tuple(FaultSite(**s) for s in d.get("sites", ())))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())

    def describe(self) -> str:
        rows = [f"fault plan (seed {self.seed}):"]
        for s in self.sites:
            extra = f", delay {s.delay_s}s" if s.delay_s else ""
            extra += ", fatal" if s.fatal else ""
            rows.append(f"  {s.site:<24} rate {s.rate:.2f} x{s.fires}{extra}")
        return "\n".join(rows)


# ---------------------------------------------------------------------------
# global arming
# ---------------------------------------------------------------------------

#: the armed plan, or None (the overwhelmingly common case).  Call sites
#: guard on ``faults.ARMED is not None`` — one pointer compare.
ARMED: FaultPlan | None = None


def arm(plan: FaultPlan | None) -> None:
    global ARMED
    ARMED = plan


def disarm() -> None:
    arm(None)


@contextlib.contextmanager
def armed(plan: FaultPlan):
    """``with faults.armed(plan): ...`` — arm for a scope, restore after."""
    prev = ARMED
    arm(plan)
    try:
        yield plan
    finally:
        arm(prev)
