"""The ``repro chaos`` runner: prove the stack recovers from injected
faults without changing a single result.

A chaos run executes the same small grid twice per surface:

1. **Sweep**: a fault-free baseline sweep, then the identical sweep
   under an armed :class:`~repro.resilience.faults.FaultPlan` with the
   supervised pool and a fresh artifact store.  The result grids must
   match exactly (wall-clock timing fields excluded — everything the
   paper's figures consume is compared).
2. **Serve** (unless ``--no-serve``): the same comparison through the
   full HTTP service — a fault-free served batch vs. one against a
   server whose workers, store, and response path are armed, consumed
   by a :class:`~repro.service.client.ServiceClient` retrying under the
   shared policy.

Because fault decisions are pure functions of ``(seed, site, key)``
(:meth:`FaultPlan.count_for`), the runner *predicts* every injection
independently and reconciles the predictions against the recovery
counters (re-dispatches, retries, deadline kills, store put-retries,
quarantined blobs, client transport retries).  A fault that fired but
was not visibly recovered — or a recovery with no matching fault —
fails the run.  The reconciliation is written to
``results/CHAOS_report.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from ..pipeline import Level
from ..workloads import get_workload
from . import faults
from .faults import FaultPlan, FaultSite

#: small but level-diverse default grid: scalar reduction, DOALL, dotprod
DEFAULT_WORKLOADS = ("add", "sum", "dotprod")
DEFAULT_LEVELS = (0, 4)
DEFAULT_WIDTHS = (1, 8)

#: timing fields are wall-clock and legitimately differ between runs;
#: everything else in a result must be byte-identical under faults
TIMING_FIELDS = ("t_compile", "t_schedule", "t_simulate", "t_passes")

BUILTIN_PLANS = {
    "kill":   ((("worker.kill", 0.5, 1, 0.0, False),),
               "SIGKILL workers mid-task"),
    "hang":   ((("worker.hang", 0.5, 1, 60.0, False),),
               "hang workers past the deadline"),
    "flaky":  ((("worker.error", 0.5, 1, 0.0, False),),
               "transient in-task exceptions"),
    "torn":   ((("store.torn_write", 0.5, 1, 0.0, False),),
               "truncate artifact blobs mid-write"),
    "enospc": ((("store.enospc", 0.5, 1, 0.0, False),
                ("store.eio", 0.3, 1, 0.0, False)),
               "ENOSPC at blob write, EIO at fsync"),
    "drop":   ((("server.drop_response", 0.25, 1, 0.0, False),),
               "close HTTP connections without replying"),
    "delay":  ((("server.delay_response", 0.4, 1, 0.02, False),),
               "delay HTTP responses"),
    "all":    ((("worker.kill", 0.2, 1, 0.0, False),
                ("worker.error", 0.25, 1, 0.0, False),
                ("store.torn_write", 0.25, 1, 0.0, False),
                ("store.enospc", 0.2, 1, 0.0, False),
                ("server.drop_response", 0.15, 1, 0.0, False),
                ("server.delay_response", 0.1, 1, 0.01, False)),
               "everything at once (reduced rates)"),
}


def load_plan(spec: str, seed: int = 0) -> FaultPlan:
    """A builtin plan name, or a path to a FaultPlan JSON file."""
    entry = BUILTIN_PLANS.get(spec)
    if entry is not None:
        sites = tuple(FaultSite(site, rate, fires, delay_s, fatal)
                      for site, rate, fires, delay_s, fatal in entry[0])
        return FaultPlan(seed=seed, sites=sites)
    path = Path(spec)
    if not path.exists():
        raise SystemExit(
            f"unknown plan {spec!r}: not a builtin "
            f"({', '.join(BUILTIN_PLANS)}) and no such file")
    return FaultPlan.from_file(path)


# ---------------------------------------------------------------------------
# key prediction (mirrors sweep.py task sharding / jobs.py cell keys)
# ---------------------------------------------------------------------------


def _keys(kind: str, workloads, levels, widths, per_width: bool,
          seed: int = 0) -> list[str]:
    """The canonical request keys the run will present to the fault
    sites: per-(workload, level) task keys (``per_width=False``, the
    worker sites) or per-configuration blob keys (``per_width=True``,
    the store sites)."""
    from ..service.keys import request_key, workload_fingerprint

    fps = {n: workload_fingerprint(n) for n in workloads}
    out = []
    for n in workloads:
        for lv in levels:
            cols = widths if per_width else widths[:1]
            out.extend(
                request_key(kind, n, int(lv), wd, seed=seed, check=True,
                            check_ir=False, disable=(), fingerprint=fps[n])
                for wd in cols
            )
    return out


def _expected(plan: FaultPlan, site: str, keys) -> int:
    return sum(plan.count_for(site, k) for k in keys)


def _expected_quarantines(plan: FaultPlan, keys) -> int:
    """Keys whose first write is torn *and* not failed by enospc/eio —
    only those land a corrupt blob for a later read to quarantine (a
    failed first write is retried and lands clean, torn or not)."""
    return sum(
        1 for k in keys
        if plan.count_for("store.torn_write", k) > 0
        and plan.count_for("store.enospc", k) == 0
        and plan.count_for("store.eio", k) == 0
    )


# ---------------------------------------------------------------------------
# the two surfaces
# ---------------------------------------------------------------------------


def _canon_sweep(data) -> dict:
    from dataclasses import asdict

    out = {}
    for (n, lv, wd), r in sorted(data.results.items()):
        d = asdict(r)
        for f in TIMING_FIELDS:
            d.pop(f, None)
        out[f"{n}/L{lv}/w{wd}"] = d
    return out


def _run_sweep(workloads, levels, widths, jobs, root: Path,
               deadline_s=None) -> tuple[dict, dict, object]:
    from ..experiments.sweep import run_sweep
    from ..service.store import ArtifactStore

    store = ArtifactStore(root / "store")
    data = run_sweep(
        [get_workload(n) for n in workloads],
        levels=tuple(Level(lv) for lv in levels), widths=tuple(widths),
        jobs=jobs, journal=root / "journal.jsonl", resume=False,
        store=store, deadline_s=deadline_s, strict=True,
    )
    return _canon_sweep(data), dict(data.resilience), store


def _run_serve(workloads, levels, widths, jobs, store_dir: Path,
               pool_deadline_s: float) -> tuple[dict, dict, int]:
    from ..service.client import ServiceClient
    from ..service.server import serve_background

    httpd, engine, url = serve_background(
        store_dir=store_dir, jobs=jobs,
        default_timeout=pool_deadline_s,
    )
    client = ServiceClient(url, timeout=120.0, retry_overloaded=True)
    out = {}
    try:
        for n in workloads:
            for lv in levels:
                for wd in widths:
                    # generous per-request deadline: a deadline-killed
                    # worker needs pool_deadline_s + a rerun to recover
                    r = client.run(n, level=int(lv), width=int(wd),
                                   timeout=60.0)
                    out[f"{n}/L{lv}/w{wd}"] = r["result"]
        metrics = engine.metrics()
    finally:
        httpd.shutdown()
        engine.close()
    return out, metrics, client.retries


# ---------------------------------------------------------------------------
# reconciliation
# ---------------------------------------------------------------------------


def _reconcile(plan, site_names, keys_task, keys_blob, resilience,
               store_stats, injected, client_retries=None) -> list[dict]:
    """Per-site checks: predicted injections vs. recovery counters."""
    checks = []

    def check(name, expected, observed, op="=="):
        ok = observed >= expected if op == ">=" else observed == expected
        checks.append({"check": name, "expected": expected,
                       "observed": observed, "ok": bool(ok)})

    if "worker.kill" in site_names:
        check("worker.kill -> redispatched",
              _expected(plan, "worker.kill", keys_task),
              resilience.get("redispatched", 0), ">=")
    if "worker.hang" in site_names:
        e = _expected(plan, "worker.hang", keys_task)
        check("worker.hang -> deadline_kills", e,
              resilience.get("deadline_kills", 0))
        check("worker.hang -> redispatched", e,
              resilience.get("redispatched", 0), ">=")
    if "worker.error" in site_names:
        check("worker.error -> retries",
              _expected(plan, "worker.error", keys_task),
              resilience.get("retries", 0), ">=")
    if "store.enospc" in site_names or "store.eio" in site_names:
        # enospc raises before the write reaches the fsync (eio) site,
        # so on a key selected for both, eio only fires on the attempts
        # left after the enospc fires are exhausted
        e = 0
        for k in keys_blob:
            en = plan.count_for("store.enospc", k)
            ei = plan.count_for("store.eio", k)
            e += en + max(0, ei - en)
        check("store write faults -> injected", e,
              injected.get("store.enospc", 0) + injected.get("store.eio", 0))
        check("store write faults -> put_retries", e,
              store_stats.get("put_retries", 0))
    if "store.torn_write" in site_names:
        check("store.torn_write -> injected",
              _expected(plan, "store.torn_write", keys_blob),
              injected.get("store.torn_write", 0))
    if "server.drop_response" in site_names and client_retries is not None:
        check("server.drop_response -> client retries",
              injected.get("server.drop_response", 0),
              client_retries, ">=")
    return checks


def _verify_store_recovery(store_dir: Path, plan, keys_blob) -> list[dict]:
    """Disarmed re-read of every blob the armed run wrote: torn blobs
    must be detected + quarantined (a miss, never a wrong answer), and
    every retried write must have landed readable."""
    from ..service.store import ArtifactStore

    store = ArtifactStore(store_dir)
    torn = _expected_quarantines(plan, keys_blob)
    hits = sum(1 for k in keys_blob if store.get(k) is not None)
    return [
        {"check": "torn blobs quarantined on read", "expected": torn,
         "observed": store.stats.quarantined,
         "ok": store.stats.quarantined == torn},
        {"check": "non-torn blobs all readable",
         "expected": len(keys_blob) - torn, "observed": hits,
         "ok": hits == len(keys_blob) - torn},
    ]


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


def run_chaos(plan_spec: str = "all", *, seed: int = 0, jobs: int = 2,
              workloads=DEFAULT_WORKLOADS, levels=DEFAULT_LEVELS,
              widths=DEFAULT_WIDTHS, workdir: Path | None = None,
              out: Path | None = None, serve: bool = True,
              verbose: bool = True) -> dict:
    """Run the chaos suite; returns (and optionally writes) the report."""
    import tempfile

    plan = load_plan(plan_spec, seed)
    site_names = {s.site for s in plan.sites}
    has_hang = "worker.hang" in site_names
    deadline_s = 2.0 if has_hang else None
    t0 = time.monotonic()

    if workdir is None:
        workdir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    workdir.mkdir(parents=True, exist_ok=True)
    if verbose:
        print(plan.describe())
        print(f"chaos grid: {len(workloads)} workloads x {len(levels)} "
              f"levels x {len(widths)} widths, {jobs} jobs ({workdir})")

    keys_task = _keys("result", workloads, levels, widths, per_width=False)
    keys_blob = _keys("result", workloads, levels, widths, per_width=True)

    if verbose:
        print("chaos: baseline sweep (fault-free)...")
    base, _, _ = _run_sweep(workloads, levels, widths, jobs,
                            workdir / "baseline")
    if verbose:
        print("chaos: armed sweep...")
    with faults.armed(plan):
        got, resilience, store = _run_sweep(
            workloads, levels, widths, jobs, workdir / "armed",
            deadline_s=deadline_s)
        sweep_injected = dict(plan.injected)

    checks = [{"check": "sweep results identical under faults",
               "expected": len(base), "observed": sum(
                   1 for k in base if got.get(k) == base[k]),
               "ok": got == base}]
    checks += _reconcile(plan, site_names, keys_task, keys_blob,
                         resilience, store.stats.as_dict(), sweep_injected)
    if site_names & {"store.torn_write", "store.enospc", "store.eio"}:
        checks += _verify_store_recovery(workdir / "armed" / "store",
                                         plan, keys_blob)

    serve_report = None
    if serve:
        # the served batch is sequential, so every (workload, level,
        # width) request is its own single-width cell: the worker-site
        # keys coincide with the per-configuration blob keys
        serve_keys_blob = _keys("run", workloads, levels, widths,
                                per_width=True)
        serve_keys_task = serve_keys_blob
        if verbose:
            print("chaos: baseline served batch (fault-free)...")
        base_s, _, _ = _run_serve(workloads, levels, widths, jobs,
                                  workdir / "serve-baseline" / "store",
                                  pool_deadline_s=120.0)
        if verbose:
            print("chaos: armed served batch...")
        plan2 = load_plan(plan_spec, seed)  # fresh injection counters
        with faults.armed(plan2):
            got_s, metrics, client_retries = _run_serve(
                workloads, levels, widths, jobs,
                workdir / "serve-armed" / "store",
                pool_deadline_s=2.0 if has_hang else 120.0)
            serve_injected = dict(plan2.injected)
        serve_checks = [{"check": "served results identical under faults",
                         "expected": len(base_s), "observed": sum(
                             1 for k in base_s if got_s.get(k) == base_s[k]),
                         "ok": got_s == base_s}]
        serve_checks += _reconcile(
            plan2, site_names, serve_keys_task, serve_keys_blob,
            metrics.get("resilience", {}),
            metrics.get("store", {}), serve_injected,
            client_retries=client_retries)
        serve_report = {
            "identical": got_s == base_s,
            "resilience": metrics.get("resilience", {}),
            "client_retries": client_retries,
            "injected": serve_injected,
            "checks": serve_checks,
        }
        checks += serve_checks

    ok = all(c["ok"] for c in checks)
    report = {
        "plan": json.loads(plan.to_json()),
        "plan_name": plan_spec,
        "grid": {"workloads": list(workloads), "levels": list(levels),
                 "widths": list(widths), "jobs": jobs},
        "sweep": {"identical": got == base, "resilience": resilience,
                  "injected": sweep_injected,
                  "store": store.stats.as_dict()},
        "serve": serve_report,
        "checks": checks,
        "ok": ok,
        "elapsed_s": round(time.monotonic() - t0, 2),
    }
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2))
    if verbose:
        for c in checks:
            mark = "ok " if c["ok"] else "FAIL"
            print(f"  [{mark}] {c['check']}: expected {c['expected']}, "
                  f"observed {c['observed']}")
        where = f" -> {out}" if out is not None else ""
        print(f"chaos: {'PASS' if ok else 'FAIL'} "
              f"({report['elapsed_s']}s){where}")
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro chaos",
        description="Fault-injection suite: inject worker crashes/hangs, "
                    "store I/O errors, and dropped HTTP responses into a "
                    "real sweep and a served batch; verify results are "
                    "identical to a fault-free run and every fault is "
                    "accounted for by a recovery counter.",
    )
    ap.add_argument("--plan", default="all",
                    help="builtin plan name (%s) or a FaultPlan JSON file "
                         "(default: all)" % ", ".join(BUILTIN_PLANS))
    ap.add_argument("--seed", type=int, default=0,
                    help="fault-plan seed (default: 0)")
    ap.add_argument("--jobs", type=int, default=2, metavar="N",
                    help="worker processes (default: 2)")
    ap.add_argument("--workloads", metavar="A,B,...",
                    default=",".join(DEFAULT_WORKLOADS))
    ap.add_argument("--levels", metavar="L,L,...",
                    default=",".join(map(str, DEFAULT_LEVELS)))
    ap.add_argument("--widths", metavar="W,W,...",
                    default=",".join(map(str, DEFAULT_WIDTHS)))
    ap.add_argument("--out", metavar="FILE",
                    default="results/CHAOS_report.json",
                    help="report path (default: results/CHAOS_report.json)")
    ap.add_argument("--workdir", metavar="DIR", default=None,
                    help="scratch directory (default: a fresh tempdir)")
    ap.add_argument("--no-serve", action="store_true",
                    help="skip the HTTP-service phase")
    ap.add_argument("--cluster", action="store_true",
                    help="node-kill mode: run the grid through a "
                         "multi-node cluster, SIGKILL a whole node "
                         "mid-batch, and reconcile exactly (see "
                         "repro.cluster.chaos)")
    ap.add_argument("--nodes", type=int, default=3, metavar="N",
                    help="cluster size for --cluster (default: 3)")
    ap.add_argument("--list-plans", action="store_true",
                    help="list the builtin plans and exit")
    args = ap.parse_args(argv)

    if args.list_plans:
        for name, (_, doc) in BUILTIN_PLANS.items():
            print(f"{name:<8} {doc}")
        return 0

    if args.cluster:
        from ..cluster.chaos import run_cluster_chaos

        out = args.out
        if out == "results/CHAOS_report.json":  # keep reports separate
            out = "results/CHAOS_cluster_report.json"
        report = run_cluster_chaos(
            nodes=args.nodes, jobs=args.jobs,
            workloads=tuple(args.workloads.split(",")),
            levels=tuple(int(x) for x in args.levels.split(",")),
            widths=tuple(int(x) for x in args.widths.split(",")),
            workdir=Path(args.workdir) if args.workdir else None,
            out=Path(out) if out else None,
        )
        return 0 if report["ok"] else 1

    report = run_chaos(
        args.plan, seed=args.seed, jobs=args.jobs,
        workloads=tuple(args.workloads.split(",")),
        levels=tuple(int(x) for x in args.levels.split(",")),
        widths=tuple(int(x) for x in args.widths.split(",")),
        workdir=Path(args.workdir) if args.workdir else None,
        out=Path(args.out) if args.out else None,
        serve=not args.no_serve,
    )
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
