"""Fault-injection harness and resilience layer.

The sweep/store/service stack assumes nothing about a clean machine:

* :mod:`~repro.resilience.errors` — the Transient/Corrupt/Fatal error
  taxonomy every tolerant path classifies against, plus orphaned
  tmp-file cleanup for the atomic-rename writers.
* :mod:`~repro.resilience.retry` — the one shared retry policy (capped
  exponential backoff, full jitter, retry budget, ``Retry-After``).
* :mod:`~repro.resilience.faults` — seeded, deterministic fault plans
  injected at named sites (zero overhead unarmed).
* :mod:`~repro.resilience.supervisor` — the supervised fork worker pool
  (heartbeats, deadlines, bounded re-dispatch, circuit breakers).
* :mod:`~repro.resilience.chaos` — the ``repro chaos`` runner: a fault
  plan against a real sweep and a served batch, reconciled against a
  fault-free baseline into ``results/CHAOS_report.json``.
"""

from .errors import (
    CorruptArtifact,
    FatalError,
    TransientError,
    classify_exception,
    classify_os_error,
    clean_orphan_tmps,
)
from .faults import ARMED, FaultPlan, FaultSite, arm, armed, disarm
from .retry import RetryPolicy, RetryState, retry_call
from .supervisor import (
    CellQuarantined,
    CircuitBreaker,
    SupervisedPool,
    TaskFailed,
    TaskLost,
)

__all__ = [
    "ARMED", "CellQuarantined", "CircuitBreaker", "CorruptArtifact",
    "FatalError", "FaultPlan", "FaultSite", "RetryPolicy", "RetryState",
    "SupervisedPool", "TaskFailed", "TaskLost", "TransientError",
    "arm", "armed", "classify_exception", "classify_os_error",
    "clean_orphan_tmps", "disarm", "retry_call",
]
