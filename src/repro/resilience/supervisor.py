"""Supervised fork worker pool: heartbeats, deadlines, re-dispatch.

The sweep engine and the job engine both fan work out over ``fork``-ed
worker processes.  The plain :class:`ProcessPoolExecutor` they used
treats one dead worker as the end of the world: every pending future
fails with ``BrokenProcessPool`` and hours of grid results die with a
single OOM-kill.  :class:`SupervisedPool` keeps the same fork-pool
shape (workers inherit the parent's warm caches and
``PYTHONHASHSEED``) and adds supervision:

* **Per-worker channels.**  Each worker owns a private inbox/outbox
  pipe pair with exactly one writer per end — there is no shared queue
  lock a SIGKILLed worker could strand, so one corpse can never wedge
  its siblings.
* **Heartbeat watchdog.**  A daemon thread in every worker beats on the
  outbox; a worker that stops beating (stuck in an uninterruptible
  syscall, swapped to death) past ``heartbeat_timeout_s`` is killed and
  replaced.
* **Per-task deadlines.**  A task running past its deadline marks the
  worker hung: SIGKILL, respawn, re-dispatch.
* **Bounded re-dispatch with dedup.**  A task lost to a crashed/hung
  worker is re-dispatched up to ``max_retries`` times.  Tasks are
  identified by their canonical request key
  (:mod:`repro.service.keys`), and only the first completion of a task
  resolves its future — a straggler's late duplicate is counted and
  dropped, never double-recorded.
* **Circuit breaker per cell.**  Failures are recorded against the
  task's *cell* (a (workload, level) coordinate); ``failure_threshold``
  consecutive failures open the breaker and subsequent submissions for
  that cell fail fast with :class:`CellQuarantined` instead of burning
  the pool — one broken kernel quarantines itself, the rest of the
  sweep completes.

In-task exceptions follow the :mod:`~repro.resilience.errors`
taxonomy: ``transient`` failures are retried (in place, same pool),
everything else fails the task's future after feeding the breaker.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait

from . import faults
from .errors import FatalError, TransientError, classify_exception


class TaskLost(TransientError):
    """The worker running the task died or was killed by the watchdog."""


class CellQuarantined(RuntimeError):
    """The cell's circuit breaker is open: failing fast, not computing."""


class TaskFailed(RuntimeError):
    """A task exhausted its retries (the last cause is in ``args``)."""


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


@dataclass
class CircuitBreaker:
    """closed → open (``failure_threshold`` consecutive failures) →
    half-open (one probe after ``cooldown_s``) → closed on success,
    back to open on a failed probe.  ``clock`` is injectable for tests."""

    failure_threshold: int = 5
    cooldown_s: float = 30.0
    clock: object = time.monotonic
    state: str = "closed"
    failures: int = 0
    opened_at: float = 0.0
    trips: int = 0

    def allow(self) -> bool:
        """May a new attempt proceed?  The first allowance after the
        cooldown is the half-open probe; further calls wait on it."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.clock() - self.opened_at >= self.cooldown_s:
                self.state = "half_open"
                return True
            return False
        return False  # half_open: probe already out

    def record_success(self) -> None:
        self.state = "closed"
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.failure_threshold:
            if self.state != "open":
                self.trips += 1
            self.state = "open"
            self.opened_at = self.clock()


# ---------------------------------------------------------------------------
# the worker process
# ---------------------------------------------------------------------------

HEARTBEAT_INTERVAL_S = 0.25


def _apply_worker_faults(plan: faults.FaultPlan, key: str, attempt: int) -> None:
    """The worker-side fault sites, in severity order."""
    s = plan.fire("worker.kill", key, attempt)
    if s is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    s = plan.fire("worker.hang", key, attempt)
    if s is not None:
        time.sleep(s.delay_s or 3600.0)
    s = plan.fire("worker.slow", key, attempt)
    if s is not None:
        time.sleep(s.delay_s)
    s = plan.fire("worker.error", key, attempt)
    if s is not None:
        exc = FatalError if s.fatal else TransientError
        raise exc(f"injected worker.error for {key} (attempt {attempt})")


def _worker_main(inbox, outbox, hb_interval: float) -> None:
    """Worker loop: recv (task_id, attempt, key, fn, arg), send results.

    The outbox has two in-process writers (main loop + heartbeat
    thread), serialized by a thread lock; cross-process it has exactly
    one writer, so a sibling's death cannot corrupt this channel.
    """
    send_lock = threading.Lock()

    def send(msg) -> bool:
        try:
            with send_lock:
                outbox.send(msg)
            return True
        except OSError:
            return False  # parent went away; nothing left to do

    def beat():
        while send(("hb", None, None)):
            time.sleep(hb_interval)

    threading.Thread(target=beat, daemon=True, name="hb").start()
    plan = faults.ARMED  # inherited over fork
    while True:
        try:
            msg = inbox.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        task_id, attempt, key, fn, arg = msg
        try:
            if plan is not None:
                _apply_worker_faults(plan, key, attempt)
            result = fn(arg)
        except BaseException as e:
            send(("err", task_id, (repr(e), classify_exception(e))))
        else:
            send(("ok", task_id, result))


# ---------------------------------------------------------------------------
# the supervisor
# ---------------------------------------------------------------------------


@dataclass
class _Task:
    id: int
    key: str
    cell: object
    fn: object
    arg: object
    future: Future
    deadline_s: float | None
    attempts: int = 0  # dispatches so far


@dataclass
class _Worker:
    id: int
    proc: object
    sconn: object          # parent -> worker
    rconn: object          # worker -> parent
    task: _Task | None = None
    started: float = 0.0   # dispatch time of the current task
    last_beat: float = field(default_factory=time.monotonic)


class SupervisedPool:
    """A fork pool that survives crashed, hung, and slow workers.

    ``submit(fn, arg, key=..., cell=...)`` returns a
    :class:`concurrent.futures.Future`.  ``fn`` must be a module-level
    callable (same contract as ProcessPoolExecutor under fork).
    """

    def __init__(
        self,
        jobs: int,
        *,
        deadline_s: float | None = None,
        max_retries: int = 2,
        failure_threshold: int = 5,
        breaker_cooldown_s: float = 30.0,
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
        heartbeat_timeout_s: float = 15.0,
        poll_s: float = 0.02,
    ):
        self.deadline_s = deadline_s
        self.max_retries = max_retries
        self.failure_threshold = failure_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.poll_s = poll_s
        self._ctx = multiprocessing.get_context("fork")
        self._ids = itertools.count(1)
        self._wids = itertools.count(1)
        self._lock = threading.Lock()
        self._pending: deque[_Task] = deque()
        self._tasks: dict[int, _Task] = {}
        self._breakers: dict[object, CircuitBreaker] = {}
        self._closed = False
        self.counters = {
            "submitted": 0, "tasks_ok": 0, "tasks_failed": 0,
            "retries": 0, "redispatched": 0, "deadline_kills": 0,
            "hb_kills": 0, "worker_restarts": 0, "duplicates_dropped": 0,
            "quarantined": 0,
        }
        # fork all workers before the supervisor thread exists: forking a
        # multi-threaded parent risks inheriting held locks
        self._workers: dict[int, _Worker] = {}
        for _ in range(jobs):
            self._spawn()
        self._thread = threading.Thread(target=self._supervise, daemon=True,
                                        name="repro-pool-supervisor")
        self._thread.start()

    # -- public API ------------------------------------------------------

    def submit(self, fn, arg, *, key: str | None = None, cell=None,
               deadline_s: float | None = None) -> Future:
        fut: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            self.counters["submitted"] += 1
            if cell is not None:
                b = self._breakers.get(cell)
                if b is not None and not b.allow():
                    self.counters["quarantined"] += 1
                    fut.set_exception(CellQuarantined(
                        f"cell {cell!r} quarantined after "
                        f"{b.failures} consecutive failures"))
                    return fut
            t = _Task(next(self._ids), key or "", cell, fn, arg, fut,
                      deadline_s if deadline_s is not None else self.deadline_s)
            if not t.key:
                t.key = f"task-{t.id}"
            self._tasks[t.id] = t
            self._pending.append(t)
        return fut

    def breaker_states(self) -> dict:
        with self._lock:
            return {
                repr(cell): {"state": b.state, "failures": b.failures,
                             "trips": b.trips}
                for cell, b in self._breakers.items()
            }

    def status(self) -> dict:
        """Watchdog view for /healthz: worker liveness + breaker state."""
        now = time.monotonic()
        with self._lock:
            workers = [
                {"pid": w.proc.pid, "alive": w.proc.is_alive(),
                 "busy": w.task.key if w.task is not None else None,
                 "beat_age_s": round(now - w.last_beat, 3)}
                for w in self._workers.values()
            ]
            pending = len(self._pending)
        return {
            "workers": workers,
            "pending": pending,
            "breakers": self.breaker_states(),
            "counters": dict(self.counters),
        }

    @property
    def breaker_trips(self) -> int:
        with self._lock:
            return sum(b.trips for b in self._breakers.values())

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._thread.join(timeout=5)
        for t in list(self._tasks.values()):
            if not t.future.done():
                t.future.set_exception(RuntimeError("pool closed"))
        self._tasks.clear()
        for w in list(self._workers.values()):
            try:
                w.sconn.send(None)
            except OSError:
                pass
        for w in list(self._workers.values()):
            w.proc.join(timeout=1)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(timeout=1)
            w.sconn.close()
            w.rconn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- worker lifecycle (supervisor thread + __init__ only) ------------

    def _spawn(self) -> None:
        wid = next(self._wids)
        c_in_r, p_in_s = self._ctx.Pipe(duplex=False)
        p_out_r, c_out_s = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(c_in_r, c_out_s, self.heartbeat_interval_s),
            daemon=True, name=f"repro-worker-{wid}",
        )
        proc.start()
        # close the child's ends in the parent so EOF propagates on death
        c_in_r.close()
        c_out_s.close()
        with self._lock:
            self._workers[wid] = _Worker(wid, proc, p_in_s, p_out_r)

    def _retire(self, w: _Worker, now: float, reason: str) -> None:
        """Kill/reap a worker, rescue its task, spawn a replacement."""
        if w.proc.is_alive():
            w.proc.kill()
        w.proc.join(timeout=2)
        with self._lock:
            self._workers.pop(w.id, None)
        w.sconn.close()
        w.rconn.close()
        self.counters["worker_restarts"] += 1
        t, w.task = w.task, None
        if t is not None:
            self._rescue(t, reason)
        self._spawn()

    def _rescue(self, t: _Task, reason: str) -> None:
        """Re-dispatch a task lost with its worker, if retries remain."""
        if t.attempts <= self.max_retries:
            self.counters["redispatched"] += 1
            with self._lock:
                self._pending.appendleft(t)
        else:
            self._finish_err(t, TaskFailed(
                f"task {t.key} lost {t.attempts} worker(s) ({reason})"))

    # -- completion ------------------------------------------------------

    def _breaker_for(self, cell) -> CircuitBreaker:
        b = self._breakers.get(cell)
        if b is None:
            b = self._breakers[cell] = CircuitBreaker(
                self.failure_threshold, self.breaker_cooldown_s)
        return b

    def _finish_ok(self, t: _Task, result) -> None:
        with self._lock:
            if self._tasks.pop(t.id, None) is None:
                self.counters["duplicates_dropped"] += 1
                return
            self.counters["tasks_ok"] += 1
            if t.cell is not None:
                self._breaker_for(t.cell).record_success()
        t.future.set_result(result)

    def _finish_err(self, t: _Task, exc: Exception) -> None:
        with self._lock:
            if self._tasks.pop(t.id, None) is None:
                self.counters["duplicates_dropped"] += 1
                return
            self.counters["tasks_failed"] += 1
            if t.cell is not None:
                self._breaker_for(t.cell).record_failure()
        t.future.set_exception(exc)

    # -- the supervision loop --------------------------------------------

    def _supervise(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
            self._dispatch()
            conns = {w.rconn: w for w in list(self._workers.values())}
            ready = _conn_wait(list(conns), timeout=self.poll_s) if conns else ()
            now = time.monotonic()
            for conn in ready:
                self._drain(conns[conn], now)
            self._watchdog(now)

    def _dispatch(self) -> None:
        for w in list(self._workers.values()):
            if w.task is not None or not w.proc.is_alive():
                continue
            with self._lock:
                if not self._pending:
                    return
                t = self._pending.popleft()
            t.attempts += 1
            w.task = t
            w.started = time.monotonic()
            try:
                w.sconn.send((t.id, t.attempts - 1, t.key, t.fn, t.arg))
            except (OSError, ValueError):
                w.task = None
                self._retire(w, w.started, "send failed")
                return  # worker map changed; re-enter next loop tick

    def _drain(self, w: _Worker, now: float) -> None:
        try:
            msg = w.rconn.recv()
        except (EOFError, OSError):
            self._retire(w, now, "worker died")
            return
        kind, task_id, payload = msg
        w.last_beat = now
        if kind == "hb":
            return
        t = w.task
        w.task = None
        if t is None or t.id != task_id:
            # a message for a task this worker no longer owns
            self.counters["duplicates_dropped"] += 1
            w.task = t
            return
        if kind == "ok":
            self._finish_ok(t, payload)
            return
        text, severity = payload
        if severity == "transient" and t.attempts <= self.max_retries:
            self.counters["retries"] += 1
            with self._lock:
                self._pending.appendleft(t)
        else:
            self._finish_err(t, TaskFailed(f"task {t.key}: {text}"))

    def _watchdog(self, now: float) -> None:
        for w in list(self._workers.values()):
            if not w.proc.is_alive():
                self._retire(w, now, "worker died")
            elif (w.task is not None and w.task.deadline_s is not None
                    and now - w.started > w.task.deadline_s):
                self.counters["deadline_kills"] += 1
                self._retire(w, now, "deadline expired")
            elif (w.task is not None
                    and now - w.last_beat > self.heartbeat_timeout_s):
                self.counters["hb_kills"] += 1
                self._retire(w, now, "heartbeat lost")
