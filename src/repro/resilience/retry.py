"""The one shared retry policy: capped exponential backoff, full jitter.

Used by the client SDK (dropped connections, 429/503 shedding), the
artifact store's write/rename paths (transient ``OSError``), and the
supervised pool's task re-dispatch.  One policy object describes the
schedule; :func:`retry_call` executes it.  All time sources are
injectable so the unit tests run the whole schedule on a fake clock.

Design points (the AWS "exponential backoff and jitter" results):

* **Full jitter** — the delay before attempt *n* is uniform in
  ``[0, min(cap, base * 2**n)]``, which de-correlates a thundering herd
  of retriers far better than equal or decorrelated jitter.
* **Retry budget** — beyond per-call attempt caps, a policy carries a
  total-sleep budget; once spent, failures surface immediately.  This
  bounds worst-case added latency under a persistent outage.
* **``Retry-After`` honoring** — if the failing exception carries a
  ``retry_after`` attribute (the client sets it from the HTTP header),
  that value replaces the computed backoff for the next attempt (still
  charged against the budget).

Retries are only safe because every request in this system is
idempotent: results are keyed by the canonical request key
(:mod:`repro.service.keys`), so a duplicate of an already-performed
operation lands on the same key and cannot double-count.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from .errors import classify_exception


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter and a sleep budget."""

    max_attempts: int = 5          # total tries, including the first
    base_s: float = 0.05           # backoff scale for attempt 0
    cap_s: float = 2.0             # per-delay ceiling
    budget_s: float = 30.0         # total sleep allowed across a call

    def max_delay(self, attempt: int) -> float:
        """Upper edge of the jitter window before retry ``attempt``
        (attempt 0 = the delay after the first failure)."""
        return min(self.cap_s, self.base_s * (2.0 ** attempt))

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Full jitter: uniform in ``[0, max_delay(attempt)]``."""
        return rng.uniform(0.0, self.max_delay(attempt))


@dataclass
class RetryState:
    """Book-keeping for one logical operation's retries."""

    policy: RetryPolicy
    rng: random.Random = field(default_factory=random.Random)
    attempt: int = 0
    slept_s: float = 0.0

    def next_delay(self, retry_after: float | None = None) -> float | None:
        """Delay before the next attempt, or None if the schedule is
        exhausted (attempt cap or budget).  Advances the attempt count."""
        if self.attempt + 1 >= self.policy.max_attempts:
            return None
        d = (float(retry_after) if retry_after is not None
             else self.policy.delay(self.attempt, self.rng))
        if self.slept_s + d > self.policy.budget_s:
            return None
        self.attempt += 1
        self.slept_s += d
        return d


def retry_call(
    fn,
    *,
    policy: RetryPolicy | None = None,
    retryable=None,
    rng: random.Random | None = None,
    sleep=time.sleep,
    on_retry=None,
):
    """Call ``fn()`` under ``policy``, retrying transient failures.

    ``retryable(exc) -> bool`` decides what to retry (default: the
    :mod:`~repro.resilience.errors` taxonomy's ``transient`` class).
    ``on_retry(attempt, delay, exc)`` observes each retry (metrics
    counters hook in here).  The last exception is re-raised when the
    schedule is exhausted or the failure is not retryable.
    """
    policy = policy or RetryPolicy()
    retryable = retryable or (lambda e: classify_exception(e) == "transient")
    state = RetryState(policy, rng or random.Random())
    while True:
        try:
            return fn()
        except Exception as e:
            if not retryable(e):
                raise
            d = state.next_delay(getattr(e, "retry_after", None))
            if d is None:
                raise
            if on_retry is not None:
                on_retry(state.attempt, d, e)
            sleep(d)
