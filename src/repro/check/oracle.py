"""The differential correctness oracle (cross-level semantic checking).

The paper's result table rests on the claim that Lev1..Lev5 binaries
compute the same answers as Conv — unrolling with preconditioning,
renaming, expansion, combining, and strength reduction are only valid if
they are semantics-preserving (Section 2).  The oracle makes that claim
checkable:

1. the **golden state** of a kernel is the final memory/scalar state of
   its *naive lowered* IR, executed by the reference evaluator
   (:mod:`repro.check.refeval`) — no optimization anywhere near it;
2. every (level, machine) configuration is compiled through the full
   pipeline, simulated, and its final state compared against the golden
   state **bit-identically**;
3. configurations where a value-reassociating transformation fired
   (accumulator expansion, tree height reduction, serial-chain SLP
   reduction packing — they reorder fp reductions by design) are
   compared under the workload's documented
   tolerance instead, and the report says so;
4. the simulator's end state is additionally cross-checked bit-identically
   against a reference evaluation of the *same* final scheduled IR:
   in-order issue with correct interlocks has sequential semantics, so any
   difference is a simulator-machinery bug, not a compiler bug.

On a mismatch the report carries first-divergent-store provenance: the
divergent element's address plus the last store to it in both executions,
with the originating instruction of each.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..harness import ilp_transform, lower_conv, run_compiled_kernel, schedule_kernel
from ..machine import MachineConfig
from ..pipeline import ALL_LEVELS, Level
from ..workloads import Workload, all_workloads
from .refeval import RefResult, StoreEvent, reference_run

DEFAULT_WIDTHS = (1, 8)


@dataclass
class Divergence:
    """One configuration whose result differs from the golden state."""

    workload: str
    level: str            # level label ("Conv".."Lev5"), or "-" pre-compile
    width: int
    kind: str  # array | scalar | sim-vs-ref | engine-vs-engine | compile-error | golden
    detail: str

    def __str__(self) -> str:
        return (f"{self.workload} {self.level} issue-{self.width} "
                f"[{self.kind}]: {self.detail}")


@dataclass
class OracleReport:
    configs_checked: int = 0
    kernels_checked: int = 0
    elapsed: float = 0.0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        return (f"oracle: {self.kernels_checked} kernels, "
                f"{self.configs_checked} configurations in "
                f"{self.elapsed:.1f}s — {verdict}")


def _last_store(stores: list[StoreEvent], addr: int) -> str:
    for ev in reversed(stores):
        if ev.addr == addr:
            return f"{ev.instr!r} (step {ev.step}, wrote {ev.value!r})"
    return "never stored"


def _diff_states(
    w: Workload,
    got_arrays: dict,
    got_scalars: dict,
    want_arrays: dict,
    want_scalars: dict,
    exact: bool,
    golden_res: RefResult | None = None,
    got_res: RefResult | None = None,
) -> str | None:
    """First difference between two end states, or None if they match.

    ``exact`` compares bit-identically; otherwise the workload's
    ``rtol`` applies (reassociating transformations fired).  When both
    store logs are available, the divergent element is traced to the last
    store that produced it in each execution.
    """
    for name in want_arrays:
        got = np.asarray(got_arrays[name])
        want = np.asarray(want_arrays[name])
        if exact:
            bad = got.flatten(order="F") != want.flatten(order="F")
        else:
            bad = ~np.isclose(
                got.flatten(order="F"), want.flatten(order="F"),
                rtol=w.rtol, atol=1e-12,
            )
        if bad.any():
            flat = int(np.argmax(bad))
            g = got.flatten(order="F")[flat]
            e = want.flatten(order="F")[flat]
            msg = (f"array {name}[flat {flat}] diverges: got {g!r} "
                   f"want {e!r} ({int(bad.sum())} elements differ)")
            if golden_res is not None:
                addr = golden_res.memory.array_base(name) + 4 * flat
                msg += f"; addr {addr:#x}"
                msg += f"; golden last store: {_last_store(golden_res.stores, addr)}"
                if got_res is not None:
                    msg += f"; compiled last store: {_last_store(got_res.stores, addr)}"
            return msg
    for name, e in want_scalars.items():
        g = got_scalars.get(name)
        same = (g == e) if exact else bool(
            np.isclose(g, e, rtol=w.rtol, atol=1e-12)
        )
        if not same:
            return f"scalar {name} diverges: got {g!r} want {e!r}"
    return None


def check_workload(
    w: Workload,
    levels: tuple[Level, ...] = tuple(ALL_LEVELS),
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    seed: int = 0,
    check_ir: bool = True,
    cross_engine: bool = False,
    scheduler: str = "list",
    solver_budget: int | None = None,
    solver_store=None,
) -> tuple[int, list[Divergence]]:
    """Differentially check one workload; returns (configs checked, divergences).

    ``cross_engine=True`` additionally runs every configuration under
    *both* simulator engines — the interpreter and the block-compiled
    trace/replay core — and requires bit-identical cycles, instruction
    counts, and end states (kind ``engine-vs-engine`` on mismatch).
    ``scheduler="optimal"`` checks the exact solver-backed schedule
    backend instead of heuristic list scheduling — the same golden-state
    comparison proves the solver's reorderings semantics-preserving.
    """
    divs: list[Divergence] = []
    arrays, scalars = w.make_inputs(seed)
    kernel = w.build()

    golden_arrays, golden_scalars, golden_res = reference_run(
        kernel, arrays, scalars, log_stores=True
    )
    # the golden state itself is validated against the workload's NumPy
    # reference, so a reference-evaluator or lowering bug cannot silently
    # become the thing every level is compared against
    try:
        from ..workloads import check_run

        check_run(w, golden_arrays, golden_scalars, arrays, scalars)
    except AssertionError as e:
        divs.append(Divergence(w.name, "-", 0, "golden", str(e)))
        return 0, divs

    checked = 0
    try:
        conv = lower_conv(w.build())
    except Exception as e:  # noqa: BLE001 - any compile failure is a finding
        divs.append(Divergence(w.name, "-", 0, "compile-error", repr(e)))
        return 0, divs

    for level in levels:
        try:
            tk = ilp_transform(
                conv.clone(), level, MachineConfig(issue_width=widths[0]),
                check=check_ir,
            )
        except Exception as e:  # noqa: BLE001
            divs.append(Divergence(w.name, level.label, 0, "compile-error", repr(e)))
            continue
        # accumulator expansion, tree height reduction, and serial-chain
        # SLP reduction packing reassociate fp reductions by design; only
        # they may relax bit-identity (exact-variant SLP packs keep every
        # per-lane chain intact and stay bit-identical)
        exact = (tk.report.accumulators == 0 and tk.report.trees == 0
                 and tk.report.slp_reassoc == 0)
        for i, width in enumerate(widths):
            machine = MachineConfig(issue_width=width)
            try:
                clone = tk.clone() if i + 1 < len(widths) else tk
                ck = schedule_kernel(clone, machine, check=check_ir,
                                     scheduler=scheduler,
                                     solver_budget=solver_budget,
                                     solver_store=solver_store)
                run = run_compiled_kernel(ck, arrays=arrays, scalars=scalars)
            except Exception as e:  # noqa: BLE001
                divs.append(
                    Divergence(w.name, level.label, width, "compile-error", repr(e))
                )
                continue
            checked += 1

            # reference evaluation of the same final scheduled IR: the
            # sequential end state, used both for the sim cross-check and
            # for store provenance on divergence
            ref_arrays, ref_scalars, ref_res = reference_run(
                kernel, arrays, scalars, lowered=ck.lowered, log_stores=True
            )

            diff = _diff_states(
                w, run.arrays, run.scalars, golden_arrays, golden_scalars,
                exact, golden_res, ref_res,
            )
            if diff is not None:
                divs.append(Divergence(w.name, level.label, width, "array"
                                       if diff.startswith("array") else "scalar",
                                       diff))

            # simulator vs reference on identical code: always bit-identical
            sim_diff = _diff_states(
                w, run.arrays, run.scalars, ref_arrays, ref_scalars, True
            )
            if sim_diff is not None:
                divs.append(
                    Divergence(w.name, level.label, width, "sim-vs-ref", sim_diff)
                )

            if cross_engine:
                # both engines on identical code and inputs: timing and
                # end state must match bit for bit
                compiled = run_compiled_kernel(
                    ck, arrays=arrays, scalars=scalars, engine="compiled"
                )
                interp = run_compiled_kernel(
                    ck, arrays=arrays, scalars=scalars, engine="interp"
                )
                eng_diff = _diff_states(
                    w, compiled.arrays, compiled.scalars,
                    interp.arrays, interp.scalars, True,
                )
                if eng_diff is None:
                    if compiled.cycles != interp.cycles:
                        eng_diff = (f"cycles diverge: compiled "
                                    f"{compiled.cycles} interp {interp.cycles}")
                    elif compiled.instructions != interp.instructions:
                        eng_diff = (
                            f"instruction counts diverge: compiled "
                            f"{compiled.instructions} interp "
                            f"{interp.instructions}"
                        )
                if eng_diff is not None:
                    divs.append(
                        Divergence(w.name, level.label, width,
                                   "engine-vs-engine", eng_diff)
                    )
    return checked, divs


def run_oracle(
    workloads: list[Workload] | None = None,
    levels: tuple[Level, ...] = tuple(ALL_LEVELS),
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    seed: int = 0,
    check_ir: bool = True,
    verbose: bool = False,
    cross_engine: bool = False,
    scheduler: str = "list",
    solver_budget: int | None = None,
    solver_store=None,
) -> OracleReport:
    """Run the differential oracle over the corpus (default: all 40)."""
    workloads = workloads or all_workloads()
    report = OracleReport()
    t0 = time.time()
    for w in workloads:
        checked, divs = check_workload(
            w, levels, widths, seed, check_ir, cross_engine=cross_engine,
            scheduler=scheduler, solver_budget=solver_budget,
            solver_store=solver_store,
        )
        report.kernels_checked += 1
        report.configs_checked += checked
        report.divergences.extend(divs)
        if verbose:
            status = "ok" if not divs else f"{len(divs)} DIVERGENT"
            print(f"  {w.name:<14}{checked} configs {status}")
    report.elapsed = time.time() - t0
    return report
