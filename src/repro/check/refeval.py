"""Reference evaluation: direct sequential interpretation of IR.

The cycle-accurate simulator (:mod:`repro.sim.simulator`) is itself a
sizeable optimized program — pre-flattened instruction tuples, issue
packets, interlocks, flat register banks.  The reference evaluator is the
deliberately boring alternative: walk the blocks, execute one instruction
at a time against plain dictionaries, follow branches.  No timing, no
packets, no caching.

Two uses:

* run the **naive lowered IR** of a kernel (no optimization at all) to
  produce the golden final state the differential oracle compares every
  optimization level against;
* run the **final scheduled IR** and cross-check the simulator: both must
  produce bit-identical end states, because in-order issue with correct
  register interlocks has sequential semantics.

Scalar semantics (truncating division, arithmetic shifts, IEEE double) are
shared with the simulator via :data:`repro.sim.executor.ALU_SEMANTICS` —
the oracle tests the compiler's transformations, so the two executors must
agree on what each opcode *computes* while disagreeing on every piece of
machinery around it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..frontend.ast import Kernel
from ..frontend.lower import LoweredKernel, lower_kernel
from ..ir.function import Function
from ..ir.instructions import Instr, Kind, Op
from ..ir.operands import FImm, Imm, Reg, RegClass, Sym
from ..sim.executor import ALU_SEMANTICS, CMP_SEMANTICS, VEC_SEMANTICS
from ..sim.memory import Memory


class RefEvalError(RuntimeError):
    pass


@dataclass
class StoreEvent:
    """One executed store, for first-divergent-store provenance."""

    step: int
    addr: int
    value: float | int
    instr: Instr


@dataclass
class RefResult:
    """End state of a reference evaluation."""

    steps: int
    iregs: dict[int, int]
    fregs: dict[int, float]
    memory: Memory
    stores: list[StoreEvent] = field(default_factory=list)


def ref_eval(
    func: Function,
    memory: Memory | None = None,
    iregs: dict[int, int] | None = None,
    fregs: dict[int, float] | None = None,
    max_steps: int = 100_000_000,
    log_stores: bool = False,
) -> RefResult:
    """Interpret ``func`` sequentially to completion.

    Execution starts at the entry block; a block's last instruction falls
    through to the next block in layout order unless a taken branch/jump
    redirects it, exactly like the simulator's control model.  Reads of
    never-written registers or uninitialized memory raise
    :class:`RefEvalError` rather than inventing zeros.
    """
    memory = memory if memory is not None else Memory()
    ivals: dict[int, int] = dict(iregs or {})
    fvals: dict[int, float] = dict(fregs or {})
    vivals: dict[int, tuple] = {}
    vfvals: dict[int, tuple] = {}
    banks = {RegClass.INT: ivals, RegClass.FP: fvals,
             RegClass.VINT: vivals, RegClass.VFP: vfvals}
    symbols = memory.symbols
    words = memory._words
    stores: list[StoreEvent] = []

    index = {b.label: i for i, b in enumerate(func.blocks)}
    blocks = [b.instrs for b in func.blocks]
    alu2 = ALU_SEMANTICS
    cmp = CMP_SEMANTICS
    vec2 = VEC_SEMANTICS

    def fetch(s, ins: Instr):
        if isinstance(s, Reg):
            try:
                return banks[s.cls][s.id]
            except KeyError:
                raise RefEvalError(
                    f"read of uninitialized register {s} at {ins!r}"
                ) from None
        if isinstance(s, (Imm, FImm)):
            return s.value
        if isinstance(s, Sym):
            try:
                return symbols[s.name]
            except KeyError:
                raise RefEvalError(f"unresolved symbol {s.name!r}") from None
        raise RefEvalError(f"bad operand {s!r} at {ins!r}")

    steps = 0
    bi = 0
    n_blocks = len(blocks)
    while bi < n_blocks:
        instrs = blocks[bi]
        ii = 0
        redirected = False
        while ii < len(instrs):
            ins = instrs[ii]
            steps += 1
            if steps > max_steps:
                raise RefEvalError(
                    f"exceeded {max_steps} steps in {func.name} "
                    f"(at block {func.blocks[bi].label})"
                )
            op = ins.op
            fn2 = alu2.get(op)
            vfn2 = vec2.get(op)
            if fn2 is not None:
                a = fetch(ins.srcs[0], ins)
                b = fetch(ins.srcs[1], ins)
                try:
                    res = fn2(a, b)
                except ZeroDivisionError:
                    raise RefEvalError(f"division by zero: {ins!r}") from None
                banks[ins.dest.cls][ins.dest.id] = res
            elif op is Op.MOV or op is Op.FMOV:
                banks[ins.dest.cls][ins.dest.id] = fetch(ins.srcs[0], ins)
            elif op is Op.ITOF:
                fvals[ins.dest.id] = float(fetch(ins.srcs[0], ins))
            elif op is Op.FTOI:
                ivals[ins.dest.id] = math.trunc(fetch(ins.srcs[0], ins))
            elif ins.kind is Kind.LOAD:
                addr = fetch(ins.srcs[0], ins) + fetch(ins.srcs[1], ins)
                try:
                    v = words[addr >> 2]
                except KeyError:
                    raise RefEvalError(
                        f"load from uninitialized address {addr:#x}: {ins!r}"
                    ) from None
                banks[ins.dest.cls][ins.dest.id] = v
            elif ins.kind is Kind.STORE:
                addr = fetch(ins.srcs[0], ins) + fetch(ins.srcs[1], ins)
                v = fetch(ins.srcs[2], ins)
                words[addr >> 2] = v
                if log_stores:
                    stores.append(StoreEvent(steps, addr, v, ins))
            elif vfn2 is not None:
                a = fetch(ins.srcs[0], ins)
                b = fetch(ins.srcs[1], ins)
                try:
                    res = vfn2(a, b)
                except ZeroDivisionError:
                    raise RefEvalError(f"division by zero: {ins!r}") from None
                banks[ins.dest.cls][ins.dest.id] = res
            elif op is Op.VEXT or op is Op.VEXTF:
                v = fetch(ins.srcs[0], ins)
                banks[ins.dest.cls][ins.dest.id] = v[ins.srcs[1].value]
            elif op is Op.VPACK or op is Op.VPACKF:
                banks[ins.dest.cls][ins.dest.id] = tuple(
                    fetch(s, ins) for s in ins.srcs
                )
            elif ins.kind is Kind.VEC_LOAD:
                addr = fetch(ins.srcs[0], ins) + fetch(ins.srcs[1], ins)
                w = addr >> 2
                try:
                    v = tuple(words[w + j] for j in range(ins.lanes))
                except KeyError:
                    raise RefEvalError(
                        f"load from uninitialized address {addr:#x}: {ins!r}"
                    ) from None
                banks[ins.dest.cls][ins.dest.id] = v
            elif ins.kind is Kind.VEC_STORE:
                addr = fetch(ins.srcs[0], ins) + fetch(ins.srcs[1], ins)
                v = fetch(ins.srcs[2], ins)
                w = addr >> 2
                for j in range(ins.lanes):
                    words[w + j] = v[j]
                    if log_stores:
                        stores.append(
                            StoreEvent(steps, addr + 4 * j, v[j], ins)
                        )
            elif ins.is_branch:
                taken = cmp[op](fetch(ins.srcs[0], ins), fetch(ins.srcs[1], ins))
                if taken:
                    bi = index[ins.target.name]
                    redirected = True
                    break
            elif op is Op.JMP:
                bi = index[ins.target.name]
                redirected = True
                break
            elif op is Op.HALT:
                return RefResult(steps, ivals, fvals, memory, stores)
            elif op is Op.NOP:
                pass
            else:
                raise RefEvalError(f"unhandled opcode {op} at {ins!r}")
            ii += 1
        if not redirected:
            bi += 1
    return RefResult(steps, ivals, fvals, memory, stores)


def reference_run(
    kernel: Kernel,
    arrays: dict[str, np.ndarray],
    scalars: dict[str, float | int],
    lowered: LoweredKernel | None = None,
    log_stores: bool = False,
) -> tuple[dict[str, np.ndarray], dict[str, float | int], RefResult]:
    """Golden execution of a kernel: lower naively (NO optimization) and
    interpret the result directly on bound data.

    Returns final array contents, declared output scalars, and the raw
    :class:`RefResult` (whose memory/store log the oracle uses for
    divergence provenance).  Pass ``lowered`` to evaluate an
    already-lowered (or transformed/scheduled) function instead — the
    binding and read-back conventions are the harness's own
    (:func:`repro.harness.bind_inputs` / ``collect_outputs``), so results
    are directly comparable to :func:`repro.harness.run_compiled_kernel`.
    """
    from ..harness import bind_inputs, collect_outputs

    lk = lowered if lowered is not None else lower_kernel(kernel)
    mem, iregs, fregs = bind_inputs(lk, arrays, scalars)
    res = ref_eval(lk.func, mem, iregs, fregs, log_stores=log_stores)
    out_arrays, out_scalars = collect_outputs(lk, mem, res.iregs, res.fregs, scalars)
    return out_arrays, out_scalars, res
