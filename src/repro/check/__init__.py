"""repro.check — the differential correctness oracle.

Three layers of defense against miscompiles (see DESIGN.md, "Correctness
architecture"):

* :mod:`repro.check.refeval` — a reference evaluator: direct sequential
  interpretation of IR, independent of the cycle-accurate simulator's
  packet/interlock machinery.  Running it on the *naive lowered* IR of a
  kernel yields the golden final state every optimization level must
  reproduce.
* :mod:`repro.check.oracle` — the differential oracle: compiles every
  corpus kernel at Conv..Lev4 across machine configs and asserts the
  simulated final memory/scalar state matches the golden state, with
  first-divergent-store provenance on failure.
* :mod:`repro.check.fuzz` — a seeded random loop-nest generator with
  greedy test-case shrinking, for coverage beyond the 40 fixed kernels.

Entry point: ``python -m repro check``.
"""

from .fuzz import FuzzFailure, fuzz, random_workload, shrink_kernel
from .oracle import Divergence, OracleReport, check_workload, run_oracle
from .refeval import RefEvalError, RefResult, ref_eval, reference_run

__all__ = [
    "Divergence", "OracleReport", "check_workload", "run_oracle",
    "RefEvalError", "RefResult", "ref_eval", "reference_run",
    "FuzzFailure", "fuzz", "random_workload", "shrink_kernel",
]
