"""Seeded random loop-nest fuzzing with test-case shrinking.

The 40 corpus kernels pin down the paper's numbers, but they visit a fixed
set of shapes.  The fuzzer generates random kernels from a small template
algebra — elementwise fp, reductions, guarded stores, integer div/rem
chains, searches, optional outer loop, static or symbolic trip counts —
and pushes each through the full differential oracle
(:func:`repro.check.oracle.check_workload`).  Three templates are
vector-shaped on purpose — isomorphic elementwise pairs, same-array
load/store smoothing, and an integer reduction — so the Lev5 SLP
packer (and its aliasing and cost-model refusals) is fuzzed too.

Every generated case is checked against an **AST-level interpreter**
(:func:`interpret_kernel`) that never sees the compiler at all, so the
fuzzer also differentially tests the lowering itself, not just the
transformations.

Cases are described by a :class:`CaseSpec` rather than a raw kernel so a
failure can be *shrunk*: :func:`shrink_kernel` greedily drops statements
and halves trip counts while the divergence persists, and reports the
minimal spec (which is reproducible from its seed alone).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..frontend.ast import (
    ArrayDecl, ArrayRef, Assign, Bin, Cmp, Const, Cvt, Do, If, Kernel, Neg,
    Stmt, Ty, VarRef, aref, assign, do, if_, var,
)
from ..ir.instructions import Op
from ..pipeline import ALL_LEVELS, Level
from ..sim.executor import ALU_SEMANTICS
from ..workloads import Workload
from .oracle import DEFAULT_WIDTHS, Divergence, check_workload

_IDIV = ALU_SEMANTICS[Op.DIV]
_IREM = ALU_SEMANTICS[Op.REM]


# ---------------------------------------------------------------------------
# AST interpreter: the compiler-free reference for generated kernels
# ---------------------------------------------------------------------------


def interpret_kernel(kernel: Kernel, arrays: dict, scalars: dict):
    """Execute a kernel by walking its AST — no lowering, no IR, no
    simulator.  Semantics match the language definition: column-major
    1-based arrays, truncating integer division, IEEE double fp,
    ``DO`` loops running ``lo..hi`` inclusive (callers guarantee a
    positive trip count, as the corpus contract requires).
    """
    arrs = {}
    for name, decl in kernel.arrays.items():
        a = np.array(arrays[name], copy=True)
        a = a.astype(np.int64 if decl.ty is Ty.INT else np.float64)
        arrs[name] = a.reshape(decl.dims, order="F") if a.ndim == 1 else a
    env: dict[str, float | int] = {}
    for name, ty in kernel.scalars.items():
        v = scalars.get(name, 0)
        env[name] = float(v) if ty is Ty.FP else int(v)

    def ev(e):
        if isinstance(e, Const):
            return e.value
        if isinstance(e, VarRef):
            return env[e.name]
        if isinstance(e, ArrayRef):
            idx = tuple(int(ev(i)) - 1 for i in e.idxs)
            v = arrs[e.name][idx]
            return int(v) if kernel.arrays[e.name].ty is Ty.INT else float(v)
        if isinstance(e, Neg):
            return -ev(e.e)
        if isinstance(e, Cvt):
            return float(ev(e.e))
        if isinstance(e, Bin):
            a, b = ev(e.l), ev(e.r)
            both_int = isinstance(a, int) and isinstance(b, int)
            if e.op == "+":
                return a + b
            if e.op == "-":
                return a - b
            if e.op == "*":
                return a * b
            if e.op == "/":
                return _IDIV(a, b) if both_int else a / b
            if e.op == "%":
                return _IREM(a, b)
        raise TypeError(f"cannot interpret {e!r}")

    def cond(c: Cmp) -> bool:
        a, b = ev(c.l), ev(c.r)
        return {"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b,
                "==": a == b, "!=": a != b}[c.op]

    def run(stmts):
        for s in stmts:
            if isinstance(s, Assign):
                v = ev(s.value)
                if isinstance(s.target, VarRef):
                    ty = kernel.scalars.get(s.target.name)
                    env[s.target.name] = float(v) if ty is Ty.FP else v
                else:
                    idx = tuple(int(ev(i)) - 1 for i in s.target.idxs)
                    arrs[s.target.name][idx] = v
            elif isinstance(s, If):
                run(s.then if cond(s.cond) else s.els)
            elif isinstance(s, Do):
                lo, hi = int(ev(s.lo)), int(ev(s.hi))
                for v in range(lo, hi + 1):
                    env[s.var] = v
                    run(s.body)
            else:
                raise TypeError(f"cannot interpret {s!r}")

    run(kernel.body)
    out_scalars = {name: env[name] for name in kernel.outputs}
    return arrs, out_scalars


# ---------------------------------------------------------------------------
# case specification and templates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CaseSpec:
    """A reproducible fuzz case: everything the builder needs, nothing else.

    Shrinking produces reduced copies of this (fewer statements, smaller
    trips); the kernel and its data are deterministic functions of the
    spec, so a reported spec IS the reproducer.
    """

    seed: int
    trip: int                   # inner loop trip count (>= 1)
    outer: int                  # outer loop trip count; 0 = no outer loop
    stmts: tuple[str, ...]      # template names, in body order
    symbolic_bound: bool        # hi = n (input scalar) vs a constant
    consts: tuple[int, ...]     # c0..c4; c2, c3 are nonzero divisors
    p_then: float = 0.5


#: template name -> (doall-safe, arrays used {name: Ty}, scalars {name: Ty},
#: input scalar names, output scalar names)
_TEMPLATES: dict[str, tuple[bool, dict, dict, tuple, tuple]] = {
    "axpy": (True, {"A": Ty.FP, "B": Ty.FP, "C": Ty.FP}, {"x": Ty.FP},
             ("x",), ()),
    "tri": (True, {"A": Ty.FP, "B": Ty.FP, "D": Ty.FP}, {"x": Ty.FP},
            ("x",), ()),
    "guard": (True, {"A": Ty.FP, "B": Ty.FP, "E": Ty.FP}, {"x": Ty.FP},
              ("x",), ()),
    "imath": (True, {"JI": Ty.INT, "KI": Ty.INT, "LI": Ty.INT}, {}, (), ()),
    "dot": (False, {"A": Ty.FP, "B": Ty.FP}, {"s": Ty.FP}, ("s",), ("s",)),
    "amax": (False, {"A": Ty.FP}, {"mx": Ty.FP}, ("mx",), ("mx",)),
    # vector-shaped templates: unrolled copies are isomorphic with
    # adjacent memory, so Lev5 SLP packing fires on them
    "pair": (True, {"A": Ty.FP, "B": Ty.FP, "C2": Ty.FP, "D2": Ty.FP,
                    "F": Ty.FP, "G": Ty.FP}, {}, (), ()),
    "smooth": (True, {"A": Ty.FP, "B": Ty.FP}, {"x": Ty.FP}, ("x",), ()),
    "isum": (False, {"JI": Ty.INT}, {"k": Ty.INT}, ("k",), ("k",)),
}


def _template_body(name: str, spec: CaseSpec) -> list[Stmt]:
    i = var("i")
    c = spec.consts
    if name == "axpy":
        return [assign(aref("C", i), var("x") * aref("A", i) + aref("B", i))]
    if name == "tri":
        # deep fp expression tree: tree height reduction fodder
        e = (aref("A", i) * var("x") + aref("B", i)) * aref("A", i) \
            + aref("B", i) * float(c[0])
        return [assign(aref("D", i), e)]
    if name == "guard":
        return [if_(aref("A", i) > float(c[1]),
                    [assign(aref("E", i), aref("A", i) * var("x"))],
                    [assign(aref("E", i), aref("B", i) + 1.0)],
                    p_then=spec.p_then)]
    if name == "imath":
        # truncating div/rem over possibly negative dividends: the
        # strength-reduction sequences must round toward zero
        return [
            assign(aref("KI", i), (aref("JI", i) * c[0] + c[1]) / c[2]),
            assign(aref("LI", i), aref("JI", i) % c[3] + aref("KI", i) * c[4]),
        ]
    if name == "dot":
        return [assign(var("s"), var("s") + aref("A", i) * aref("B", i))]
    if name == "pair":
        # two interleaved elementwise streams: the packer must form the
        # F and G components independently (different ops, disjoint
        # arrays) even though their statements alternate in the body
        return [
            assign(aref("F", i), aref("A", i) + aref("B", i)),
            assign(aref("G", i), aref("C2", i) - aref("D2", i)),
        ]
    if name == "smooth":
        # loads and stores the same array at the same index: a packed
        # load of B must not be hoisted across a packed store to B
        return [assign(aref("B", i), (aref("B", i) + aref("A", i)) * var("x"))]
    if name == "isum":
        # integer reduction: exercises exact (bit-identical) integer
        # accumulator packing, not just the fp reassociating variant
        return [assign(var("k"), var("k") + aref("JI", i))]
    if name == "amax":
        return [if_(aref("A", i) > var("mx"),
                    [assign(var("mx"), aref("A", i))], p_then=0.25)]
    raise KeyError(name)


def build_kernel(spec: CaseSpec) -> Kernel:
    """Deterministically build the kernel a spec describes."""
    arrays: dict[str, ArrayDecl] = {}
    scalars: dict[str, Ty] = {}
    outputs: list[str] = []
    doall = True
    body: list[Stmt] = []
    for t in spec.stmts:
        t_doall, t_arrays, t_scalars, _ins, t_outs = _TEMPLATES[t]
        doall = doall and t_doall
        for aname, ty in t_arrays.items():
            arrays.setdefault(aname, ArrayDecl(ty, (spec.trip,)))
        scalars.update(t_scalars)
        for o in t_outs:
            if o not in outputs:
                outputs.append(o)
        body.extend(_template_body(t, spec))

    hi = var("n") if spec.symbolic_bound else Const(spec.trip)
    if spec.symbolic_bound:
        scalars["n"] = Ty.INT
    inner = do("i", 1, hi, body, kind="doall" if doall else "serial")
    nest = [do("j", 1, spec.outer, [inner])] if spec.outer else [inner]
    return Kernel(f"fuzz{spec.seed}", nest, arrays=arrays, scalars=scalars,
                  outputs=outputs)


def _case_data(spec: CaseSpec):
    """Deterministic input bindings for a spec (own rng stream, so the
    same spec always reproduces the same run)."""
    kernel = build_kernel(spec)
    rng = np.random.default_rng(spec.seed + 0x5EED)
    arrays: dict[str, np.ndarray] = {}
    for name, decl in kernel.arrays.items():
        if decl.ty is Ty.INT:
            # negative values included: div/rem truncation is direction-
            # sensitive, and zero-free divisors are the templates' job
            arrays[name] = rng.integers(-9, 10, decl.dims).astype(np.int64)
        else:
            # small integer-valued floats keep fp arithmetic exact
            arrays[name] = rng.integers(-4, 5, decl.dims).astype(np.float64)
    scalars: dict[str, float | int] = {}
    for name, ty in kernel.scalars.items():
        if name == "i" or name == "j":
            continue
        if name == "n":
            scalars[name] = spec.trip
        elif name == "mx":
            scalars[name] = -1.0e9
        elif ty is Ty.FP:
            scalars[name] = float(rng.integers(-3, 4))
        else:
            scalars[name] = int(rng.integers(-3, 4))
    return arrays, scalars


def build_workload(spec: CaseSpec) -> Workload:
    """Wrap a spec as a corpus-shaped :class:`Workload` so the oracle can
    treat fuzz cases and Table 2 kernels identically."""
    kernel = build_kernel(spec)
    inner = kernel.inner_do()
    return Workload(
        name=kernel.name,
        suite="FUZZ",
        size_lines=len(spec.stmts),
        paper_iters=spec.trip,
        nest=2 if spec.outer else 1,
        loop_type=inner.kind,
        conds=any(t in ("guard", "amax") for t in spec.stmts),
        build=lambda: build_kernel(spec),
        data=lambda rng: _case_data(spec),
        reference=lambda arrays, scalars: interpret_kernel(
            build_kernel(spec), arrays, scalars
        ),
    )


def random_spec(seed: int) -> CaseSpec:
    rng = np.random.default_rng(seed)
    names = list(_TEMPLATES)
    k = int(rng.integers(1, 4))
    stmts = tuple(rng.choice(names, size=k, replace=False))
    # trip counts straddle the unroll factor: below it, exact multiples,
    # and off-by-one remainders all occur
    trip = int(rng.integers(1, 25))
    c2, c3 = int(rng.integers(1, 8)), int(rng.integers(1, 8))
    consts = (int(rng.integers(-6, 7)), int(rng.integers(-6, 7)), c2, c3,
              int(rng.integers(-6, 7)))
    return CaseSpec(
        seed=seed,
        trip=trip,
        outer=int(rng.integers(0, 4)),
        stmts=stmts,
        symbolic_bound=bool(rng.integers(0, 2)),
        consts=consts,
        p_then=float(rng.choice([0.1, 0.5, 0.9])),
    )


def random_workload(seed: int) -> Workload:
    """A random fuzz workload, fully determined by its seed."""
    return build_workload(random_spec(seed))


# ---------------------------------------------------------------------------
# shrinking and the fuzz driver
# ---------------------------------------------------------------------------


@dataclass
class FuzzFailure:
    """A diverging fuzz case, before and after shrinking."""

    spec: CaseSpec
    divergences: list[Divergence]
    shrunk_spec: CaseSpec
    shrunk_divergences: list[Divergence]

    def __str__(self) -> str:
        s = self.shrunk_spec
        head = (f"fuzz seed {s.seed}: trip={s.trip} outer={s.outer} "
                f"stmts={list(s.stmts)} symbolic={s.symbolic_bound} "
                f"consts={list(s.consts)}")
        return head + "".join(f"\n  {d}" for d in self.shrunk_divergences)


def _reductions(spec: CaseSpec):
    """Candidate one-step reductions, most aggressive first."""
    if len(spec.stmts) > 1:
        for i in range(len(spec.stmts)):
            yield dataclasses.replace(
                spec, stmts=spec.stmts[:i] + spec.stmts[i + 1:]
            )
    if spec.outer:
        yield dataclasses.replace(spec, outer=0)
        if spec.outer > 1:
            yield dataclasses.replace(spec, outer=1)
    if spec.trip > 1:
        yield dataclasses.replace(spec, trip=spec.trip // 2)
        yield dataclasses.replace(spec, trip=spec.trip - 1)
    if spec.symbolic_bound:
        yield dataclasses.replace(spec, symbolic_bound=False)


def _check_spec(spec: CaseSpec, levels, widths, check_ir) -> list[Divergence]:
    try:
        # cross_engine routes every generated program through both
        # simulator engines, so the fuzzer also hunts for interpreter /
        # block-compiled-replay divergence on adversarial kernels
        _, divs = check_workload(build_workload(spec), levels, widths,
                                 seed=0, check_ir=check_ir,
                                 cross_engine=True)
    except Exception as e:  # noqa: BLE001 - crashes are findings too
        divs = [Divergence(f"fuzz{spec.seed}", "-", 0, "compile-error",
                           repr(e))]
    return divs


def shrink_kernel(
    spec: CaseSpec,
    levels: tuple[Level, ...] = tuple(ALL_LEVELS),
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    check_ir: bool = True,
) -> tuple[CaseSpec, list[Divergence]]:
    """Greedily minimize a diverging spec while it keeps diverging."""
    best = spec
    best_divs = _check_spec(spec, levels, widths, check_ir)
    improved = True
    while improved:
        improved = False
        for cand in _reductions(best):
            divs = _check_spec(cand, levels, widths, check_ir)
            if divs:
                best, best_divs = cand, divs
                improved = True
                break
    return best, best_divs


def fuzz(
    n_cases: int = 50,
    seed: int = 0,
    levels: tuple[Level, ...] = tuple(ALL_LEVELS),
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    check_ir: bool = True,
    shrink: bool = True,
    verbose: bool = False,
) -> list[FuzzFailure]:
    """Run ``n_cases`` seeded fuzz cases through the differential oracle.

    Returns the (shrunk) failures; an empty list means every case agreed
    with the AST interpreter at every level and width.
    """
    failures: list[FuzzFailure] = []
    for case in range(n_cases):
        spec = random_spec(seed + case)
        divs = _check_spec(spec, levels, widths, check_ir)
        if divs:
            if shrink:
                small, small_divs = shrink_kernel(spec, levels, widths,
                                                  check_ir)
            else:
                small, small_divs = spec, divs
            failures.append(FuzzFailure(spec, divs, small, small_divs))
            if verbose:
                print(f"  case {case} (seed {spec.seed}) DIVERGES -> "
                      f"shrunk to trip={small.trip} stmts={list(small.stmts)}")
        elif verbose and (case + 1) % 10 == 0:
            print(f"  {case + 1}/{n_cases} cases ok")
    return failures
