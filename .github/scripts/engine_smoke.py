"""CI engine smoke: run a reduced sweep grid under both simulator
engines and require byte-identical results.

The trace-once / time-many engine (DESIGN.md §13) is a pure
performance substitution: ``--engine compiled`` and ``--engine interp``
must produce the same cycles, instruction counts, final memory/register
state, and derived metrics for every configuration.  This script is the
cross-engine identity gate — it diffs the two sweeps field-by-field
(ignoring only the ``t_*`` wall-clock phase timings, which differ
between engines by definition) and reports the wall-clock ratio as a
perf smoke signal without gating on it (CI runners are too noisy for a
hard threshold; the gated numbers live in benchmarks/bench_sim_perf.py).
"""

import os
import sys
import time
from dataclasses import asdict

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.experiments.sweep import run_sweep          # noqa: E402
from repro.pipeline import Level                       # noqa: E402
from repro.workloads import get_workload               # noqa: E402

#: reduced but shape-diverse: FP DOALL, serial reductions, a search
#: loop with a side exit, and a multi-block simulation-heavy nest
WORKLOADS = ("add", "dotprod", "sum", "maxval", "LWS-1", "NAS-5")
LEVELS = tuple(Level)
WIDTHS = (1, 2, 4, 8)


def strip_timings(result) -> dict:
    d = asdict(result)
    return {k: v for k, v in d.items() if not k.startswith("t_")}


def main() -> int:
    wls = [get_workload(n) for n in WORKLOADS]

    t0 = time.perf_counter()
    interp = run_sweep(wls, LEVELS, WIDTHS, engine="interp")
    t_interp = time.perf_counter() - t0

    t0 = time.perf_counter()
    compiled = run_sweep(wls, LEVELS, WIDTHS, engine="compiled")
    t_compiled = time.perf_counter() - t0

    if set(interp.results) != set(compiled.results):
        print("FAIL: engines produced different grids")
        return 1

    bad = 0
    for key in sorted(interp.results):
        a = strip_timings(interp.results[key])
        b = strip_timings(compiled.results[key])
        if a != b:
            bad += 1
            for field in a:
                if a[field] != b[field]:
                    print(f"FAIL: {key}: {field}: "
                          f"interp={a[field]!r} compiled={b[field]!r}")
    if bad:
        print(f"FAIL: {bad}/{len(interp.results)} configurations diverge "
              f"between engines")
        return 1

    print(f"OK: {len(interp.results)} configurations byte-identical across "
          f"engines (interp {t_interp:.2f}s, compiled {t_compiled:.2f}s, "
          f"{t_interp / t_compiled:.2f}x end-to-end)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
