"""CI Lev5 smoke: SLP vectorization is a pure performance substitution.

Two gates:

1. **Cross-engine byte-identity at Lev5** — every corpus workload is
   swept at Lev5 under both simulator engines (the tuple interpreter
   and the block-compiled trace/replay core); cycles, instruction
   counts, and end states must match field-for-field (wall-clock
   phase timings excluded, as in engine_smoke.py).
2. **Fixed-seed vector fuzz** — the fuzzer's vector-shaped templates
   (elementwise pairs, same-array smoothing, integer reduction) are
   pushed through the full differential oracle at Lev4 and Lev5 with
   cross-engine checking on, over a deterministic trip-count ladder
   that straddles the unroll and pack widths.
"""

import os
import sys
from dataclasses import asdict

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.check.fuzz import CaseSpec, build_workload  # noqa: E402
from repro.check.oracle import check_workload          # noqa: E402
from repro.experiments.sweep import run_sweep          # noqa: E402
from repro.pipeline import Level                       # noqa: E402
from repro.workloads import all_workloads              # noqa: E402

WIDTHS = (1, 4, 8)
VEC_TEMPLATES = ("pair", "smooth", "isum")
TRIPS = (3, 8, 17, 24)


def strip_timings(result) -> dict:
    d = asdict(result)
    return {k: v for k, v in d.items() if not k.startswith("t_")}


def engine_identity() -> int:
    wls = all_workloads()
    interp = run_sweep(wls, (Level.LEV5,), WIDTHS, engine="interp")
    compiled = run_sweep(wls, (Level.LEV5,), WIDTHS, engine="compiled")
    if set(interp.results) != set(compiled.results):
        print("FAIL: engines produced different Lev5 grids")
        return 1
    bad = 0
    for key in sorted(interp.results):
        a = strip_timings(interp.results[key])
        b = strip_timings(compiled.results[key])
        if a != b:
            bad += 1
            diffs = [f for f in a if a[f] != b[f]]
            print(f"FAIL {key}: engines diverge on {diffs}")
    print(f"Lev5 cross-engine identity: {len(interp.results)} configs, "
          f"{bad} divergent")
    return 1 if bad else 0


def vector_fuzz() -> int:
    n_checked = 0
    n_div = 0
    for ti, t in enumerate(VEC_TEMPLATES):
        for trip in TRIPS:
            spec = CaseSpec(seed=1000 * ti + trip, trip=trip,
                            outer=0, stmts=(t,), symbolic_bound=False,
                            consts=(1, 2, 3, 5, 2))
            checked, divs = check_workload(
                build_workload(spec), levels=(Level.LEV4, Level.LEV5),
                widths=(1, 8), check_ir=True, cross_engine=True,
            )
            n_checked += checked
            n_div += len(divs)
            for d in divs:
                print(f"FAIL {t} trip={trip}: {d}")
    print(f"vector fuzz: {n_checked} configs over "
          f"{len(VEC_TEMPLATES) * len(TRIPS)} cases, {n_div} divergent")
    return 1 if n_div else 0


def main() -> int:
    return engine_identity() | vector_fuzz()


if __name__ == "__main__":
    raise SystemExit(main())
