"""CI smoke for the multi-node cluster.

Self-contained (starts its own fleet): launches a 3-node process
cluster plus a router, then drives the scale-out guarantees end to end:

1. mixed requests through the router land on more than one node
   (consistent-hash routing actually spreads the key space);
2. the same key submitted through every node compiles exactly once
   (ownership forwarding funnels into one engine's single-flight);
3. one node is SIGKILLed mid-batch — every remaining request is still
   answered, lost artifacts are recomputed, and nothing is served
   twice or differently;
4. the router's aggregated ``/metrics`` reports zero errors on the
   survivors.
"""

import sys
import tempfile
from pathlib import Path

from repro.cluster.launch import ProcessCluster
from repro.cluster.router import serve_router_background
from repro.service.client import ServiceClient

GRID = [("dotprod", 4, 8), ("add", 0, 1), ("add", 4, 8), ("sum", 4, 4),
        ("sum", 0, 8), ("maxval", 4, 1), ("maxval", 2, 8), ("merge", 4, 8)]


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="repro-cluster-smoke-"))
    cluster = ProcessCluster(n=3, store_root=tmp, jobs=1).start()
    httpd, router, url = serve_router_background(cluster.urls)
    try:
        c = ServiceClient(url, timeout=120.0, retry=None)

        # 1: a mixed batch spreads across the fleet
        first = {}
        nodes_seen = set()
        for wl, lv, wd in GRID[:4]:
            r = c.run(wl, level=lv, width=wd, timeout=60.0)
            first[(wl, lv, wd)] = r["result"]
            nodes_seen.add(r.get("node") or r.get("routed_by"))
        assert len(nodes_seen) > 1, \
            f"all requests landed on one node: {nodes_seen}"

        # 2: the same key through every node directly — exactly one
        # compilation fleet-wide (forwarded replies are store hits)
        replies = [ServiceClient(u, retry=None).run("dotprod", level=4,
                                                    width=8, timeout=60.0)
                   for u in cluster.urls]
        assert all(r["result"] == first[("dotprod", 4, 8)]
                   for r in replies), "duplicate key answered differently"
        assert all(r["cache"] == "hit" for r in replies), (
            "duplicate key recompiled: "
            f"{[r['cache'] for r in replies]}")
        owners = {r["node"] for r in replies}
        assert len(owners) == 1, f"key served by several owners: {owners}"

        # 3: SIGKILL a node mid-batch; the batch must complete with
        # zero lost or duplicated results
        victim = sorted(cluster.urls)[0]
        cluster.kill(victim)
        second = {}
        for wl, lv, wd in GRID[4:]:
            r = c.run(wl, level=lv, width=wd, timeout=60.0)
            second[(wl, lv, wd)] = r["result"]
        assert len(second) == len(GRID[4:]), "requests lost after the kill"
        # re-request everything (including pre-kill keys): served again,
        # byte-identical — recomputed where the victim's shard died
        for (wl, lv, wd), want in {**first, **second}.items():
            got = c.run(wl, level=lv, width=wd, timeout=60.0)["result"]
            assert got == want, f"({wl},{lv},{wd}) changed after node kill"

        # 4: aggregated metrics — survivors clean, fleet accounted
        m = c.metrics()
        survivors = [u for u in cluster.urls if u != victim]
        for u in survivors:
            node_metrics = m["nodes"][u]
            assert not node_metrics.get("unreachable"), f"{u} unreachable"
            if node_metrics.get("errors"):
                print(f"{u} reported {node_metrics['errors']} error(s)",
                      file=sys.stderr)
                return 1
        assert m["nodes"][victim].get("unreachable") is True
        assert m["router"]["unroutable"] == 0
        assert m["router"]["failovers"] > 0, \
            "the kill never exercised failover"
        print(f"cluster smoke: ok ({len(GRID)} configs over 3 nodes, "
              f"{m['router']['routed']} routed, "
              f"{m['router']['failovers']} failovers, victim {victim})")
        return 0
    finally:
        httpd.shutdown()
        cluster.stop()


if __name__ == "__main__":
    raise SystemExit(main())
