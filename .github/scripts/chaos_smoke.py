"""CI chaos smoke: SIGKILL a live worker process mid-sweep and require
the sweep to finish anyway, with the kill visible in the resilience
counters.

Unlike the in-process fault plans (tests/integration/test_chaos.py),
this drives a real ``repro sweep --jobs 2`` subprocess and kills one of
its fork-pool children from the outside — the supervisor must notice
the corpse, respawn a worker, and re-dispatch the lost cell.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: every task sleeps 1s on its first attempt (worker.slow), stretching a
#: sub-second sweep into a several-second one so the external SIGKILL
#: below reliably lands while a worker holds a task.  Re-dispatched
#: attempts run at full speed (fires=1).
SLOW_PLAN = {"seed": 0, "sites": [
    {"site": "worker.slow", "rate": 1.0, "fires": 1, "delay_s": 1.0},
]}


def child_pids(pid: int) -> list[int]:
    """Direct children of ``pid`` via /proc (Linux CI runners)."""
    kids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as f:
                fields = f.read().rsplit(")", 1)[1].split()
            if int(fields[1]) == pid:  # field 4 overall = ppid
                kids.append(int(entry))
        except (OSError, IndexError, ValueError):
            continue
    return kids


def main() -> int:
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        json.dump(SLOW_PLAN, f)
        plan_path = f.name
    cmd = [sys.executable, "-m", "repro", "sweep",
           "--workloads", "add,sum,dotprod", "--jobs", "2",
           "--fault-plan", plan_path]
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.Popen(cmd, env=env, cwd=ROOT,
                            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                            text=True)

    # wait for the fork pool to exist and pick up work, then shoot one
    victim = None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline and proc.poll() is None:
        kids = child_pids(proc.pid)
        if kids:
            time.sleep(0.5)  # let it get a task in flight
            kids = child_pids(proc.pid)
            if kids:
                victim = kids[0]
                break
        time.sleep(0.05)
    if victim is None:
        out, _ = proc.communicate(timeout=60)
        print(out)
        print("FAIL: no worker child appeared (sweep too fast or dead)")
        return 1
    print(f"SIGKILL worker pid {victim}", flush=True)
    os.kill(victim, signal.SIGKILL)

    out, _ = proc.communicate(timeout=600)
    print(out)
    if proc.returncode != 0:
        print(f"FAIL: sweep exited {proc.returncode} after the worker kill")
        return 1

    # the summary line must show the kill was absorbed, not ignored
    resilience = [ln for ln in out.splitlines() if ln.startswith("resilience:")]
    if not resilience:
        print("FAIL: no resilience summary in sweep output")
        return 1
    line = resilience[0]
    restarts = int(line.split("worker restarts")[0].split(",")[-1].strip())
    redispatched = int(line.split("redispatched")[0].split(":")[-1].strip())
    if restarts < 1:
        print(f"FAIL: expected >=1 worker restart, got: {line}")
        return 1
    if redispatched < 1:
        print(f"FAIL: expected >=1 redispatched task, got: {line}")
        return 1
    print(f"OK: sweep completed; {redispatched} redispatched, "
          f"{restarts} worker restart(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
