"""CI smoke for the compilation service.

Expects ``python -m repro serve --port 8734 --store ... --max-pending 8``
already running (the workflow starts it in the background).  Drives six
mixed requests through the client SDK — two fresh runs, a duplicate
that must be answered from the artifact store, a compile, an async
sweep job, and an oversized sweep that must be load-shed — then scrapes
``/metrics`` and fails on any nonzero service-side error count.
"""

import sys
import time

from repro.service.client import (
    ServiceClient,
    ServiceOverloaded,
    ServiceUnavailable,
)

URL = "http://127.0.0.1:8734"


def main() -> int:
    c = ServiceClient(URL, timeout=120.0)
    for _ in range(100):
        try:
            c.healthz()
            break
        except ServiceUnavailable:
            time.sleep(0.2)
    else:
        print(f"no service at {URL}", file=sys.stderr)
        return 1

    # 1-2: two fresh configurations (compile + simulate + NumPy check)
    r1 = c.run("dotprod", level=4, width=8)
    assert r1["result"]["cycles"] > 0 and r1["result"]["checked"] is True
    r2 = c.run("sum", level=3, width=4)
    assert r2["result"]["cycles"] > 0

    # 3: exact duplicate of (1) — must be served from the artifact store
    dup = c.run("dotprod", level=4, width=8)
    assert dup["cache"] == "hit", f"expected a store hit, got {dup['cache']!r}"
    assert dup["result"] == r1["result"], "cached result differs"

    # 4: compile-only request returns scheduled IR, no simulation
    r4 = c.compile("add", level=2, width=8)["result"]
    assert "MEM(" in r4["ir"] and "cycles" not in r4

    # 5: async sweep job, polled to completion
    jid = c.sweep(["add"], levels=[0, 4], widths=[1, 8])
    rec = c.wait_job(jid, timeout=120.0)
    assert rec["result"]["configs"] == 4

    # 6: oversized sweep (80 configs > --max-pending 8) — must be shed
    # atomically as HTTP 429, and must not wedge the service
    try:
        c.sweep(["add", "sum", "maxval", "merge"])
    except ServiceOverloaded:
        pass
    else:
        print("oversized sweep was accepted instead of shed", file=sys.stderr)
        return 1
    assert c.healthz()["ok"] is True

    m = c.metrics()
    print(f"metrics: {m}")
    assert m["hits"] >= 1, "the duplicate request never hit the store"
    assert m["shed"] >= 1, "the oversized sweep was never counted as shed"
    if m["errors"]:
        print(f"service reported {m['errors']} error(s)", file=sys.stderr)
        return 1
    print("service smoke: ok "
          f"({m['requests']} requests, {m['hits']} hits, {m['shed']} shed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
