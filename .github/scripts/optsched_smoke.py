"""CI optimal-scheduler smoke: the exact backend is a safe substitution.

Three gates over a six-loop corpus slice at Lev4 and Lev5, issue-8:

1. **Never worse, honestly labeled** — the exact schedule's inner-loop
   makespan is <= the heuristic's for every (loop, level), and every
   scheduled block carries an ``optimal`` or ``timeout-incumbent``
   proof status (``too-large`` or a missing record fails).
2. **Differential oracle byte-identity** — both backends schedule the
   same transformed code; their simulated end states must be
   bit-identical on real data for every loop.
3. **Warm store replay** — rescheduling against the store populated by
   the first pass must answer every non-trivial block and every modulo
   search from the solver cache, with identical results.
"""

import os
import sys
import tempfile

import numpy as np

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(ROOT, "src"))

from pathlib import Path                                      # noqa: E402

from repro.harness import (                                   # noqa: E402
    ilp_transform,
    lower_conv,
    run_compiled_kernel,
    schedule_kernel,
)
from repro.machine import issue8                              # noqa: E402
from repro.optsched import modulo_schedule                    # noqa: E402
from repro.pipeline import Level                              # noqa: E402
from repro.service.store import ArtifactStore                 # noqa: E402
from repro.workloads import get_workload                      # noqa: E402

LOOPS = ("add", "sum", "dotprod", "LWS-1", "NAS-4", "SRS-6")
LEVELS = (Level.LEV4, Level.LEV5)


def check_config(name: str, level: Level, store) -> int:
    w = get_workload(name)
    machine = issue8()
    tk = ilp_transform(lower_conv(w.build()), level, machine)
    ck_h = schedule_kernel(tk.clone(), machine)
    ck_o = schedule_kernel(tk, machine, scheduler="optimal",
                           solver_store=store, check=True)
    label = f"{name}@{level.label}"
    bad = 0

    if ck_o.inner_makespan > ck_h.inner_makespan:
        print(f"FAIL {label}: exact makespan {ck_o.inner_makespan} > "
              f"heuristic {ck_h.inner_makespan}")
        bad += 1
    statuses = {p["status"] for p in ck_o.report.optsched.values()}
    if not ck_o.report.optsched or \
            statuses - {"optimal", "timeout-incumbent"}:
        print(f"FAIL {label}: bad proof statuses {statuses}")
        bad += 1

    arrays, scalars = w.make_inputs(0)
    rh = run_compiled_kernel(ck_h, arrays=arrays, scalars=scalars)
    ro = run_compiled_kernel(ck_o, arrays=arrays, scalars=scalars)
    same = (set(rh.arrays) == set(ro.arrays)
            and all(np.array_equal(rh.arrays[k], ro.arrays[k])
                    for k in rh.arrays)
            and rh.scalars == ro.scalars)
    if not same:
        print(f"FAIL {label}: end states diverge between backends")
        bad += 1

    ms = modulo_schedule(
        ck_o.sb.body.instrs, machine,
        iterations=ck_o.report.unroll_factor,
        prologue=ck_o.sb.preheader.instrs,
        doall=w.loop_type == "doall", store=store,
    )
    if not (ms.bounds.mii <= ms.ii <= ms.acyclic_makespan):
        print(f"FAIL {label}: II {ms.ii} outside "
              f"[{ms.bounds.mii}, {ms.acyclic_makespan}]")
        bad += 1

    if not bad:
        opt = sum(1 for p in ck_o.report.optsched.values()
                  if p["status"] == "optimal")
        print(f"ok {label}: makespan {ck_o.inner_makespan} "
              f"(heur {ck_h.inner_makespan}), "
              f"{opt}/{len(ck_o.report.optsched)} blocks proved, "
              f"ii={ms.ii} [{ms.status}], states identical")
    return bad


def check_warm_replay(name: str, level: Level, store) -> int:
    """Second pass: every non-trivial block must hit the solver cache."""
    w = get_workload(name)
    machine = issue8()
    tk = ilp_transform(lower_conv(w.build()), level, machine)
    ck = schedule_kernel(tk, machine, scheduler="optimal",
                         solver_store=store)
    bad = 0
    for label, p in ck.report.optsched.items():
        blk = next(b for b in ck.func.blocks if b.label == label)
        if len(blk.instrs) > 1 and not p["cached"]:
            print(f"FAIL {name}@{level.label}: block {label} "
                  f"missed the warm solver cache")
            bad += 1
    ms = modulo_schedule(
        ck.sb.body.instrs, machine,
        iterations=ck.report.unroll_factor,
        prologue=ck.sb.preheader.instrs,
        doall=w.loop_type == "doall", store=store,
    )
    if not ms.cached:
        print(f"FAIL {name}@{level.label}: modulo search missed the cache")
        bad += 1
    return bad


def main() -> int:
    failures = 0
    with tempfile.TemporaryDirectory() as d:
        store = ArtifactStore(Path(d) / "solver-store")
        for level in LEVELS:
            for name in LOOPS:
                failures += check_config(name, level, store)
        print("-- warm store replay --")
        for level in LEVELS:
            for name in LOOPS:
                failures += check_warm_replay(name, level, store)
    print(f"optsched smoke: {len(LOOPS) * len(LEVELS)} configs, "
          f"{failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
