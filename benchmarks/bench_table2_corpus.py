"""Table 2: the 40-loop-nest corpus — regenerates the descriptive table and
times lowering + classical optimization across the whole corpus."""

from conftest import emit
from repro.frontend.lower import lower_kernel
from repro.opt.driver import run_conv
from repro.workloads import all_workloads


def test_table2(benchmark, figures):
    ws = all_workloads()
    assert len(ws) == 40

    def compile_all_conv():
        total_instrs = 0
        for w in ws[:10]:  # a representative slice keeps the timing tight
            lk = lower_kernel(w.build())
            run_conv(lk.func, lk.counted, lk.live_out_exit)
            total_instrs += lk.func.n_instrs()
        return total_instrs

    total = benchmark(compile_all_conv)
    assert total > 0
    emit("table2_corpus", figures["table2_corpus"])
