"""Lev5 SLP vectorization: speedup over Lev4 across the corpus.

The pack-merging cost model is allowed to decline a loop (no adjacent
isomorphic statements, or the vector sequence would not beat the scalar
latencies it deletes).  Its gate is a latency-sum comparison, which does
not model issue-slot packing, so a vectorized loop can end up a couple
of cycles slower once scheduled at issue-8; the asserted contract is
geomean speedup >= 1 across the corpus with per-loop regressions
bounded to schedule noise (> 5% would mean the cost model is broken).

Writes ``results/BENCH_lev5_slp.json`` with the per-workload ratios and
how many loops actually vectorized, and emits a readable table.
"""

import json
import math

from conftest import emit
from repro.experiments.sweep import default_cache_path
from repro.harness import compile_kernel
from repro.machine import MachineConfig
from repro.pipeline import Level
from repro.workloads import all_workloads

WIDTH = 8


def test_lev5_speedup_over_lev4(benchmark, sweep_data):
    rows = []
    ratios = {}
    vectorized = {}
    for name in sweep_data.workload_names():
        lev4 = sweep_data.get(name, Level.LEV4, WIDTH).cycles
        lev5 = sweep_data.get(name, Level.LEV5, WIDTH).cycles
        ratios[name] = lev4 / lev5
    # component counts come from a fresh compile (the sweep payload
    # records timing, not pass stats); timed as the benchmark body
    def compile_all():
        counts = {}
        for w in all_workloads():
            ck = compile_kernel(w.build(), Level.LEV5,
                                MachineConfig(issue_width=WIDTH))
            counts[w.name] = ck.report.slp
        return counts

    vectorized = benchmark(compile_all)

    geomean = math.exp(
        sum(math.log(r) for r in ratios.values()) / len(ratios)
    )
    n_vec = sum(1 for c in vectorized.values() if c > 0)

    lines = [
        f"Lev5 SLP speedup over Lev4 (issue-{WIDTH}, cycles ratio)",
        "=" * 56,
        f"{'loop':<14}{'packs':>6}{'Lev4':>9}{'Lev5':>9}{'ratio':>8}",
        "-" * 46,
    ]
    for name in sorted(ratios, key=str.lower):
        lev4 = sweep_data.get(name, Level.LEV4, WIDTH).cycles
        lev5 = sweep_data.get(name, Level.LEV5, WIDTH).cycles
        lines.append(f"{name:<14}{vectorized[name]:>6}{lev4:>9}{lev5:>9}"
                     f"{ratios[name]:>8.2f}")
    lines.append("-" * 46)
    lines.append(f"{n_vec}/{len(ratios)} loops vectorized; "
                 f"geomean speedup {geomean:.3f}x")
    emit("bench_lev5_slp", "\n".join(lines))

    payload = {
        "width": WIDTH,
        "ratios": ratios,
        "slp_components": vectorized,
        "vectorized_loops": n_vec,
        "geomean_speedup": geomean,
    }
    out = default_cache_path().parent / "BENCH_lev5_slp.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # the cost model may decline, never meaningfully regress: per-loop
    # deviations stay within schedule noise, the geomean never dips
    worst = min(ratios, key=ratios.get)
    assert ratios[worst] >= 0.95, (worst, ratios[worst])
    assert geomean >= 1.0
    # the pass is not vacuous: a majority of the corpus actually packs
    assert n_vec >= len(ratios) // 2
