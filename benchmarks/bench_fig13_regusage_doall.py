"""Figure 13: register usage of DOALL loops (issue-8).

Shape: DOALL loops use *more* registers than non-DOALL loops after
renaming — the overlapped unrolled iterations keep many values live."""

from conftest import emit
from repro.experiments.histograms import doall_filter, register_distribution
from repro.harness import compile_kernel
from repro.machine import issue8
from repro.pipeline import Level
from repro.workloads import get_workload


def test_fig13(benchmark, sweep_data, figures):
    doall = register_distribution(sweep_data, 8, doall_filter(True))
    non = register_distribution(sweep_data, 8, doall_filter(False))
    assert doall.average("Lev2") > doall.average("Lev1")
    # renaming-driven growth should be at least comparable to non-DOALL
    assert doall.average("Lev2") >= non.average("Lev2") * 0.8

    w = get_workload("tomcatv-1")
    benchmark(lambda: compile_kernel(w.build(), Level.LEV2, issue8()).inner_makespan)
    emit("fig13_regusage_doall", figures["fig13_regusage_doall"])
