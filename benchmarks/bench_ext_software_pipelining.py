"""Extension: the study the paper deferred (Section 1.1) — the effect of
the ILP transformations on software pipelining.

For each loop we compute the modulo-scheduling lower bound MII =
max(ResMII, RecMII) of the transformed body, the smallest II the exact
modulo scheduler (:mod:`repro.optsched.modulo`) actually achieves, and
compare both (per source iteration) with the initiation interval the
acyclic superblock schedule achieves.  Findings, asserted below:

* the Lev4 expansions cut the *recurrence* bound of reduction loops by
  roughly the unroll factor — dependence elimination helps software
  pipelining exactly as the paper conjectured;
* for true memory recurrences no transformation (and no scheduler) can
  beat the dataflow bound: RecMII is invariant across levels;
* the acyclic superblock schedule already operates near MII for most
  transformed loops, so on this processor model software pipelining's
  additional headroom is modest once Lev4 has run.
"""

from conftest import emit
from repro.harness import compile_kernel
from repro.machine import issue8
from repro.optsched import modulo_schedule
from repro.pipeline import Level
from repro.schedule.pipelining import compute_bounds
from repro.workloads import get_workload

LOOPS = ["add", "dotprod", "sum", "LWS-1", "LWS-2", "NAS-4", "SRS-6", "matrix300-1"]


def bounds_for(name, level):
    w = get_workload(name)
    ck = compile_kernel(w.build(), level, issue8())
    b = compute_bounds(
        ck.sb.body.instrs,
        issue8(),
        iterations=ck.report.unroll_factor,
        prologue=ck.sb.preheader.instrs,
        doall=(w.loop_type == "doall"),
    )
    ms = modulo_schedule(
        ck.sb.body.instrs,
        issue8(),
        iterations=ck.report.unroll_factor,
        prologue=ck.sb.preheader.instrs,
        doall=(w.loop_type == "doall"),
    )
    achieved = ck.inner_makespan / b.iterations
    return b, achieved, ms


def test_software_pipelining_bounds(benchmark, figures):
    rows = [
        "Extension: software pipelining bounds (issue-8, per source iteration)",
        "=" * 70,
        f"{'loop':<13}{'level':<6}{'ResMII':>7}{'RecMII':>7}{'MII/iter':>9}"
        f"{'exactII':>9}{'achieved':>9}",
        "-" * 60,
    ]
    data = {}
    for name in LOOPS:
        for level in (Level.LEV2, Level.LEV4):
            b, achieved, ms = bounds_for(name, level)
            data[(name, level)] = (b, achieved)
            star = "" if ms.optimal else "+"
            rows.append(
                f"{name:<13}{level.label:<6}{b.res_mii:>7}{b.rec_mii:>7}"
                f"{b.mii_per_iteration:>9.2f}"
                f"{ms.ii_per_iteration:>8.2f}{star:<1}{achieved:>9.2f}"
            )
            # the exact modulo scheduler's II is sandwiched between the
            # dataflow/resource bound and the acyclic schedule it would
            # replace; "optimal" status means it *met* the bound
            assert b.mii <= ms.ii <= ms.acyclic_makespan, (name, level)
            if ms.optimal:
                assert ms.ii == b.mii, (name, level)
    rows.append("-" * 60)
    rows.append("exactII: smallest modulo-scheduled II found by the exact "
                "solver (+ = not proven minimal)")

    # reductions: expansion slashes the recurrence bound
    for name in ("dotprod", "sum", "LWS-2", "SRS-6"):
        lev2, _ = data[(name, Level.LEV2)]
        lev4, _ = data[(name, Level.LEV4)]
        assert lev4.rec_mii <= lev2.rec_mii / 3, name
    # true memory recurrences: store-to-load forwarding trims the loads out
    # of the chain (e.g. LWS-1: 9.0 -> ~6.4 cycles/iter), but the arithmetic
    # recurrence itself cannot collapse the way reductions' did...
    for name in ("LWS-1", "NAS-4"):
        lev2, _ = data[(name, Level.LEV2)]
        lev4, achieved = data[(name, Level.LEV4)]
        assert lev4.rec_mii > lev2.rec_mii / 3, name
        assert lev4.mii_per_iteration >= 3.0, name
        # ...and the acyclic schedule sits exactly on the dataflow bound, so
        # software pipelining has nothing left to add for these loops
        assert achieved <= lev4.mii_per_iteration * 1.05, name
    # the MII is a genuine lower bound on what the schedule achieved
    for (name, level), (b, achieved) in data.items():
        assert achieved >= b.mii_per_iteration * 0.99, (name, level)

    benchmark(lambda: bounds_for("dotprod", Level.LEV4)[0].mii)
    emit("ext_software_pipelining", "\n".join(rows))
