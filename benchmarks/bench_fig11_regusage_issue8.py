"""Figure 11: register usage distribution at issue-8.

Shape: the largest increase comes from register renaming (Lev1 -> Lev2);
Lev3 and Lev4 add only moderate further pressure; nearly all loops stay
under 128 combined registers."""

from conftest import emit
from repro.experiments.histograms import register_distribution
from repro.harness import compile_kernel
from repro.machine import issue8
from repro.pipeline import Level
from repro.regalloc import measure_register_usage
from repro.workloads import get_workload


def test_fig11(benchmark, sweep_data, figures):
    dist = register_distribution(sweep_data, 8)
    conv = dist.average("Conv")
    lev1 = dist.average("Lev1")
    lev2 = dist.average("Lev2")
    lev4 = dist.average("Lev4")
    assert lev2 - lev1 > (lev1 - conv) * 2  # renaming is the big jump
    assert lev4 >= lev2
    under128 = sum(dist.series["Lev4"][:-1])
    assert under128 >= 37  # paper: 37/40

    w = get_workload("SRS-5")

    def measure():
        ck = compile_kernel(w.build(), Level.LEV4, issue8())
        return measure_register_usage(ck.func, ck.lowered.live_out_exit).total

    total = benchmark(measure)
    assert total > 0
    emit("fig11_regusage_issue8", figures["fig11_regusage_issue8"])
