"""Ablation: speculation policy.

The paper's processor supports non-excepting loads and FP instructions so
the compiler can hoist them above branches.  Turning speculation off
should hurt loops whose superblocks have side exits (conds loops), since
their loads can no longer move above the guards."""

from conftest import emit
from repro.experiments.sweep import run_config
from repro.machine import MachineConfig
from repro.pipeline import Level
from repro.workloads import get_workload

CONDS = ["maxval", "merge", "MTS-1", "MTS-2", "CSS-1"]


def test_speculation_ablation(benchmark, figures):
    spec = MachineConfig(issue_width=8)
    nospec = MachineConfig(issue_width=8, speculative_loads=False, speculative_fp=False)

    rows = ["Ablation: speculation (issue-8, Lev3 cycles)",
            "=" * 46,
            f"{'loop':<10}{'speculative':>12}{'none':>10}{'ratio':>8}"]
    hurt = 0
    for name in CONDS:
        w = get_workload(name)
        c_spec = run_config(w, Level.LEV3, spec).cycles
        c_none = run_config(w, Level.LEV3, nospec).cycles
        rows.append(f"{name:<10}{c_spec:>12}{c_none:>10}{c_none / c_spec:>8.2f}")
        if c_none > c_spec:
            hurt += 1
        assert c_none >= c_spec  # removing capability can never help
    assert hurt >= 3  # most conds loops rely on speculation

    w = get_workload("maxval")
    benchmark(lambda: run_config(w, Level.LEV3, nospec).cycles)
    emit("ablation_speculation", "\n".join(rows))
