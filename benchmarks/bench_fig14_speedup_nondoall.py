"""Figure 14: speedup distribution of non-DOALL (serial + DOACROSS) loops
at issue-8.

Shape: unrolling + renaming expose only limited ILP for these loops; the
Lev4 expansion transformations provide the largest improvements — the
recurrence-breaking expansions are what they exist for."""

from conftest import emit
from repro.experiments.histograms import doall_filter, speedup_distribution
from repro.experiments.sweep import run_config
from repro.machine import issue8
from repro.pipeline import Level
from repro.workloads import get_workload


def test_fig14(benchmark, sweep_data, figures):
    dist = speedup_distribution(sweep_data, 8, doall_filter(False))
    lev1 = dist.average("Lev1")
    lev2 = dist.average("Lev2")
    lev3 = dist.average("Lev3")
    lev4 = dist.average("Lev4")
    # renaming helps less here than for DOALL loops...
    doall = speedup_distribution(sweep_data, 8, doall_filter(True))
    assert (lev2 - lev1) < (doall.average("Lev2") - doall.average("Lev1"))
    # ...and Lev4 provides the largest increment beyond Lev2
    assert (lev4 - lev2) > (lev3 - lev2)
    assert lev4 > lev2 * 1.2

    w = get_workload("sum")
    benchmark(lambda: run_config(w, Level.LEV4, issue8()).cycles)
    emit("fig14_speedup_nondoall", figures["fig14_speedup_nondoall"])
