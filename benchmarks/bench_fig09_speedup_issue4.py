"""Figure 9: speedup distribution on an issue-4 processor.

Shape: Lev2 gives substantial speedups; Lev3/Lev4 add measurable further
gains (the paper reports 3.73 -> 4.35 on average)."""

from conftest import emit
from repro.experiments.histograms import speedup_distribution
from repro.experiments.sweep import run_config
from repro.machine import issue4
from repro.pipeline import Level
from repro.workloads import get_workload


def test_fig09(benchmark, sweep_data, figures):
    dist = speedup_distribution(sweep_data, 4)
    assert dist.average("Lev2") > dist.average("Conv") * 1.5
    assert dist.average("Lev4") > dist.average("Lev2")

    w = get_workload("NAS-2")
    benchmark(lambda: run_config(w, Level.LEV3, issue4()).cycles)
    emit("fig09_speedup_issue4", figures["fig09_speedup_issue4"])
