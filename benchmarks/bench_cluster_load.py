"""Cluster load generator: latency percentiles and saturation curves.

Drives a live 3-node cluster (in-process nodes + router) two ways:

* **closed loop** — K workers each issue the next request the moment
  the previous reply lands, for K in a concurrency ladder.  Throughput
  vs. K is the classic saturation curve: it climbs while the fleet has
  idle capacity and flattens at the service ceiling, while latency
  rises with queueing.
* **open loop** — requests arrive on a fixed schedule (the arrival rate
  does not slow down when the service does), for a ladder of rates.
  Unlike the closed loop, this exposes queueing collapse: past the
  service ceiling, latency grows with the backlog instead of
  plateauing, and admission control starts shedding (counted, never
  silent).

The request mix is drawn deterministically (seeded RNG) from a small
config grid that is pre-warmed into the store shards, so the benchmark
measures the *service path* — routing, forwarding, store reads,
single-flight — rather than compilation cost.  Results (per-rung
p50/p95/p99, throughput, shed counts) land in
``results/BENCH_load.json``.

Run explicitly (not part of tier-1)::

    PYTHONPATH=src python -m pytest benchmarks/bench_cluster_load.py -v
"""

import json
import random
import tempfile
import threading
import time
from pathlib import Path

from repro.cluster.launch import ThreadCluster
from repro.cluster.router import serve_router_background
from repro.experiments.sweep import default_cache_path
from repro.service.client import (
    ServiceClient,
    ServiceOverloaded,
    ServiceRequestError,
    ServiceUnavailable,
)

GRID_WORKLOADS = ("add", "sum", "dotprod")
GRID_LEVELS = (0, 4)
GRID_WIDTHS = (1, 8)

CLOSED_CONCURRENCY = (1, 2, 4, 8, 16)
CLOSED_REQUESTS_PER_WORKER = 25
OPEN_RATES = (50.0, 150.0, 400.0)
OPEN_DURATION_S = 2.0


def _percentiles(samples: list[float]) -> dict:
    if not samples:
        return {"p50": None, "p95": None, "p99": None}
    s = sorted(samples)

    def pct(p: float) -> float:
        return round(s[min(len(s) - 1, int(p * len(s)))] * 1e3, 3)

    return {"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99)}


def _request(client: ServiceClient, cfg, latencies: list, sheds: list,
             errors: list) -> None:
    n, lv, wd = cfg
    t0 = time.perf_counter()
    for attempt in (1, 2):
        try:
            client.run(n, level=lv, width=wd, timeout=60.0)
        except ServiceOverloaded:
            sheds.append(1)
            return
        except ServiceUnavailable as e:
            # idempotent by key: one immediate retry absorbs a transient
            # connection reset; a second failure is a real error
            if attempt == 1:
                continue
            errors.append(str(e))
            return
        except ServiceRequestError as e:
            errors.append(str(e))
            return
        break
    latencies.append(time.perf_counter() - t0)


def _closed_loop(url: str, grid, workers: int, per_worker: int) -> dict:
    latencies: list[float] = []
    sheds: list[int] = []
    errors: list[str] = []
    lock = threading.Lock()

    def worker(wid: int) -> None:
        rng = random.Random(1000 + wid)
        client = ServiceClient(url, timeout=60.0, retry=None)
        mine: list[float] = []
        my_sheds: list[int] = []
        my_errors: list[str] = []
        for _ in range(per_worker):
            _request(client, rng.choice(grid), mine, my_sheds, my_errors)
        with lock:
            latencies.extend(mine)
            sheds.extend(my_sheds)
            errors.extend(my_errors)

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(workers)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    done = len(latencies)
    return {
        "workers": workers,
        "requests": workers * per_worker,
        "completed": done,
        "shed": len(sheds),
        "errors": len(errors),
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(done / elapsed, 1) if elapsed else None,
        "latency_ms": _percentiles(latencies),
    }


def _open_loop(url: str, grid, rate_rps: float, duration_s: float) -> dict:
    """Fixed arrival schedule; every arrival gets its own thread so a
    slow reply cannot hold back the next arrival (true open loop)."""
    latencies: list[float] = []
    sheds: list[int] = []
    errors: list[str] = []
    lock = threading.Lock()
    rng = random.Random(int(rate_rps))
    client = ServiceClient(url, timeout=60.0, retry=None)

    def fire(cfg) -> None:
        mine: list[float] = []
        my_sheds: list[int] = []
        my_errors: list[str] = []
        _request(client, cfg, mine, my_sheds, my_errors)
        with lock:
            latencies.extend(mine)
            sheds.extend(my_sheds)
            errors.extend(my_errors)

    n = int(rate_rps * duration_s)
    interval = 1.0 / rate_rps
    threads = []
    t0 = time.perf_counter()
    for i in range(n):
        target = t0 + i * interval
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        t = threading.Thread(target=fire, args=(rng.choice(grid),),
                             daemon=True)
        t.start()
        threads.append(t)
    for t in threads:
        t.join(timeout=60.0)
    elapsed = time.perf_counter() - t0
    done = len(latencies)
    return {
        "offered_rps": rate_rps,
        "requests": n,
        "completed": done,
        "shed": len(sheds),
        "errors": len(errors),
        "elapsed_s": round(elapsed, 3),
        "achieved_rps": round(done / elapsed, 1) if elapsed else None,
        "latency_ms": _percentiles(latencies),
    }


def test_cluster_load():
    grid = [(n, lv, wd) for n in GRID_WORKLOADS for lv in GRID_LEVELS
            for wd in GRID_WIDTHS]
    with tempfile.TemporaryDirectory() as tmp:
        with ThreadCluster(n=3, store_root=Path(tmp),
                           max_pending=256) as tc:
            httpd, router, url = serve_router_background(
                tc.urls, timeout=60.0)
            try:
                # pre-warm every key onto its home shard: the load test
                # then measures the service path, not compilation
                warm = ServiceClient(url, timeout=120.0, retry=None)
                for n, lv, wd in grid:
                    warm.run(n, level=lv, width=wd, timeout=60.0)

                closed = [_closed_loop(url, grid, k,
                                       CLOSED_REQUESTS_PER_WORKER)
                          for k in CLOSED_CONCURRENCY]
                opened = [_open_loop(url, grid, r, OPEN_DURATION_S)
                          for r in OPEN_RATES]
                counters = router.snapshot()
            finally:
                httpd.shutdown()

    out = default_cache_path().parent / "BENCH_load.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps({
        "cluster": {"nodes": 3, "router": True,
                    "grid_configs": len(grid), "prewarmed": True},
        "closed_loop": closed,
        "open_loop": opened,
        "router": counters,
    }, indent=2) + "\n")

    print()
    for row in closed:
        lat = row["latency_ms"]
        print(f"closed k={row['workers']:<3} {row['throughput_rps']:>7} rps  "
              f"p50={lat['p50']}ms p95={lat['p95']}ms p99={lat['p99']}ms  "
              f"shed={row['shed']}")
    for row in opened:
        lat = row["latency_ms"]
        print(f"open  λ={row['offered_rps']:<5} "
              f"{row['achieved_rps']:>7} rps  "
              f"p50={lat['p50']}ms p95={lat['p95']}ms p99={lat['p99']}ms  "
              f"shed={row['shed']}")
    print(f"-> {out}")

    # every request is accounted for: completed + shed + errors == sent
    for row in closed + opened:
        assert row["completed"] + row["shed"] + row["errors"] \
            == row["requests"], row
        assert row["errors"] == 0, row
    # pre-warmed keys through a healthy fleet: nothing may be unroutable
    assert counters["unroutable"] == 0
    # the ladder must reach a real service ceiling (all rungs GIL-share
    # one process here, so the curve is flat-ish — but never collapsed)
    peak = max(row["throughput_rps"] for row in closed)
    assert peak >= 50.0, f"cluster throughput collapsed: {peak} rps"
    assert all(row["latency_ms"]["p50"] is not None for row in closed)
