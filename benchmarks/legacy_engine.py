"""The seed sweep engine, preserved as a benchmark baseline.

``bench_sweep_perf`` measures the fast sweep engine against what the
repository did before it existed.  Two pieces are copied from the seed
revision rather than re-derived, so the baseline stays honest:

* :func:`legacy_run_compiled` — the original interpreter: dict register
  banks and per-instruction attribute chasing over
  ``CompiledProgram.blocks`` (the structured :class:`CompiledInstr` view,
  which the executor still builds).
* :func:`legacy_run_config` — the original per-configuration path: a
  full ``compile_kernel`` from source for every (workload, level, width)
  cell, fresh inputs per cell, and a private copy of every input array.

Both produce results identical to the current engine (the benchmark
asserts this), they just spend more time doing it.
"""

from __future__ import annotations

import numpy as np

from repro.frontend.ast import Ty
from repro.harness import CompiledKernel, compile_kernel
from repro.machine import MachineConfig
from repro.pipeline import Level
from repro.regalloc import measure_register_usage
from repro.sim import Memory, SimMemoryError
from repro.sim.executor import (
    C_ALU,
    C_BRANCH,
    C_HALT,
    C_JUMP,
    C_LOAD,
    C_STORE,
    CONST,
    CompiledProgram,
)
from repro.sim.simulator import RunResult, SimulationError
from repro.workloads import Workload, check_run


def legacy_run_compiled(
    prog: CompiledProgram,
    memory: Memory,
    iregs: dict[int, int],
    fregs: dict[int, float],
    max_cycles: int = 200_000_000,
) -> RunResult:
    """The seed revision's interpreter loop, verbatim (minus tracing)."""
    machine = prog.machine
    width = machine.issue_width if machine.issue_width > 0 else 1 << 30
    slot_limits = machine.slot_limits

    mem = memory._words
    ivals: dict[int, int] = dict(iregs)
    fvals: dict[int, float] = dict(fregs)
    iready: dict[int, int] = {}
    fready: dict[int, int] = {}
    banks_vals = (ivals, fvals)
    banks_ready = (iready, fready)

    blocks = prog.blocks
    tindex = prog.target_index

    cycle = 0
    n_instr = 0
    last_issue = -1
    bi = 0
    ii = 0
    nblocks = len(blocks)

    while bi < nblocks and not blocks[bi].code:
        nxt = blocks[bi].next_index
        if nxt is None:
            return RunResult(0, 0, ivals, fvals, memory, {})
        bi = nxt

    running = True
    while running:
        if cycle > max_cycles:
            raise SimulationError(
                f"exceeded {max_cycles} cycles in {prog.func.name}"
            )
        issued = 0
        slot_used: dict = {}
        while True:
            code = blocks[bi].code
            if ii >= len(code):
                nxt = blocks[bi].next_index
                if nxt is None:
                    running = False
                    break
                bi = nxt
                ii = 0
                continue
            if issued >= width:
                break
            ci = code[ii]
            cat = ci.cat

            need = cycle
            for bank, key in ci.srcs:
                if bank == CONST:
                    continue
                t = banks_ready[bank].get(key, 0)
                if t > need:
                    need = t
            d = ci.dest
            if d is not None:
                prev = banks_ready[d[0]].get(d[1], 0)
                t = prev - ci.lat + 1
                if t > need:
                    need = t
            if need > cycle:
                if issued == 0:
                    cycle = need
                else:
                    break
            if slot_limits:
                k = ci.kind
                lim = slot_limits.get(k)
                if lim is not None:
                    used = slot_used.get(k, 0)
                    if used >= lim:
                        break
                    slot_used[k] = used + 1

            if cat == C_ALU:
                vals = [
                    key if bank == CONST else banks_vals[bank][key]
                    for bank, key in ci.srcs
                ]
                try:
                    res = ci.fn(*vals)
                except ZeroDivisionError:
                    raise SimulationError(
                        f"division by zero: {ci.instr!r}") from None
                banks_vals[d[0]][d[1]] = res
                banks_ready[d[0]][d[1]] = cycle + ci.lat
            elif cat == C_LOAD:
                b0, k0 = ci.srcs[0]
                b1, k1 = ci.srcs[1]
                addr = (k0 if b0 == CONST else ivals[k0]) + (
                    k1 if b1 == CONST else ivals[k1]
                )
                try:
                    banks_vals[d[0]][d[1]] = mem[addr >> 2]
                except KeyError:
                    raise SimMemoryError(
                        f"load from uninitialized address {addr:#x}"
                    ) from None
                banks_ready[d[0]][d[1]] = cycle + ci.lat
            elif cat == C_STORE:
                b0, k0 = ci.srcs[0]
                b1, k1 = ci.srcs[1]
                bv, kv = ci.srcs[2]
                addr = (k0 if b0 == CONST else ivals[k0]) + (
                    k1 if b1 == CONST else ivals[k1]
                )
                mem[addr >> 2] = kv if bv == CONST else banks_vals[bv][kv]
            elif cat == C_BRANCH:
                vals = [
                    key if bank == CONST else banks_vals[bank][key]
                    for bank, key in ci.srcs
                ]
                n_instr += 1
                issued += 1
                last_issue = cycle
                if ci.fn(*vals):
                    bi = tindex[ci.target]
                    ii = 0
                else:
                    ii += 1
                break
            elif cat == C_HALT:
                n_instr += 1
                issued += 1
                last_issue = cycle
                running = False
                break
            elif cat == C_JUMP:
                n_instr += 1
                issued += 1
                last_issue = cycle
                bi = tindex[ci.target]
                ii = 0
                break

            n_instr += 1
            issued += 1
            last_issue = cycle
            ii += 1

        cycle += 1

    return RunResult(last_issue + 1, n_instr, ivals, fvals, memory, {})


def legacy_run_kernel(ck: CompiledKernel, arrays: dict, scalars: dict):
    """``run_compiled_kernel`` against the legacy interpreter, with a
    fresh (unmemoized) ``CompiledProgram`` per call as the seed did."""
    kernel = ck.lowered.kernel
    mem = Memory()
    for name, decl in kernel.arrays.items():
        mem.bind_array(name, np.asarray(arrays[name]))
    iregs: dict[int, int] = {}
    fregs: dict[int, float] = {}
    for name, reg in ck.lowered.scalar_regs.items():
        ty = kernel.scalars.get(name)
        if ty is None:
            continue
        val = scalars.get(name, 0)
        if ty is Ty.FP:
            fregs[reg.id] = float(val)
        else:
            iregs[reg.id] = int(val)
    prog = CompiledProgram(ck.func, ck.machine, mem.symbols)
    res = legacy_run_compiled(prog, mem, iregs, fregs)
    out_arrays = {
        name: mem.read_array(
            name, decl.dims, np.float64 if decl.ty is Ty.FP else np.int64
        )
        for name, decl in kernel.arrays.items()
    }
    out_scalars: dict[str, float | int] = {}
    for name in kernel.outputs:
        reg = ck.lowered.scalar_regs[name]
        bank = res.fregs if reg.is_fp else res.iregs
        out_scalars[name] = bank[reg.id] if reg.id in bank else scalars.get(name, 0)
    return res, out_arrays, out_scalars


def legacy_run_config(
    w: Workload, level: Level, machine: MachineConfig, seed: int = 0,
    check: bool = True,
) -> tuple:
    """The seed's per-configuration path: everything from scratch."""
    arrays, scalars = w.make_inputs(seed)
    ck = compile_kernel(w.build(), level, machine)
    res, out_arrays, out_scalars = legacy_run_kernel(
        ck, {k: v.copy() for k, v in arrays.items()}, scalars
    )
    if check:
        check_run(w, out_arrays, out_scalars, arrays, scalars)
    usage = measure_register_usage(ck.func, ck.lowered.live_out_exit)
    return (w.name, int(level), machine.issue_width, res.cycles,
            res.instructions, ck.inner_makespan, usage.int_regs,
            usage.fp_regs)
