"""Ablation: tree-height-reduction latency model.

The paper's THR implementation "assumes all operations have the same
latency which ... limits its effectiveness".  Our default is
latency-aware (it reproduces Figure 7's 13 cycles); the unit-latency mode
reproduces the paper's own limitation."""

from conftest import emit
from repro.ir import Function, parse_instr
from repro.harness import compile_kernel, run_compiled_kernel
from repro.machine import issue8, unlimited
from repro.pipeline import Level
from repro.schedule.listsched import list_schedule
from repro.transforms.treeheight import reduce_tree_height
from repro.workloads import get_workload


def fig7_makespan(unit_latency):
    f = Function("thr")
    blk = f.add_block("entry")
    for text in [
        "r1f = r10f + r11f", "r2f = r1f * r9f", "r3f = r2f * r12f",
        "r4f = r3f * r13f", "r5f = r4f / r14f",
    ]:
        blk.append(parse_instr(text))
    f.reindex_regs()
    reduce_tree_height(f, blk.instrs, unlimited(), unit_latency=unit_latency)
    return list_schedule(blk.instrs, unlimited()).makespan


def corpus_cycles(name, unit_latency):
    w = get_workload(name)
    arrays, scalars = w.make_inputs(0)
    ck = compile_kernel(w.build(), Level.LEV3, issue8(),
                        thr_unit_latency=unit_latency)
    out = run_compiled_kernel(
        ck, arrays={k: v.copy() for k, v in arrays.items()}, scalars=scalars
    )
    return out.cycles


def test_thr_latency_model(benchmark, figures):
    aware = fig7_makespan(False)
    unit = fig7_makespan(True)
    assert aware == 13
    assert unit >= aware  # the paper's own model can only be worse

    rows = ["Ablation: THR latency model",
            "=" * 28,
            f"Figure 7 expression: latency-aware {aware}, unit-latency {unit}"]
    for name in ("SRS-5", "tomcatv-1", "NAS-1"):
        a = corpus_cycles(name, False)
        u = corpus_cycles(name, True)
        rows.append(f"{name}: latency-aware {a}, unit-latency {u}")
        assert u >= a * 0.95  # no systematic advantage for the unit model

    benchmark(lambda: fig7_makespan(False))
    emit("ablation_thr", "\n".join(rows))
