"""Ablation: issue-slot restriction.

The paper's processor places "no limitation on the combination of
instructions that can be issued in the same cycle" except one branch.
Restricting FP slots (a realistic constraint for 1992 hardware) should
slow FP-heavy DOALL loops and barely touch integer-dominated ones."""

from conftest import emit
from repro.experiments.sweep import run_config
from repro.ir.instructions import Kind
from repro.machine import MachineConfig
from repro.pipeline import Level
from repro.workloads import get_workload

FP_LIMITED = MachineConfig(
    issue_width=8,
    slot_limits={Kind.FP_ALU: 1, Kind.FP_MUL: 1, Kind.FP_DIV: 1},
)
OPEN = MachineConfig(issue_width=8)


def test_slot_restriction(benchmark, figures):
    rows = ["Ablation: FP issue-slot restriction (Lev3, issue-8)",
            "=" * 52,
            f"{'loop':<12}{'open':>8}{'fp-limited':>12}{'ratio':>8}"]
    ratios = {}
    for name in ("NAS-1", "SRS-5", "add", "tomcatv-1"):
        w = get_workload(name)
        open_c = run_config(w, Level.LEV3, OPEN).cycles
        lim_c = run_config(w, Level.LEV3, FP_LIMITED).cycles
        ratios[name] = lim_c / open_c
        rows.append(f"{name:<12}{open_c:>8}{lim_c:>12}{ratios[name]:>8.2f}")
        assert lim_c >= open_c
    # FP-dense bodies suffer visibly
    assert max(ratios.values()) > 1.2

    w = get_workload("NAS-1")
    benchmark(lambda: run_config(w, Level.LEV3, FP_LIMITED).cycles)
    emit("ablation_slots", "\n".join(rows))
