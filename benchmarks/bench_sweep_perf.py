"""Wall-clock benchmark: fast sweep engine vs. the seed engine.

Runs a fixed small grid twice — once through the seed revision's path
(full recompilation per cell, dict-bank interpreter; see
``legacy_engine``) and once through the current engine (width-sharded
compilation reuse, flat-bank interpreter) — asserts the results are
identical, and records the wall-clock comparison in
``results/BENCH_sweep.json``.

Both runs are serial single-process: the speedup shown is the
algorithmic one (compilation reuse + interpreter), independent of
``--jobs`` parallelism.
"""

import json
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

from legacy_engine import legacy_run_config
from repro.experiments.sweep import default_cache_path, run_sweep
from repro.machine import MachineConfig
from repro.pipeline import Level
from repro.service.store import ArtifactStore
from repro.workloads import get_workload

#: small but representative: FP DOALL, reductions, a search loop with
#: side exits, and two simulation-heavy nests (NAS-5, tomcatv-1)
GRID_WORKLOADS = ("add", "dotprod", "sum", "maxval", "NAS-5", "tomcatv-1")
GRID_LEVELS = tuple(Level)
GRID_WIDTHS = (1, 2, 4, 8)


def _update_bench(section: dict) -> Path:
    """Merge one bench section into results/BENCH_sweep.json (the two
    tests here each own a disjoint set of top-level keys)."""
    out = default_cache_path().parent / "BENCH_sweep.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    try:
        payload = json.loads(out.read_text())
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload.update(section)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def _grid_workloads():
    names = []
    for n in GRID_WORKLOADS:
        try:
            get_workload(n)
            names.append(n)
        except KeyError:
            continue  # keep the bench robust to corpus renames
    return [get_workload(n) for n in names]


def test_sweep_engine_speedup():
    wls = _grid_workloads()
    assert len(wls) >= 3

    t0 = time.perf_counter()
    old = {}
    for w in wls:
        for level in GRID_LEVELS:
            for width in GRID_WIDTHS:
                r = legacy_run_config(w, level, MachineConfig(issue_width=width))
                old[(w.name, int(level), width)] = r
    t_old = time.perf_counter() - t0

    t0 = time.perf_counter()
    new = run_sweep(wls, GRID_LEVELS, GRID_WIDTHS)
    t_new = time.perf_counter() - t0

    # same grid, identical numbers
    assert set(new.results.keys()) == set(old.keys())
    for k, r in new.results.items():
        assert old[k] == (r.workload, r.level, r.width, r.cycles,
                          r.instructions, r.inner_makespan, r.int_regs,
                          r.fp_regs), k

    speedup = t_old / t_new
    # per-pass compile-time attribution over the grid (the pass manager
    # records wall time for every pass execution) — tracked so a pass
    # that regresses in cost shows up in the bench trajectory
    pass_seconds = {
        name: round(s, 4)
        for name, s in sorted(new.pass_seconds().items(),
                              key=lambda kv: kv[1], reverse=True)
    }
    out = _update_bench({
        "grid": {
            "workloads": [w.name for w in wls],
            "levels": [int(lv) for lv in GRID_LEVELS],
            "widths": list(GRID_WIDTHS),
            "configs": len(old),
        },
        "old_engine_s": round(t_old, 3),
        "new_engine_s": round(t_new, 3),
        "speedup": round(speedup, 2),
        "identical_results": True,
        "pass_seconds": pass_seconds,
    })
    print(f"\nold engine: {t_old:.2f}s  new engine: {t_new:.2f}s  "
          f"speedup: {speedup:.2f}x  ({len(old)} configs) -> {out}")

    assert speedup >= 2.0, f"sweep engine speedup regressed: {speedup:.2f}x"


def test_warm_store_speedup():
    """Cold ``repro sweep --store DIR`` vs. a warm rerun against the same
    store: the warm sweep reloads every configuration from the
    content-addressed artifact store instead of compiling, and must be
    at least 5x faster with byte-identical results."""
    wls = _grid_workloads()
    n = len(wls) * len(GRID_LEVELS) * len(GRID_WIDTHS)

    def dump(data) -> str:
        return json.dumps([asdict(data.results[k])
                           for k in sorted(data.results)])

    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(Path(tmp) / "store")

        t0 = time.perf_counter()
        cold = run_sweep(wls, GRID_LEVELS, GRID_WIDTHS, store=store)
        t_cold = time.perf_counter() - t0
        assert cold.computed == n and cold.store_hits == 0

        t0 = time.perf_counter()
        warm = run_sweep(wls, GRID_LEVELS, GRID_WIDTHS, store=store)
        t_warm = time.perf_counter() - t0
        assert warm.computed == 0 and warm.store_hits == n

        identical = dump(warm) == dump(cold)
        assert identical, "warm sweep results differ from cold sweep"
        speedup = t_cold / t_warm
        store_bytes = store.total_bytes()

    out = _update_bench({
        "store": {
            "configs": n,
            "cold_s": round(t_cold, 3),
            "warm_s": round(t_warm, 4),
            "speedup": round(speedup, 1),
            "byte_identical": identical,
            "store_bytes": store_bytes,
        },
    })
    print(f"\ncold sweep: {t_cold:.2f}s  warm (store): {t_warm:.3f}s  "
          f"speedup: {speedup:.1f}x  ({n} configs) -> {out}")

    assert speedup >= 5.0, f"warm-store speedup too low: {speedup:.1f}x"


def test_engine_sweep_comparison():
    """Cold sweep under the reference interpreter vs. the block-compiled
    trace/replay engine: identical grids, byte-identical results, and
    the wall-clock ratio recorded (simulation is one phase of a sweep —
    compilation and scheduling are shared — so this end-to-end ratio is
    far smaller than the engine-level one in BENCH_sim.json)."""
    wls = _grid_workloads()

    def dump(data) -> str:
        # wall-clock phase costs differ between engines by definition;
        # everything else must be byte-identical
        rows = []
        for k in sorted(data.results):
            d = asdict(data.results[k])
            rows.append({f: v for f, v in d.items()
                         if not f.startswith("t_")})
        return json.dumps(rows)

    # a single ~1.7s sweep has enough wall-clock jitter to swamp the
    # simulation-phase delta; time best-of-3 per engine, alternating
    t_interp = t_compiled = float("inf")
    t_sim_interp = t_sim_compiled = float("inf")
    interp = compiled = None
    for _ in range(3):
        t0 = time.perf_counter()
        interp = run_sweep(wls, GRID_LEVELS, GRID_WIDTHS, engine="interp")
        t_interp = min(t_interp, time.perf_counter() - t0)
        t_sim_interp = min(t_sim_interp, sum(
            r.t_simulate for r in interp.results.values()))

        t0 = time.perf_counter()
        compiled = run_sweep(wls, GRID_LEVELS, GRID_WIDTHS, engine="compiled")
        t_compiled = min(t_compiled, time.perf_counter() - t0)
        t_sim_compiled = min(t_sim_compiled, sum(
            r.t_simulate for r in compiled.results.values()))

    identical = dump(interp) == dump(compiled)
    assert identical, "engines disagree on sweep results"
    speedup = t_interp / t_compiled
    out = _update_bench({
        "engine": {
            "configs": len(interp.results),
            "interp_s": round(t_interp, 3),
            "compiled_s": round(t_compiled, 3),
            "speedup": round(speedup, 2),
            "t_simulate_interp_s": round(t_sim_interp, 3),
            "t_simulate_compiled_s": round(t_sim_compiled, 3),
            "t_simulate_speedup": round(t_sim_interp / t_sim_compiled, 2),
            "byte_identical": True,
        },
    })
    print(f"\nsweep engines: interp {t_interp:.2f}s  compiled {t_compiled:.2f}s "
          f"({speedup:.2f}x end-to-end, "
          f"{t_sim_interp / t_sim_compiled:.2f}x on simulation) -> {out}")
    # the end-to-end ratio is mostly compile+schedule noise on this small
    # grid; the phase the engine owns must actually get faster
    assert t_sim_interp / t_sim_compiled >= 1.1, (
        f"compiled engine did not speed up simulation: "
        f"{t_sim_interp / t_sim_compiled:.2f}x"
    )
