"""Shared fixtures for the figure-regeneration benchmarks.

``sweep_data`` runs (or loads from ``results/sweep.json``) the full
40-loop x 6-level x 4-width evaluation grid once per session; the
individual benchmarks time representative pipeline configurations and
print/write the regenerated tables and figures.
"""

import pytest

from repro.experiments.sweep import sweep_cached
from repro.experiments.run_all import figure_texts


@pytest.fixture(scope="session")
def sweep_data():
    return sweep_cached()


@pytest.fixture(scope="session")
def figures(sweep_data):
    return figure_texts(sweep_data)


def emit(name: str, text: str) -> None:
    """Print a regenerated artifact and persist it under results/."""
    from repro.experiments.sweep import default_cache_path

    outdir = default_cache_path().parent
    outdir.mkdir(parents=True, exist_ok=True)
    (outdir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
