"""Figure 10: speedup distribution on an issue-8 processor.

Shape: the need for higher transformation levels grows with issue rate —
the Lev3/Lev4 gains over Lev2 are larger at issue-8 than at issue-2, and a
substantial group of loops reaches the top bins only with Lev4."""

from conftest import emit
from repro.experiments.histograms import speedup_distribution
from repro.experiments.sweep import run_config
from repro.machine import issue8
from repro.pipeline import Level
from repro.workloads import get_workload


def test_fig10(benchmark, sweep_data, figures):
    d8 = speedup_distribution(sweep_data, 8)
    d2 = speedup_distribution(sweep_data, 2)
    gain8 = d8.average("Lev4") - d8.average("Lev2")
    gain2 = d2.average("Lev4") - d2.average("Lev2")
    assert gain8 > gain2  # wider issue demands more transformation
    assert d8.average("Lev4") > d8.average("Lev3") > d8.average("Lev2")
    # loops in the top (6.00+) bins appear at Lev4
    top = sum(d8.series["Lev4"][-3:])
    assert top >= 8

    w = get_workload("dotprod")
    benchmark(lambda: run_config(w, Level.LEV4, issue8()).cycles)
    emit("fig10_speedup_issue8", figures["fig10_speedup_issue8"])
