"""Figure 8: speedup distribution on an issue-2 processor.

Shape assertions (paper section 3.2): with conventional optimization only,
few loops speed up much; renaming gives the big jump; for issue-2,
unrolling + renaming already approach the machine's limits (higher levels
add little).
"""

from conftest import emit
from repro.experiments.histograms import speedup_distribution
from repro.experiments.sweep import run_config
from repro.machine import issue2
from repro.pipeline import Level
from repro.workloads import get_workload


def test_fig08(benchmark, sweep_data, figures):
    dist = speedup_distribution(sweep_data, 2)
    conv = dist.average("Conv")
    lev2 = dist.average("Lev2")
    lev4 = dist.average("Lev4")
    assert lev2 > conv * 1.3
    # issue-2: Lev2 is essentially sufficient (paper's claim)
    assert abs(lev4 - lev2) < 0.5 * lev2

    w = get_workload("APS-3")
    benchmark(lambda: run_config(w, Level.LEV2, issue2()).cycles)
    emit("fig08_speedup_issue2", figures["fig08_speedup_issue2"])
