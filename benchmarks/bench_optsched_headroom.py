"""Heuristic-vs-optimal scheduling headroom over the full corpus.

Runs :mod:`repro.experiments.headroom` twice against one solver store —
a cold pass that computes every exact-scheduling proof and a warm pass
that must resolve every solver instance from the content-addressed
cache — and asserts the backend's contract:

* the exact schedule is never longer than the heuristic one, on any of
  the 40 loops, and every loop carries an honest proof status
  (``optimal`` or ``timeout-incumbent``, never silent failure);
* both backends compute bit-identical end states on real data;
* the warm pass hits the solver cache (every modulo search cached, at
  least one block cache hit per loop) and spends a small fraction of
  the cold pass's solver time.

Writes ``results/BENCH_optsched.json`` (per-loop makespans, II deltas,
proof statuses, solver wall time, warm-store speedup) and regenerates
``results/headroom.txt``.
"""

import json

from conftest import emit
from repro.experiments.headroom import format_report, run_headroom
from repro.experiments.sweep import default_cache_path
from repro.service.store import ArtifactStore


def test_optsched_headroom(benchmark, tmp_path):
    store = ArtifactStore(tmp_path / "solver-store")

    # exactly one timed call: a second would be store-warm, not cold
    cold = benchmark.pedantic(
        lambda: run_headroom(store=store), rounds=1, iterations=1
    )
    warm = run_headroom(store=store)
    assert len(cold.rows) == 40 and len(warm.rows) == 40

    for r in cold.rows:
        # never worse than the heuristic, and honestly labeled
        assert r.optimal_makespan <= r.heuristic_makespan, r.name
        assert r.status in ("optimal", "timeout-incumbent"), (r.name, r.status)
        # the proof sandwich: lb <= optimal <= heuristic
        assert r.proved_lb <= r.optimal_makespan, r.name
        # exact modulo II sits between the bound and the acyclic schedule
        assert r.mii <= r.exact_ii, r.name
        # both backends compute the same answers
        assert r.states_match, r.name

    # warm pass: every modulo search answered from the store, every loop
    # hits the block-solver cache at least once (trivial single-
    # instruction blocks legitimately bypass it), and cached results are
    # byte-equivalent to recomputing
    for rc, rw in zip(cold.rows, warm.rows):
        assert rw.modulo_cached, rw.name
        assert rw.cached_blocks >= 1, rw.name
        assert rw.cached_blocks >= rc.cached_blocks, rw.name
        assert (rw.optimal_makespan, rw.status, rw.exact_ii, rw.solver_nodes) \
            == (rc.optimal_makespan, rc.status, rc.exact_ii, rc.solver_nodes)

    def solver_time(data):
        return sum(r.solver_seconds + r.modulo_seconds for r in data.rows)

    t_cold, t_warm = solver_time(cold), solver_time(warm)
    assert t_warm < t_cold / 2, (t_cold, t_warm)

    emit("headroom", format_report(cold))

    payload = {
        "level": cold.level.label,
        "width": cold.width,
        "budget": cold.budget,
        "modulo_budget": cold.modulo_budget,
        "loops": {r.name: r.as_payload() for r in cold.rows},
        "status_counts": cold.status_counts(),
        "modulo_status_counts": cold.modulo_status_counts(),
        "proved_optimal": cold.status_counts().get("optimal", 0),
        "improved_blocks": sum(1 for r in cold.rows if r.block_headroom > 0),
        "pipelining_wins": sum(
            1 for r in cold.rows if r.exact_ii < r.optimal_makespan
        ),
        "solver_seconds_cold": t_cold,
        "solver_seconds_warm": t_warm,
        "warm_speedup": t_cold / t_warm if t_warm else float("inf"),
    }
    out = default_cache_path().parent / "BENCH_optsched.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
