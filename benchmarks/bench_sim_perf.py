"""Wall-clock benchmark: block-compiled trace/replay engine vs. the
reference interpreter.

Two measurements, both gated on byte-identical results, recorded in
``results/BENCH_sim.json``:

* **corpus cells** — every (workload, level) cell of a representative
  grid simulated at four issue widths, interpreter (four full
  simulations) vs. the batched engine (execute once through generated
  block code, replay timing per width).  Corpus inputs are small
  (hundred-ish iterations), so one-time plan compilation is a visible
  fraction of the cell and the honest speedup is modest.
* **large traces** — the same comparison on scaled kernels (16384-long
  vectors) where the dynamic instruction count amortizes compilation:
  this is the engine's asymptotic regime (generated straight-line code
  plus O(1) steady-state timing replay), and where the >=10x target
  holds.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.experiments.sweep import default_cache_path
from repro.frontend.ast import ArrayDecl, Kernel, Ty, aref, assign, do, var
from repro.harness import (
    BatchedRunner,
    ilp_transform,
    lower_conv,
    run_compiled_kernel,
    schedule_kernel,
)
from repro.machine import MachineConfig
from repro.pipeline import Level
from repro.workloads import get_workload, ints

WIDTHS = (1, 2, 4, 8)
CELL_WORKLOADS = ("add", "dotprod", "sum", "maxval", "NAS-5", "tomcatv-1")
CELL_LEVELS = (Level.CONV, Level.LEV2, Level.LEV4)

_F = Ty.FP


def _update_bench(section: dict) -> Path:
    out = default_cache_path().parent / "BENCH_sim.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    try:
        payload = json.loads(out.read_text())
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload.update(section)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out


def _assert_identical(a, b, ctx):
    assert a.cycles == b.cycles, ctx
    assert a.instructions == b.instructions, ctx
    assert set(a.arrays) == set(b.arrays), ctx
    for name in a.arrays:
        assert np.array_equal(np.asarray(a.arrays[name]),
                              np.asarray(b.arrays[name])), f"{ctx}: {name}"
    assert a.scalars == b.scalars, ctx


def _time_cell(tk, arrays, scalars, repeat=3):
    """One cell, four widths: (interp s, batched cold s, batched warm s)
    with results asserted identical.

    The first batched iteration pays plan compilation (codegen +
    ``compile()``) — that is the *cold* number, what a fresh sweep cell
    sees.  Later iterations hit the memoized plan/spec caches — the
    *warm* number, the engine's steady-state cost (repeat runs, figure
    refreshes, the service's duplicate-request path).
    """
    cks = [schedule_kernel(tk.clone(), MachineConfig(issue_width=w))
           for w in WIDTHS]
    t_interp = t_warm = float("inf")
    t_cold = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        base = [run_compiled_kernel(ck, arrays=arrays, scalars=scalars,
                                    engine="interp") for ck in cks]
        t_interp = min(t_interp, time.perf_counter() - t0)
        t0 = time.perf_counter()
        runner = BatchedRunner(cks[0], arrays, scalars)
        got = [runner.run(ck) for ck in cks]
        dt = time.perf_counter() - t0
        if t_cold is None:
            t_cold = dt
        t_warm = min(t_warm, dt)
    for ck, b, g in zip(cks, base, got):
        _assert_identical(b, g, f"{ck.lowered.func.name}/w{ck.machine.issue_width}")
    return t_interp, t_cold, t_warm


def test_engine_speedup_corpus_cells():
    cells = {}
    tot_interp = tot_cold = tot_warm = 0.0
    for name in CELL_WORKLOADS:
        w = get_workload(name)
        arrays, scalars = w.make_inputs(0)
        conv = lower_conv(w.build())
        for level in CELL_LEVELS:
            tk = ilp_transform(conv.clone(), level, MachineConfig(issue_width=1))
            t_interp, t_cold, t_warm = _time_cell(tk, arrays, scalars)
            tot_interp += t_interp
            tot_cold += t_cold
            tot_warm += t_warm
            cells[f"{name}/{level.label}"] = {
                "interp_ms": round(t_interp * 1e3, 3),
                "batched_cold_ms": round(t_cold * 1e3, 3),
                "batched_warm_ms": round(t_warm * 1e3, 3),
                "cold_speedup": round(t_interp / t_cold, 2),
                "warm_speedup": round(t_interp / t_warm, 2),
            }
    cold_speedup = tot_interp / tot_cold
    warm_speedup = tot_interp / tot_warm
    out = _update_bench({
        "corpus_cells": {
            "widths": list(WIDTHS),
            "levels": [lv.label for lv in CELL_LEVELS],
            "interp_s": round(tot_interp, 3),
            "batched_cold_s": round(tot_cold, 3),
            "batched_warm_s": round(tot_warm, 3),
            "cold_speedup": round(cold_speedup, 2),
            "warm_speedup": round(warm_speedup, 2),
            "identical_results": True,
            "cells": cells,
        },
    })
    print(f"\ncorpus cells: interp {tot_interp*1e3:.1f}ms  "
          f"batched cold {tot_cold*1e3:.1f}ms / warm {tot_warm*1e3:.1f}ms  "
          f"speedup {cold_speedup:.2f}x cold / {warm_speedup:.2f}x warm -> {out}")
    assert cold_speedup >= 1.5, (
        f"corpus-cell cold engine speedup too low: {cold_speedup:.2f}x"
    )


def _scaled_kernels(n: int):
    """Corpus-shaped kernels with ``n``-long vectors: the trip count is
    the only thing scaled, so the code the engine sees is identical in
    shape to the Table 2 loops."""
    i = var("i")

    def build_daxpy():
        return Kernel(
            "daxpy_big",
            arrays={"X": ArrayDecl(_F, (n,)), "Y": ArrayDecl(_F, (n,))},
            scalars={"a": _F},
            body=[do("i", 1, n, [
                assign(aref("Y", i), aref("Y", i) + var("a") * aref("X", i)),
            ], kind="doall")],
        )

    def build_dot():
        return Kernel(
            "dot_big",
            arrays={"A": ArrayDecl(_F, (n,)), "B": ArrayDecl(_F, (n,))},
            scalars={"s": _F},
            outputs=["s"],
            body=[do("i", 1, n, [
                assign(var("s"), var("s") + aref("A", i) * aref("B", i)),
            ], kind="serial")],
        )

    rng = np.random.default_rng(0)
    return [
        (build_daxpy(),
         {"X": ints(rng, n), "Y": ints(rng, n)}, {"a": 3.0}),
        (build_dot(),
         {"A": ints(rng, n), "B": ints(rng, n)}, {"s": 0.0}),
    ]


def test_engine_speedup_large_traces():
    n = 16384
    kernels = {}
    tot_interp = tot_batch = 0.0
    for kernel, arrays, scalars in _scaled_kernels(n):
        conv = lower_conv(kernel)
        tk = ilp_transform(conv.clone(), Level.LEV4, MachineConfig(issue_width=1))
        t_interp, t_cold, _ = _time_cell(tk, arrays, scalars, repeat=2)
        tot_interp += t_interp
        tot_batch += t_cold
        kernels[kernel.name] = {
            "interp_ms": round(t_interp * 1e3, 2),
            "batched_cold_ms": round(t_cold * 1e3, 2),
            "speedup": round(t_interp / t_cold, 2),
        }
    speedup = tot_interp / tot_batch
    out = _update_bench({
        "large_traces": {
            "n": n,
            "widths": list(WIDTHS),
            "level": "Lev4",
            "interp_s": round(tot_interp, 3),
            "batched_cold_s": round(tot_batch, 3),
            "speedup": round(speedup, 2),
            "identical_results": True,
            "kernels": kernels,
        },
    })
    print(f"\nlarge traces (n={n}): interp {tot_interp*1e3:.1f}ms  "
          f"batched cold {tot_batch*1e3:.1f}ms  speedup {speedup:.2f}x -> {out}")
    assert speedup >= 10.0, f"asymptotic engine speedup too low: {speedup:.2f}x"
