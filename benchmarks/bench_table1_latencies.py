"""Table 1: instruction latencies — verifies the machine model matches the
paper and times raw simulation throughput on a latency-sensitive kernel."""

import numpy as np

from conftest import emit
from repro.experiments.tables import render_table1
from repro.ir import parse_function
from repro.ir.instructions import Kind
from repro.machine import PAPER_LATENCIES, issue1
from repro.sim import Memory, simulate


def test_table1(benchmark, figures):
    # the model must match Table 1 exactly
    assert PAPER_LATENCIES[Kind.INT_ALU] == 1
    assert PAPER_LATENCIES[Kind.INT_MUL] == 3
    assert PAPER_LATENCIES[Kind.INT_DIV] == 10
    assert PAPER_LATENCIES[Kind.FP_ALU] == 3
    assert PAPER_LATENCIES[Kind.FP_CVT] == 3
    assert PAPER_LATENCIES[Kind.FP_MUL] == 3
    assert PAPER_LATENCIES[Kind.FP_DIV] == 10
    assert PAPER_LATENCIES[Kind.LOAD] == 2
    assert PAPER_LATENCIES[Kind.STORE] == 1
    assert PAPER_LATENCIES[Kind.BRANCH] == 1
    # the Lev5 vector rows mirror their scalar Table-1 counterparts:
    # a lane-parallel op costs what one scalar element costs
    assert PAPER_LATENCIES[Kind.VEC_IALU] == PAPER_LATENCIES[Kind.INT_ALU]
    assert PAPER_LATENCIES[Kind.VEC_IMUL] == PAPER_LATENCIES[Kind.INT_MUL]
    assert PAPER_LATENCIES[Kind.VEC_FALU] == PAPER_LATENCIES[Kind.FP_ALU]
    assert PAPER_LATENCIES[Kind.VEC_FMUL] == PAPER_LATENCIES[Kind.FP_MUL]
    assert PAPER_LATENCIES[Kind.VEC_FDIV] == PAPER_LATENCIES[Kind.FP_DIV]
    assert PAPER_LATENCIES[Kind.VEC_LOAD] == PAPER_LATENCIES[Kind.LOAD]
    assert PAPER_LATENCIES[Kind.VEC_STORE] == PAPER_LATENCIES[Kind.STORE]
    assert PAPER_LATENCIES[Kind.VEC_PACK] == 1

    f = parse_function(
        """
function lat:
entry:
  r1i = 0
L:
  r2f = MEM(A+r1i)
  r3f = r2f * r4f
  r5f = r3f / r6f
  MEM(B+r1i) = r5f
  r1i = r1i + 4
  blt (r1i 512) L
exit:
  halt
"""
    )

    def run():
        mem = Memory()
        mem.bind_array("A", np.ones(128))
        mem.bind_array("B", np.zeros(128))
        return simulate(f, issue1(), mem, fregs={4: 2.0, 6: 4.0}).cycles

    cycles = benchmark(run)
    assert cycles > 128 * 10  # the divide latency dominates at issue-1
    emit("table1_latencies", figures["table1_latencies"])
