"""Ablation: unroll factor (the paper caps at 8x or a body-size limit).

Sweeping 2/4/8/16 on a DOALL loop shows diminishing returns past the
issue width, and code growth without benefit beyond it."""

from conftest import emit
from repro.harness import compile_kernel, run_compiled_kernel
from repro.machine import issue8
from repro.pipeline import Level
from repro.workloads import get_workload


def run_at(w, factor):
    arrays, scalars = w.make_inputs(0)
    ck = compile_kernel(w.build(), Level.LEV2, issue8(), unroll_factor=factor)
    out = run_compiled_kernel(
        ck, arrays={k: v.copy() for k, v in arrays.items()}, scalars=scalars
    )
    return out.cycles, len(ck.sb.body.instrs)


def test_unroll_ablation(benchmark, figures):
    w = get_workload("add")
    rows = ["Ablation: unroll factor ('add', Lev2, issue-8)",
            "=" * 47,
            f"{'factor':<8}{'cycles':>8}{'body instrs':>13}"]
    results = {}
    for factor in (1, 2, 4, 8, 16):
        cycles, body = run_at(w, factor)
        results[factor] = cycles
        rows.append(f"{factor:<8}{cycles:>8}{body:>13}")
    assert results[8] < results[2] < results[1]
    # past the issue width the gains flatten (within 25%)
    assert results[16] > results[8] * 0.75

    benchmark(lambda: run_at(w, 8)[0])
    emit("ablation_unroll", "\n".join(rows))
