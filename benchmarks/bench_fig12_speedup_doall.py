"""Figure 12: speedup distribution of DOALL loops only (issue-8).

Shape: unrolling + renaming expose most of the ILP of DOALL loops;
transformations beyond Lev2 are comparatively unprofitable for them."""

from conftest import emit
from repro.experiments.histograms import doall_filter, speedup_distribution
from repro.experiments.sweep import run_config
from repro.machine import issue8
from repro.pipeline import Level
from repro.workloads import get_workload


def test_fig12(benchmark, sweep_data, figures):
    dist = speedup_distribution(sweep_data, 8, doall_filter(True))
    lev2 = dist.average("Lev2")
    lev4 = dist.average("Lev4")
    assert lev2 > dist.average("Conv") * 2.5  # big Lev2 jump
    # Lev4 adds much less over Lev2 than Lev2 added over Lev1
    assert (lev4 - lev2) < (lev2 - dist.average("Lev1")) * 0.6

    w = get_workload("add")
    benchmark(lambda: run_config(w, Level.LEV2, issue8()).cycles)
    emit("fig12_speedup_doall", figures["fig12_speedup_doall"])
