"""The scalar claims of Sections 3.2 and 4: average speedups per level and
width, the DOALL / non-DOALL split, register growth, and the <128-register
count — printed side by side with the paper's numbers."""

from conftest import emit
from repro.experiments.sweep import run_config
from repro.experiments.tables import compute_headline_claims
from repro.machine import issue8
from repro.pipeline import Level
from repro.workloads import get_workload


def test_headline_claims(benchmark, sweep_data, figures):
    claims = compute_headline_claims(sweep_data)

    # ordering claims that must hold for the reproduction to be credible
    assert claims.avg_speedup[(8, "Lev4")] > claims.avg_speedup[(8, "Lev2")]
    assert claims.avg_speedup[(4, "Lev4")] > claims.avg_speedup[(4, "Lev2")]
    assert claims.avg_speedup[(8, "Lev2")] > claims.avg_speedup[(4, "Lev2")]
    assert claims.avg_speedup_split[(8, "Lev2", True)] > claims.avg_speedup_split[(8, "Lev2", False)]
    assert claims.avg_speedup_split[(8, "Lev4", True)] > claims.avg_speedup_split[(8, "Lev4", False)]
    # both classes improve with the advanced transformations
    assert claims.avg_speedup_split[(8, "Lev4", False)] > claims.avg_speedup_split[(8, "Lev2", False)]
    # register growth is substantial but bounded
    assert 1.5 < claims.reg_growth < 8.0
    assert claims.under_128 >= 37

    w = get_workload("LWS-2")
    benchmark(lambda: run_config(w, Level.LEV4, issue8()).cycles)
    emit("headline_claims", figures["headline_claims"])
