"""The paper's worked examples (Figures 1, 3, 5, 6, 7) as benchmarks: the
cycle counts are asserted exactly; the timed region is the transform +
schedule pipeline that reproduces them."""

from conftest import emit
from repro.analysis.loopvars import CountedLoop
from repro.ir import Reg, RegClass, parse_block, parse_function, Function, parse_instr
from repro.machine import unlimited
from repro.pipeline import Level, apply_ilp_transforms, schedule_function
from repro.schedule.listsched import list_schedule
from repro.transforms.combine import combine_operations
from repro.transforms.treeheight import reduce_tree_height

FIG1 = """
function fig1:
entry:
L1:
  r2f = MEM(A+r1i)
  r3f = MEM(B+r1i)
  r4f = r2f + r3f
  MEM(C+r1i) = r4f
  r1i = r1i + 4
  blt (r1i r5i) L1
exit:
  halt
"""


def fig1_makespan(level):
    f = parse_function(FIG1)
    blk = f.get_block("L1")
    counted = CountedLoop(
        "L1", Reg(1, RegClass.INT), 4, Reg(5, RegClass.INT),
        blk.instrs[5], blk.instrs[4],
    )
    sb, _ = apply_ilp_transforms(f, counted, level, unlimited(), unroll_factor=3)
    scheds = schedule_function(f, unlimited(), sb=sb, doall=True)
    return scheds[sb.header].makespan


def test_figure1_unroll_rename(benchmark):
    assert fig1_makespan(Level.CONV) == 7
    assert fig1_makespan(Level.LEV1) == 19
    makespan = benchmark(lambda: fig1_makespan(Level.LEV2))
    assert makespan == 8
    emit(
        "fig_examples",
        "Worked examples (cycles per unrolled body, paper vs measured)\n"
        "Fig 1: 7 -> 19/3 -> 8/3   reproduced exactly\n"
        "Fig 3: 8 -> 14/3 -> 10/3 (acc only) -> 8/3   reproduced exactly\n"
        "Fig 5: 6 -> 8/3 -> 6/3   reproduced exactly\n"
        "Fig 6: 7 -> 5   reproduced exactly\n"
        "Fig 7: 22 -> 13   reproduced exactly\n"
        "(assertions in tests/integration/test_paper_figures.py)",
    )


def test_figure6_combining(benchmark):
    def run():
        body = parse_block(
            """
            r1i = r1i + 4
            r2f = MEM(r1i+8)
            r3f = r2f - 3.2
            fblt (r3f 10.0) L1
            """
        ).instrs
        combine_operations(body)
        return list_schedule(body, unlimited()).makespan

    assert benchmark(run) == 5


def test_figure7_tree_height(benchmark):
    def run():
        f = Function("thr")
        blk = f.add_block("entry")
        for text in [
            "r1f = r10f + r11f", "r2f = r1f * r9f", "r3f = r2f * r12f",
            "r4f = r3f * r13f", "r5f = r4f / r14f",
        ]:
            blk.append(parse_instr(text))
        f.reindex_regs()
        reduce_tree_height(f, blk.instrs, unlimited())
        return list_schedule(blk.instrs, unlimited()).makespan

    assert benchmark(run) == 13
