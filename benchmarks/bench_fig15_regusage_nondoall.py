"""Figure 15: register usage of non-DOALL loops (issue-8).

Shape: register pressure is lower than for DOALL loops (less overlap
between unrolled bodies), and nearly all stay under 96-128 registers."""

from conftest import emit
from repro.experiments.histograms import doall_filter, register_distribution
from repro.harness import compile_kernel
from repro.machine import issue8
from repro.pipeline import Level
from repro.regalloc import measure_register_usage
from repro.workloads import get_workload


def test_fig15(benchmark, sweep_data, figures):
    non = register_distribution(sweep_data, 8, doall_filter(False))
    doall = register_distribution(sweep_data, 8, doall_filter(True))
    assert non.average("Lev4") <= doall.average("Lev4") * 1.4
    under128 = sum(non.series["Lev4"][:-1])
    assert under128 >= len(non.values["Lev4"]) - 2

    w = get_workload("NAS-5")

    def measure():
        ck = compile_kernel(w.build(), Level.LEV4, issue8())
        return measure_register_usage(ck.func, ck.lowered.live_out_exit).total

    benchmark(measure)
    emit("fig15_regusage_nondoall", figures["fig15_regusage_nondoall"])
