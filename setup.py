"""Shim for environments without the `wheel` package (offline editable
installs fall back to the legacy path: `pip install -e . --no-build-isolation
--no-use-pep517`). Metadata lives in pyproject.toml."""

from setuptools import setup

setup()
