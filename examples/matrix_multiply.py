"""Matrix multiply: accumulator variable expansion in action (paper Fig. 3).

The inner loop of matrix multiplication is a dot-product reduction; its
accumulation chain is the critical path, so unrolling + renaming alone
barely help.  Accumulator expansion splits the accumulator into one
temporary per unrolled iteration and sums them at the loop exit —
reassociating the reduction to run the adds in parallel.

Run:  python examples/matrix_multiply.py
"""

import numpy as np

from repro.frontend import ArrayDecl, Kernel, Ty, aref, assign, do, var
from repro.harness import compile_kernel, run_compiled_kernel
from repro.ir import format_block
from repro.machine import issue1, issue8
from repro.pipeline import Level

M = K = Np = 12  # C[M,N] = A[M,K] @ B[K,N]


def build_kernel() -> Kernel:
    i, j, k = var("i"), var("j"), var("k")
    s = var("s")
    return Kernel(
        "matmul",
        arrays={
            "A": ArrayDecl(Ty.FP, (M, K)),
            "B": ArrayDecl(Ty.FP, (K, Np)),
            "C": ArrayDecl(Ty.FP, (M, Np)),
        },
        scalars={"s": Ty.FP},
        body=[
            do("j", 1, Np, [
                do("i", 1, M, [
                    assign(s, 0.0),
                    # the reduction: KAP would classify this inner loop as
                    # serial (a recurrence on s)
                    do("k", 1, K,
                       [assign(s, s + aref("A", i, k) * aref("B", k, j))],
                       kind="serial"),
                    assign(aref("C", i, j), s),
                ]),
            ]),
        ],
    )


def main() -> None:
    rng = np.random.default_rng(1)
    A = rng.integers(1, 6, (M, K)).astype(float)
    B = rng.integers(1, 6, (K, Np)).astype(float)

    base = run_compiled_kernel(
        compile_kernel(build_kernel(), Level.CONV, issue1()),
        arrays={"A": A, "B": B, "C": np.zeros((M, Np))},
    )
    print(f"baseline (issue-1, Conv): {base.cycles} cycles")

    for level in (Level.CONV, Level.LEV2, Level.LEV4):
        ck = compile_kernel(build_kernel(), level, issue8())
        out = run_compiled_kernel(
            ck, arrays={"A": A.copy(), "B": B.copy(), "C": np.zeros((M, Np))}
        )
        assert np.allclose(out.arrays["C"], A @ B)
        extra = ""
        if ck.report.accumulators:
            extra = f"  <- {ck.report.accumulators} accumulator(s) expanded"
        print(f"{level.label}: {out.cycles:6d} cycles on issue-8 "
              f"(speedup {base.cycles / out.cycles:.2f}){extra}")

    ck = compile_kernel(build_kernel(), Level.LEV4, issue8())
    print("\nLev4 inner loop (note the independent temporary accumulators,")
    print("summed after the loop — the paper's Figure 3d):")
    print(format_block(ck.sb.body))
    assert ck.sb.exit_block is not None
    print(format_block(ck.sb.exit_block))


if __name__ == "__main__":
    main()
