"""Issue-width study: the paper's central experiment on chosen loops.

For a handful of corpus loops, sweep issue rate (1/2/4/8) x transformation
level and print the speedup matrix relative to issue-1 Conv.  This is the
per-loop view of Figures 8-10: increasing execution resources yields
little unless the ILP transformations are applied.

Run:  python examples/issue_width_study.py [workload ...]
"""

import sys

from repro.experiments.sweep import run_config
from repro.machine import MachineConfig
from repro.pipeline import Level
from repro.workloads import all_workloads, get_workload

DEFAULT = ["add", "dotprod", "LWS-1", "NAS-2", "maxval"]


def study(name: str) -> None:
    w = get_workload(name)
    print(f"\n{name} ({w.loop_type}, {w.size_lines} source lines, "
          f"inner nest depth {w.nest})")
    base = run_config(w, Level.CONV, MachineConfig(issue_width=1)).cycles
    header = f"{'':>8}" + "".join(f"{lv.label:>8}" for lv in Level)
    print(header)
    for width in (1, 2, 4, 8):
        cells = []
        for level in Level:
            r = run_config(w, level, MachineConfig(issue_width=width))
            cells.append(f"{base / r.cycles:>8.2f}")
        print(f"issue-{width:<2}" + "".join(cells))


def main() -> None:
    names = sys.argv[1:] or DEFAULT
    known = {w.name for w in all_workloads()}
    for name in names:
        if name not in known:
            print(f"unknown workload {name!r}; available: {sorted(known)}")
            return
        study(name)
    print("\nReading the table: rows = issue rate, columns = transformation "
          "level,\ncells = speedup over the issue-1/Conv baseline "
          "(the paper's metric).")


if __name__ == "__main__":
    main()
