"""Watching the pipeline: issue packets and stalls, before and after.

Collects an execution trace of the dot-product loop at Conv (the
accumulation chain stalls the issue-8 machine) and at Lev4 (accumulator
expansion fills the packets), and renders both as cycle diagrams.

Run:  python examples/pipeline_trace.py
"""

import numpy as np

from repro.frontend import ArrayDecl, Kernel, Ty, aref, assign, do, var
from repro.harness import compile_kernel
from repro.machine import issue8
from repro.pipeline import Level
from repro.sim import Memory, simulate
from repro.sim.trace import render_packets, render_pipeline

N = 32


def build_kernel() -> Kernel:
    i = var("i")
    return Kernel(
        "dot",
        arrays={"A": ArrayDecl(Ty.FP, (N,)), "B": ArrayDecl(Ty.FP, (N,))},
        scalars={"s": Ty.FP},
        outputs=["s"],
        body=[do("i", 1, N,
                 [assign(var("s"), var("s") + aref("A", i) * aref("B", i))],
                 kind="serial")],
    )


def traced_run(level: Level):
    ck = compile_kernel(build_kernel(), level, issue8())
    mem = Memory()
    rng = np.random.default_rng(0)
    A = rng.integers(1, 5, N).astype(float)
    B = rng.integers(1, 5, N).astype(float)
    mem.bind_array("A", A)
    mem.bind_array("B", B)
    trace: list = []
    s_reg = ck.lowered.scalar_regs["s"]
    res = simulate(ck.func, issue8(), mem, fregs={s_reg.id: 0.0}, trace=trace)
    s = res.fregs[ck.lowered.scalar_regs["s"].id]
    assert np.isclose(s, np.dot(A, B))
    return res, trace


def main() -> None:
    for level in (Level.CONV, Level.LEV4):
        res, trace = traced_run(level)
        print(f"\n================ {level.label}: {res.cycles} cycles, "
              f"IPC {res.ipc:.2f} ================")
        print("\nissue packets (steady state):")
        print(render_packets(trace, start=res.cycles // 2, limit=12))
        print("\npipeline diagram:")
        print(render_pipeline(trace, issue8(), start=res.cycles // 2,
                              n_instrs=14))


if __name__ == "__main__":
    main()
