"""Compilation-as-a-service walkthrough: client SDK against `repro serve`.

Start a service in one terminal::

    python -m repro serve --port 8734 --store /tmp/repro-store

then run this script in another::

    python examples/service_client.py [--url http://127.0.0.1:8734]

It submits a blocking run (twice — the duplicate is answered from the
content-addressed artifact store), a compile-only request, and an async
sweep job, then prints the service's own accounting from ``/metrics``.

``--selftest`` skips the external server: it starts an in-process one on
a free port (the same ``serve_background`` helper the integration tests
and CI use), drives the identical traffic against it, and exits nonzero
if anything — including the expected cache hit — does not hold.
"""

import argparse
import sys
import tempfile
import time

from repro.service.client import ServiceClient, ServiceUnavailable


def drive(client: ServiceClient) -> dict:
    """The tour; returns the final /metrics payload."""
    print(f"service at {client.base_url}: {client.healthz()}")

    t0 = time.perf_counter()
    first = client.run("dotprod", level=4, width=8)
    t_first = time.perf_counter() - t0
    r = first["result"]
    print(f"\nrun dotprod lev4/issue-8: {r['cycles']} cycles, "
          f"{r['instructions']} instructions, unroll x{r['unroll_factor']} "
          f"[{first['cache']}, {t_first * 1e3:.1f} ms]")

    t0 = time.perf_counter()
    again = client.run("dotprod", level=4, width=8)
    t_again = time.perf_counter() - t0
    print(f"same request again:       {again['result']['cycles']} cycles "
          f"[{again['cache']}, {t_again * 1e3:.1f} ms]")
    assert again["cache"] == "hit", "duplicate request should hit the store"
    assert again["result"] == r, "cached result must be identical"

    ir = client.compile("sum", level=2, width=4)["result"]["ir"]
    print(f"\ncompile sum lev2/issue-4: scheduled inner loop is "
          f"{len(ir.splitlines())} instructions")

    job = client.sweep(["add", "sum", "maxval"], levels=[0, 4], widths=[1, 8])
    print(f"\nsweep submitted as {job}; polling ...")
    rec = client.wait_job(job, timeout=300.0)
    print(f"{rec['result']['configs']} configurations "
          f"({rec['result']['hits']} from cache):")
    for row in rec["result"]["results"]:
        print(f"  {row['workload']:<8} lev{row['level']} "
              f"issue-{row['width']}: {row['cycles']:>6} cycles")

    m = client.metrics()
    print(f"\nmetrics: {m['requests']} requests, {m['hits']} hits / "
          f"{m['misses']} misses, {m['batched_cells']} compiled cells, "
          f"p95 latency {m['latency_p95_s'] * 1e3:.1f} ms, "
          f"{m['errors']} errors")
    return m


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--url", default="http://127.0.0.1:8734",
                    help="a running service (default: %(default)s)")
    ap.add_argument("--selftest", action="store_true",
                    help="start an in-process server instead of connecting")
    args = ap.parse_args(argv)

    if args.selftest:
        from repro.service.server import serve_background

        with tempfile.TemporaryDirectory() as tmp:
            httpd, engine, url = serve_background(store_dir=tmp, jobs=1)
            try:
                m = drive(ServiceClient(url))
            finally:
                httpd.shutdown()
                engine.close()
            if m["errors"]:
                print(f"selftest: {m['errors']} service error(s)",
                      file=sys.stderr)
                return 1
            print("selftest: ok")
            return 0

    try:
        drive(ServiceClient(args.url))
    except ServiceUnavailable as e:
        print(f"no service at {args.url} ({e}); start one with\n"
              f"  python -m repro serve --store /tmp/repro-store\n"
              f"or rerun with --selftest", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
