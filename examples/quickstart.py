"""Quickstart: compile one loop at every transformation level and watch the
cycle count drop.

Builds the paper's running example — C(i) = A(i) + B(i) — in the kernel
language, compiles it at Conv / Lev1 / Lev2 / Lev3 / Lev4 for an issue-8
processor, simulates each binary, and checks the results against NumPy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.frontend import ArrayDecl, Kernel, Ty, aref, assign, do, var
from repro.harness import compile_kernel, run_compiled_kernel
from repro.ir import format_block
from repro.machine import issue1, issue8
from repro.pipeline import Level

N = 128


def build_kernel() -> Kernel:
    i = var("i")
    return Kernel(
        "vadd",
        arrays={name: ArrayDecl(Ty.FP, (N,)) for name in "ABC"},
        scalars={},
        body=[
            do("i", 1, N,
               [assign(aref("C", i), aref("A", i) + aref("B", i))],
               kind="doall"),
        ],
    )


def main() -> None:
    rng = np.random.default_rng(0)
    A = rng.integers(1, 9, N).astype(float)
    B = rng.integers(1, 9, N).astype(float)

    # the speedup baseline: issue-1 processor, conventional optimization
    base = run_compiled_kernel(
        compile_kernel(build_kernel(), Level.CONV, issue1()),
        arrays={"A": A, "B": B, "C": np.zeros(N)},
    )
    print(f"baseline (issue-1, Conv): {base.cycles} cycles "
          f"({base.cycles / N:.2f} per iteration)\n")

    print(f"{'level':<6}{'cycles':>8}{'cyc/iter':>10}{'speedup':>9}  notes")
    for level in Level:
        ck = compile_kernel(build_kernel(), level, issue8())
        out = run_compiled_kernel(
            ck, arrays={"A": A.copy(), "B": B.copy(), "C": np.zeros(N)}
        )
        assert np.array_equal(out.arrays["C"], A + B), "wrong result!"
        rep = ck.report
        notes = []
        if rep.unroll_factor > 1:
            notes.append(f"unroll x{rep.unroll_factor}")
        if rep.renamed:
            notes.append(f"{rep.renamed} regs renamed")
        if rep.inductions:
            notes.append(f"{rep.inductions} induction chains expanded")
        if rep.combined:
            notes.append(f"{rep.combined} ops combined")
        print(f"{level.label:<6}{out.cycles:>8}{out.cycles / N:>10.2f}"
              f"{base.cycles / out.cycles:>9.2f}  {', '.join(notes)}")

    # peek at the compiled inner loop at Conv: this is Figure 1(b) of the
    # paper, produced from naive lowering by the classical optimizer
    ck = compile_kernel(build_kernel(), Level.CONV, issue8())
    print("\nConv inner loop (compare with the paper's Figure 1b):")
    print(format_block(ck.sb.body))


if __name__ == "__main__":
    main()
