"""Writing your own kernel: the full API tour.

Defines a new loop nest (not in the corpus) — a damped stencil update with
a conditional clamp — then walks the whole pipeline by hand: lowering,
classical optimization, ILP transformation, scheduling, register-usage
measurement, and simulation, printing the intermediate artifacts.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.frontend import ArrayDecl, Kernel, Ty, aref, assign, do, if_, var
from repro.frontend.lower import lower_kernel
from repro.ir import format_block, format_function, format_schedule
from repro.machine import issue8
from repro.opt.driver import run_conv
from repro.pipeline import Level, apply_ilp_transforms, schedule_function
from repro.regalloc import measure_register_usage
from repro.sim import Memory, simulate

N = 64


def build_kernel() -> Kernel:
    i, t = var("i"), var("t")
    return Kernel(
        "damped_stencil",
        arrays={"U": ArrayDecl(Ty.FP, (N,)), "V": ArrayDecl(Ty.FP, (N,))},
        scalars={"w": Ty.FP, "cap": Ty.FP, "t": Ty.FP},
        body=[
            do("i", 2, N - 1, [
                assign(t, (aref("U", i - 1) + aref("U", i + 1)) * var("w")),
                if_(t > var("cap"), [assign(t, var("cap"))], p_then=0.2),
                assign(aref("V", i), t - aref("U", i)),
            ], kind="doall"),
        ],
    )


def main() -> None:
    kernel = build_kernel()

    # 1. lowering: naive code, one register per scalar, full address math
    lk = lower_kernel(kernel)
    print("=== naive lowering (inner loop) ===")
    print(format_block(lk.func.get_block(lk.inner_header)))

    # 2. the classical (Conv) optimizer
    rep = run_conv(lk.func, lk.counted, lk.live_out_exit)
    print(f"\n=== after Conv ({rep.derived_ivs} derived IVs, "
          f"{rep.dead} dead instrs removed) ===")
    print(format_block(lk.func.get_block(lk.inner_header)))

    # 3. ILP transformation at Lev4
    machine = issue8()
    counted = lk.counted[lk.inner_header]
    sb, ilp = apply_ilp_transforms(
        lk.func, counted, Level.LEV4, machine, lk.live_out_exit
    )
    print(f"\n=== after Lev4 (unroll x{ilp.unroll_factor}, "
          f"{ilp.renamed} renamed, {ilp.inductions} induction chains) ===")

    # 4. scheduling: issue times for the superblock
    schedules = schedule_function(
        lk.func, machine, lk.live_out_exit, sb=sb, doall=True
    )
    sched = schedules[sb.header]
    print("scheduled superblock (instruction, issue cycle):")
    print(format_schedule(sched.pairs()[:16]))
    print(f"... makespan {sched.makespan} cycles for "
          f"{ilp.unroll_factor} iterations")

    # 5. register usage, the paper's Figure 11 metric
    usage = measure_register_usage(lk.func, lk.live_out_exit)
    print(f"\nregister usage: {usage.int_regs} int + {usage.fp_regs} fp "
          f"= {usage.total}")

    # 6. simulate and check
    mem = Memory()
    rng = np.random.default_rng(7)
    U = rng.integers(1, 9, N).astype(float)
    mem.bind_array("U", U)
    mem.bind_array("V", np.zeros(N))
    regs = lk.scalar_regs
    res = simulate(lk.func, machine, mem,
                   fregs={regs["w"].id: 0.5, regs["cap"].id: 6.0})
    V = mem.read_array("V", (N,))
    expect = np.zeros(N)
    for k in range(1, N - 1):
        tv = (U[k - 1] + U[k + 1]) * 0.5
        tv = min(tv, 6.0)
        expect[k] = tv - U[k]
    assert np.array_equal(V, expect), "simulation disagrees with reference"
    print(f"\nsimulated {res.instructions} instructions in {res.cycles} "
          f"cycles (IPC {res.ipc:.2f}); results verified against NumPy")


if __name__ == "__main__":
    main()
