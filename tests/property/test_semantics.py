"""Property-based testing: random kernels must compute the same results at
every transformation level and issue width (semantics preservation of the
whole pipeline), and transformed code must agree with the Conv baseline.

Kernel generation is constrained to shapes whose classification we can
assert soundly: DOALL kernels write only output arrays at the loop index
and read only input arrays/scalars; serial kernels add a scalar reduction
or a guarded update.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend import ArrayDecl, Kernel, Ty, aref, assign, do, if_, var
from repro.frontend.ast import Bin, Const
from repro.harness import compile_kernel, run_compiled_kernel
from repro.machine import MachineConfig
from repro.pipeline import Level

N = 13  # deliberately not a multiple of the unroll factor


# -- expression strategy ------------------------------------------------------

def fp_leaf():
    return st.one_of(
        st.sampled_from(["A", "B"]).map(lambda a: aref(a, var("i"))),
        st.integers(-3, 3).map(lambda v: Const(float(v))),
        st.sampled_from(["q", "r"]).map(var),
    )


def fp_expr(depth=0):
    if depth >= 2:
        return fp_leaf()
    sub = st.deferred(lambda: fp_expr(depth + 1))
    return st.one_of(
        fp_leaf(),
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: Bin(t[0], t[1], t[2])
        ),
    )


@st.composite
def doall_kernels(draw):
    """Elementwise kernels: outputs written at index i, inputs only read."""
    n_stmts = draw(st.integers(1, 4))
    i = var("i")
    body = []
    outs = ["X", "Y"]
    for k in range(n_stmts):
        e = draw(fp_expr())
        tgt = draw(st.sampled_from(outs))
        use_temp = draw(st.booleans())
        if use_temp:
            body.append(assign(var(f"t{k}"), e))
            body.append(assign(aref(tgt, i), var(f"t{k}") * 2.0))
        else:
            body.append(assign(aref(tgt, i), e))
    scalars = {"q": Ty.FP, "r": Ty.FP}
    scalars.update({f"t{k}": Ty.FP for k in range(n_stmts)})
    return Kernel(
        "prop",
        arrays={a: ArrayDecl(Ty.FP, (N,)) for a in ("A", "B", "X", "Y")},
        scalars=scalars,
        body=[do("i", 1, N, body, kind="doall")],
    )


@st.composite
def serial_kernels(draw):
    """Reduction kernels, optionally with a guarded conditional update."""
    i = var("i")
    e = draw(fp_expr())
    body = [assign(var("t0"), e)]
    body.append(assign(var("s"), var("s") + var("t0")))
    if draw(st.booleans()):
        thresh = float(draw(st.integers(-2, 2)))
        body.append(
            if_(var("t0") > thresh, [assign(var("u"), var("u") + 1.0)],
                p_then=draw(st.sampled_from([0.2, 0.5, 0.8])))
        )
    if draw(st.booleans()):
        body.append(assign(aref("X", i), var("t0") - var("q")))
    return Kernel(
        "prop",
        arrays={a: ArrayDecl(Ty.FP, (N,)) for a in ("A", "B", "X", "Y")},
        scalars={"q": Ty.FP, "r": Ty.FP, "s": Ty.FP, "u": Ty.FP, "t0": Ty.FP},
        outputs=["s", "u"],
        body=[do("i", 1, N, body, kind="serial")],
    )


def run_all_levels(kernel, seed=0):
    rng = np.random.default_rng(seed)
    arrays = {a: rng.integers(1, 5, N).astype(float)
              for a in ("A", "B", "X", "Y")}
    scalars = {"q": 2.0, "r": 3.0, "s": 0.0, "u": 0.0}
    scalars = {k: v for k, v in scalars.items() if k in kernel.scalars}
    outs = []
    for level in Level:
        for width in (1, 8):
            ck = compile_kernel(kernel, level, MachineConfig(issue_width=width))
            out = run_compiled_kernel(
                ck,
                arrays={k: v.copy() for k, v in arrays.items()},
                scalars=scalars,
            )
            outs.append((level, width, out))
    return outs


def assert_all_agree(outs, rtol=1e-9):
    base = outs[0][2]
    for level, width, out in outs[1:]:
        for name, arr in base.arrays.items():
            assert np.allclose(out.arrays[name], arr, rtol=rtol), (
                level, width, name
            )
        for name, val in base.scalars.items():
            assert np.isclose(out.scalars[name], val, rtol=rtol), (
                level, width, name
            )


COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPipelinePreservesSemantics:
    @settings(max_examples=20, **COMMON)
    @given(kernel=doall_kernels())
    def test_doall_kernels(self, kernel):
        assert_all_agree(run_all_levels(kernel))

    @settings(max_examples=20, **COMMON)
    @given(kernel=serial_kernels())
    def test_serial_kernels(self, kernel):
        assert_all_agree(run_all_levels(kernel))

    @settings(max_examples=10, **COMMON)
    @given(kernel=doall_kernels(), factor=st.integers(2, 8))
    def test_every_unroll_factor(self, kernel, factor):
        rng = np.random.default_rng(1)
        arrays = {a: rng.integers(1, 5, N).astype(float)
                  for a in ("A", "B", "X", "Y")}
        scalars = {"q": 2.0, "r": 3.0}
        results = []
        for level in (Level.CONV, Level.LEV4):
            ck = compile_kernel(
                kernel, level, MachineConfig(issue_width=8), unroll_factor=factor
            )
            out = run_compiled_kernel(
                ck, arrays={k: v.copy() for k, v in arrays.items()},
                scalars=scalars,
            )
            results.append(out)
        for name in arrays:
            assert np.allclose(results[0].arrays[name], results[1].arrays[name])


class TestSchedulerProperties:
    @settings(max_examples=20, **COMMON)
    @given(
        kernel=doall_kernels(),
        level=st.sampled_from(list(Level)),
    )
    def test_wider_issue_never_slower(self, kernel, level):
        rng = np.random.default_rng(2)
        arrays = {a: rng.integers(1, 5, N).astype(float)
                  for a in ("A", "B", "X", "Y")}
        cycles = []
        for width in (1, 2, 8):
            ck = compile_kernel(kernel, level, MachineConfig(issue_width=width))
            out = run_compiled_kernel(
                ck, arrays={k: v.copy() for k, v in arrays.items()},
                scalars={"q": 2.0, "r": 3.0},
            )
            cycles.append(out.cycles)
        assert cycles[0] >= cycles[1] >= cycles[2]

    @settings(max_examples=15, **COMMON)
    @given(kernel=doall_kernels())
    def test_schedule_respects_dependences(self, kernel):
        from repro.analysis.depgraph import build_depgraph
        from repro.machine import issue8

        ck = compile_kernel(kernel, Level.LEV2, issue8())
        body = ck.sb.body.instrs
        # rebuild the dependence graph on the *scheduled* order: every edge
        # must point forward with a satisfied time separation
        g = build_depgraph(body, issue8())
        sched = ck.schedules[ck.sb.header]
        times = {id(ins): t for ins, t in sched.pairs()}
        for i in range(len(body)):
            for j, w in g.succs[i]:
                assert times[id(body[j])] >= times[id(body[i])] + 0  # order
