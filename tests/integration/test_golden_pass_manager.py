"""Golden check: the pass-manager pipeline is bit-identical to the
pre-refactor drivers.

``results/sweep.json`` was produced by the hardwired driver loops the
unified pass manager replaced.  Re-running the oracle-set configurations
through the declarative pipeline must reproduce every recorded number
exactly — cycle counts, instruction counts, inner-loop makespans, and
register usage.  Any drift means the refactor changed pass order,
fixpoint semantics, or gating, and is a bug even if the output is still
"correct".

CI runs this alongside the differential oracle; locally it skips when no
cached sweep exists.
"""

import pytest

from repro.experiments.ablation import ORACLE_SET
from repro.experiments.sweep import load_sweep, run_config
from repro.machine import MachineConfig
from repro.pipeline import Level
from repro.workloads import get_workload

WIDTHS = (1, 2, 4, 8)
FIELDS = ("cycles", "instructions", "inner_makespan", "int_regs", "fp_regs")


@pytest.fixture(scope="module")
def golden():
    data = load_sweep()
    if data is None:
        pytest.skip("no cached sweep (run python -m repro sweep first)")
    return data


@pytest.mark.parametrize("name", ORACLE_SET)
def test_oracle_set_bit_identical(golden, name):
    w = get_workload(name)
    for level in Level:
        for width in WIDTHS:
            want = golden.get(name, level, width)
            got = run_config(w, level, MachineConfig(issue_width=width),
                             check=False)
            mismatches = [
                f"{f}: got {getattr(got, f)} want {getattr(want, f)}"
                for f in FIELDS if getattr(got, f) != getattr(want, f)
            ]
            assert not mismatches, (
                f"{name} {level.label} issue-{width} drifted from the "
                f"pre-refactor golden results: " + "; ".join(mismatches)
            )
