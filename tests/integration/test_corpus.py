"""Corpus integration tests: every workload compiles, runs, and matches
its NumPy reference at every transformation level; the corpus metadata
matches Table 2 of the paper."""

import numpy as np
import pytest

from repro.harness import compile_kernel, run_compiled_kernel
from repro.machine import issue8
from repro.pipeline import Level
from repro.workloads import all_workloads, check_run, get_workload

WORKLOADS = all_workloads()

#: Table 2 of the paper: name -> (size, iters, nest, type, conds)
TABLE2 = {
    "APS-1": (2, 64, 2, "doall", False),
    "APS-2": (8, 31, 2, "doall", False),
    "APS-3": (2, 776, 1, "doall", False),
    "CSS-1": (6, 67, 1, "serial", True),
    "LWS-1": (2, 343, 2, "serial", False),
    "LWS-2": (1, 3087, 2, "serial", False),
    "MTS-1": (2, 423, 2, "serial", True),
    "MTS-2": (2, 24, 3, "serial", True),
    "NAS-1": (22, 1500, 1, "doall", False),
    "NAS-2": (5, 1520, 1, "doall", False),
    "NAS-3": (6, 6000, 1, "doall", False),
    "NAS-4": (2, 1204, 1, "serial", False),
    "NAS-5": (71, 1500, 2, "serial", False),
    "NAS-6": (24, 635, 2, "doacross", False),
    "SDS-1": (1, 25, 2, "serial", False),
    "SDS-2": (1, 32, 3, "serial", False),
    "SDS-3": (1, 25, 2, "serial", False),
    "SDS-4": (3, 25, 2, "doacross", False),
    "SRS-1": (3, 287, 1, "doall", False),
    "SRS-2": (5, 287, 2, "doacross", False),
    "SRS-3": (1, 287, 2, "doall", False),
    "SRS-4": (9, 87, 3, "doall", False),
    "SRS-5": (21, 287, 2, "doall", False),
    "SRS-6": (1, 287, 2, "serial", False),
    "TFS-1": (11, 89, 2, "doall", False),
    "TFS-2": (7, 120, 2, "doacross", False),
    "TFS-3": (2, 49, 3, "doall", False),
    "WSS-1": (1, 96, 2, "doall", False),
    "WSS-2": (4, 39, 2, "doacross", False),
    "doduc-1": (38, 13, 1, "serial", True),
    "matrix300-1": (1, 300, 1, "doall", False),
    "nasa7-1": (1, 256, 3, "doall", False),
    "nasa7-2": (3, 1000, 3, "doacross", False),
    "tomcatv-1": (21, 255, 2, "doall", False),
    "tomcatv-2": (8, 255, 2, "serial", True),
    "add": (1, 1024, 1, "doall", False),
    "dotprod": (1, 1024, 1, "serial", False),
    "maxval": (3, 1024, 1, "serial", True),
    "merge": (4, 1024, 1, "doall", True),
    "sum": (1, 1024, 1, "serial", False),
}


class TestTable2Metadata:
    def test_forty_workloads(self):
        assert len(WORKLOADS) == 40
        assert {w.name for w in WORKLOADS} == set(TABLE2)

    @pytest.mark.parametrize("w", WORKLOADS, ids=lambda w: w.name)
    def test_row_matches_paper(self, w):
        size, iters, nest, ty, conds = TABLE2[w.name]
        assert w.size_lines == size
        assert w.paper_iters == iters
        assert w.nest == nest
        assert w.loop_type == ty
        assert w.conds == conds

    def test_type_distribution(self):
        counts = {"doall": 0, "doacross": 0, "serial": 0}
        for w in WORKLOADS:
            counts[w.loop_type] += 1
        assert counts == {"doall": 18, "doacross": 6, "serial": 16}

    @pytest.mark.parametrize("w", WORKLOADS, ids=lambda w: w.name)
    def test_structure_matches_metadata(self, w):
        """Nest depth, conditional presence, and inner-loop classification
        are consistent between the kernel AST and the metadata."""
        from repro.frontend.ast import Do, If

        k = w.build()
        assert k.nest_depth() == w.nest
        assert k.inner_do().kind == w.loop_type

        def has_if(stmts) -> bool:
            for s in stmts:
                if isinstance(s, If):
                    return True
                if isinstance(s, Do) and has_if(s.body):
                    return True
            return False

        assert has_if(k.body) == w.conds

    @pytest.mark.parametrize("w", WORKLOADS, ids=lambda w: w.name)
    def test_size_lines_approximate(self, w):
        """Statement count of the innermost body approximates the Size
        column (within a factor: IF statements count with their arms)."""
        from repro.frontend.ast import If

        inner = w.build().inner_do()

        def count(stmts) -> int:
            n = 0
            for s in stmts:
                if isinstance(s, If):
                    n += 1 + count(s.then) + count(s.els)
                else:
                    n += 1
            return n

        n = count(inner.body)
        assert 0.4 * w.size_lines <= max(n, 1) <= 2.5 * w.size_lines + 2


@pytest.mark.parametrize("level", list(Level), ids=lambda l: l.label)
@pytest.mark.parametrize("w", WORKLOADS, ids=lambda w: w.name)
def test_workload_correct_at_level(w, level):
    """Execution-driven check of the full pipeline on issue-8."""
    arrays, scalars = w.make_inputs(0)
    ck = compile_kernel(w.build(), level, issue8())
    out = run_compiled_kernel(
        ck, arrays={k: v.copy() for k, v in arrays.items()}, scalars=scalars
    )
    check_run(w, out.arrays, out.scalars, arrays, scalars)


@pytest.mark.parametrize("w", WORKLOADS, ids=lambda w: w.name)
def test_different_seed_still_correct(w):
    """Data-independence: a second input set also checks out (at Lev4,
    where the most transformations are active)."""
    arrays, scalars = w.make_inputs(1)
    ck = compile_kernel(w.build(), Level.LEV4, issue8())
    out = run_compiled_kernel(
        ck, arrays={k: v.copy() for k, v in arrays.items()}, scalars=scalars
    )
    check_run(w, out.arrays, out.scalars, arrays, scalars)
